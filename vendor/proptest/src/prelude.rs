//! One-stop imports for property tests: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Namespace mirror of the real crate's `prelude::prop`, so strategies
/// are reachable as `prop::collection::vec` etc.
pub mod prop {
    pub use crate::{array, collection, num, strategy};
}
