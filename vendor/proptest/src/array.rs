//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `[S::Value; N]` drawing every element from `S`.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fns {
    ($($name:ident => $n:literal),+ $(,)?) => {$(
        /// Generate arrays of the given length from one element strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )+};
}

uniform_fns!(
    uniform4 => 4,
    uniform8 => 8,
    uniform16 => 16,
    uniform32 => 32,
);
