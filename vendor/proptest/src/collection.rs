//! Collection strategies: `vec` and the [`SizeRange`] bounds type.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u128 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
