//! Deterministic case runner state: configuration and the per-case RNG.

/// Subset of proptest's run configuration honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default; properties that need a tighter test
        // budget set an explicit `with_cases` in `proptest_config`.
        Self { cases: 256 }
    }
}

/// SplitMix64 generator seeded from the test identity and case index, so
/// every run of the suite draws identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test uniquely named by `test_id`.
    #[must_use]
    pub fn deterministic(test_id: &str, case: u64) -> Self {
        // FNV-1a over the identity, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let raw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        raw % bound
    }

    /// Uniform draw from the unit interval `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
