//! Minimal, dependency-free stand-in for the [proptest] property-testing
//! framework, vendored because this build environment has no registry
//! access.
//!
//! It implements the API surface the workspace's property suite uses:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], range and tuple strategies,
//! [`collection::vec`], [`array::uniform16`], and [`arbitrary::any`].
//! Generation is fully deterministic — every case seed derives from the
//! test's module path, name, and case index — so `cargo test` gives the
//! same verdict on every run and machine. Unlike the real crate there is
//! no shrinking: a failing case reports the generated inputs verbatim.
//! Swap the `path` dependency in the workspace root for the registry
//! crate to get shrinking and the full strategy library; the test
//! sources compile unchanged against either.
//!
//! [proptest]: https://docs.rs/proptest

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod num;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Fail the current property case; takes the same forms as [`assert!`].
///
/// Without shrinking support, this panics immediately and the harness in
/// [`proptest!`] reports the generated inputs for the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Fail the current property case unless the two values are equal; takes
/// the same forms as [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Fail the current property case if the two values are equal; takes the
/// same forms as [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` that draws `config.cases` deterministic
/// inputs from the strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(
        $(#[$meta:meta])*
        fn $test_name:ident($($parm:ident in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $crate::proptest!(@one ($config) $(#[$meta])* fn $test_name($($parm in $strategy),+) $body);
        )*
    };

    ($(
        $(#[$meta:meta])*
        fn $test_name:ident($($parm:ident in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $crate::proptest!(@one ($crate::test_runner::ProptestConfig::default())
                $(#[$meta])* fn $test_name($($parm in $strategy),+) $body);
        )*
    };

    (@one ($config:expr)
     $(#[$meta:meta])*
     fn $test_name:ident($($parm:ident in $strategy:expr),+ $(,)?) $body:block) => {
        $(#[$meta])*
        fn $test_name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($test_name)),
                    u64::from(case),
                );
                $(let $parm = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let described = format!(
                    concat!($(stringify!($parm), " = {:?}; ",)+),
                    $(&$parm),+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs: {}",
                        case + 1,
                        config.cases,
                        stringify!($test_name),
                        described,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    };
}
