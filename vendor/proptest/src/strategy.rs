//! The [`Strategy`] trait and its tuple combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from the deterministic RNG.
///
/// The stand-in keeps proptest's name and role but collapses its
/// `ValueTree`/shrinking machinery into direct generation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategies compose through references so macro expansions can hold
/// them by `&`.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// A strategy yielding one fixed value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
