//! The [`any`] strategy over types with a canonical full-domain
//! distribution.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" generator, mirroring proptest's
/// `Arbitrary` (without the parameterised variants).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing unconstrained values of `T`; build with [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: the suite's numeric code treats NaN/inf as
        // precondition violations, matching proptest's default f64 domain.
        rng.unit_f64() * 2.0 - 1.0
    }
}
