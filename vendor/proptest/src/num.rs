//! Range strategies over the primitive numeric types.
//!
//! `lo..hi`, `lo..=hi`, and `lo..` range expressions are themselves the
//! strategies, exactly as in the real crate.

use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

macro_rules! int_ranges {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )+};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let x = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                // Guard against rounding up onto the excluded endpoint.
                if x < self.end { x } else { self.start }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )+};
}

float_ranges!(f32, f64);
