//! Minimal, dependency-free stand-in for the [criterion] benchmark
//! harness, vendored because this build environment has no registry
//! access.
//!
//! It implements exactly the API surface the workspace benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — with a
//! simple wall-clock measurement loop: per benchmark it warms up briefly,
//! picks an iteration count targeting a fixed measurement window, runs
//! `sample_size` samples, and prints the median/min/max time per
//! iteration. Swap the `path` dependency in the workspace root for the
//! registry crate to get the real statistical harness; the bench sources
//! compile unchanged against either.
//!
//! [criterion]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers compile; benches should
/// prefer `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Upper bound on warmup spent sizing the iteration count.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Timing loop handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of `routine`, keeping results opaque to
    /// the optimizer.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver; one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility with the real harness; the cargo
    /// `--bench` flag and filter arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmark a single routine and print its per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a routine under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Finish the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warmup: find an iteration count whose sample lands near the target
    // window, doubling from 1 while a sample finishes too quickly.
    let mut iters: u64 = 1;
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || warmup_start.elapsed() >= WARMUP_TARGET {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{id:<40} time: [{} {} {}]  ({iters} iters x {sample_size} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declare a function that runs each listed benchmark against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
