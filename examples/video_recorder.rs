//! Digital video recorder scenario (§2, §5, §7): record a broadcast,
//! detect and skip the commercials, store the recording on the media
//! file system, and check the whole workload fits the DVR platform.
//!
//! ```sh
//! cargo run --release --example video_recorder
//! ```

use analysis::commercial::CommercialDetector;
use mediafs::fs::{AllocPolicy, MediaFs};
use mmsoc::deploy::deploy_device;
use mmsoc::profile::DeviceClass;
use mmsoc::report::f;
use video::encoder::{Encoder, EncoderConfig};
use video::me::SearchKind;
use video::synth::SequenceGen;

fn main() {
    // 1. "Receive" a broadcast with two commercial breaks.
    let mut gen = SequenceGen::new(7);
    let (frames, labels) = gen.broadcast(176, 144, 150, 12, 2, 3, false, 2.0);
    println!(
        "broadcast: {} frames ({} labelled skippable)",
        frames.len(),
        labels.iter().filter(|l| l.is_skippable()).count()
    );

    // 2. Detect the commercial breaks (Replay's black-frame cue).
    let detector = CommercialDetector::default();
    let flags = detector.skip_flags(&frames);
    let score = CommercialDetector::score(&flags, &labels);
    println!("commercial detector: {score}");

    // 3. Keep only program frames and encode them for storage.
    let program: Vec<_> = frames
        .iter()
        .zip(&flags)
        .filter(|(_, skip)| !**skip)
        .map(|(frame, _)| frame.clone())
        .collect();
    let encoder = Encoder::new(EncoderConfig {
        search: SearchKind::ThreeStep,
        ..Default::default()
    })
    .expect("valid config");
    let encoded = encoder.encode(&program).expect("encode");
    println!(
        "stored recording: {} program frames -> {} KiB ({}:1)",
        program.len(),
        encoded.bytes.len() / 1024,
        f(encoded.compression_ratio(), 1)
    );

    // 4. Write it to the recorder's file system and read it back.
    let mut fs = MediaFs::new(65_536, 2048, AllocPolicy::FirstFit);
    fs.mkdir("/recordings").expect("mkdir");
    fs.create("/recordings/show.mmv", &encoded.bytes)
        .expect("create");
    let back = fs.read("/recordings/show.mmv").expect("read");
    assert_eq!(back, encoded.bytes, "file system corrupted the recording");
    println!(
        "file system: stored and verified {} KiB (fragmentation {})",
        back.len() / 1024,
        f(fs.fragmentation("/recordings/show.mmv").expect("frag"), 3)
    );

    // 5. Does the DVR workload fit its platform in real time?
    let d = deploy_device(DeviceClass::VideoRecorder, 7, 12).expect("deploy");
    println!(
        "DVR platform: {} fps achieved vs 30 fps target ({}) using {}",
        f(d.throughput_hz(), 1),
        if d.meets(30.0) {
            "meets real time"
        } else {
            "MISSES real time"
        },
        d.strategy
    );
}
