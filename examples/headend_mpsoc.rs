//! Head-end on the MPSoC model (§2–§4 + ROADMAP item 2): one staged
//! head-end definition — capture → per-rung encode → mux → seal →
//! publish — consumed two ways. First the ladder really encodes, each
//! rung a work unit on the `mmpool` worker pool (bit-identical to the
//! sequential encode); then the measured stage tallies and segment
//! bytes fold into an `mpsoc::headend` task graph that is mapped and
//! scheduled across platform configurations, printing the Gantt
//! schedule, the energy split, and measured-vs-modeled stage times.
//!
//! ```sh
//! cargo run --release --example headend_mpsoc
//! ```

use std::time::Instant;

use mmpool::WorkerPool;
use mmstream::headend_spec;
use mmstream::ladder::{encode_ladder, encode_ladder_on, encode_rung, LadderConfig};
use mpsoc::pe::PeId;
use mpsoc::{Mapping, Platform, Simulator};
use video::synth::SequenceGen;

fn main() {
    // 1. The real head-end: a 3-rung ladder encoded on the host.
    let frames = SequenceGen::new(9).panning_sequence(64, 48, 24, 1, 1);
    let config = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let t0 = Instant::now();
    let sequential = encode_ladder("channel", &frames, &config).expect("ladder encodes");
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;

    let pool = WorkerPool::new(4);
    let t0 = Instant::now();
    let pooled = encode_ladder_on(&pool, "channel", &frames, &config).expect("ladder encodes");
    let pool_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(pooled, sequential, "pooled encode is bit-identical");
    println!(
        "encoded 3 rungs: sequential {seq_ms:.1} ms, 4-worker pool {pool_ms:.1} ms \
         (bit-identical)\n"
    );

    // 2. The same pipeline as an MPSoC task graph, from measured data.
    let spec = headend_spec(&sequential, &frames);
    let graph = spec.task_graph();
    println!(
        "head-end graph: {} tasks, {} edges, {} wire bytes",
        graph.task_count(),
        graph.edge_count(),
        spec.wire_bytes()
    );

    // 3. Map it onto a 4-PE shared-bus platform and print the schedule.
    let platform = Platform::symmetric_bus("headend-soc", 4, 200e6);
    let mapping = Mapping::load_balanced(&graph, &platform);
    let run = Simulator::new(&platform)
        .run_stream(&graph, &mapping, 4)
        .expect("head-end graph schedules");
    println!("\nmapping (load-balanced):");
    for (task, pe) in graph.tasks().iter().zip(mapping.assignments()) {
        println!("  {:<10} -> pe{}", task.name, pe.0);
    }
    println!(
        "\nschedule (4 iterations):\n{}",
        run.trace().render_gantt(64)
    );
    let energy = run.energy();
    println!(
        "makespan {:.2} ms | energy {:.2} mJ (compute {:.2}, transfer {:.2}, leakage {:.2})",
        run.makespan_s() * 1e3,
        energy.total_j() * 1e3,
        energy.compute_j() * 1e3,
        energy.transfer_j() * 1e3,
        energy.leakage_j() * 1e3,
    );

    // 4. Measured host time vs modeled PE time, stage by stage.
    println!("\nper-rung encode: measured on this host vs modeled on one 200 MHz PE:");
    let pe = platform.pe(PeId(0));
    for (i, stage) in spec.rungs.iter().enumerate() {
        let t0 = Instant::now();
        let build = encode_rung(&frames, &config, i).expect("rung encodes");
        let host_ms = t0.elapsed().as_secs_f64() * 1e3;
        let modeled_ms = pe.seconds_for(&stage.tally.op_counts()) * 1e3;
        println!(
            "  {:<10} host {host_ms:>6.1} ms | modeled {modeled_ms:>8.1} ms | {} wire bytes",
            stage.name,
            build.wires.iter().map(Vec::len).sum::<usize>(),
        );
    }
}
