//! Streaming set-top box scenario (§6, §7): a head-end encodes an ABR
//! ladder, seals it, and serves it from a media-filesystem-backed
//! segment server; a box pulls segments over a lossy access link with a
//! playout buffer and throughput-driven rung selection; then a load
//! sweep finds how many concurrent boxes one server uplink sustains.
//!
//! ```sh
//! cargo run --release --example streaming_stb
//! ```

use audio::encoder::{AudioConfig, AudioEncoder};
use drm::playback::LicenseAuthority;
use drm::{Right, TitleId};
use mediafs::fs::{AllocPolicy, MediaFs};
use mmstream::ladder::{
    encode_ladder, publish_from_fs, seal_ladder, store_ladder, LadderConfig, Manifest,
};
use mmstream::segment::{demux_segment, mux_segment_wire};
use mmstream::serve::{capacity_curve, capacity_knee, LoadConfig, ServerConfig};
use mmstream::session::{run_session, SessionConfig};
use netstack::fetch::ContentServer;
use netstack::link::LinkConfig;
use video::encoder::{Encoder, EncoderConfig};
use video::synth::SequenceGen;

fn main() {
    // 1. Head-end: encode the title as a 3-rung ABR ladder.
    let frames = SequenceGen::new(62).panning_sequence(64, 48, 24, 1, 1);
    let config = LadderConfig {
        targets_bits_per_frame: vec![3_000.0, 9_000.0, 27_000.0],
        gop: 4,
        ..Default::default()
    };
    let mut ladder = encode_ladder("feature", &frames, &config).expect("ladder encodes");
    println!(
        "head-end: {} frames -> {} rungs x {} segments, {} wire bytes total",
        frames.len(),
        ladder.manifest.rungs.len(),
        ladder.manifest.segment_count(),
        ladder.total_bytes()
    );

    // A muxed A/V sidecar: the same transport carries video + audio
    // elementary streams interleaved on separate PIDs.
    let seq = Encoder::new(EncoderConfig::default())
        .expect("valid")
        .encode(&frames[..4])
        .expect("encode");
    // Two 1152-sample subband frames of a plain tone.
    let pcm: Vec<f64> = (0..2304).map(|i| (i as f64 * 0.031).sin() * 0.4).collect();
    let audio_es = AudioEncoder::new(AudioConfig::default())
        .encode(&pcm)
        .expect("audio encodes")
        .bytes;
    let av = demux_segment(&mux_segment_wire(&seq, Some(&audio_es)));
    println!(
        "a/v mux: {} video + {} audio bytes over {} packets, loss detected: {}",
        av.video_es.as_ref().map_or(0, Vec::len),
        av.audio_es.as_ref().map_or(0, Vec::len),
        av.report.packets,
        av.report.loss_detected()
    );

    // 2. Rights: seal every segment, publish the license next to them.
    let mut authority = LicenseAuthority::new(b"operator".to_vec());
    let title_id = TitleId(901);
    authority.register_title(title_id);
    seal_ladder(&mut ladder, &authority, title_id);

    // 3. Segment store + server boot: mediafs backs the serving set.
    let mut fs = MediaFs::new(8192, 512, AllocPolicy::FirstFit);
    store_ladder(&mut fs, &ladder).expect("ladder fits");
    let mut server = ContentServer::new();
    let manifest = publish_from_fs(&mut fs, &mut server, "feature").expect("boot from store");
    server.publish(
        Manifest::license_object("feature"),
        authority.issue(title_id, vec![Right::Play]),
    );
    println!(
        "server: {} objects online (manifest + license + segments) from the media fs",
        server.len()
    );

    // 4. One box on a 5%-loss access link: license fetch, ABR playback.
    let session = SessionConfig {
        link: LinkConfig::default().with_loss(0.05),
        verification_key: Some(authority.verification_key().to_vec()),
        seed: 17,
        ..Default::default()
    };
    let report = run_session(&server, "feature", &session).expect("session completes");
    let rungs: Vec<usize> = report.segments.iter().map(|s| s.rung).collect();
    println!(
        "viewer: startup {} ticks, {} rebuffers, {} switches, rungs {:?}",
        report.startup_delay_ticks, report.rebuffer_events, report.rung_switches, rungs
    );
    for rec in &report.segments {
        let dec = video::decode(rec.segment.video_es.as_ref().expect("survived"))
            .expect("segment decodes");
        assert_eq!(dec.frames.len(), rec.frames);
    }
    println!("viewer: every delivered segment decrypted and decoded");

    // 5. How many boxes does one uplink feed? Sweep to the knee.
    let server_model = ServerConfig::default();
    let counts = [50usize, 200, 1_000, 4_000];
    let curve = capacity_curve(&manifest, &server_model, &counts, &LoadConfig::default());
    println!(
        "load sweep (uplink {} bytes/tick):",
        server_model.capacity_bytes_per_tick
    );
    for r in &curve {
        println!(
            "  {:>5} sessions: {:>7.1} bits/tick/session, rung {:.2}, {:>5.1}% rebuffering",
            r.sessions,
            r.mean_session_bits_per_tick,
            r.mean_rung,
            100.0 * r.rebuffer_fraction
        );
    }
    match capacity_knee(&curve, 0.05) {
        Some(k) => println!("capacity knee: ~{k} concurrent sessions per server"),
        None => println!("capacity knee: below the smallest swept level"),
    }
}
