//! Portable audio player scenario (§4, §6, §7): scan a foreign CD/MP3
//! tree, fetch a license over the (lossy) network, and play a protected
//! track through the analog-only output path.
//!
//! ```sh
//! cargo run --release --example portable_player
//! ```

use audio::encoder::{AudioConfig, AudioEncoder};
use drm::license::{DeviceId, Right, TitleId};
use drm::playback::{LicenseAuthority, OutputPolicy, PlaybackDevice, PlaybackOutput};
use mediafs::foreign::{generate_tree, scan_tracks, TreeStyle};
use mediafs::fs::{AllocPolicy, MediaFs};
use mmsoc::report::f;
use netstack::fetch::{fetch, ContentServer};
use netstack::link::LinkConfig;
use netstack::tcplite::TcpConfig;

fn main() {
    // 1. A disc burned elsewhere: deep-nested tree, scanned completely.
    let mut disc = MediaFs::new(8192, 512, AllocPolicy::FirstFit);
    let written = generate_tree(&mut disc, TreeStyle::DeepNested, 24, 11).expect("burn");
    let found = scan_tracks(&disc, "/").expect("scan");
    println!(
        "cd/mp3 import: {} tracks burned, {} found by the scanner",
        written.len(),
        found.len()
    );
    assert_eq!(written.len(), found.len());

    // 2. Encode a "purchased" track and protect it.
    let pcm = signal::gen::SignalGen::new(12).music(330.0, 44_100.0, 8 * 1152);
    let stream = AudioEncoder::new(AudioConfig::default())
        .encode(&pcm)
        .expect("encode");
    println!(
        "purchased track: {} KiB encoded audio ({} kbit/s)",
        stream.bytes.len() / 1024,
        f(stream.bitrate_bps(44_100.0) / 1000.0, 0)
    );

    let mut authority = LicenseAuthority::new(b"label-secret".to_vec());
    let title = TitleId(77);
    authority.register_title(title);
    let protected = authority.encrypt_content(title, &stream.bytes, 5);

    // 3. Fetch the license over a 10%-loss link (§7: DRM over small IP).
    let mut server = ContentServer::new();
    server.publish(
        "license-77",
        authority.issue(
            title,
            vec![Right::PlayCount(3), Right::Devices(vec![DeviceId(9)])],
        ),
    );
    let report = fetch(
        &server,
        "license-77",
        TcpConfig::default(),
        LinkConfig::default().with_loss(0.1),
        13,
    )
    .expect("license fetch");
    println!(
        "license fetch over lossy link: {} bytes in {} ticks ({} retransmissions)",
        report.data.len(),
        report.ticks,
        report.retransmissions
    );

    // 4. Play through the protected, analog-only path.
    let mut player = PlaybackDevice::new(DeviceId(9), OutputPolicy::AnalogOnly);
    player
        .store_mut()
        .install(&report.data, authority.verification_key())
        .expect("install license");
    match player
        .play(title, &protected, 5, 1000)
        .expect("authorized play")
    {
        PlaybackOutput::Analog(levels) => {
            println!(
                "playback: analog output, {} samples (digital bytes never leave the chip)",
                levels.len()
            );
        }
        PlaybackOutput::Digital(_) => unreachable!("analog-only device must not emit digital"),
    }
    println!("plays remaining: {}", 3 - player.store().plays_used(title));
}
