//! Set-top box scenario (§2, §6): the asymmetric broadcast case — a
//! head-end encodes once with an expensive search; the consumer box only
//! decodes, enforces its DRM window, and runs its drive servo.
//!
//! ```sh
//! cargo run --release --example set_top_box
//! ```

use drm::license::{DeviceId, Right, TitleId};
use drm::playback::{LicenseAuthority, OutputPolicy, PlaybackDevice, PlaybackOutput};
use mmsoc::deploy::deploy_device;
use mmsoc::profile::DeviceClass;
use mmsoc::report::f;
use servo::control::Pid;
use servo::loopctl::{adapt_gains, run_loop};
use servo::plant::Mechanism;
use video::decoder::decode;
use video::encoder::{Encoder, EncoderConfig};
use video::synth::SequenceGen;

fn main() {
    // 1. Head-end encode (expensive, done once for many receivers).
    let frames = SequenceGen::new(31).panning_sequence(176, 144, 10, 2, 0);
    let encoded = Encoder::new(EncoderConfig::asymmetric_broadcast())
        .expect("valid")
        .encode(&frames)
        .expect("encode");
    println!(
        "head-end: {} frames, {} SAD evals (the broadcast side pays the compute)",
        frames.len(),
        encoded.tally.me_sad_evaluations
    );

    // 2. The box's pay-per-view authorization: a time-windowed license.
    let mut authority = LicenseAuthority::new(b"operator".to_vec());
    let title = TitleId(501);
    authority.register_title(title);
    let protected = authority.encrypt_content(title, &encoded.bytes, 9);
    let sealed = authority.issue(
        title,
        vec![
            Right::Play,
            Right::TimeWindow {
                not_before: 1_000,
                not_after: 2_000,
            },
        ],
    );
    let mut stb = PlaybackDevice::new(DeviceId(3), OutputPolicy::DigitalAllowed);
    stb.store_mut()
        .install(&sealed, authority.verification_key())
        .expect("install");
    assert!(
        stb.play(title, &protected, 9, 500).is_err(),
        "too early must refuse"
    );
    let output = stb
        .play(title, &protected, 9, 1_500)
        .expect("inside window");
    let PlaybackOutput::Digital(bitstream) = output else {
        unreachable!("digital path configured")
    };
    println!("pay-per-view: refused before the window, granted inside it");

    // 3. Decode on the box (cheap side of the asymmetry).
    let decoded = decode(&bitstream).expect("decode");
    println!(
        "decode: {} frames reconstructed from the protected stream",
        decoded.frames.len()
    );

    // 4. The disc drive servo, adapted to this box's mechanism.
    let mech = Mechanism::stiff();
    let gains = adapt_gains(mech, 50_000.0);
    let mut pid = Pid::new(gains, 50_000.0);
    let tracking = run_loop(mech, &mut pid, 50_000.0, 100_000, 31);
    println!(
        "drive servo: runout attenuated {}x (rms error {})",
        f(tracking.attenuation(), 1),
        f(tracking.rms_error, 4)
    );

    // 5. Decode workload fits the STB platform.
    let d = deploy_device(DeviceClass::SetTopBox, 31, 12).expect("deploy");
    println!(
        "set-top-box platform: {} fps vs 30 fps target ({})",
        f(d.throughput_hz(), 1),
        if d.meets(30.0) {
            "fits comfortably"
        } else {
            "DOES NOT fit"
        }
    );
}
