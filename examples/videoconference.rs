//! Videoconference scenario (§2): the symmetric compression case — both
//! terminals encode *and* decode in real time on a cell-phone-class
//! platform, with the encoded stream crossing a lossy network.
//!
//! ```sh
//! cargo run --release --example videoconference
//! ```

use mmsoc::deploy::deploy_device;
use mmsoc::profile::DeviceClass;
use mmsoc::report::f;
use netstack::link::LinkConfig;
use netstack::tcplite::{transfer, TcpConfig};
use signal::metrics::psnr_u8;
use video::decoder::decode;
use video::encoder::{Encoder, EncoderConfig};
use video::synth::SequenceGen;

fn main() {
    // 1. Terminal A encodes its camera feed with the symmetric config.
    let frames = SequenceGen::new(21).panning_sequence(176, 144, 10, 1, 1);
    let config = EncoderConfig::symmetric_conference();
    let encoded = Encoder::new(config)
        .expect("valid")
        .encode(&frames)
        .expect("encode");
    println!(
        "terminal A: {} frames encoded with {} search -> {} KiB",
        frames.len(),
        config.search,
        encoded.bytes.len() / 1024
    );
    println!(
        "encoder cost: {} SAD evaluations ({}x cheaper than exhaustive would be)",
        encoded.tally.me_sad_evaluations,
        {
            let full = Encoder::new(EncoderConfig::asymmetric_broadcast())
                .expect("valid")
                .encode(&frames)
                .expect("encode");
            f(
                full.tally.me_sad_evaluations as f64
                    / encoded.tally.me_sad_evaluations.max(1) as f64,
                1,
            )
        }
    );

    // 2. The stream crosses a 5%-loss access link, reliably.
    let link = LinkConfig::default().with_loss(0.05);
    let xfer = transfer(&encoded.bytes, TcpConfig::default(), link, 22).expect("transfer");
    println!(
        "network: {} KiB delivered exactly in {} ticks ({} retransmissions)",
        xfer.data.len() / 1024,
        xfer.ticks,
        xfer.retransmissions
    );

    // 3. Terminal B decodes and we check quality end to end.
    let decoded = decode(&xfer.data).expect("decode");
    let mut psnr = 0.0;
    for (a, b) in frames.iter().zip(&decoded.frames) {
        psnr += psnr_u8(a.luma(), b.luma()).expect("same dims");
    }
    println!(
        "terminal B: decoded {} frames, mean PSNR {} dB",
        decoded.frames.len(),
        f(psnr / frames.len() as f64, 1)
    );

    // 4. Both directions must fit the phone platform simultaneously —
    // the cell-phone profile is exactly encode + decode.
    let d = deploy_device(DeviceClass::CellPhone, 21, 12).expect("deploy");
    println!(
        "cell-phone platform: {} fps vs 15 fps call target ({})",
        f(d.throughput_hz(), 1),
        if d.meets(15.0) {
            "symmetric call fits"
        } else {
            "DOES NOT fit"
        }
    );
}
