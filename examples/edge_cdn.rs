//! Edge-CDN scenario (§7 + the ROADMAP's scale goal): one origin
//! publishes a sealed ABR ladder; a tier of edge caches sits between the
//! origin and the viewers. The first viewer warms an edge over its lossy
//! origin link, later viewers ride cache hits, and when the origin goes
//! dark the warm edge keeps serving. A fluid sweep then shows the
//! capacity knee scaling with edge count — the number PR 3's single
//! uplink could not move.
//!
//! ```sh
//! cargo run --release --example edge_cdn
//! ```

use drm::playback::LicenseAuthority;
use drm::{Right, TitleId};
use mmstream::edge::{EdgeCache, EdgeConfig, EdgeTierConfig};
use mmstream::ladder::{encode_ladder, publish_ladder, seal_ladder, LadderConfig, Manifest};
use mmstream::serve::{
    capacity_curve, capacity_knee, edge_capacity_curve, edge_capacity_knee, LoadConfig,
    ServerConfig,
};
use mmstream::session::{run_session_via_edge, SessionConfig};
use netstack::fetch::ContentServer;
use netstack::link::LinkConfig;
use video::synth::SequenceGen;

fn main() {
    // 1. Head-end: a sealed 3-rung ladder on the origin server.
    let frames = SequenceGen::new(62).panning_sequence(64, 48, 24, 1, 1);
    let config = LadderConfig {
        targets_bits_per_frame: vec![3_000.0, 9_000.0, 27_000.0],
        gop: 4,
        ..Default::default()
    };
    let mut ladder = encode_ladder("feature", &frames, &config).expect("ladder encodes");
    let mut authority = LicenseAuthority::new(b"studio".to_vec());
    let title = TitleId(21);
    authority.register_title(title);
    seal_ladder(&mut ladder, &authority, title);
    let mut origin = ContentServer::new();
    publish_ladder(&mut origin, &ladder);
    origin.publish(
        Manifest::license_object("feature"),
        authority.issue(title, vec![Right::Play]),
    );
    println!(
        "origin: {} objects ({} rungs x {} segments, sealed)",
        origin.len(),
        ladder.manifest.rungs.len(),
        ladder.manifest.segment_count()
    );

    // 2. One edge cache between origin and viewers: cold, then warm.
    let mut edge = EdgeCache::new(EdgeConfig {
        origin_link: LinkConfig::default().with_loss(0.02),
        ..Default::default()
    });
    let viewer = SessionConfig {
        link: LinkConfig::default().with_loss(0.05),
        max_rung: Some(0),
        verification_key: Some(authority.verification_key().to_vec()),
        seed: 4,
        ..Default::default()
    };
    let cold = run_session_via_edge(&origin, &mut edge, "feature", &viewer).expect("cold viewer");
    let warm = run_session_via_edge(&origin, &mut edge, "feature", &viewer).expect("warm viewer");
    let s = edge.stats();
    println!(
        "edge: cold viewer {} ticks ({} fills, {} origin bytes); warm viewer {} ticks ({} hits)",
        cold.total_ticks, s.misses, s.origin_bytes, warm.total_ticks, s.hits
    );
    println!(
        "edge: hit rate {:.0}%, origin offload {:.0}%",
        100.0 * s.hit_rate(),
        100.0 * s.origin_offload()
    );

    // 3. Origin outage: the warm edge keeps playing the title.
    edge.set_origin_up(false);
    let outage =
        run_session_via_edge(&origin, &mut edge, "feature", &viewer).expect("outage viewer");
    println!(
        "outage: origin dark, warm edge still serves {} segments with {} rebuffers",
        outage.segments.len(),
        outage.rebuffer_events
    );
    assert_eq!(outage.rebuffer_events, 0);

    // 4. The capacity story: knee vs edge count at equal per-link
    // capacity (4,000 bytes/tick, the PR 3 single-origin uplink).
    let base = LoadConfig::default();
    let counts = [200usize, 1_000, 2_000, 4_000, 8_000];
    let single = capacity_curve(&ladder.manifest, &ServerConfig::default(), &counts, &base);
    let single_knee = capacity_knee(&single, 0.05).expect("single origin has a knee");
    println!("\ncapacity knee (<=5% of sessions rebuffering):");
    println!("  single origin: {single_knee} sessions");
    for edges in [2usize, 4, 8] {
        let tier = EdgeTierConfig {
            edges,
            prewarm: true,
            ..Default::default()
        };
        let curve = edge_capacity_curve(&ladder.manifest, &tier, &counts, &base);
        let knee = edge_capacity_knee(&curve, 0.05).expect("tier has a knee");
        println!(
            "  {edges} warm edges: {knee} sessions ({:.1}x the single origin)",
            knee as f64 / single_knee as f64
        );
    }
}
