//! Quickstart: encode video, encode audio, map the encoder onto an MPSoC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mmsoc::deploy::{deploy, Strategy};
use mmsoc::report::f;
use mmsoc::{video_encoder_pipeline, VideoPipelineSpec};
use mpsoc::platform::Platform;

fn main() {
    // 1. Compress a synthetic video sequence (Figure 1 pipeline).
    let frames = video::synth::SequenceGen::new(1).panning_sequence(176, 144, 12, 2, 1);
    let encoded = video::encoder::Encoder::new(video::encoder::EncoderConfig::default())
        .expect("valid config")
        .encode(&frames)
        .expect("encode");
    println!(
        "video: {} QCIF frames -> {} KiB ({}:1, {} dB PSNR)",
        frames.len(),
        encoded.bytes.len() / 1024,
        f(encoded.compression_ratio(), 1),
        f(encoded.mean_psnr_db(), 1)
    );
    let decoded = video::decoder::decode(&encoded.bytes).expect("decode");
    println!(
        "video: decoder reconstructed {} frames",
        decoded.frames.len()
    );

    // 2. Compress audio (Figure 2 pipeline).
    let pcm = signal::gen::SignalGen::new(2).music(440.0, 44_100.0, 4 * 1152);
    let stream = audio::encoder::AudioEncoder::new(audio::encoder::AudioConfig::default())
        .encode(&pcm)
        .expect("encode");
    println!(
        "audio: {} samples -> {} bytes ({} kbit/s)",
        pcm.len(),
        stream.bytes.len(),
        f(stream.bitrate_bps(44_100.0) / 1000.0, 0)
    );

    // 3. Map the video encoder onto a 4-PE MPSoC and compare mappings.
    let pipeline = video_encoder_pipeline(&VideoPipelineSpec::default(), 3);
    let platform = Platform::symmetric_bus("quad", 4, 300e6);
    println!("\nmapping the CIF encoder onto {platform}:");
    for strategy in [Strategy::SingleCore, Strategy::LoadBalanced] {
        let d = deploy(&pipeline.graph, &platform, strategy, 16).expect("deploy");
        println!(
            "  {:<13} {:>6} fps   energy {}",
            strategy.to_string(),
            f(d.throughput_hz(), 2),
            d.report.energy()
        );
    }
}
