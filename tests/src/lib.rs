//! Shared helpers for the integration test suite live in the test files themselves.
