//! Property-based integration tests: round-trip and conservation
//! invariants that must hold for arbitrary inputs, across crates.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit streams round-trip arbitrary (value, width) sequences.
    #[test]
    fn bitstream_round_trip(values in prop::collection::vec((0u32..=u32::MAX, 1u32..=32), 1..100)) {
        let mut w = signal::bits::BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v & ((1u64 << n) - 1) as u32, n);
        }
        let bytes = w.into_bytes();
        let mut r = signal::bits::BitReader::new(&bytes);
        for &(v, n) in &values {
            prop_assert_eq!(r.read_bits(n).unwrap(), v & ((1u64 << n) - 1) as u32);
        }
    }

    /// Huffman coding round-trips arbitrary symbol streams drawn from the
    /// frequency table that built the code.
    #[test]
    fn huffman_round_trip(freqs in prop::collection::vec(1u64..1000, 2..40), msg_seed in 0u64..1000) {
        let code = video::huffman::HuffmanCode::from_frequencies(&freqs).unwrap();
        let mut rng = signal::rng::Xoroshiro128::new(msg_seed);
        let msg: Vec<u16> = (0..200).map(|_| rng.below(freqs.len() as u64) as u16).collect();
        let mut w = signal::bits::BitWriter::new();
        for &s in &msg {
            code.encode(&mut w, s).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = signal::bits::BitReader::new(&bytes);
        for &s in &msg {
            prop_assert_eq!(code.decode(&mut r).unwrap(), s);
        }
    }

    /// XTEA-CTR is an involution for any key, nonce, and payload.
    #[test]
    fn cipher_involution(key in prop::array::uniform16(0u8..), nonce in 0u32.., data in prop::collection::vec(any::<u8>(), 0..500)) {
        let ctr = drm::cipher::XteaCtr::new(&key, nonce);
        prop_assert_eq!(ctr.applied(&ctr.applied(&data)), data);
    }

    /// Sealed licenses round-trip and any single-byte corruption is caught.
    #[test]
    fn license_seal_detects_corruption(title in 0u64.., plays in 1u32..100, flip in 0usize..100) {
        let license = drm::license::License {
            title: drm::license::TitleId(title),
            rights: vec![drm::license::Right::PlayCount(plays)],
            content_key: [7u8; 16],
        };
        let sealed = license.seal(b"prop-secret");
        prop_assert_eq!(drm::license::License::unseal(&sealed, b"prop-secret").unwrap(), license);
        let mut bad = sealed.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 0x01;
        prop_assert!(drm::license::License::unseal(&bad, b"prop-secret").is_err());
    }

    /// IP fragmentation reassembles to the original payload for any MTU.
    #[test]
    fn packet_fragmentation_round_trip(payload in prop::collection::vec(any::<u8>(), 1..3000), mtu in 21usize..600) {
        let p = netstack::packet::Packet {
            src: netstack::packet::Addr(1),
            dst: netstack::packet::Addr(2),
            protocol: netstack::packet::Protocol::Udp,
            id: 5,
            frag_offset: 0,
            more_fragments: false,
            payload: payload.clone(),
        };
        let mut r = netstack::packet::Reassembler::new();
        let mut done = None;
        for frag in p.fragment(mtu) {
            // Wire round-trip of each fragment too.
            let decoded = netstack::packet::Packet::decode(&frag.encode()).unwrap();
            if let Some(d) = r.push(decoded) {
                done = Some(d);
            }
        }
        prop_assert_eq!(done.unwrap().payload, payload);
    }

    /// Files of any size read back exactly under both allocation
    /// policies.
    #[test]
    fn filesystem_read_back(data in prop::collection::vec(any::<u8>(), 0..5000), scatter in any::<bool>()) {
        let policy = if scatter {
            mediafs::fs::AllocPolicy::Scatter(9)
        } else {
            mediafs::fs::AllocPolicy::FirstFit
        };
        let mut fs = mediafs::fs::MediaFs::new(256, 64, policy);
        fs.create("/f", &data).unwrap();
        prop_assert_eq!(fs.read("/f").unwrap(), data);
    }

    /// The 2-D DCT round-trips any block within numerical tolerance, and
    /// preserves energy (orthonormality).
    #[test]
    fn dct_round_trip_and_energy(block in prop::collection::vec(-255.0f64..255.0, 64)) {
        let dct = video::dct::Dct2d::new();
        let coeffs = dct.forward(&block);
        let back = dct.inverse(&coeffs);
        for (a, b) in block.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        let e_in: f64 = block.iter().map(|v| v * v).sum();
        let e_out: f64 = coeffs.iter().map(|v| v * v).sum();
        prop_assert!((e_in - e_out).abs() < 1e-6 * e_in.max(1.0));
    }

    /// The 5/3 wavelet is exactly invertible on any even-length signal.
    #[test]
    fn wavelet_exact_inverse(x in prop::collection::vec(-1000i32..1000, 2..200)) {
        let x = if x.len() % 2 == 0 { x } else { x[..x.len() - 1].to_vec() };
        let t = video::wavelet::forward_1d(&x);
        prop_assert_eq!(video::wavelet::inverse_1d(&t), x);
    }

    /// TCP-lite delivers any payload exactly at any loss rate below 0.4.
    #[test]
    fn tcplite_reliable(len in 1usize..5000, loss in 0.0f64..0.4, seed in 0u64..50) {
        let data: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
        let report = netstack::tcplite::transfer(
            &data,
            netstack::tcplite::TcpConfig::default(),
            netstack::link::LinkConfig::default().with_loss(loss),
            seed,
        ).unwrap();
        prop_assert_eq!(report.data, data);
    }

    /// Audio subband quantization error is bounded by the step size for
    /// any sample within the scalefactor range.
    #[test]
    fn audio_quantizer_bounded(x in -1.0f64..1.0, bits in 1u8..=15) {
        let sf = 1.0;
        let step = 2.0 * sf / ((1u32 << bits) - 1) as f64;
        let y = audio::quantizer::dequantize(audio::quantizer::quantize(x, sf, bits), sf, bits);
        prop_assert!((x - y).abs() <= step / 2.0 + 1e-12);
    }

    /// The fast fixed-8 butterfly DCT matches the matrix `Dct1d` oracle
    /// within 1e-9 on arbitrary inputs, forward and inverse, and
    /// round-trips to identity.
    #[test]
    fn dct8_butterfly_matches_matrix_oracle(x in prop::array::uniform8(-255.0f64..255.0)) {
        let oracle = signal::dct1d::Dct1d::new(8);
        let fast = signal::dct8::fdct8(&x);
        let slow = oracle.forward(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-9, "forward {a} vs {b}");
        }
        let fast_inv = signal::dct8::idct8(&x);
        let slow_inv = oracle.inverse(&x);
        for (a, b) in fast_inv.iter().zip(&slow_inv) {
            prop_assert!((a - b).abs() < 1e-9, "inverse {a} vs {b}");
        }
        let back = signal::dct8::idct8(&signal::dct8::fdct8(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9, "round trip {a} vs {b}");
        }
    }

    /// `sad_u8_bounded` with `cutoff = u64::MAX` equals `sad_u8` for any
    /// window size and strides, and any finite cutoff either returns the
    /// exact SAD (when it is <= cutoff) or a partial sum above the
    /// cutoff.
    #[test]
    fn bounded_sad_equals_plain_sad(
        w in 1usize..=16,
        h in 1usize..=16,
        extra_a in 0usize..8,
        extra_b in 0usize..8,
        seed in any::<u64>(),
        cutoff in 0u64..20_000,
    ) {
        let a_stride = w + extra_a;
        let b_stride = w + extra_b;
        let mut rng = signal::rng::Xoroshiro128::new(seed);
        let a: Vec<u8> = (0..(h - 1) * a_stride + w).map(|_| rng.below(256) as u8).collect();
        let b: Vec<u8> = (0..(h - 1) * b_stride + w).map(|_| rng.below(256) as u8).collect();
        // Reference: gather both windows contiguously, then plain SAD.
        let ac: Vec<u8> = (0..h).flat_map(|r| a[r * a_stride..r * a_stride + w].to_vec()).collect();
        let bc: Vec<u8> = (0..h).flat_map(|r| b[r * b_stride..r * b_stride + w].to_vec()).collect();
        let expect = signal::metrics::sad_u8(&ac, &bc);
        prop_assert_eq!(signal::metrics::sad_u8_strided(&a, a_stride, &b, b_stride, w, h), expect);
        prop_assert_eq!(
            signal::metrics::sad_u8_bounded(&a, a_stride, &b, b_stride, w, h, u64::MAX),
            expect
        );
        let bounded = signal::metrics::sad_u8_bounded(&a, a_stride, &b, b_stride, w, h, cutoff);
        if expect <= cutoff {
            prop_assert_eq!(bounded, expect, "exact at or below cutoff");
        } else {
            prop_assert!(bounded > cutoff, "abandoned candidates report > cutoff");
        }
    }

    /// Transport mux -> demux round-trips arbitrary payloads
    /// bit-identically on a lossless link: every unit on every PID comes
    /// back exactly, with no loss indicators raised.
    #[test]
    fn ts_mux_demux_round_trip(
        video_unit in prop::collection::vec(any::<u8>(), 1..4000),
        audio_len in 0usize..1200,
        audio_seed in any::<u64>(),
    ) {
        // audio_len 0 doubles as "no audio track".
        let audio_unit: Vec<u8> = {
            let mut rng = signal::rng::Xoroshiro128::new(audio_seed);
            (0..audio_len).map(|_| rng.below(256) as u8).collect()
        };
        let mut mux = mmstream::TsMux::new();
        let mut packets = mux.packetize(mmstream::ts::VIDEO_PID, &video_unit);
        if !audio_unit.is_empty() {
            packets.extend(mux.packetize(mmstream::ts::AUDIO_PID, &audio_unit));
        }
        let report = mmstream::ts::demux_wire(&mmstream::ts::to_wire(&packets));
        prop_assert!(!report.loss_detected());
        prop_assert_eq!(report.continuity_gaps, 0);
        prop_assert_eq!(report.units_on(mmstream::ts::VIDEO_PID), &[video_unit]);
        if audio_unit.is_empty() {
            prop_assert!(report.units_on(mmstream::ts::AUDIO_PID).is_empty());
        } else {
            prop_assert_eq!(report.units_on(mmstream::ts::AUDIO_PID), &[audio_unit]);
        }
    }

    /// Continuity/loss detection fires iff packets were dropped: intact
    /// streams report nothing, and removing any one packet raises a
    /// continuity gap, a damaged unit, or a stray-continuation count
    /// (when the dropped packet was the unit's PUSI packet).
    #[test]
    fn ts_gap_detection_iff_dropped(
        unit in prop::collection::vec(any::<u8>(), 400..4000),
        drop_sel in any::<u64>(),
    ) {
        let mut mux = mmstream::TsMux::new();
        let mut packets = mux.packetize(mmstream::ts::VIDEO_PID, &unit);
        prop_assert!(packets.len() >= 2, "payload floor guarantees >= 2 packets");
        // Low bit: whether to drop at all; remaining bits: which packet.
        let dropped = drop_sel & 1 == 1;
        if dropped {
            let idx = (drop_sel >> 1) as usize % packets.len();
            packets.remove(idx);
        }
        let report = mmstream::ts::demux_wire(&mmstream::ts::to_wire(&packets));
        let noticed = report.loss_detected() || report.stray_packets > 0;
        prop_assert_eq!(noticed, dropped, "loss indicators must track actual drops");
        if dropped {
            prop_assert!(report.units_on(mmstream::ts::VIDEO_PID).is_empty(),
                "a unit missing a packet must not be delivered");
        } else {
            prop_assert_eq!(report.units_on(mmstream::ts::VIDEO_PID), &[unit]);
        }
    }

    /// A continuity gap is reported **iff** a payload packet was
    /// dropped: arbitrary initial continuity counters and stuffing-only
    /// packets — inserted anywhere, dropped anywhere — never raise loss
    /// indicators on their own.
    #[test]
    fn ts_stuffing_and_initial_cc_never_fake_a_gap(
        unit in prop::collection::vec(any::<u8>(), 400..3000),
        initial_cc in 0u8..16,
        stuffing_sel in any::<u64>(),
        drop_sel in any::<u64>(),
    ) {
        let mut mux = mmstream::TsMux::new();
        mux.set_continuity(mmstream::ts::VIDEO_PID, initial_cc);
        let payload_packets = mux.packetize(mmstream::ts::VIDEO_PID, &unit);
        // Interleave stuffing after payload packets selected by bitmask,
        // then optionally drop ONE packet (payload or stuffing).
        let mut packets = Vec::new();
        for (i, p) in payload_packets.iter().enumerate() {
            packets.push(*p);
            if stuffing_sel >> (i % 64) & 1 == 1 {
                packets.push(mux.stuffing_packet());
            }
        }
        let dropped_idx = (drop_sel & 1 == 1).then_some((drop_sel >> 1) as usize % packets.len());
        let dropped_payload = dropped_idx
            .is_some_and(|i| packets[i].pid() == mmstream::ts::VIDEO_PID);
        if let Some(i) = dropped_idx {
            packets.remove(i);
        }
        let report = mmstream::ts::demux_wire(&mmstream::ts::to_wire(&packets));
        let noticed = report.loss_detected() || report.stray_packets > 0;
        prop_assert_eq!(
            noticed, dropped_payload,
            "gap iff a payload packet was dropped (initial cc {}, dropped {:?})",
            initial_cc, dropped_idx
        );
        if dropped_payload {
            prop_assert!(report.units_on(mmstream::ts::VIDEO_PID).is_empty());
        } else {
            prop_assert_eq!(report.units_on(mmstream::ts::VIDEO_PID), &[unit]);
        }
    }

    /// Manifest parsing never panics on mutated bytes: any truncation or
    /// byte flip of a valid manifest either parses or errors cleanly,
    /// and whatever parses re-serialises to a fixed point.
    #[test]
    fn manifest_mutations_never_panic(
        n_rungs in 1usize..4,
        n_segs in 1usize..5,
        tpf in 1u64..1000,
        cut in 0usize..400,
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        let rungs = (0..n_rungs)
            .map(|r| mmstream::ladder::RungInfo {
                target_bits_per_frame: 1000.0 * (r + 1) as f64,
                segments: (0..n_segs)
                    .map(|s| mmstream::ladder::SegmentEntry {
                        name: format!("r{r}_s{s}.ts"),
                        bytes: 100 + r * 37 + s,
                        frames: 4,
                        nonce: ((r as u32) << 16) | s as u32,
                    })
                    .collect(),
            })
            .collect();
        let manifest = mmstream::Manifest {
            title: "prop".to_string(),
            ticks_per_frame: tpf,
            sealed: false,
            live: None,
            rungs,
        };
        let bytes = manifest.to_bytes();
        prop_assert_eq!(&mmstream::Manifest::from_bytes(&bytes).unwrap(), &manifest);
        // Truncation at an arbitrary point: must not panic.
        let cut = cut.min(bytes.len());
        let _ = mmstream::Manifest::from_bytes(&bytes[..cut]);
        // Single-byte corruption: must not panic; a successful parse
        // must re-serialise to a fixed point (parse . to_bytes . parse
        // is identity).
        let mut mutated = bytes.clone();
        let idx = flip_at % mutated.len();
        mutated[idx] ^= flip_bits;
        if let Ok(parsed) = mmstream::Manifest::from_bytes(&mutated) {
            let re = parsed.to_bytes();
            prop_assert_eq!(mmstream::Manifest::from_bytes(&re).unwrap(), parsed);
        }
    }

    /// The edge LRU never exceeds its byte budget, never loses track of
    /// held bytes, and evicts strictly least-recently-used keys.
    #[test]
    fn edge_lru_respects_budget_and_recency(
        capacity in 1usize..2000,
        ops in prop::collection::vec((0u32..64, 1usize..600, any::<bool>()), 1..80),
    ) {
        let mut lru = mmstream::Lru::new(capacity);
        let mut live: std::collections::BTreeSet<u32> = Default::default();
        for (key, bytes, touch) in ops {
            if touch {
                prop_assert_eq!(lru.touch(&key), live.contains(&key));
            } else if bytes <= capacity {
                for victim in lru.insert(key, bytes) {
                    prop_assert!(victim != key, "the inserted key must survive");
                    live.remove(&victim);
                }
                live.insert(key);
            } else {
                // Oversized: not admitted, and any stale entry under
                // the same key is dropped rather than left behind.
                let evicted = lru.insert(key, bytes);
                prop_assert!(evicted.iter().all(|v| *v == key));
                live.remove(&key);
                prop_assert!(!lru.contains(&key));
            }
            prop_assert!(lru.held_bytes() <= capacity,
                "budget violated: {} > {}", lru.held_bytes(), capacity);
            prop_assert_eq!(lru.len(), live.len());
        }
    }

    /// Live manifest refresh is monotone for any wheel shape, DVR depth,
    /// publish pace, and advance schedule: successive `LiveOrigin`
    /// manifests have non-decreasing `live_seq` and generation, a window
    /// never wider than the DVR depth, every listed segment is fetchable
    /// from the origin server at its advertised size, and every manifest
    /// parse→serialise round-trips.
    #[test]
    fn live_manifest_refresh_is_monotone_and_fetchable(
        n_rungs in 1usize..3,
        wheel_len in 1usize..5,
        dvr in 1u64..6,
        tps in 1u64..200,
        advances in prop::collection::vec(0u64..2000, 1..12),
    ) {
        // A hand-built wheel (no encoder in the loop): entry sizes vary
        // per (rung, segment) so fetch-size checks are meaningful.
        let rungs: Vec<mmstream::ladder::RungInfo> = (0..n_rungs)
            .map(|r| mmstream::ladder::RungInfo {
                target_bits_per_frame: 1000.0 * (r + 1) as f64,
                segments: (0..wheel_len)
                    .map(|s| mmstream::ladder::SegmentEntry {
                        name: format!("r{r}_s{s}.ts"),
                        bytes: 50 + r * 37 + s * 11,
                        frames: 4,
                        nonce: ((r as u32) << 16) | s as u32,
                    })
                    .collect(),
            })
            .collect();
        let segments: Vec<Vec<Vec<u8>>> = rungs
            .iter()
            .map(|r| r.segments.iter().map(|s| vec![0xA5u8; s.bytes]).collect())
            .collect();
        let wheel = mmstream::Ladder {
            manifest: mmstream::Manifest {
                title: "prop".to_string(),
                ticks_per_frame: 10,
                sealed: false,
                live: None,
                rungs,
            },
            segments,
            rung_costs: vec![mmstream::RungCost::default(); n_rungs],
        };
        let mut origin = mmstream::LiveOrigin::new(
            wheel,
            mmstream::LiveOriginConfig { dvr_window_segments: dvr, ticks_per_segment: tps },
        )
        .unwrap();
        let mut server = netstack::fetch::ContentServer::new();
        let mut now = 0u64;
        let mut prev: Option<mmstream::LiveWindow> = None;
        for step in advances {
            now += step;
            origin.advance_to(&mut server, now);
            let manifest = origin.manifest().expect("advanced origins have a window");
            let w = manifest.live.expect("live manifests carry a window");
            if let Some(p) = prev {
                prop_assert!(w.live_seq >= p.live_seq, "live edge rewound");
                prop_assert!(w.first_seq >= p.first_seq, "window start rewound");
                prop_assert!(w.generation >= p.generation, "version rewound");
            }
            prop_assert!(w.len() <= dvr, "window {} wider than DVR {}", w.len(), dvr);
            prop_assert_eq!(w.live_seq, now / tps, "publish clock drifted");
            // Every listed segment fetchable at its advertised size.
            for (ri, rung) in manifest.rungs.iter().enumerate() {
                for (i, entry) in rung.segments.iter().enumerate() {
                    let obj = server
                        .get(&manifest.segment_object(ri, i))
                        .expect("listed implies published");
                    prop_assert_eq!(obj.len(), entry.bytes);
                }
            }
            // The published manifest object matches, and round-trips.
            let published = mmstream::Manifest::from_bytes(
                server.get("prop/manifest").expect("manifest published"),
            )
            .unwrap();
            prop_assert_eq!(&published, &manifest);
            prop_assert_eq!(
                &mmstream::Manifest::from_bytes(&manifest.to_bytes()).unwrap(),
                &manifest
            );
            prev = Some(w);
        }
    }

    /// Request coalescing under concurrent misses: for any interleaving
    /// of requests, failures, and completions across keys and
    /// generations, exactly one fill is started per in-flight period of
    /// each `(key, generation)` — a waiter can never start a second
    /// origin round trip, and only a failure (or completion) re-arms the
    /// slot so a retry starts exactly one fresh fill.
    #[test]
    fn fill_table_starts_exactly_one_fill_per_generation(
        ops in prop::collection::vec((0u8..6, 0u64..3, 0u8..8), 1..120),
    ) {
        let mut fills: mmstream::FillTable<u8, ()> = mmstream::FillTable::new();
        let mut inflight = std::collections::BTreeSet::new();
        let (mut started, mut joined, mut failed) = (0u64, 0u64, 0u64);
        for (key, generation, op) in ops {
            match op {
                // Most ops are requests (waiter bursts); the rest
                // resolve the fill one way or the other.
                0..=4 => {
                    let fresh = fills.request(key, generation, || ());
                    prop_assert_eq!(
                        fresh,
                        !inflight.contains(&(key, generation)),
                        "a fill must start iff none is in flight"
                    );
                    if fresh {
                        started += 1;
                        inflight.insert((key, generation));
                    } else {
                        joined += 1;
                    }
                }
                5 => {
                    let had = fills.fail(&key, generation).is_some();
                    prop_assert_eq!(had, inflight.remove(&(key, generation)));
                    if had {
                        failed += 1;
                    }
                }
                _ => {
                    let had = fills.complete(&key, generation).is_some();
                    prop_assert_eq!(had, inflight.remove(&(key, generation)));
                }
            }
            prop_assert_eq!(fills.len(), inflight.len());
            prop_assert_eq!(
                (fills.started(), fills.joined(), fills.failed()),
                (started, joined, failed)
            );
        }
        // After a failure, a retry starts exactly one fresh fill.
        fills.fail(&0, 0);
        let before = fills.started();
        prop_assert!(fills.request(0, 0, || ()) || inflight.contains(&(0, 0)));
        prop_assert!(fills.started() <= before + 1);
    }

    /// The capacity knee is a max over a filtered set: permuting the
    /// curve (the order load levels were measured in) never changes it.
    #[test]
    fn edge_capacity_knee_is_permutation_invariant(
        levels in prop::collection::vec((1usize..10_000, 0.0f64..0.2), 1..12),
        rotate in 0usize..12,
    ) {
        let curve: Vec<mmstream::EdgeLoadReport> = levels
            .iter()
            .map(|&(sessions, rebuffer_fraction)| mmstream::EdgeLoadReport {
                load: mmstream::LoadReport {
                    sessions,
                    completed: sessions,
                    ticks: 1,
                    total_goodput_bits_per_tick: 0.0,
                    mean_session_bits_per_tick: 0.0,
                    mean_startup_ticks: 0.0,
                    rebuffer_sessions: (sessions as f64 * rebuffer_fraction) as usize,
                    rebuffer_fraction,
                    mean_rung: 0.0,
                    rung_switches: 0,
                    departed: 0,
                },
                per_edge: Vec::new(),
                tier: mmstream::EdgeStats::default(),
                hit_rate: 0.0,
                origin_offload: 0.0,
            })
            .collect();
        let knee = mmstream::edge_capacity_knee(&curve, 0.05);
        let mut permuted = curve.clone();
        permuted.reverse();
        prop_assert_eq!(mmstream::edge_capacity_knee(&permuted, 0.05), knee);
        let n = permuted.len().max(1);
        permuted.rotate_left(rotate % n);
        prop_assert_eq!(mmstream::edge_capacity_knee(&permuted, 0.05), knee);
    }

    /// The bisecting knee search is invariant under permutation and
    /// duplication of the candidate count list, and its verdict is
    /// self-consistent: a returned knee really sustains the stall
    /// tolerance when simulated directly, and `None` means even the
    /// smallest candidate level stalls.
    #[test]
    fn knee_bisect_is_order_invariant_and_self_consistent(
        picks in prop::collection::vec(0usize..5, 1..8),
        rotate in 0usize..8,
        capacity in 400.0f64..2500.0,
    ) {
        let levels = [10usize, 25, 50, 100, 200];
        let mut counts: Vec<usize> = picks.iter().map(|&i| levels[i]).collect();
        let frames = video::synth::SequenceGen::new(9).panning_sequence(48, 32, 8, 1, 0);
        let cfg = mmstream::LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0],
            gop: 4,
            ..Default::default()
        };
        let manifest = mmstream::encode_ladder("prop", &frames, &cfg).unwrap().manifest;
        let server = mmstream::ServerConfig {
            capacity_bytes_per_tick: capacity,
            ..Default::default()
        };
        let base = mmstream::LoadConfig {
            stagger_ticks: 200,
            ..Default::default()
        };
        let knee = mmstream::capacity_knee_bisect(&manifest, &server, &counts, &base, 0.05);
        // Messy input (duplicates, arbitrary order) gives the same
        // answer as the clean sorted set of distinct levels.
        let n = counts.len();
        counts.rotate_left(rotate % n);
        prop_assert_eq!(
            mmstream::capacity_knee_bisect(&manifest, &server, &counts, &base, 0.05),
            knee
        );
        counts.sort_unstable();
        counts.dedup();
        prop_assert_eq!(
            mmstream::capacity_knee_bisect(&manifest, &server, &counts, &base, 0.05),
            knee
        );
        // The verdict holds up when the named level is simulated directly.
        let stalls = |sessions: usize| {
            mmstream::simulate_load(&manifest, &server, &mmstream::LoadConfig { sessions, ..base })
                .rebuffer_fraction
                > 0.05
        };
        match knee {
            Some(k) => {
                prop_assert!(counts.contains(&k), "knee must be a candidate level");
                prop_assert!(!stalls(k), "a returned knee must sustain the tolerance");
            }
            None => prop_assert!(
                stalls(counts[0]),
                "no knee means even the smallest level stalls"
            ),
        }
    }

    /// An empty `FaultPlan` runs the fault-free edge engine
    /// bit-identically: the whole edge report (load, per-edge
    /// counters, hit rates) is equal, the live stats are equal, and
    /// the resilience ledger is all zero. The chaos layer must cost
    /// exactly nothing when no fault is scheduled.
    #[test]
    fn empty_fault_plan_is_bit_identical_to_plan_free(
        sessions in 1usize..400,
        edges in 1usize..5,
        plan_seed in any::<u64>(),
        load_seed in 0u64..1000,
    ) {
        let frames = video::synth::SequenceGen::new(9).panning_sequence(48, 32, 8, 1, 0);
        let cfg = mmstream::LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0],
            gop: 4,
            ..Default::default()
        };
        let manifest = mmstream::encode_ladder("prop", &frames, &cfg).unwrap().manifest;
        let tier = mmstream::EdgeTierConfig {
            edges,
            ..Default::default()
        };
        let load = mmstream::LoadConfig {
            sessions,
            seed: load_seed,
            ..Default::default()
        };
        let faulted = mmstream::simulate_edge_load_faulted(
            &manifest,
            &tier,
            &mmstream::FaultPlan::new(plan_seed),
            &load,
        );
        let plain = mmstream::simulate_edge_load(&manifest, &tier, &load);
        prop_assert_eq!(&faulted.edge, &plain);
        prop_assert_eq!(faulted.live, mmstream::LiveStats::default());
        prop_assert_eq!(faulted.resilience, mmstream::ResilienceStats::default());
    }

    /// The consistent-hash failover ring moves only the crashed edge's
    /// keys: with every edge up, `route_alive` equals `route` on every
    /// key; with one edge down, every key homed elsewhere keeps its
    /// owner (the ≤ 1/N remap guarantee), and the crashed edge's keys
    /// land on a survivor.
    #[test]
    fn hash_ring_failover_moves_only_the_crashed_edges_keys(
        edges in 2usize..10,
        crashed_sel in any::<usize>(),
        ring_seed in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let ring = mmstream::HashRing::new(edges, 64, ring_seed);
        let up = vec![true; edges];
        for &k in &keys {
            prop_assert_eq!(ring.route_alive(k, &up), Some(ring.route(k)));
        }
        let crashed = crashed_sel % edges;
        let mut up = up;
        up[crashed] = false;
        for &k in &keys {
            let home = ring.route(k);
            let rerouted = ring.route_alive(k, &up).unwrap();
            if home == crashed {
                prop_assert!(rerouted != crashed, "keys must leave the dead edge");
            } else {
                prop_assert_eq!(rerouted, home, "only the crashed edge's keys may move");
            }
        }
    }

    /// The flat CDN topology is the edge engine bit-identically: a
    /// single-title catalog with zero shields and admit-always must
    /// produce exactly `simulate_edge_load`'s report — the shield tier,
    /// catalog sampler, and admission filter together cost nothing when
    /// switched off.
    #[test]
    fn cdn_flat_topology_is_bit_identical_to_edge_engine(
        sessions in 1usize..400,
        edges in 1usize..5,
        load_seed in 0u64..1000,
        stagger in 0u64..80,
    ) {
        let frames = video::synth::SequenceGen::new(9).panning_sequence(48, 32, 8, 1, 0);
        let cfg = mmstream::LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 6_000.0],
            gop: 4,
            ..Default::default()
        };
        let manifest = mmstream::encode_ladder("prop", &frames, &cfg).unwrap().manifest;
        let tier = mmstream::EdgeTierConfig {
            edges,
            ..Default::default()
        };
        let load = mmstream::LoadConfig {
            sessions,
            seed: load_seed,
            stagger_ticks: stagger,
            ..Default::default()
        };
        let cdn = mmstream::CdnConfig {
            tier,
            shields: 0,
            ..Default::default()
        };
        let flat = mmstream::simulate_cdn_load(&mmstream::Catalog::single(manifest.clone()), &cdn, &load);
        let plain = mmstream::simulate_edge_load(&manifest, &tier, &load);
        prop_assert_eq!(&flat.edge, &plain);
        prop_assert!(flat.per_shield.is_empty());
        prop_assert_eq!(flat.live, mmstream::LiveStats::default());
        prop_assert_eq!(flat.resilience, mmstream::ResilienceStats::default());
        // With no shields the rollup's origin is the edges' parent:
        // the two offload figures must agree exactly.
        prop_assert_eq!(flat.origin_offload, plain.origin_offload);
    }

    /// Failing a ring member over and then restoring it is a perfect
    /// inverse: after the restart every key routes exactly where it did
    /// before the crash, so a heal rebalances back without any residual
    /// remap (no key stays on its failover owner).
    #[test]
    fn hash_ring_restart_rebalance_is_inverse_of_failover(
        edges in 2usize..10,
        crashed_sel in any::<usize>(),
        ring_seed in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let ring = mmstream::HashRing::new(edges, 64, ring_seed);
        let crashed = crashed_sel % edges;
        let before: Vec<usize> = keys.iter().map(|&k| ring.route(k)).collect();
        let mut up = vec![true; edges];
        up[crashed] = false;
        let failed_over: Vec<usize> =
            keys.iter().map(|&k| ring.route_alive(k, &up).unwrap()).collect();
        up[crashed] = true;
        for ((&k, &home), &via) in keys.iter().zip(&before).zip(&failed_over) {
            let healed = ring.route_alive(k, &up).unwrap();
            prop_assert_eq!(healed, home, "restart must restore the pre-crash owner");
            if home != crashed {
                prop_assert_eq!(via, home, "bystander keys never moved at all");
            }
        }
    }

    /// The count-min sketch never under-estimates: for any key/repeat
    /// pattern (no aging in the window), every key's estimate is at
    /// least its true recorded count, saturated at the 4-bit ceiling.
    #[test]
    fn freq_sketch_estimate_is_an_upper_bound(
        keys in prop::collection::vec(any::<u64>(), 1..60),
        reps in prop::collection::vec(1u64..12, 1..60),
        sketch_seed in any::<u64>(),
    ) {
        let mut sketch = mmstream::FreqSketch::new(1 << 10, 4, u64::MAX, sketch_seed);
        let mut truth: std::collections::BTreeMap<u64, u64> = Default::default();
        for (&k, &n) in keys.iter().zip(reps.iter().cycle()) {
            sketch.record_n(k, n);
            *truth.entry(k).or_insert(0) += n;
        }
        for (&k, &count) in &truth {
            let est = u64::from(sketch.estimate(k));
            prop_assert!(
                est >= count.min(15),
                "estimate {} under-counts key {:#x} (true {})",
                est, k, count
            );
        }
    }

    /// Borrowed `BlockView` gathers (interior and edge-clamped) agree
    /// with the allocating `block_at` everywhere, so the zero-copy motion
    /// search sees exactly the same candidate pixels.
    #[test]
    fn block_view_matches_block_at(
        pw in 1usize..24,
        ph in 1usize..24,
        x in -20i32..40,
        y in -20i32..40,
        bs in 1usize..=16,
        seed in any::<u64>(),
    ) {
        let mut rng = signal::rng::Xoroshiro128::new(seed);
        let data: Vec<u8> = (0..pw * ph).map(|_| rng.below(256) as u8).collect();
        let plane = video::plane::Plane8::new(pw, ph, data);
        let mut got = vec![0u8; bs * bs];
        plane.block_into(x, y, bs, &mut got);
        prop_assert_eq!(got, plane.block_at(x, y, bs));
    }

    /// The parallel head-end is deterministic: for ANY worker count and
    /// ANY completion interleaving (a seeded busy-delay per shard
    /// scrambles which rung or curve point finishes first), the pooled
    /// ladder encode and the pooled capacity curve merge bit-identical
    /// to their sequential drivers.
    #[test]
    fn pooled_headend_merge_is_deterministic(workers in 1usize..9, seed in any::<u64>()) {
        let frames = video::synth::SequenceGen::new(41).panning_sequence(48, 32, 8, 1, 1);
        let cfg = mmstream::ladder::LadderConfig {
            targets_bits_per_frame: vec![2_000.0, 9_000.0],
            gop: 4,
            ..Default::default()
        };
        let sequential = mmstream::encode_ladder("prop", &frames, &cfg).unwrap();
        let pool = mmpool::WorkerPool::new(workers);

        // Scrambled per-rung work units reassemble the exact ladder.
        let rungs: Vec<usize> = (0..cfg.targets_bits_per_frame.len()).collect();
        let builds = pool.map(&rungs, |&ri| {
            let spins = (seed ^ (ri as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 30_000;
            let mut acc = seed;
            for k in 0..spins {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            mmstream::encode_rung(&frames, &cfg, ri).unwrap()
        });
        for (ri, build) in builds.iter().enumerate() {
            prop_assert_eq!(&build.rung, &sequential.manifest.rungs[ri]);
            prop_assert_eq!(&build.wires, &sequential.segments[ri]);
            prop_assert_eq!(build.cost, sequential.rung_costs[ri]);
        }
        // And the undelayed pooled driver agrees wholesale.
        let pooled = mmstream::encode_ladder_on(&pool, "prop", &frames, &cfg).unwrap();
        prop_assert_eq!(&pooled, &sequential);

        // The pooled capacity curve equals the sequential scan.
        let server = mmstream::ServerConfig::default();
        let base = mmstream::LoadConfig::default();
        let counts = [40usize, 80];
        prop_assert_eq!(
            mmstream::capacity_curve_on(&pool, &sequential.manifest, &server, &counts, &base),
            mmstream::capacity_curve(&sequential.manifest, &server, &counts, &base)
        );
    }

    /// TCP-lite delivers the payload **exactly** or fails with a typed
    /// error — never silently corrupts — for arbitrary configurations:
    /// any MSS, any congestion controller (fixed, AIMD, CUBIC), i.i.d.
    /// or Gilbert–Elliott loss, any latency, bounded or unbounded
    /// transmitter queues.
    #[test]
    fn tcplite_arbitrary_config_is_exact_or_a_typed_error(
        len in 1usize..1500,
        mss in 1usize..600,
        mode in 0u8..3,
        window in 1usize..64,
        latency in 0u64..30,
        queue_raw in 0usize..5000,
        bursty in any::<bool>(),
        loss in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(37) >> 3) as u8).collect();
        let cc = match mode {
            0 => netstack::CongestionControl::Fixed(window),
            1 => netstack::CongestionControl::Aimd { max_window: 256 },
            _ => netstack::CongestionControl::Cubic { max_window: 256 },
        };
        let tcp = netstack::TcpConfig {
            mss,
            cc,
            deadline_ticks: 150_000,
            ..Default::default()
        };
        let model = if bursty {
            netstack::LossModel::GilbertElliott {
                p_enter_bad: loss * 0.1,
                p_exit_bad: 0.1,
                loss_good: 0.0,
                loss_bad: 0.8,
            }
        } else {
            netstack::LossModel::Iid
        };
        let mut link = netstack::LinkConfig {
            latency_ticks: latency,
            ..Default::default()
        }
        .with_loss(loss)
        .with_loss_model(model);
        // Draws below 600 mean "unbounded queue".
        if queue_raw >= 600 {
            link = link.with_queue_bytes(queue_raw);
        }
        match netstack::tcplite::transfer(&data, tcp, link, seed) {
            Ok(report) => prop_assert_eq!(report.data, data, "delivered bytes must be exact"),
            Err(e) => prop_assert!(
                matches!(
                    e,
                    netstack::TcpError::Timeout | netstack::TcpError::ConnectionTimedOut
                ),
                "non-empty input may only fail by timing out, got {:?}",
                e
            ),
        }
    }

    /// The Gilbert–Elliott channel's empirical loss rate converges to
    /// its stationary prediction
    /// `p_bad * loss_bad + (1 - p_bad) * loss_good` with
    /// `p_bad = p_enter / (p_enter + p_exit)`, for arbitrary chain
    /// parameters.
    #[test]
    fn gilbert_elliott_loss_matches_the_stationary_rate(
        p_enter in 0.01f64..0.03,
        p_exit in 0.1f64..0.3,
        loss_good in 0.0f64..0.1,
        loss_bad in 0.5f64..1.0,
        seed in any::<u64>(),
    ) {
        let model = netstack::LossModel::GilbertElliott {
            p_enter_bad: p_enter,
            p_exit_bad: p_exit,
            loss_good,
            loss_bad,
        };
        let mut link = netstack::Link::new(
            netstack::LinkConfig::default().with_loss_model(model),
            seed,
        );
        let frames = 50_000u64;
        for i in 0..frames {
            link.send(vec![0], i);
            // Keep the in-flight queue from accumulating 50k frames.
            if i % 1024 == 0 {
                link.deliver(i);
            }
        }
        let empirical = link.dropped() as f64 / link.sent() as f64;
        let p_bad = p_enter / (p_enter + p_exit);
        let stationary = p_bad * loss_bad + (1.0 - p_bad) * loss_good;
        prop_assert!(
            (empirical - stationary).abs() < 0.05,
            "empirical {} vs stationary {}",
            empirical,
            stationary
        );
    }

    /// A traced link obeys its schedule *exactly*: every offered frame's
    /// transmit-complete tick equals the hand-computed prediction from
    /// the phase in effect at offer time (rate sampled at transmit
    /// start, backlog carried across phases), and every frame arrives
    /// precisely one propagation delay later.
    #[test]
    fn link_trace_schedule_is_obeyed_exactly(
        phase_picks in prop::collection::vec((10u64..200, 0usize..4), 1..5),
        repeat in any::<bool>(),
        trace_offset in 0u64..500,
        sends in prop::collection::vec((0u64..300, 1usize..40), 1..30),
        latency in 0u64..20,
    ) {
        // Rates from an exactly-representable set so ceil() predictions
        // cannot drift.
        let rates = [0.0f64, 0.25, 1.0, 4.0];
        let trace = netstack::LinkTrace {
            phases: phase_picks
                .iter()
                .map(|&(ticks, r)| netstack::TracePhase {
                    ticks,
                    ticks_per_byte: rates[r],
                    loss: 0.0,
                })
                .collect(),
            repeat,
        };
        let cfg = netstack::LinkConfig {
            latency_ticks: latency,
            ..Default::default()
        };
        let mut link = netstack::Link::traced(cfg, trace.clone(), trace_offset, 0);
        let mut now = 0u64;
        let mut tx_free = 0u64;
        let mut arrivals = Vec::new();
        for &(gap, len) in &sends {
            now += gap;
            let rate = trace.at(trace_offset + now).unwrap().ticks_per_byte;
            let serialize = (len as f64 * rate).ceil() as u64;
            tx_free = now.max(tx_free) + serialize;
            prop_assert_eq!(
                link.send(vec![0xC3; len], now),
                tx_free,
                "transmit-complete tick must follow the schedule"
            );
            arrivals.push(tx_free + latency);
        }
        prop_assert_eq!(link.next_arrival(), arrivals.iter().min().copied());
        let horizon = *arrivals.iter().max().unwrap();
        let early = if horizon > 0 {
            let drained = link.deliver(horizon - 1).len();
            prop_assert_eq!(
                drained,
                arrivals.iter().filter(|&&a| a < horizon).count(),
                "frames arrive exactly at transmit-complete + latency"
            );
            drained
        } else {
            0
        };
        prop_assert_eq!(link.deliver(horizon).len(), sends.len() - early);
    }
}
