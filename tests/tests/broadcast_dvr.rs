//! Integration: the DVR content-analysis chain over codec round trips.
//!
//! The §5 claim in full: analysis operates on *decoded* broadcast video —
//! so the detectors must still work after the material has been through
//! the lossy codec once (as it has in any real recorder).

use analysis::commercial::CommercialDetector;
use analysis::shots::ShotDetector;
use video::decoder::decode;
use video::encoder::{Encoder, EncoderConfig};
use video::synth::SequenceGen;

#[test]
fn commercial_detection_survives_codec_round_trip() {
    let mut gen = SequenceGen::new(200);
    let (frames, labels) = gen.broadcast(64, 48, 140, 10, 2, 3, false, 1.5);
    // Record: encode then decode (what the DVR actually stores/analyses).
    let encoded = Encoder::new(EncoderConfig {
        gop: 12,
        search: video::me::SearchKind::ThreeStep,
        ..Default::default()
    })
    .expect("config")
    .encode(&frames)
    .expect("encode");
    let decoded = decode(&encoded.bytes).expect("decode");

    let det = CommercialDetector::default();
    let flags = det.skip_flags(&decoded.frames);
    let score = CommercialDetector::score(&flags, &labels);
    assert!(
        score.f1() > 0.9,
        "detection degraded through the codec: {score}"
    );
}

#[test]
fn shot_detection_survives_codec_round_trip() {
    let mut gen = SequenceGen::new(201);
    let (frames, truth) = gen.scene_sequence(64, 48, &[8, 9, 8, 7]);
    let encoded = Encoder::new(EncoderConfig::default())
        .expect("config")
        .encode(&frames)
        .expect("encode");
    let decoded = decode(&encoded.bytes).expect("decode");
    let cuts = ShotDetector::default().detect_cuts(&decoded.frames);
    let score = ShotDetector::score(&cuts, &truth, 1);
    assert!(score.f1() > 0.8, "shot detection degraded: {score}");
}

#[test]
fn skipping_commercials_shrinks_the_stored_recording() {
    let mut gen = SequenceGen::new(202);
    let (frames, _) = gen.broadcast(64, 48, 130, 14, 2, 3, false, 1.0);
    let det = CommercialDetector::default();
    let flags = det.skip_flags(&frames);
    let program: Vec<_> = frames
        .iter()
        .zip(&flags)
        .filter(|(_, s)| !**s)
        .map(|(f, _)| f.clone())
        .collect();
    assert!(!program.is_empty());
    let enc = |fs: &[video::frame::Frame]| {
        Encoder::new(EncoderConfig {
            search: video::me::SearchKind::ThreeStep,
            ..Default::default()
        })
        .expect("config")
        .encode(fs)
        .expect("encode")
        .total_bits()
    };
    let full = enc(&frames);
    let skipped = enc(&program);
    assert!(
        skipped < full,
        "skipping content must shrink the recording: {skipped} vs {full}"
    );
}

#[test]
fn rate_controlled_recording_bounds_frame_sizes() {
    // The DVR's channel buffer (Figure 1's feedback) must keep frames near
    // target even across scene cuts.
    let mut gen = SequenceGen::new(203);
    let (frames, _) = gen.scene_sequence(64, 48, &[10, 10, 10]);
    let target = 15_000.0;
    let encoded = Encoder::new(EncoderConfig {
        rate: Some(video::rate::RateConfig::for_target(target)),
        gop: 10,
        ..Default::default()
    })
    .expect("config")
    .encode(&frames)
    .expect("encode");
    let mean = encoded.mean_bits_per_frame();
    assert!(
        mean < 3.0 * target,
        "rate control failed: mean {mean} vs target {target}"
    );
}
