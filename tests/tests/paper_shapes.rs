//! Paper-shape regression tests: every DESIGN.md §3 expected shape,
//! asserted automatically (small workloads — the exp_* binaries run the
//! full-size versions).
//!
//! If an implementation change breaks one of the paper's qualitative
//! claims, this file fails before EXPERIMENTS.md goes stale.

use mmsoc::{
    audio_encoder_pipeline, video_decoder_pipeline, video_encoder_pipeline, VideoPipelineSpec,
};
use video::encoder::{Encoder, EncoderConfig};
use video::synth::SequenceGen;

fn qcif(frames: usize, seed: u64) -> Vec<video::frame::Frame> {
    SequenceGen::new(seed).panning_sequence(176, 144, frames, 2, 1)
}

/// E1: motion estimation dominates the Figure-1 encoder.
#[test]
fn e1_me_dominates_video_encoder() {
    let p = video_encoder_pipeline(&VideoPipelineSpec::default(), 900);
    let total: u64 = p.stage_ops.iter().map(|(_, v)| v).sum();
    let me = p
        .stage_ops
        .iter()
        .find(|(n, _)| n == "motion-estimator")
        .expect("stage present")
        .1;
    assert!(2 * me > total, "ME {me} not dominant of {total}");
}

/// E2: the mapper + psychoacoustic front end dominates Figure 2.
#[test]
fn e2_front_end_dominates_audio_encoder() {
    let p = audio_encoder_pipeline(901);
    let total: u64 = p.stage_ops.iter().map(|(_, v)| v).sum();
    let front: u64 = p
        .stage_ops
        .iter()
        .filter(|(n, _)| n == "mapper" || n == "psychoacoustic-model")
        .map(|(_, v)| v)
        .sum();
    assert!(2 * front > total);
}

/// E3: broadcast config is far more encoder-heavy than conference config.
#[test]
fn e3_asymmetry_ratio() {
    let frames = qcif(8, 902);
    let ratio = |cfg: EncoderConfig| {
        let enc = Encoder::new(cfg)
            .expect("cfg")
            .encode(&frames)
            .expect("encode");
        let dec = video::decoder::decode(&enc.bytes).expect("decode");
        let enc_ops = enc.tally.me_pixel_ops + enc.tally.dct_macs();
        let dec_ops = dec.idct_blocks * 1024 + dec.mc_pixels;
        enc_ops as f64 / dec_ops as f64
    };
    let sym = ratio(EncoderConfig::symmetric_conference());
    let asym = ratio(EncoderConfig::asymmetric_broadcast());
    assert!(asym > 3.0 * sym, "asym {asym:.1} vs sym {sym:.1}");
}

/// E3 (decoder side): decode cost is essentially config-independent.
#[test]
fn e3_decoder_cost_is_flat() {
    let a = video_decoder_pipeline(&VideoPipelineSpec::default(), 903);
    let b = video_decoder_pipeline(
        &VideoPipelineSpec {
            config: EncoderConfig::symmetric_conference(),
            ..Default::default()
        },
        903,
    );
    let ta = a.graph.total_ops().total() as f64;
    let tb = b.graph.total_ops().total() as f64;
    assert!(
        (ta / tb - 1.0).abs() < 0.35,
        "decoder cost varied: {ta} vs {tb}"
    );
}

/// E5: fast searches use >=10x fewer evaluations than full search.
#[test]
fn e5_search_cost_ordering() {
    use video::me::{MotionEstimator, SearchKind};
    let mut g = SequenceGen::new(904);
    let r = g.textured_frame(64, 64);
    let c = g.shift_frame(&r, 3, 2);
    let evals = |k| {
        MotionEstimator::new(k, 15)
            .estimate(&c, &r)
            .total_evaluations()
    };
    let full = evals(SearchKind::Full);
    assert!(full > 10 * evals(SearchKind::ThreeStep));
    assert!(full > 10 * evals(SearchKind::Diamond));
}

/// E6: transcoding never recovers quality overall.
#[test]
fn e6_no_quality_recovery() {
    let frames = qcif(4, 905);
    let cfg = EncoderConfig {
        quality: 55,
        gop: 4,
        ..Default::default()
    };
    let stats = video::transcode::generations(&frames, cfg, cfg, 3).expect("chain");
    assert!(
        stats.last().expect("nonempty").psnr_vs_original_db
            <= stats.first().expect("nonempty").psnr_vs_original_db + 0.01
    );
}

/// E13: scattered allocation costs at least 10x the seeks of contiguous.
#[test]
fn e13_fragmentation_cost() {
    use mediafs::fs::{AllocPolicy, MediaFs};
    let data = vec![0u8; 64 * 64];
    let seeks = |policy| {
        let mut fs = MediaFs::new(512, 64, policy);
        fs.create("/f", &data).expect("create");
        fs.reset_io_stats();
        fs.read("/f").expect("read");
        fs.io_stats().seeks
    };
    assert!(seeks(AllocPolicy::Scatter(5)) >= 10 * seeks(AllocPolicy::FirstFit).max(1));
}

/// E16: 4 PEs beat 1 PE by at least 2.5x with the best mapping.
#[test]
fn e16_multiprocessor_speedup() {
    use mmsoc::deploy::deploy_best;
    use mpsoc::platform::Platform;
    let p = video_encoder_pipeline(&VideoPipelineSpec::default(), 906);
    let fps = |n: usize| {
        let platform = Platform::symmetric_bus("p", n, 300e6);
        let (all, best) = deploy_best(&p.graph, &platform, 8).expect("deploy");
        all[best].throughput_hz()
    };
    let one = fps(1);
    let four = fps(4);
    assert!(four > 2.5 * one, "4-PE speedup only {:.2}", four / one);
}

/// E16 (saturation): a starved bus collapses throughput.
#[test]
fn e16_bus_saturation() {
    use mmsoc::deploy::{deploy, Strategy};
    use mpsoc::platform::{InterconnectSpec, Platform};
    let p = video_encoder_pipeline(&VideoPipelineSpec::default(), 907);
    let fps_at = |bw: f64| {
        let platform =
            Platform::symmetric_bus("p", 4, 300e6).with_interconnect(InterconnectSpec::Bus {
                bandwidth_bytes_per_s: bw,
                arbitration_s: 50e-9,
                energy_pj_per_byte: 5.0,
            });
        deploy(&p.graph, &platform, Strategy::LoadBalanced, 8)
            .expect("deploy")
            .throughput_hz()
    };
    let wide = fps_at(400e6);
    let narrow = fps_at(2.5e6);
    assert!(
        narrow < 0.7 * wide,
        "bus starvation had no effect: {narrow} vs {wide}"
    );
}

/// E17: workload ordering across device classes matches §2.
#[test]
fn e17_device_ordering() {
    use mmsoc::profile::DeviceClass;
    let ops = |c: DeviceClass| c.application(908).total_ops().total();
    assert!(ops(DeviceClass::AudioPlayer) < ops(DeviceClass::CellPhone));
    assert!(ops(DeviceClass::CellPhone) < ops(DeviceClass::VideoRecorder));
    assert!(ops(DeviceClass::SetTopBox) < ops(DeviceClass::VideoRecorder));
}

/// E18: the wavelet shows less block-boundary error at moderate budgets
/// (at starvation budgets global thresholding loses — see EXPERIMENTS.md).
#[test]
fn e18_wavelet_less_blocking() {
    use video::dct::Dct2d;
    use video::wavelet::Wavelet2d;
    const SIZE: usize = 32;
    // Sharp edge image.
    let img: Vec<i32> = (0..SIZE * SIZE)
        .map(|i| {
            if (i % SIZE) > 10 && (i / SIZE) > 10 {
                200
            } else {
                30
            }
        })
        .collect();
    // DCT: keep 4 per block.
    let dct = Dct2d::new();
    let mut dct_out = vec![0i32; SIZE * SIZE];
    for by in 0..SIZE / 8 {
        for bx in 0..SIZE / 8 {
            let mut block = [0.0f64; 64];
            for r in 0..8 {
                for c in 0..8 {
                    block[r * 8 + c] = img[(by * 8 + r) * SIZE + bx * 8 + c] as f64;
                }
            }
            let coeffs = dct.forward(&block);
            let mut idx: Vec<usize> = (0..64).collect();
            idx.sort_by(|&a, &b| coeffs[b].abs().total_cmp(&coeffs[a].abs()));
            let mut kept = [0.0f64; 64];
            for &i in idx.iter().take(8) {
                kept[i] = coeffs[i];
            }
            let rec = dct.inverse(&kept);
            for r in 0..8 {
                for c in 0..8 {
                    dct_out[(by * 8 + r) * SIZE + bx * 8 + c] = rec[r * 8 + c].round() as i32;
                }
            }
        }
    }
    // Wavelet: same total budget.
    let w = Wavelet2d::new(2);
    let kept = Wavelet2d::threshold_keep(&w.forward(&img, SIZE), 8 * (SIZE / 8) * (SIZE / 8));
    let wav_out = w.inverse(&kept, SIZE);
    // Boundary error comparison.
    let boundary_err = |out: &[i32]| -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for y in 0..SIZE {
            for x in 0..SIZE {
                if x % 8 == 0 || x % 8 == 7 || y % 8 == 0 || y % 8 == 7 {
                    sum += (img[y * SIZE + x] - out[y * SIZE + x]).abs() as f64;
                    n += 1;
                }
            }
        }
        sum / n as f64
    };
    let d = boundary_err(&dct_out);
    let wv = boundary_err(&wav_out);
    assert!(
        wv < d,
        "wavelet boundary error {wv:.2} not below DCT {d:.2}"
    );
}
