//! Integration: device classes deployed on their platforms, and mapping
//! invariants on the MPSoC simulator.

use mmsoc::deploy::{deploy, deploy_best, deploy_device, Strategy};
use mmsoc::profile::DeviceClass;
use mmsoc::{video_encoder_pipeline, VideoPipelineSpec};
use mpsoc::platform::Platform;

#[test]
fn every_device_class_meets_its_realtime_target() {
    for class in DeviceClass::ALL {
        let d = deploy_device(class, 500, 10).expect("deploy");
        let target = class.realtime_target_hz();
        assert!(
            d.meets(target),
            "{class}: {:.1} fps < target {target}",
            d.throughput_hz()
        );
    }
}

#[test]
fn best_strategy_never_loses_to_single_core() {
    let pipeline = video_encoder_pipeline(&VideoPipelineSpec::default(), 501);
    for pes in [2usize, 4] {
        let platform = Platform::symmetric_bus("p", pes, 300e6);
        let single = deploy(&pipeline.graph, &platform, Strategy::SingleCore, 8).expect("deploy");
        let (all, best) = deploy_best(&pipeline.graph, &platform, 8).expect("deploy");
        assert!(
            all[best].throughput_hz() >= single.throughput_hz() - 1e-9,
            "{pes} PEs: best mapping lost to single-core"
        );
    }
}

#[test]
fn throughput_is_monotone_in_pe_count_for_best_mapping() {
    let pipeline = video_encoder_pipeline(&VideoPipelineSpec::default(), 502);
    let mut prev = 0.0;
    for pes in [1usize, 2, 4] {
        let platform = Platform::symmetric_bus("p", pes, 300e6);
        let (all, best) = deploy_best(&pipeline.graph, &platform, 8).expect("deploy");
        let fps = all[best].throughput_hz();
        assert!(
            fps >= prev * 0.99,
            "throughput regressed adding PEs: {prev} -> {fps}"
        );
        prev = fps;
    }
}

#[test]
fn energy_accounting_is_conserved_across_strategies() {
    // Compute energy depends only on the work, not the mapping — the same
    // graph must burn identical compute joules under every mapping on a
    // homogeneous platform.
    let pipeline = video_encoder_pipeline(&VideoPipelineSpec::default(), 503);
    let platform = Platform::symmetric_bus("p", 4, 300e6);
    let mut compute = Vec::new();
    for s in Strategy::ALL {
        let d = deploy(&pipeline.graph, &platform, s, 6).expect("deploy");
        compute.push(d.report.energy().compute_j());
    }
    for w in compute.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-12 * w[0].max(1e-12),
            "compute energy varied with mapping: {compute:?}"
        );
    }
}

#[test]
fn utilization_bounded_and_consistent_with_makespan() {
    let pipeline = video_encoder_pipeline(&VideoPipelineSpec::default(), 504);
    let platform = Platform::symmetric_bus("p", 4, 300e6);
    let d = deploy(&pipeline.graph, &platform, Strategy::LoadBalanced, 10).expect("deploy");
    for (i, u) in d.report.pe_utilization().iter().enumerate() {
        assert!((0.0..=1.0 + 1e-9).contains(u), "pe{i} utilization {u}");
    }
    let busy_total: f64 = d.report.pe_busy_s().iter().sum();
    assert!(busy_total <= d.report.makespan_s() * 4.0 + 1e-9);
}

#[test]
fn heterogeneous_platform_prefers_dsp_for_mac_work() {
    // The cell phone's DSP must absorb the MAC-heavy encoder stages under
    // load-balanced mapping.
    let phone = Platform::cell_phone();
    let pipeline = video_encoder_pipeline(
        &VideoPipelineSpec {
            width: 176,
            height: 144,
            ..Default::default()
        },
        505,
    );
    let d = deploy(&pipeline.graph, &phone, Strategy::LoadBalanced, 6).expect("deploy");
    // PE 1 is the DSP. Load balancing equalizes *time*, so the invariant
    // is about work placement: the DSP must receive the majority of the
    // MAC operations (it executes them 8x faster than the RISC).
    let mut macs_by_pe = [0u64; 2];
    for (tid, pe) in d.mapping.assignments().iter().enumerate() {
        let ops = pipeline.graph.task(mpsoc::task::TaskId(tid)).ops;
        macs_by_pe[pe.0] += ops.count(mpsoc::pe::OpClass::Mac);
    }
    assert!(
        macs_by_pe[1] > macs_by_pe[0],
        "DSP ({}) should receive more MAC work than the RISC ({})",
        macs_by_pe[1],
        macs_by_pe[0]
    );
}
