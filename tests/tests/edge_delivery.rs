//! The edge-cache delivery tier, end to end: ladder-encode → seal →
//! publish on the origin → viewers fetch *through an edge cache* over
//! lossy links. Cold cache, warm cache, then an origin outage that warm
//! edges ride out — plus the fluid-tier capacity story: the knee scales
//! with edge count.

use drm::playback::LicenseAuthority;
use drm::{Right, TitleId};
use mmstream::edge::{EdgeCache, EdgeConfig, EdgeTierConfig};
use mmstream::ladder::{encode_ladder, publish_ladder, seal_ladder, LadderConfig, Manifest};
use mmstream::serve::{
    capacity_curve, capacity_knee, edge_capacity_curve, edge_capacity_knee, LoadConfig,
    ServerConfig,
};
use mmstream::session::{run_session_via_edge, SessionConfig, SessionError};
use netstack::fetch::{ContentServer, FetchError};
use netstack::link::LinkConfig;
use video::synth::SequenceGen;

/// The head end: a sealed 3-rung ladder published on one origin server.
fn origin() -> (ContentServer, LicenseAuthority, Manifest) {
    let frames = SequenceGen::new(77).panning_sequence(64, 48, 24, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![3_000.0, 9_000.0, 27_000.0],
        gop: 4,
        ..Default::default()
    };
    let mut ladder = encode_ladder("feature", &frames, &cfg).expect("ladder encodes");
    let mut authority = LicenseAuthority::new(b"studio-secret".to_vec());
    let title_id = TitleId(7);
    authority.register_title(title_id);
    seal_ladder(&mut ladder, &authority, title_id);
    let mut server = ContentServer::new();
    publish_ladder(&mut server, &ladder);
    server.publish(
        Manifest::license_object("feature"),
        authority.issue(title_id, vec![Right::Play]),
    );
    let manifest = ladder.manifest.clone();
    (server, authority, manifest)
}

#[test]
fn cold_warm_outage_lifecycle_through_one_edge() {
    let (origin, authority, manifest) = origin();
    // The edge fills over its own 2%-loss origin link; viewers sit on a
    // 5%-loss access link. Pinned to rung 0: the acceptance bar is that
    // the safety rung plays stall-free through every phase.
    let mut edge = EdgeCache::new(EdgeConfig {
        origin_link: LinkConfig::default().with_loss(0.02),
        ..Default::default()
    });
    let viewer = SessionConfig {
        link: LinkConfig::default().with_loss(0.05),
        max_rung: Some(0),
        verification_key: Some(authority.verification_key().to_vec()),
        seed: 41,
        ..Default::default()
    };

    // Phase 1 — cold cache: every object (manifest, license, rung-0
    // segments) is an edge miss filled from the origin.
    let cold = run_session_via_edge(&origin, &mut edge, "feature", &viewer).expect("cold session");
    assert_eq!(cold.segments.len(), manifest.segment_count());
    assert_eq!(cold.rebuffer_events, 0, "rung 0 must not stall even cold");
    let after_cold = *edge.stats();
    assert_eq!(after_cold.hits, 0, "a cold cache cannot hit");
    assert_eq!(
        after_cold.misses,
        2 + manifest.segment_count() as u64,
        "manifest + license + every rung-0 segment fill exactly once"
    );

    // Phase 2 — warm cache: a second viewer fetches the same objects
    // without a single new origin byte, and starts faster.
    let warm = run_session_via_edge(&origin, &mut edge, "feature", &viewer).expect("warm session");
    let after_warm = *edge.stats();
    assert_eq!(after_warm.misses, after_cold.misses, "no new fills");
    assert_eq!(after_warm.origin_bytes, after_cold.origin_bytes);
    assert!(
        warm.total_ticks < cold.total_ticks,
        "warm ({}) must beat cold ({}): the origin leg is gone",
        warm.total_ticks,
        cold.total_ticks
    );
    assert!(warm.startup_delay_ticks <= cold.startup_delay_ticks);
    assert_eq!(warm.rebuffer_events, 0);

    // Phase 3 — origin outage: the warm edge keeps serving the title
    // with zero post-startup rebuffers at rung 0, and every delivered
    // segment still decodes.
    edge.set_origin_up(false);
    let outage =
        run_session_via_edge(&origin, &mut edge, "feature", &viewer).expect("outage session");
    assert_eq!(outage.segments.len(), manifest.segment_count());
    assert_eq!(
        outage.rebuffer_events, 0,
        "warm edges must serve through the outage without stalls"
    );
    for (i, rec) in outage.segments.iter().enumerate() {
        let es = rec.segment.video_es.as_ref().expect("segment survived");
        let dec = video::decode(es).unwrap_or_else(|e| panic!("segment {i} undecodable: {e}"));
        assert_eq!(dec.frames.len(), rec.frames);
        assert_eq!(dec.kinds[0], video::FrameKind::Intra, "closed GOP entry");
    }
    assert_eq!(
        edge.stats().origin_bytes,
        after_warm.origin_bytes,
        "an outage session may not touch the origin"
    );

    // A title the edge never cached fails cleanly during the outage.
    assert!(matches!(
        run_session_via_edge(&origin, &mut edge, "other", &viewer).unwrap_err(),
        SessionError::Fetch(FetchError::Server(_))
    ));
}

#[test]
fn free_abr_viewer_through_an_edge_upgrades() {
    let (origin, authority, _) = origin();
    let mut edge = EdgeCache::new(EdgeConfig::default());
    let viewer = SessionConfig {
        verification_key: Some(authority.verification_key().to_vec()),
        seed: 9,
        ..Default::default()
    };
    // Warm the edge with a first viewer, then let a second roam freely.
    run_session_via_edge(&origin, &mut edge, "feature", &viewer).expect("first viewer");
    let report = run_session_via_edge(&origin, &mut edge, "feature", &viewer).expect("second");
    assert_eq!(report.segments[0].rung, 0, "start on the safety rung");
    assert!(
        report.segments.iter().any(|s| s.rung > 0),
        "a warm edge on a clean link should earn an upgrade"
    );
}

#[test]
fn edge_tier_knee_scales_past_the_single_origin() {
    let (_, _, manifest) = origin();
    let base = LoadConfig {
        seed: 3,
        ..Default::default()
    };
    let counts = [200usize, 1_000, 2_000, 4_000];
    let single = capacity_curve(&manifest, &ServerConfig::default(), &counts, &base);
    let single_knee = capacity_knee(&single, 0.05).expect("single origin sustains some level");
    let tier = EdgeTierConfig {
        edges: 4,
        cache_capacity_bytes: usize::MAX,
        prewarm: true,
        ..Default::default()
    };
    let curve = edge_capacity_curve(&manifest, &tier, &counts, &base);
    assert!(curve.iter().all(|r| r.load.completed == r.load.sessions));
    let knee = edge_capacity_knee(&curve, 0.05).expect("tier sustains some level");
    assert!(
        knee >= 2 * single_knee,
        "4 warm edges must at least double the knee: {knee} vs {single_knee}"
    );
    // Warm edges fully offload the origin.
    assert!(curve.iter().all(|r| r.tier.origin_bytes == 0));
}
