//! The hierarchical CDN live path, end to end: a sealed multi-title
//! catalog published on one origin, viewers fetching through an edge
//! cache that fills through a regional *shield* cache over lossy
//! links. Cold-everything lifecycle, the exactly-one-origin-fill
//! ledger under cross-edge misses, and shield-outage ride-through via
//! warm caches and stale-if-error.

use drm::playback::LicenseAuthority;
use drm::{Right, TitleId};
use mmstream::edge::{EdgeCache, EdgeConfig};
use mmstream::ladder::{encode_ladder, publish_ladder, seal_ladder, LadderConfig, Manifest};
use mmstream::session::{run_session_via_tier, SessionConfig, SessionError};
use mmstream::shield::{ShieldCache, ShieldConfig};
use netstack::fetch::{ContentServer, FetchError};
use netstack::link::LinkConfig;
use video::synth::SequenceGen;

/// The head end: several sealed 2-rung ladders (one per title)
/// published on a single origin server.
fn catalog_origin(titles: &[&str]) -> (ContentServer, LicenseAuthority, Vec<Manifest>) {
    let mut server = ContentServer::new();
    let mut authority = LicenseAuthority::new(b"studio-secret".to_vec());
    let mut manifests = Vec::new();
    for (i, title) in titles.iter().enumerate() {
        let frames = SequenceGen::new(40 + i as u64).panning_sequence(64, 48, 16, 1, 1);
        let cfg = LadderConfig {
            targets_bits_per_frame: vec![3_000.0, 9_000.0],
            gop: 4,
            ..Default::default()
        };
        let mut ladder = encode_ladder(title, &frames, &cfg).expect("ladder encodes");
        let title_id = TitleId(100 + i as u64);
        authority.register_title(title_id);
        seal_ladder(&mut ladder, &authority, title_id);
        publish_ladder(&mut server, &ladder);
        server.publish(
            Manifest::license_object(title),
            authority.issue(title_id, vec![Right::Play]),
        );
        manifests.push(ladder.manifest.clone());
    }
    (server, authority, manifests)
}

/// A rung-0-pinned viewer on a lossy access link.
fn viewer(authority: &LicenseAuthority) -> SessionConfig {
    SessionConfig {
        link: LinkConfig::default().with_loss(0.05),
        max_rung: Some(0),
        verification_key: Some(authority.verification_key().to_vec()),
        seed: 41,
        ..Default::default()
    }
}

#[test]
fn cold_edge_cold_shield_origin_lifecycle_multi_title() {
    let (origin, authority, manifests) = catalog_origin(&["alpha", "beta", "gamma"]);
    // Both fill hops are lossy: shield→origin over the regional
    // backbone (1%), edge→shield over its uplink (2%).
    let mut shield = ShieldCache::new(ShieldConfig {
        origin_link: LinkConfig::default().with_loss(0.01),
        ..Default::default()
    });
    let mut edge = EdgeCache::new(EdgeConfig {
        origin_link: LinkConfig::default().with_loss(0.02),
        ..Default::default()
    });
    let viewer = viewer(&authority);

    // Cold everything, title by title: every object (manifest,
    // license, rung-0 segments) misses at BOTH tiers exactly once and
    // the session still plays out in full.
    let mut expected = 0u64;
    for (title, manifest) in ["alpha", "beta", "gamma"].iter().zip(&manifests) {
        let cold = run_session_via_tier(&origin, &mut shield, &mut edge, title, &viewer)
            .unwrap_or_else(|e| panic!("cold session for {title}: {e}"));
        assert_eq!(cold.segments.len(), manifest.segment_count());
        expected += 2 + manifest.segment_count() as u64;
        assert_eq!(edge.stats().misses, expected, "one edge fill per object");
        assert_eq!(
            shield.stats().misses,
            expected,
            "one shield fill per object"
        );
        assert_eq!(shield.stats().hits, 0, "nothing to hit while cold");
    }

    // Warm replay: no new fill at either tier, not one new origin
    // byte, and every delivered (sealed) segment still decodes.
    let origin_bytes = shield.stats().origin_bytes;
    let warm = run_session_via_tier(&origin, &mut shield, &mut edge, "alpha", &viewer)
        .expect("warm session");
    assert_eq!(warm.segments.len(), manifests[0].segment_count());
    assert_eq!(
        warm.rebuffer_events, 0,
        "a warm edge must not stall at rung 0"
    );
    assert_eq!(edge.stats().misses, expected, "no new edge fills");
    assert_eq!(
        shield.stats().origin_bytes,
        origin_bytes,
        "no new origin bytes"
    );
    for (i, rec) in warm.segments.iter().enumerate() {
        let es = rec.segment.video_es.as_ref().expect("segment survived");
        let dec = video::decode(es).unwrap_or_else(|e| panic!("segment {i} undecodable: {e}"));
        assert_eq!(dec.frames.len(), rec.frames);
    }
}

#[test]
fn one_origin_fill_per_object_across_cold_edges() {
    let (origin, authority, manifests) = catalog_origin(&["alpha"]);
    let mut shield = ShieldCache::new(ShieldConfig::default());
    let viewer = viewer(&authority);
    let objects = 2 + manifests[0].segment_count() as u64;

    // Four cold edges miss every object of the same title in turn; the
    // shield's fill ledger must show exactly one started origin fill
    // per (object, generation) — the other edges' misses are shield
    // hits, never second round trips.
    for e in 0..4u64 {
        let mut edge = EdgeCache::new(EdgeConfig::default());
        let report = run_session_via_tier(&origin, &mut shield, &mut edge, "alpha", &viewer)
            .unwrap_or_else(|e| panic!("session: {e}"));
        assert_eq!(report.segments.len(), manifests[0].segment_count());
        assert_eq!(edge.stats().misses, objects, "edge {e} is cold: all misses");
    }
    let (started, _joined, failed) = shield.fill_ledger();
    assert_eq!(started, objects, "exactly one origin fill per object");
    assert_eq!(failed, 0);
    assert_eq!(shield.stats().misses, objects);
    assert_eq!(
        shield.stats().hits,
        3 * objects,
        "later edges ride the warm shield"
    );
}

#[test]
fn shield_outage_ride_through() {
    let (mut origin, authority, manifests) = catalog_origin(&["alpha"]);
    let mut shield = ShieldCache::new(ShieldConfig {
        mutable_ttl_ticks: 10,
        ..Default::default()
    });
    let mut edge = EdgeCache::new(EdgeConfig {
        mutable_ttl_ticks: 10,
        ..Default::default()
    });
    let viewer = viewer(&authority);
    let n_segments = manifests[0].segment_count();

    // Warm both tiers, then crash the shield: the warm edge serves the
    // whole title stall-free without consulting it.
    run_session_via_tier(&origin, &mut shield, &mut edge, "alpha", &viewer).expect("warm-up");
    shield.set_up(false);
    let outage = run_session_via_tier(&origin, &mut shield, &mut edge, "alpha", &viewer)
        .expect("warm edge rides out the shield outage");
    assert_eq!(outage.segments.len(), n_segments);
    assert_eq!(outage.rebuffer_events, 0, "ride-through must be stall-free");

    // A cold edge has nothing to fall back on: it fails cleanly.
    let mut cold = EdgeCache::new(EdgeConfig::default());
    assert!(matches!(
        run_session_via_tier(&origin, &mut shield, &mut cold, "alpha", &viewer).unwrap_err(),
        SessionError::Fetch(FetchError::Server(_))
    ));

    // Shield back up with the ORIGIN dark: its warm store alone brings
    // the cold edge through the full title — zero new origin bytes.
    shield.set_up(true);
    shield.set_origin_up(false);
    let origin_bytes = shield.stats().origin_bytes;
    let recovered = run_session_via_tier(&origin, &mut shield, &mut cold, "alpha", &viewer)
        .expect("shield-warm recovery with the origin down");
    assert_eq!(recovered.segments.len(), n_segments);
    assert_eq!(
        shield.stats().origin_bytes,
        origin_bytes,
        "no origin byte crossed"
    );

    // Stale-if-error on the mutable path, across both hops: a cached
    // mutable object stays servable past its TTL when the shield is
    // unreachable, and again when the shield can't reach the origin.
    shield.set_origin_up(true);
    origin.publish("alpha/status".to_string(), vec![0x5Au8; 64]);
    let tcp = netstack::tcplite::TcpConfig::default();
    let link = LinkConfig::default();
    let (fresh, _) = edge
        .fetch_mutable_through_shield(&mut shield, &origin, "alpha/status", tcp, link, 1, 0)
        .expect("first mutable fetch");
    shield.set_up(false);
    let (stale, _) = edge
        .fetch_mutable_through_shield(&mut shield, &origin, "alpha/status", tcp, link, 2, 100)
        .expect("stale-if-error across a dead shield");
    assert_eq!(stale, fresh);
    shield.set_up(true);
    shield.set_origin_up(false);
    let (stale2, _) = edge
        .fetch_mutable_through_shield(&mut shield, &origin, "alpha/status", tcp, link, 3, 200)
        .expect("stale-if-error across a dark origin");
    assert_eq!(stale2, fresh);
}
