//! The parallel head-end: the pooled encode and pooled capacity
//! curves must be *bit-identical* to their sequential drivers for any
//! worker count, and the merge must not depend on which shard happens
//! to finish first. Completion order is scrambled with seeded
//! busy-delays inside the jobs — the merged outputs never change.

use mmpool::WorkerPool;
use mmstream::ladder::{encode_ladder, encode_ladder_on, encode_rung, LadderConfig};
use mmstream::serve::{
    capacity_curve, capacity_curve_on, edge_capacity_curve, edge_capacity_curve_on,
    live_edge_capacity_curve, live_edge_capacity_curve_on, LiveConfig, LoadConfig, ServerConfig,
};
use mmstream::session::JoinMode;
use mmstream::EdgeTierConfig;
use video::synth::SequenceGen;
use video::Frame;

fn source() -> Vec<Frame> {
    SequenceGen::new(41).panning_sequence(48, 32, 8, 1, 1)
}

fn ladder_config() -> LadderConfig {
    LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    }
}

/// Burns a seeded, shard-dependent amount of CPU so that different
/// seeds drive different shard completion orders on a real pool.
fn scramble(seed: u64, shard: usize) -> u64 {
    let spins = (seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 40_000;
    let mut acc = seed;
    for k in 0..spins {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(k);
    }
    acc
}

#[test]
fn pooled_ladder_encode_matches_sequential_for_every_worker_count() {
    let frames = source();
    let cfg = ladder_config();
    let sequential = encode_ladder("par", &frames, &cfg).expect("ladder encodes");
    for workers in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        let pooled = encode_ladder_on(&pool, "par", &frames, &cfg).expect("ladder encodes");
        assert_eq!(pooled, sequential, "{workers} workers diverged");
    }
}

#[test]
fn pooled_capacity_curves_match_sequential_for_every_worker_count() {
    let frames = source();
    let manifest = encode_ladder("par", &frames, &ladder_config())
        .expect("ladder encodes")
        .manifest;
    let server = ServerConfig::default();
    let base = LoadConfig::default();
    let counts = [50usize, 100, 200, 400];
    let tier = EdgeTierConfig {
        edges: 2,
        ..Default::default()
    };
    let live = LiveConfig {
        dvr_window_segments: 4,
        join: JoinMode::LiveEdge,
        ..Default::default()
    };

    let vod = capacity_curve(&manifest, &server, &counts, &base);
    let edge = edge_capacity_curve(&manifest, &tier, &counts, &base);
    let live_edge = live_edge_capacity_curve(&manifest, &tier, &live, &counts, &base);
    for workers in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        assert_eq!(
            capacity_curve_on(&pool, &manifest, &server, &counts, &base),
            vod,
            "VOD curve diverged at {workers} workers"
        );
        assert_eq!(
            edge_capacity_curve_on(&pool, &manifest, &tier, &counts, &base),
            edge,
            "edge curve diverged at {workers} workers"
        );
        assert_eq!(
            live_edge_capacity_curve_on(&pool, &manifest, &tier, &live, &counts, &base),
            live_edge,
            "live curve diverged at {workers} workers"
        );
    }
}

#[test]
fn scrambled_completion_order_cannot_change_the_merged_encode() {
    let frames = source();
    let cfg = ladder_config();
    let rungs: Vec<usize> = (0..cfg.targets_bits_per_frame.len()).collect();
    let baseline: Vec<_> = rungs
        .iter()
        .map(|&ri| encode_rung(&frames, &cfg, ri).expect("rung encodes"))
        .collect();
    for workers in [2usize, 4, 8] {
        for seed in [1u64, 7, 1234, 0xdead_beef] {
            let pool = WorkerPool::new(workers);
            let builds = pool.map(&rungs, |&ri| {
                std::hint::black_box(scramble(seed, ri));
                encode_rung(&frames, &cfg, ri).expect("rung encodes")
            });
            assert_eq!(
                builds, baseline,
                "seed {seed} at {workers} workers changed the merge"
            );
        }
    }
}

#[test]
fn scrambled_completion_order_cannot_change_the_merged_curve() {
    let frames = source();
    let manifest = encode_ladder("par", &frames, &ladder_config())
        .expect("ladder encodes")
        .manifest;
    let server = ServerConfig::default();
    let base = LoadConfig::default();
    let counts = [50usize, 100, 200, 400];
    let baseline = capacity_curve(&manifest, &server, &counts, &base);
    for seed in [3u64, 99, 0xfeed] {
        let pool = WorkerPool::new(4);
        let curve = pool.map(&counts, |&sessions| {
            std::hint::black_box(scramble(seed, sessions));
            mmstream::serve::simulate_load(&manifest, &server, &LoadConfig { sessions, ..base })
        });
        assert_eq!(curve, baseline, "seed {seed} changed the merged curve");
    }
}
