//! Live/linear delivery, end to end: a sealed ladder looping on a
//! [`LiveOrigin`] with a rolling DVR window → live viewers joining at
//! the live edge or DVR start over lossy links, directly and through an
//! edge cache (mutable manifest on a TTL, segments invalidated on
//! window expiry) — plus the fluid live story: the capacity knee
//! scales with edge count, and a warm edge tier absorbs the flash
//! crowd that collapses a single origin.

use drm::playback::LicenseAuthority;
use drm::{Right, TitleId};
use mmstream::edge::{EdgeCache, EdgeConfig, EdgeTierConfig};
use mmstream::ladder::{encode_ladder, seal_ladder, LadderConfig, LiveOrigin, LiveOriginConfig};
use mmstream::serve::{
    live_edge_capacity_curve, live_edge_capacity_knee, simulate_live_edge_load, simulate_live_load,
    ChurnConfig, LiveConfig, LoadConfig, ServerConfig,
};
use mmstream::session::{
    run_live_session, run_live_session_via_edge, JoinMode, LiveSessionConfig, SessionConfig,
};
use mmstream::Manifest;
use netstack::fetch::ContentServer;
use netstack::link::LinkConfig;
use video::synth::SequenceGen;

/// A sealed 3-rung live channel: 6-segment wheel, 200-tick publish
/// pace, 4-deep DVR window.
fn channel() -> (ContentServer, LiveOrigin, LicenseAuthority) {
    let frames = SequenceGen::new(55).panning_sequence(64, 48, 24, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![3_000.0, 9_000.0, 27_000.0],
        gop: 4,
        ..Default::default()
    };
    let mut ladder = encode_ladder("linear", &frames, &cfg).expect("ladder encodes");
    let mut authority = LicenseAuthority::new(b"broadcaster-secret".to_vec());
    let title_id = TitleId(22);
    authority.register_title(title_id);
    seal_ladder(&mut ladder, &authority, title_id);
    let mut server = ContentServer::new();
    server.publish(
        Manifest::license_object("linear"),
        authority.issue(title_id, vec![Right::Play]),
    );
    let origin = LiveOrigin::new(
        ladder,
        LiveOriginConfig {
            dvr_window_segments: 4,
            ticks_per_segment: 200,
        },
    )
    .expect("valid live config");
    (server, origin, authority)
}

#[test]
fn sealed_live_viewer_plays_the_channel_over_a_lossy_link() {
    let (mut server, mut origin, authority) = channel();
    let cfg = LiveSessionConfig {
        base: SessionConfig {
            link: LinkConfig::default().with_loss(0.05),
            max_rung: Some(0),
            verification_key: Some(authority.verification_key().to_vec()),
            seed: 61,
            ..Default::default()
        },
        join: JoinMode::LiveEdge,
        segments_to_play: 9, // more than one lap of the 6-segment wheel
        poll_ticks: 25,
        start_tick: 0,
        max_stale_refreshes: 64,
        refresh_retry: None,
    };
    let r = run_live_session(&mut server, &mut origin, "linear", &cfg).expect("live session");
    assert_eq!(r.segments.len(), 9);
    assert_eq!(
        r.rebuffer_events, 0,
        "rung 0 over 5% loss must play the live channel stall-free"
    );
    // Everything decodes — including the wheel's second lap, whose
    // sealed bytes and nonces replay wheel segments.
    for (i, rec) in r.segments.iter().enumerate() {
        assert_eq!(rec.seq, r.segments[0].seq + i as u64, "no gaps, no rewinds");
        let es = rec.segment.video_es.as_ref().expect("segment intact");
        let dec = video::decode(es).unwrap_or_else(|e| panic!("segment {i} undecodable: {e}"));
        assert_eq!(dec.frames.len(), rec.frames);
        assert_eq!(dec.kinds[0], video::FrameKind::Intra, "closed GOP entry");
    }
    // Live playback is paced by the 200-tick publish clock: the viewer
    // must have refreshed the manifest and waited on the live edge.
    assert!(r.manifest_refreshes > 0);
    assert!(r.stale_manifest_ticks > 0);
    assert_eq!(r.window_skips, 0, "a keeping-up viewer loses nothing");
    assert!(
        r.max_live_latency_ticks() <= 3 * 200,
        "live latency must stay within a few segment durations: {}",
        r.max_live_latency_ticks()
    );
}

#[test]
fn live_viewers_share_an_edge_that_honours_the_live_object_lifecycle() {
    let (mut server, mut origin, authority) = channel();
    let mut edge = EdgeCache::new(EdgeConfig {
        origin_link: LinkConfig::default().with_loss(0.02),
        mutable_ttl_ticks: 100, // half a segment duration
        ..Default::default()
    });
    let viewer = |seed: u64, start_tick: u64, join| LiveSessionConfig {
        base: SessionConfig {
            link: LinkConfig::default().with_loss(0.05),
            verification_key: Some(authority.verification_key().to_vec()),
            seed,
            ..Default::default()
        },
        join,
        segments_to_play: 6,
        poll_ticks: 25,
        start_tick,
        max_stale_refreshes: 64,
        refresh_retry: None,
    };
    let a = run_live_session_via_edge(
        &mut server,
        &mut origin,
        &mut edge,
        "linear",
        &viewer(41, 0, JoinMode::LiveEdge),
    )
    .expect("first viewer");
    assert_eq!(a.segments.len(), 6);
    let after_a = *edge.stats();
    assert!(after_a.misses > 0, "a cold edge fills everything");
    assert!(
        after_a.revalidations > 0,
        "manifest refreshes past the TTL must revalidate at the origin"
    );
    assert!(
        after_a.invalidations > 0,
        "the origin's window expiry must purge the edge"
    );

    // A second viewer tunes in where the channel now stands and reads
    // the DVR window the first viewer's fills already cached.
    let tune_in = origin.publish_tick(origin.live_seq().expect("channel is live"));
    let b = run_live_session_via_edge(
        &mut server,
        &mut origin,
        &mut edge,
        "linear",
        &viewer(42, tune_in, JoinMode::DvrStart),
    )
    .expect("second viewer");
    assert_eq!(b.segments.len(), 6);
    let after_b = *edge.stats();
    assert!(
        after_b.hits > after_a.hits,
        "the warm window must serve the second viewer from cache"
    );
    for rec in a.segments.iter().chain(&b.segments) {
        assert!(video::decode(rec.segment.video_es.as_ref().unwrap()).is_ok());
    }
}

#[test]
fn live_capacity_knee_scales_with_edge_count() {
    let frames = SequenceGen::new(55).panning_sequence(64, 48, 32, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let manifest = encode_ladder("linear", &frames, &cfg).unwrap().manifest;
    let live = LiveConfig {
        dvr_window_segments: 8,
        join: JoinMode::LiveEdge,
        ..Default::default()
    };
    let base = LoadConfig::default();
    let counts = [500usize, 1_000, 2_000, 4_000];
    let knee_for = |edges: usize| {
        let tier = EdgeTierConfig {
            edges,
            prewarm: false,
            ..Default::default()
        };
        let curve = live_edge_capacity_curve(&manifest, &tier, &live, &counts, &base);
        live_edge_capacity_knee(&curve, 0.05).expect("some live level is sustainable")
    };
    let one = knee_for(1);
    let four = knee_for(4);
    assert!(
        four >= 2 * one,
        "4 edges must at least double the live knee: {four} vs {one}"
    );
}

#[test]
fn warm_edge_tier_absorbs_the_flash_crowd_that_collapses_one_origin() {
    let frames = SequenceGen::new(55).panning_sequence(64, 48, 32, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let manifest = encode_ladder("linear", &frames, &cfg).unwrap().manifest;
    let live = LiveConfig {
        dvr_window_segments: 8,
        join: JoinMode::LiveEdge,
        ..Default::default()
    };
    // 150 steady viewers; a 10x flash crowd rides in mid-event.
    let flashed = LoadConfig {
        sessions: 150,
        stagger_ticks: 800,
        churn: ChurnConfig {
            flash_sessions: 1_500,
            flash_at_tick: 1_200,
            flash_ramp_ticks: 600,
            ..Default::default()
        },
        ..Default::default()
    };
    let single = simulate_live_load(&manifest, &ServerConfig::default(), &live, &flashed);
    assert!(
        single.load.rebuffer_fraction > 0.05,
        "the flash crowd must drive a single origin past its knee: {}",
        single.load.rebuffer_fraction
    );
    let tier = EdgeTierConfig {
        edges: 4,
        prewarm: false,
        ..Default::default()
    };
    let edge = simulate_live_edge_load(&manifest, &tier, &live, &flashed);
    assert!(
        edge.edge.load.rebuffer_fraction <= 0.05,
        "a warm 4-edge tier must absorb the same spike: {}",
        edge.edge.load.rebuffer_fraction
    );
    assert_eq!(
        edge.edge.load.completed + edge.edge.load.departed,
        edge.edge.load.sessions
    );
    // The absorption mechanism is coalescing: each just-published
    // live-edge segment crosses the origin link once per edge while
    // thousands of waiters ride that one fill.
    assert!(
        edge.edge.tier.coalesced > edge.edge.tier.misses * 10,
        "the herd must coalesce: {} waiters vs {} fills",
        edge.edge.tier.coalesced,
        edge.edge.tier.misses
    );
}
