//! Integration: the full device data path, crossing every substrate.
//!
//! encode → DRM-encrypt → store on the media file system → fetch over the
//! lossy network → decrypt on the playback device → decode → verify.

use drm::license::{DeviceId, Right, TitleId};
use drm::playback::{LicenseAuthority, OutputPolicy, PlaybackDevice, PlaybackOutput};
use mediafs::fs::{AllocPolicy, MediaFs};
use netstack::fetch::{fetch, ContentServer};
use netstack::link::LinkConfig;
use netstack::tcplite::TcpConfig;
use signal::metrics::psnr_u8;
use video::decoder::decode;
use video::encoder::{Encoder, EncoderConfig};
use video::synth::SequenceGen;

#[test]
fn protected_video_survives_the_whole_pipeline() {
    // 1. Produce and encode content.
    let frames = SequenceGen::new(100).panning_sequence(64, 48, 8, 2, 1);
    let encoded = Encoder::new(EncoderConfig::default())
        .expect("config")
        .encode(&frames)
        .expect("encode");

    // 2. Protect it.
    let mut authority = LicenseAuthority::new(b"integration-secret".to_vec());
    let title = TitleId(9001);
    authority.register_title(title);
    let protected = authority.encrypt_content(title, &encoded.bytes, 77);

    // 3. Store the protected stream on a DVR file system (scattered
    // allocation — worst case) and read it back.
    let mut fs = MediaFs::new(16_384, 512, AllocPolicy::Scatter(3));
    fs.mkdir("/titles").expect("mkdir");
    fs.create("/titles/t9001.enc", &protected).expect("create");
    let from_disk = fs.read("/titles/t9001.enc").expect("read");
    assert_eq!(from_disk, protected, "file system corrupted the stream");

    // 4. Ship the license over a 20%-loss link.
    let mut server = ContentServer::new();
    server.publish(
        "t9001-license",
        authority.issue(title, vec![Right::PlayCount(2)]),
    );
    let fetched = fetch(
        &server,
        "t9001-license",
        TcpConfig::default(),
        LinkConfig::default().with_loss(0.2),
        55,
    )
    .expect("license fetch");

    // 5. Install, authorize, decrypt on the device.
    let mut device = PlaybackDevice::new(DeviceId(4), OutputPolicy::DigitalAllowed);
    device
        .store_mut()
        .install(&fetched.data, authority.verification_key())
        .expect("install");
    let output = device.play(title, &from_disk, 77, 0).expect("authorized");
    let PlaybackOutput::Digital(bitstream) = output else {
        panic!("digital policy must return digital bytes")
    };
    assert_eq!(bitstream, encoded.bytes, "decryption mismatch");

    // 6. Decode and check quality against the original frames.
    let decoded = decode(&bitstream).expect("decode");
    assert_eq!(decoded.frames.len(), frames.len());
    for (src, out) in frames.iter().zip(&decoded.frames) {
        let p = psnr_u8(src.luma(), out.luma()).expect("dims");
        assert!(p > 28.0, "end-to-end quality collapsed: {p} dB");
    }

    // 7. The play counter ticked: one more play allowed, then refusal.
    assert!(device.play(title, &from_disk, 77, 0).is_ok());
    assert!(device.play(title, &from_disk, 77, 0).is_err());
}

#[test]
fn protected_audio_round_trip_via_filesystem() {
    use audio::encoder::{decode as adecode, AudioConfig, AudioEncoder};

    let pcm = signal::gen::SignalGen::new(101).music(261.0, 44_100.0, 4 * 1152);
    let stream = AudioEncoder::new(AudioConfig::default())
        .encode(&pcm)
        .expect("encode");

    let mut authority = LicenseAuthority::new(b"music-secret".to_vec());
    let title = TitleId(42);
    authority.register_title(title);
    let protected = authority.encrypt_content(title, &stream.bytes, 3);

    let mut fs = MediaFs::new(8_192, 256, AllocPolicy::FirstFit);
    fs.create("/track.enc", &protected).expect("create");
    let loaded = fs.read("/track.enc").expect("read");

    let mut player = PlaybackDevice::new(DeviceId(1), OutputPolicy::DigitalAllowed);
    let sealed = authority.issue(title, vec![Right::Play]);
    player
        .store_mut()
        .install(&sealed, authority.verification_key())
        .expect("install");
    let PlaybackOutput::Digital(bytes) = player.play(title, &loaded, 3, 0).expect("play") else {
        panic!("expected digital output")
    };
    let out = adecode(&bytes).expect("audio decode");
    assert_eq!(out.samples.len(), pcm.len());
    let snr = signal::metrics::snr(&pcm, &out.samples).expect("snr");
    assert!(snr > 10.0, "audio quality collapsed: {snr} dB");
}

#[test]
fn tampered_content_on_disk_still_decodes_to_garbage_not_panic() {
    // Corruption below the DRM layer must surface as decode errors or
    // wrong-but-bounded output — never a panic.
    let frames = SequenceGen::new(102).panning_sequence(32, 32, 3, 1, 0);
    let encoded = Encoder::new(EncoderConfig::default())
        .expect("config")
        .encode(&frames)
        .expect("encode");
    let mut authority = LicenseAuthority::new(b"k".to_vec());
    let title = TitleId(1);
    authority.register_title(title);
    let mut protected = authority.encrypt_content(title, &encoded.bytes, 1);
    // Flip bits mid-payload.
    let mid = protected.len() / 2;
    protected[mid] ^= 0xFF;

    let mut device = PlaybackDevice::new(DeviceId(1), OutputPolicy::DigitalAllowed);
    let sealed = authority.issue(title, vec![Right::Play]);
    device
        .store_mut()
        .install(&sealed, authority.verification_key())
        .expect("install");
    let PlaybackOutput::Digital(bytes) = device.play(title, &protected, 1, 0).expect("play") else {
        panic!("expected digital output")
    };
    // Either a clean decode error (graceful rejection) or a
    // decoded-but-different stream.
    if let Ok(d) = decode(&bytes) {
        assert_eq!(d.frames.first().map(video::frame::Frame::width), Some(32));
    }
}
