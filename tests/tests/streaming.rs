//! End-to-end streaming: ladder-encode → DRM-seal → store → serve →
//! ABR session over lossy links, and the many-session capacity story.

use drm::playback::LicenseAuthority;
use drm::{Right, TitleId};
use mediafs::fs::{AllocPolicy, MediaFs};
use mmstream::ladder::{encode_ladder, publish_from_fs, seal_ladder, LadderConfig, Manifest};
use mmstream::serve::{capacity_curve, capacity_knee, LoadConfig, ServerConfig};
use mmstream::session::{run_session, SessionConfig};
use netstack::fetch::ContentServer;
use netstack::link::LinkConfig;
use signal::metrics::psnr_u8;
use video::synth::SequenceGen;
use video::Frame;

fn source_frames() -> Vec<Frame> {
    SequenceGen::new(99).panning_sequence(64, 48, 24, 1, 1)
}

fn ladder_config() -> LadderConfig {
    LadderConfig {
        targets_bits_per_frame: vec![3_000.0, 9_000.0, 27_000.0],
        gop: 4,
        ..Default::default()
    }
}

/// Builds the full head-end: encode, seal, store on mediafs, and boot a
/// content server from the store. Returns the server and the authority.
fn head_end(frames: &[Frame]) -> (ContentServer, LicenseAuthority, Manifest) {
    let mut ladder = encode_ladder("feature", frames, &ladder_config()).expect("ladder encodes");
    let mut authority = LicenseAuthority::new(b"studio-secret".to_vec());
    let title_id = TitleId(42);
    authority.register_title(title_id);
    seal_ladder(&mut ladder, &authority, title_id);

    // The server's segment store is a media filesystem; the serving set
    // is booted from it, not from the encoder's in-memory ladder.
    let mut fs = MediaFs::new(8192, 512, AllocPolicy::FirstFit);
    mmstream::ladder::store_ladder(&mut fs, &ladder).expect("ladder fits the store");
    let mut server = ContentServer::new();
    let manifest = publish_from_fs(&mut fs, &mut server, "feature").expect("store is consistent");
    server.publish(
        Manifest::license_object("feature"),
        authority.issue(title_id, vec![Right::Play]),
    );
    (server, authority, manifest)
}

#[test]
fn abr_session_over_5pct_loss_plays_without_rebuffering() {
    let frames = source_frames();
    let (server, authority, manifest) = head_end(&frames);

    // A viewer on a 5%-loss access link, pinned to the lowest rung (the
    // acceptance bar: the safety rung must be stall-free).
    let config = SessionConfig {
        link: LinkConfig::default().with_loss(0.05),
        max_rung: Some(0),
        verification_key: Some(authority.verification_key().to_vec()),
        seed: 2024,
        ..Default::default()
    };
    let report = run_session(&server, "feature", &config).expect("session completes");

    assert_eq!(report.segments.len(), manifest.segment_count());
    assert!(report.startup_delay_ticks > 0);
    assert_eq!(
        report.rebuffer_events, 0,
        "lowest rung must play through 5% loss with zero post-startup rebuffers"
    );
    assert_eq!(report.rung_switches, 0);

    // The delivered video is playable: every segment decodes, frame
    // counts match the source, and the lowest rung still resembles it.
    let mut decoded_frames = 0usize;
    let mut psnr_sum = 0.0f64;
    for (i, rec) in report.segments.iter().enumerate() {
        let es = rec.segment.video_es.as_ref().expect("segment survived");
        let dec = video::decode(es).unwrap_or_else(|e| panic!("segment {i} undecodable: {e}"));
        assert_eq!(dec.frames.len(), rec.frames, "segment {i} frame count");
        assert_eq!(dec.kinds[0], video::FrameKind::Intra, "closed GOP entry");
        for f in &dec.frames {
            assert_eq!((f.width(), f.height()), (64, 48));
            psnr_sum += psnr_u8(frames[decoded_frames].luma(), f.luma()).unwrap();
            decoded_frames += 1;
        }
    }
    assert_eq!(decoded_frames, frames.len(), "every source frame delivered");
    let mean_psnr = psnr_sum / decoded_frames as f64;
    assert!(
        mean_psnr > 20.0,
        "lowest rung should still resemble the source: {mean_psnr:.1} dB"
    );
}

#[test]
fn free_abr_session_upgrades_but_survives_loss() {
    let (server, authority, _) = head_end(&source_frames());
    let config = SessionConfig {
        link: LinkConfig::default().with_loss(0.05),
        verification_key: Some(authority.verification_key().to_vec()),
        seed: 7,
        ..Default::default()
    };
    let report = run_session(&server, "feature", &config).expect("session completes");
    assert_eq!(report.segments[0].rung, 0, "start on the safety rung");
    assert!(
        report.segments.iter().any(|s| s.rung > 0),
        "a viable link should earn at least one upgrade"
    );
    for rec in &report.segments {
        assert!(video::decode(rec.segment.video_es.as_ref().unwrap()).is_ok());
    }
}

#[test]
fn capacity_curve_shows_a_knee_beyond_a_thousand_sessions() {
    let (_, _, manifest) = head_end(&source_frames());
    let server = ServerConfig::default();
    let base = LoadConfig {
        seed: 5,
        ..Default::default()
    };
    let counts = [20usize, 1_000, 4_000];
    let curve = capacity_curve(&manifest, &server, &counts, &base);
    assert!(curve.iter().all(|r| r.completed == r.sessions));
    // Light load is comfortable; extreme load degrades per-session rate.
    assert!(curve[0].rebuffer_fraction == 0.0);
    assert!(curve[2].mean_session_bits_per_tick < curve[0].mean_session_bits_per_tick);
    assert!(curve[2].mean_rung <= curve[0].mean_rung);
    let knee = capacity_knee(&curve, 0.05).expect("some load level is sustainable");
    assert!(knee >= 20);
}
