//! Workspace smoke test: all eight `examples/` targets build, and the
//! `quickstart` example runs to successful exit.
//!
//! Driven through the same `cargo` that is running the test suite, in
//! the same target directory, so on a warm tree this only links the
//! example binaries.

use std::path::Path;
use std::process::Command;

/// The workspace root (this package lives in `<root>/tests`).
fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/.."))
}

fn cargo(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("spawn cargo")
}

#[test]
fn examples_build_and_quickstart_runs() {
    let build = cargo(&["build", "--package", "mm-examples", "--examples"]);
    assert!(
        build.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&build.stderr)
    );

    let run = cargo(&[
        "run",
        "--quiet",
        "--package",
        "mm-examples",
        "--example",
        "quickstart",
    ]);
    assert!(
        run.status.success(),
        "quickstart exited with {:?}:\n{}",
        run.status.code(),
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        stdout.contains("fps"),
        "quickstart produced no deployment report:\n{stdout}"
    );
}
