//! # `mmpool` — a hand-rolled spin/park worker pool with scoped joins
//!
//! The host-parallelism counterpart to the `mpsoc` platform simulator:
//! where `mpsoc` *models* a task graph spread across N processing
//! elements, this crate *runs* the same staged work on N OS threads.
//! ROADMAP item 2 asks for real core-count scaling curves (multi-rung
//! ladder encode, simulator shard sweeps) next to the modeled
//! PE-count curves, and this build environment has no registry access,
//! so the pool is built from `std` alone:
//!
//! * **Spin, then park.** An idle worker first spins a bounded number
//!   of times on a `try_lock` fast path (work usually arrives in
//!   bursts when a scope fans out), then parks on a condvar until a
//!   submitter wakes it. No busy-waiting while the pool is quiet.
//! * **Scoped joins.** [`WorkerPool::scope`] lets jobs borrow from the
//!   caller's stack, exactly like `std::thread::scope`: the scope
//!   does not return until every spawned job has completed, so a job
//!   may capture `&[Frame]` slices or `&Manifest` references without
//!   any cloning. Internally the job's lifetime is erased to put it on
//!   the shared queue; the join barrier is what makes that sound.
//! * **Deterministic merges.** [`WorkerPool::map`] fans one closure
//!   out over a slice and collects results *by input index*, not by
//!   completion order — so any worker count and any completion
//!   interleaving produce the same output. The delivery stack's
//!   bit-identical parallel drivers are built on this.
//!
//! A job that panics does not kill the worker: the panic is caught,
//! the pool keeps serving, and the owning scope re-raises the panic
//! after all of its jobs drained.
//!
//! # Example
//!
//! ```
//! use mmpool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let inputs = [1u64, 2, 3, 4, 5];
//! let squares = pool.map(&inputs, |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```
//!
//! # Nesting
//!
//! Scopes may be entered from any thread, including concurrently from
//! several threads, but a *job running on the pool* must not open a new
//! scope on the same pool: with every worker blocked in a nested join
//! there may be nobody left to run the nested jobs. This is enforced —
//! worker threads carry a thread-local pool identity, and entering
//! [`WorkerPool::scope`] from a job on the same pool panics instead of
//! deadlocking silently. Fan out once, at the call site. (Scoping onto
//! a *different* pool from a worker is allowed.)

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

thread_local! {
    /// Identity (address of the `Shared` allocation) of the pool this
    /// thread is a worker of; 0 on every non-worker thread. Lets
    /// [`WorkerPool::scope`] turn the nested-scope deadlock (a pool
    /// job joining a scope on its own pool, with every worker blocked
    /// in that join) into an immediate panic.
    static WORKER_OF: Cell<usize> = const { Cell::new(0) };
}

/// A queued unit of work. Jobs are lifetime-erased closures; the scope
/// that spawned one guarantees (by joining before it returns) that the
/// borrows inside outlive the execution.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How many `try_lock` attempts an idle worker makes before parking.
/// Work arrives in bursts (a scope fanning out N jobs), so a short spin
/// usually catches the next job without a syscall; past that, parking
/// is cheaper than burning a core.
const IDLE_SPINS: u32 = 64;

/// Shared pool state: the job queue and the park/wake machinery.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    work_ready: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Non-blocking pop used on the spin fast path.
    fn try_pop(&self) -> Option<Job> {
        self.queue.try_lock().ok().and_then(|mut q| q.pop_front())
    }
}

/// Book-keeping for one [`WorkerPool::scope`]: outstanding job count,
/// the join condvar, and whether any job panicked.
struct ScopeState {
    pending: Mutex<usize>,
    drained: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            drained: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    /// Blocks until every job spawned on this scope has finished.
    fn join(&self) {
        let mut n = self.pending.lock().expect("scope lock poisoned");
        while *n > 0 {
            n = self.drained.wait(n).expect("scope lock poisoned");
        }
    }

    /// Called by a worker when one of the scope's jobs finishes.
    fn complete(&self, job_panicked: bool) {
        if job_panicked {
            self.panicked.store(true, Ordering::Release);
        }
        let mut n = self.pending.lock().expect("scope lock poisoned");
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }
}

/// A fixed-size pool of spin/park worker threads.
///
/// Dropping the pool shuts it down: workers finish the jobs already
/// queued (every scope joins before its jobs could be orphaned, so in
/// practice the queue is empty) and exit.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mmpool-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with a [`Scope`] on which jobs borrowing from the
    /// caller's stack may be spawned. Returns only after every spawned
    /// job has completed — the join is what makes the borrows sound.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` itself, or panics if any spawned job
    /// panicked (after all jobs have drained, in both cases). Also
    /// panics immediately when called from a job running on this same
    /// pool: the nested join could block every worker with nobody left
    /// to run the nested jobs, so the silent deadlock is rejected up
    /// front. Scoping onto a *different* pool is fine.
    pub fn scope<'env, F, T>(&'env self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let pool_id = Arc::as_ptr(&self.shared) as usize;
        assert!(
            WORKER_OF.get() != pool_id,
            "mmpool: scope() entered from a job running on the same pool — \
             the nested join can deadlock with every worker blocked; \
             fan out once, at the call site"
        );
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _scope: std::marker::PhantomData,
        };
        // Run the body, but *always* join before unwinding further: a
        // spawned job may hold borrows into the body's stack frame.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        state.join();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                assert!(
                    !state.panicked.load(Ordering::Acquire),
                    "a job spawned on this pool scope panicked"
                );
                value
            }
        }
    }

    /// Applies `f` to every element of `items` on the pool and returns
    /// the results **in input order** — the deterministic-merge
    /// primitive: any worker count, any completion interleaving, same
    /// output `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `f` panicked for any element.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (item, slot) in items.iter().zip(&slots) {
                let f = &f;
                s.spawn(move || {
                    *slot.lock().expect("result slot poisoned") = Some(f(item));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("scope joined, so every slot is filled")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Set shutdown and notify *while holding the queue mutex*. A
        // worker transitioning from spin to park checks `shutdown`
        // under this lock right before `work_ready.wait`; storing the
        // flag without the lock could land in that window — the worker
        // has already seen `false`, the notification fires before it
        // waits, and it parks forever (and `join` below hangs with
        // it). Holding the lock serialises against that check: the
        // worker either still holds the lock (our store waits until it
        // does `wait`, which releases it, so `notify_all` reaches it)
        // or is already parked (the notification wakes it).
        {
            let _queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl core::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
///
/// `'scope` is the lifetime of the scope itself (data spawned jobs may
/// borrow), `'env` the pool borrow enclosing it.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'env WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, exactly like `std::thread::Scope`: it
    /// must be impossible to shorten the lifetime jobs may borrow at.
    _scope: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queues `f` on the pool. The closure may borrow anything that
    /// outlives `'scope`; the owning [`WorkerPool::scope`] call joins
    /// all jobs before returning. A panic inside `f` is caught on the
    /// worker and re-raised by the scope.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        *state.pending.lock().expect("scope lock poisoned") += 1;
        let state_for_job = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            state_for_job.complete(outcome.is_err());
        });
        // SAFETY: the job only borrows data outliving 'scope, and
        // `WorkerPool::scope` joins (waits for pending == 0) before it
        // returns — even when its body panics — so the erased borrows
        // are live for as long as the job can run.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        let mut queue = self.pool.shared.queue.lock().expect("pool queue poisoned");
        queue.push_back(job);
        drop(queue);
        self.pool.shared.work_ready.notify_one();
    }
}

impl<'scope, 'env> core::fmt::Debug for Scope<'scope, 'env> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &*self.state.pending.lock().expect("scope lock"))
            .finish()
    }
}

/// The worker body: spin briefly for bursty work, then park.
fn worker_loop(shared: &Shared) {
    WORKER_OF.set(shared as *const Shared as usize);
    loop {
        // Fast path: bounded spin on try_lock.
        let mut spun = 0;
        let job = loop {
            if let Some(job) = shared.try_pop() {
                break Some(job);
            }
            if shared.shutdown.load(Ordering::Acquire) || spun >= IDLE_SPINS {
                break None;
            }
            spun += 1;
            std::hint::spin_loop();
        };
        if let Some(job) = job {
            job();
            continue;
        }
        // Slow path: park until woken.
        let mut queue = shared.queue.lock().expect("pool queue poisoned");
        loop {
            if let Some(job) = queue.pop_front() {
                drop(queue);
                job();
                break;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            queue = shared.work_ready.wait(queue).expect("pool queue poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_returns_results_in_input_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let doubled = pool.map(&items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_is_identical_across_worker_counts() {
        let items: Vec<u32> = (0..64).collect();
        let expect: Vec<u32> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            assert_eq!(
                pool.map(&items, |&x| x.wrapping_mul(2654435761)),
                expect,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn scope_joins_before_returning() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..50 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // No synchronization needed: the scope has joined.
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn jobs_may_borrow_stack_data() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (1..=32).collect();
        let sums: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (chunk, slot) in data.chunks(8).zip(&sums) {
                s.spawn(move || {
                    *slot.lock().unwrap() = chunk.iter().sum();
                });
            }
        });
        let total: u64 = sums.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, 32 * 33 / 2);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        assert_eq!(pool.map(&[1, 2, 3], |&x: &i32| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("job boom"));
            });
        }));
        assert!(outcome.is_err(), "scope must re-raise the job panic");
        // The worker that caught the panic is still serving.
        assert_eq!(pool.map(&[10, 20], |&x: &i32| x / 2), vec![5, 10]);
    }

    #[test]
    fn scope_body_panic_still_joins_spawned_jobs() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_in = Arc::clone(&ran);
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            pool.scope(|s| {
                let ran = Arc::clone(&ran_in);
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
                panic!("body boom");
            });
        }));
        assert!(outcome.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "job drained despite panic");
    }

    #[test]
    fn sequential_scopes_reuse_the_same_workers() {
        let pool = WorkerPool::new(2);
        for round in 0..10 {
            let got = pool.map(&[round], |&r: &usize| r * r);
            assert_eq!(got, vec![round * round]);
        }
    }

    #[test]
    fn debug_formats() {
        let pool = WorkerPool::new(2);
        assert!(format!("{pool:?}").contains("workers"));
    }

    #[test]
    fn drop_right_after_work_does_not_hang() {
        // Hammers the shutdown path in the exact window the lost-wakeup
        // race lived in: a map just completed, so workers are mid
        // spin-to-park transition when the pool is dropped. Without
        // Drop taking the queue lock around the shutdown store, a
        // worker could check shutdown, miss the notification, and park
        // forever — hanging this test on join.
        for round in 0..200 {
            let pool = WorkerPool::new(4);
            let got = pool.map(&[round], |&r: &usize| r + 1);
            assert_eq!(got, vec![round + 1]);
            drop(pool);
        }
    }

    #[test]
    fn nested_scope_on_same_pool_panics_instead_of_deadlocking() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let p = &pool;
                s.spawn(move || {
                    // Would deadlock with every worker blocked in the
                    // nested join; must panic instead.
                    p.scope(|_| {});
                });
            });
        }));
        assert!(outcome.is_err(), "nested same-pool scope must be rejected");
        // The worker caught the panic and keeps serving.
        assert_eq!(pool.map(&[1, 2], |&x: &i32| x * 3), vec![3, 6]);
    }

    #[test]
    fn scope_on_a_different_pool_from_a_worker_is_allowed() {
        let outer = WorkerPool::new(2);
        let inner = WorkerPool::new(2);
        let got = outer.map(&[1u64, 2, 3], |&x| inner.map(&[x], |&y| y * 2)[0]);
        assert_eq!(got, vec![2, 4, 6]);
    }
}
