//! Black-frame detection — the Replay DVR's commercial cue.
//!
//! Paper §5: *"Replay uses black frames between programs and commercials
//! to identify television."* A frame is black when its mean luma is low
//! *and* its luma spread is small (a dark night scene has low mean but
//! high spread; a separator frame has neither).

use video::frame::Frame;

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlackFrameConfig {
    /// Maximum mean luma for a black frame.
    pub max_mean_luma: f64,
    /// Maximum luma standard deviation for a black frame.
    pub max_luma_std: f64,
}

impl Default for BlackFrameConfig {
    /// Mean ≤ 32, standard deviation ≤ 12 — tolerant of broadcast noise.
    fn default() -> Self {
        Self {
            max_mean_luma: 32.0,
            max_luma_std: 12.0,
        }
    }
}

/// The black-frame detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlackFrameDetector {
    config: BlackFrameConfig,
}

impl BlackFrameDetector {
    /// Creates a detector with the given thresholds.
    #[must_use]
    pub fn new(config: BlackFrameConfig) -> Self {
        Self { config }
    }

    /// The thresholds.
    #[must_use]
    pub fn config(&self) -> &BlackFrameConfig {
        &self.config
    }

    /// `true` if `frame` is a black separator frame.
    #[must_use]
    pub fn is_black(&self, frame: &Frame) -> bool {
        let mean = frame.mean_luma();
        if mean > self.config.max_mean_luma {
            return false;
        }
        let var = frame
            .luma()
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / frame.luma().len() as f64;
        var.sqrt() <= self.config.max_luma_std
    }

    /// Per-frame black flags for a sequence.
    #[must_use]
    pub fn scan(&self, frames: &[Frame]) -> Vec<bool> {
        frames.iter().map(|f| self.is_black(f)).collect()
    }

    /// Runs of consecutive black frames of at least `min_run` frames,
    /// returned as `(start, len)` pairs.
    #[must_use]
    pub fn black_runs(&self, frames: &[Frame], min_run: usize) -> Vec<(usize, usize)> {
        let flags = self.scan(frames);
        let mut runs = Vec::new();
        let mut start = None;
        for (i, &b) in flags.iter().enumerate() {
            match (b, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    if i - s >= min_run {
                        runs.push((s, i - s));
                    }
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            if flags.len() - s >= min_run {
                runs.push((s, flags.len() - s));
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use video::synth::SequenceGen;

    #[test]
    fn detects_true_black_frames() {
        let det = BlackFrameDetector::default();
        assert!(det.is_black(&Frame::black(32, 32).unwrap()));
        assert!(!det.is_black(&Frame::grey(32, 32).unwrap()));
    }

    #[test]
    fn dark_textured_scene_is_not_black() {
        let mut g = SequenceGen::new(31);
        let mut f = g.textured_frame(32, 32);
        // Darken but keep the texture: subtract uniformly.
        for v in f.luma_mut() {
            *v = v.saturating_sub(100);
        }
        let det = BlackFrameDetector::default();
        // Mean may be low, but spread keeps it from reading as a separator.
        if f.mean_luma() <= det.config().max_mean_luma {
            assert!(!det.is_black(&f), "textured dark frame misread as black");
        }
    }

    #[test]
    fn noisy_black_frames_still_detected() {
        let mut g = SequenceGen::new(32);
        let mut f = Frame::black(32, 32).unwrap();
        g.add_noise(&mut f, 4.0);
        assert!(BlackFrameDetector::default().is_black(&f));
    }

    #[test]
    fn black_runs_found_with_min_length() {
        let mut g = SequenceGen::new(33);
        let mut frames = Vec::new();
        frames.extend((0..5).map(|_| g.textured_frame(32, 32)));
        frames.extend((0..3).map(|_| Frame::black(32, 32).unwrap()));
        frames.extend((0..4).map(|_| g.textured_frame(32, 32)));
        frames.push(Frame::black(32, 32).unwrap()); // single, below min_run
        frames.extend((0..2).map(|_| g.textured_frame(32, 32)));
        let runs = BlackFrameDetector::default().black_runs(&frames, 2);
        assert_eq!(runs, vec![(5, 3)]);
    }

    #[test]
    fn trailing_run_is_reported() {
        let mut g = SequenceGen::new(34);
        let mut frames = vec![g.textured_frame(32, 32)];
        frames.extend((0..3).map(|_| Frame::black(32, 32).unwrap()));
        let runs = BlackFrameDetector::default().black_runs(&frames, 2);
        assert_eq!(runs, vec![(1, 3)]);
    }

    #[test]
    fn scan_length_matches_input() {
        let mut g = SequenceGen::new(35);
        let frames: Vec<_> = (0..7).map(|_| g.textured_frame(32, 32)).collect();
        assert_eq!(BlackFrameDetector::default().scan(&frames).len(), 7);
    }
}
