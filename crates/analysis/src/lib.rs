//! # `analysis` — the content-analysis systems of Wolf's §5
//!
//! *"Content analysis tools use characteristics of the multimedia material
//! to classify the material either as a whole or into its constituent
//! components."* This crate implements every example the paper names:
//!
//! * [`blackframe`] — the Replay DVR's black-frame separator cue.
//! * [`colorburst`] — the early-VCR "commercials are in color" rule,
//!   including the failure mode the paper implies (color programs).
//! * [`commercial`] — the full commercial-break detector built from the
//!   separator cue, scored against broadcast ground truth (E9).
//! * [`shots`] — histogram-based shot-boundary detection and scene
//!   segmentation ("parse television content into segments", E10).
//! * [`audiofeat`] + [`classify`] — music/speech/noise categorization
//!   from short-time audio features (E11).
//!
//! # Example
//!
//! ```
//! use analysis::commercial::CommercialDetector;
//! use video::synth::SequenceGen;
//!
//! let (frames, labels) = SequenceGen::new(1).broadcast(32, 32, 12, 8, 1, 3, false, 1.0);
//! let det = CommercialDetector::default();
//! let flags = det.skip_flags(&frames);
//! let score = CommercialDetector::score(&flags, &labels);
//! assert!(score.f1() > 0.9);
//! ```

pub mod audiofeat;
pub mod blackframe;
pub mod classify;
pub mod colorburst;
pub mod commercial;
pub mod shots;

pub use blackframe::BlackFrameDetector;
pub use classify::{AudioClass, Classifier};
pub use commercial::CommercialDetector;
pub use shots::ShotDetector;
