//! Color-presence detection — the early VCR commercial cue.
//!
//! Paper §5: *"Early VCR add-ons identified commercials using the color
//! burst, under the assumption that many movies on broadcast TV were
//! black-and-white while the commercials were in color."* In the digital
//! domain the analogue of the color burst is chroma saturation: a
//! monochrome program sits at Cb = Cr = 128, a commercial does not.

use video::frame::Frame;

/// Classification of a frame's colorfulness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorClass {
    /// Essentially no chroma content.
    Monochrome,
    /// Clear chroma content.
    Color,
}

/// Chroma-saturation threshold detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColorBurstDetector {
    /// Mean chroma deviation above which a frame counts as color.
    pub threshold: f64,
}

impl Default for ColorBurstDetector {
    /// Threshold 6.0 — tolerant of slight chroma noise on B&W material.
    fn default() -> Self {
        Self { threshold: 6.0 }
    }
}

impl ColorBurstDetector {
    /// Creates a detector with an explicit threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        Self { threshold }
    }

    /// Classifies one frame.
    #[must_use]
    pub fn classify(&self, frame: &Frame) -> ColorClass {
        if frame.chroma_saturation() > self.threshold {
            ColorClass::Color
        } else {
            ColorClass::Monochrome
        }
    }

    /// Flags the frames that would be skipped under the old-VCR rule
    /// ("skip everything in color"). Only meaningful when the program
    /// really is monochrome — the assumption the paper calls out.
    #[must_use]
    pub fn color_frames(&self, frames: &[Frame]) -> Vec<bool> {
        frames
            .iter()
            .map(|f| self.classify(f) == ColorClass::Color)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use video::synth::SequenceGen;

    #[test]
    fn monochrome_vs_color() {
        let mut g = SequenceGen::new(36);
        let det = ColorBurstDetector::default();
        assert_eq!(
            det.classify(&g.monochrome_frame(32, 32)),
            ColorClass::Monochrome
        );
        assert_eq!(det.classify(&g.commercial_frame(32, 32)), ColorClass::Color);
    }

    #[test]
    fn rule_works_on_bw_programs_fails_on_color_programs() {
        let mut g = SequenceGen::new(37);
        let det = ColorBurstDetector::default();
        // B&W program + color commercials: rule separates them.
        let (bw_frames, bw_labels) = g.broadcast(32, 32, 6, 4, 1, 1, true, 1.0);
        let flags = det.color_frames(&bw_frames);
        let mut correct = 0;
        for (flag, label) in flags.iter().zip(&bw_labels) {
            let is_commercial = matches!(label, video::synth::BroadcastLabel::Commercial { .. });
            if *flag == is_commercial || matches!(label, video::synth::BroadcastLabel::Black) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / flags.len() as f64 > 0.9,
            "rule should work on B&W programs"
        );

        // Color program: every program frame is also flagged -> rule broken.
        let (color_frames_seq, labels) = g.broadcast(32, 32, 6, 4, 1, 1, false, 1.0);
        let flags = det.color_frames(&color_frames_seq);
        let program_flagged = flags
            .iter()
            .zip(&labels)
            .filter(|(f, l)| **f && matches!(l, video::synth::BroadcastLabel::Program { .. }))
            .count();
        assert!(
            program_flagged > 0,
            "color programs must defeat the color-burst rule (the paper's point)"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_panics() {
        let _ = ColorBurstDetector::new(-1.0);
    }
}
