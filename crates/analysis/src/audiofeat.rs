//! Audio feature extraction for content classification.
//!
//! Paper §5: *"Audio content analysis has been used to categorize and
//! search for music. Algorithms have had some success in categorizing
//! music into categories and identifying salient features."* These are
//! the classic short-time features such systems use: zero-crossing rate,
//! energy, spectral centroid, rolloff, and flux.

use signal::fft::Fft;
use signal::window::{Window, WindowKind};

/// The feature vector for one analysis window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AudioFeatures {
    /// Zero crossings per sample (0..1).
    pub zero_crossing_rate: f64,
    /// Mean squared amplitude.
    pub energy: f64,
    /// Spectral centroid as a fraction of Nyquist (0..1).
    pub centroid: f64,
    /// Frequency (fraction of Nyquist) below which 85% of power lies.
    pub rolloff: f64,
    /// L2 distance between consecutive normalized power spectra.
    pub flux: f64,
}

impl AudioFeatures {
    /// Features as a fixed array (for distance computations).
    #[must_use]
    pub fn as_array(&self) -> [f64; 5] {
        [
            self.zero_crossing_rate,
            self.energy,
            self.centroid,
            self.rolloff,
            self.flux,
        ]
    }
}

/// Streaming feature extractor over fixed-size windows.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    window_len: usize,
    fft: Fft,
    window: Window,
    prev_spectrum: Option<Vec<f64>>,
}

impl FeatureExtractor {
    /// Creates an extractor for power-of-two windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is not a power of two.
    #[must_use]
    pub fn new(window_len: usize) -> Self {
        Self {
            window_len,
            fft: Fft::new(window_len),
            window: Window::new(WindowKind::Hann, window_len),
            prev_spectrum: None,
        }
    }

    /// The configured window length.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Extracts features from one window of samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != window_len`.
    pub fn extract(&mut self, samples: &[f64]) -> AudioFeatures {
        assert_eq!(samples.len(), self.window_len, "window length mismatch");
        // Time-domain features.
        let zc = samples
            .windows(2)
            .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
            .count() as f64
            / (samples.len() - 1) as f64;
        let energy = samples.iter().map(|v| v * v).sum::<f64>() / samples.len() as f64;

        // Spectral features.
        let windowed = self.window.applied(samples);
        let power = self.fft.power_spectrum(&windowed);
        let total: f64 = power.iter().sum::<f64>().max(1e-30);
        let centroid = power
            .iter()
            .enumerate()
            .map(|(i, &p)| i as f64 * p)
            .sum::<f64>()
            / total
            / (power.len() - 1) as f64;
        let mut acc = 0.0;
        let mut rolloff = 1.0;
        for (i, &p) in power.iter().enumerate() {
            acc += p;
            if acc >= 0.85 * total {
                rolloff = i as f64 / (power.len() - 1) as f64;
                break;
            }
        }
        let norm: Vec<f64> = power.iter().map(|&p| p / total).collect();
        let flux = match &self.prev_spectrum {
            Some(prev) => prev
                .iter()
                .zip(&norm)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt(),
            None => 0.0,
        };
        self.prev_spectrum = Some(norm);

        AudioFeatures {
            zero_crossing_rate: zc,
            energy,
            centroid,
            rolloff,
            flux,
        }
    }

    /// Extracts features for every full window in `samples` (hop =
    /// window length).
    pub fn extract_all(&mut self, samples: &[f64]) -> Vec<AudioFeatures> {
        samples
            .chunks_exact(self.window_len)
            .map(|w| self.extract(w))
            .collect()
    }

    /// Clears the flux history.
    pub fn reset(&mut self) {
        self.prev_spectrum = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::gen::{SignalGen, ToneSpec};

    #[test]
    fn noise_has_higher_zcr_than_low_tone() {
        let mut g = SignalGen::new(61);
        let mut fx = FeatureExtractor::new(1024);
        let tone = g.tone(&ToneSpec::new(200.0, 1.0), 8000.0, 1024);
        let noise = g.white_noise(1.0, 1024);
        let ft = fx.extract(&tone);
        fx.reset();
        let fun = fx.extract(&noise);
        assert!(fun.zero_crossing_rate > 3.0 * ft.zero_crossing_rate);
    }

    #[test]
    fn centroid_tracks_tone_frequency() {
        let mut g = SignalGen::new(62);
        let mut fx = FeatureExtractor::new(1024);
        let low = fx.extract(&g.tone(&ToneSpec::new(300.0, 1.0), 8000.0, 1024));
        fx.reset();
        let high = fx.extract(&g.tone(&ToneSpec::new(3000.0, 1.0), 8000.0, 1024));
        assert!(high.centroid > 5.0 * low.centroid);
        // 3000 Hz / 4000 Hz Nyquist = 0.75.
        assert!((high.centroid - 0.75).abs() < 0.05, "{}", high.centroid);
    }

    #[test]
    fn noise_rolloff_exceeds_tone_rolloff() {
        let mut g = SignalGen::new(63);
        let mut fx = FeatureExtractor::new(1024);
        let tone = fx.extract(&g.tone(&ToneSpec::new(500.0, 1.0), 8000.0, 1024));
        fx.reset();
        let noise = fx.extract(&g.white_noise(1.0, 1024));
        assert!(noise.rolloff > 2.0 * tone.rolloff);
    }

    #[test]
    fn flux_small_within_steady_tone_large_across_change() {
        let mut g = SignalGen::new(64);
        let mut fx = FeatureExtractor::new(512);
        let a = g.tone(&ToneSpec::new(400.0, 1.0), 8000.0, 512);
        let b = g.tone(&ToneSpec::new(400.0, 1.0), 8000.0, 512);
        let c = g.white_noise(1.0, 512);
        fx.extract(&a);
        let steady = fx.extract(&b);
        let change = fx.extract(&c);
        assert!(change.flux > 3.0 * steady.flux);
    }

    #[test]
    fn extract_all_windows_count() {
        let mut g = SignalGen::new(65);
        let mut fx = FeatureExtractor::new(256);
        let x = g.white_noise(1.0, 256 * 5 + 100);
        assert_eq!(fx.extract_all(&x).len(), 5);
    }

    #[test]
    fn silence_features_are_near_zero() {
        let mut fx = FeatureExtractor::new(256);
        let f = fx.extract(&vec![0.0; 256]);
        assert_eq!(f.energy, 0.0);
        assert_eq!(f.zero_crossing_rate, 0.0);
    }
}
