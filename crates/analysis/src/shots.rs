//! Shot-boundary (cut) detection and scene segmentation.
//!
//! Paper §5: *"A number of research groups have developed algorithms that
//! can parse various types of television content into segments. Such
//! algorithms would allow a viewer to skip an interview segment, for
//! example."* The detector uses the classic luma-histogram-difference
//! cue: a hard cut replaces the scene's intensity distribution wholesale,
//! while motion within a shot barely moves it.

use video::frame::Frame;

/// Shot detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShotConfig {
    /// Histogram L1 distance above which a frame pair is a cut.
    pub cut_threshold: f64,
    /// Minimum frames between reported cuts (debounce).
    pub min_shot_len: usize,
}

impl Default for ShotConfig {
    /// Threshold 0.3 on L1 histogram distance, shots at least 3 frames.
    fn default() -> Self {
        Self {
            cut_threshold: 0.3,
            min_shot_len: 3,
        }
    }
}

/// L1 distance between two normalized histograms (0 = identical, 2 =
/// disjoint).
#[must_use]
pub fn histogram_distance(a: &[f64; 64], b: &[f64; 64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Histogram-based shot detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShotDetector {
    config: ShotConfig,
}

/// A contiguous shot: `[start, end)` frame indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shot {
    /// First frame of the shot.
    pub start: usize,
    /// One past the last frame.
    pub end: usize,
}

impl Shot {
    /// Number of frames in the shot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the shot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl ShotDetector {
    /// Creates a detector.
    #[must_use]
    pub fn new(config: ShotConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ShotConfig {
        &self.config
    }

    /// Frame indices where a new shot begins (a cut between `i-1` and
    /// `i` reports index `i`).
    #[must_use]
    pub fn detect_cuts(&self, frames: &[Frame]) -> Vec<usize> {
        if frames.len() < 2 {
            return Vec::new();
        }
        let hists: Vec<[f64; 64]> = frames.iter().map(|f| f.luma_histogram()).collect();
        let mut cuts = Vec::new();
        let mut last_cut = 0usize;
        for i in 1..frames.len() {
            let d = histogram_distance(&hists[i - 1], &hists[i]);
            if d > self.config.cut_threshold && i - last_cut >= self.config.min_shot_len {
                cuts.push(i);
                last_cut = i;
            }
        }
        cuts
    }

    /// Splits the sequence into shots at the detected cuts.
    #[must_use]
    pub fn segment(&self, frames: &[Frame]) -> Vec<Shot> {
        let cuts = self.detect_cuts(frames);
        let mut shots = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0usize;
        for &c in &cuts {
            shots.push(Shot { start, end: c });
            start = c;
        }
        if start < frames.len() {
            shots.push(Shot {
                start,
                end: frames.len(),
            });
        }
        shots
    }

    /// Scores detected cuts against ground truth with a positional
    /// tolerance, returning the detection tally.
    #[must_use]
    pub fn score(
        detected: &[usize],
        truth: &[usize],
        tolerance: usize,
    ) -> signal::stats::Detection {
        let mut used = vec![false; detected.len()];
        let mut tp = 0usize;
        for &t in truth {
            let hit = detected
                .iter()
                .enumerate()
                .find(|(i, &d)| !used[*i] && d.abs_diff(t) <= tolerance);
            if let Some((i, _)) = hit {
                used[i] = true;
                tp += 1;
            }
        }
        signal::stats::Detection::new(tp, detected.len() - tp, truth.len() - tp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use video::synth::SequenceGen;

    #[test]
    fn finds_hard_cuts_exactly() {
        let mut g = SequenceGen::new(41);
        let (frames, truth) = g.scene_sequence(48, 48, &[6, 7, 5]);
        let cuts = ShotDetector::default().detect_cuts(&frames);
        let score = ShotDetector::score(&cuts, &truth, 0);
        assert!(
            score.f1() > 0.99,
            "clean cuts should be found exactly: {score}"
        );
    }

    #[test]
    fn robust_to_moderate_noise() {
        let mut g = SequenceGen::new(42);
        let (mut frames, truth) = g.scene_sequence(48, 48, &[8, 8, 8, 8]);
        for f in &mut frames {
            g.add_noise(f, 6.0);
        }
        let cuts = ShotDetector::default().detect_cuts(&frames);
        let score = ShotDetector::score(&cuts, &truth, 1);
        assert!(score.f1() > 0.8, "noise broke the detector: {score}");
    }

    #[test]
    fn no_cuts_within_a_panning_shot() {
        let mut g = SequenceGen::new(43);
        let frames = g.panning_sequence(48, 48, 12, 2, 1);
        let cuts = ShotDetector::default().detect_cuts(&frames);
        assert!(cuts.is_empty(), "panning misread as cuts at {cuts:?}");
    }

    #[test]
    fn segments_cover_the_sequence() {
        let mut g = SequenceGen::new(44);
        let (frames, _) = g.scene_sequence(48, 48, &[5, 6, 7]);
        let shots = ShotDetector::default().segment(&frames);
        assert_eq!(shots.first().unwrap().start, 0);
        assert_eq!(shots.last().unwrap().end, frames.len());
        for w in shots.windows(2) {
            assert_eq!(w[0].end, w[1].start, "shots must tile the sequence");
        }
        let total: usize = shots.iter().map(Shot::len).sum();
        assert_eq!(total, frames.len());
    }

    #[test]
    fn debounce_suppresses_adjacent_cuts() {
        let det = ShotDetector::new(ShotConfig {
            cut_threshold: 0.0, // everything is a "cut"
            min_shot_len: 4,
        });
        let mut g = SequenceGen::new(45);
        let frames: Vec<_> = (0..12).map(|_| g.textured_frame(32, 32)).collect();
        let cuts = det.detect_cuts(&frames);
        for w in cuts.windows(2) {
            assert!(w[1] - w[0] >= 4);
        }
    }

    #[test]
    fn score_counts_misses_and_false_alarms() {
        let d = ShotDetector::score(&[10, 20, 31], &[10, 30, 50], 1);
        assert_eq!(d.tp, 2); // 10 and 31~30
        assert_eq!(d.fp, 1); // 20
        assert_eq!(d.fn_, 1); // 50
    }

    #[test]
    fn short_sequences_have_no_cuts() {
        let mut g = SequenceGen::new(46);
        assert!(ShotDetector::default()
            .detect_cuts(&[g.textured_frame(32, 32)])
            .is_empty());
        assert!(ShotDetector::default().detect_cuts(&[]).is_empty());
    }
}
