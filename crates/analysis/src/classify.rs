//! Audio class recognition: a nearest-centroid classifier over the
//! short-time features.
//!
//! Paper §5: music categorization "can then be used to recommend similar
//! pieces of music" and is "generally conducted off-line on a server" —
//! the classifier here is deliberately lightweight, the kind of model a
//! consumer MPSoC could also run locally.

use crate::audiofeat::{AudioFeatures, FeatureExtractor};

/// Audio content classes distinguished by the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AudioClass {
    /// Speech-like: alternating voiced/unvoiced, moderate ZCR, bursty.
    Speech,
    /// Music-like: harmonic, steady, low flux.
    Music,
    /// Noise-like: broadband, high ZCR and rolloff.
    Noise,
}

impl core::fmt::Display for AudioClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            AudioClass::Speech => "speech",
            AudioClass::Music => "music",
            AudioClass::Noise => "noise",
        })
    }
}

/// A trained nearest-centroid model.
#[derive(Debug, Clone)]
pub struct Classifier {
    centroids: Vec<(AudioClass, [f64; 5])>,
    /// Per-dimension scale for normalized distance.
    scale: [f64; 5],
    window_len: usize,
}

/// Errors from training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainError {
    /// A class had no training windows.
    EmptyClass(AudioClass),
    /// No training data at all.
    NoData,
}

impl core::fmt::Display for TrainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TrainError::EmptyClass(c) => write!(f, "no training windows for class {c}"),
            TrainError::NoData => f.write_str("no training data"),
        }
    }
}

impl std::error::Error for TrainError {}

impl Classifier {
    /// Trains centroids from labelled signals. Each `(class, samples)`
    /// pair is windowed and averaged.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if any class contributes no full window.
    pub fn train(window_len: usize, data: &[(AudioClass, &[f64])]) -> Result<Self, TrainError> {
        if data.is_empty() {
            return Err(TrainError::NoData);
        }
        let mut centroids = Vec::new();
        let mut all_features: Vec<[f64; 5]> = Vec::new();
        for &(class, samples) in data {
            let mut fx = FeatureExtractor::new(window_len);
            let feats = fx.extract_all(samples);
            if feats.is_empty() {
                return Err(TrainError::EmptyClass(class));
            }
            let mut mean = [0.0f64; 5];
            for f in &feats {
                for (m, v) in mean.iter_mut().zip(f.as_array()) {
                    *m += v;
                }
                all_features.push(f.as_array());
            }
            for m in &mut mean {
                *m /= feats.len() as f64;
            }
            centroids.push((class, mean));
        }
        // Normalize dimensions by their global spread so energy (large
        // dynamic range) does not drown ZCR.
        let mut scale = [1.0f64; 5];
        for d in 0..5 {
            let vals: Vec<f64> = all_features.iter().map(|f| f[d]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            scale[d] = var.sqrt().max(1e-9);
        }
        Ok(Self {
            centroids,
            scale,
            window_len,
        })
    }

    /// The analysis window length.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Classifies one feature vector.
    #[must_use]
    pub fn classify_features(&self, f: &AudioFeatures) -> AudioClass {
        let fa = f.as_array();
        self.centroids
            .iter()
            .min_by(|a, b| {
                let da = self.distance(&fa, &a.1);
                let db = self.distance(&fa, &b.1);
                da.total_cmp(&db)
            })
            .map(|(c, _)| *c)
            .expect("classifier always has centroids")
    }

    /// Classifies a signal by majority vote over its windows. Returns
    /// `None` if the signal is shorter than one window.
    #[must_use]
    pub fn classify(&self, samples: &[f64]) -> Option<AudioClass> {
        let mut fx = FeatureExtractor::new(self.window_len);
        let feats = fx.extract_all(samples);
        if feats.is_empty() {
            return None;
        }
        let mut votes: std::collections::HashMap<AudioClass, usize> =
            std::collections::HashMap::new();
        for f in &feats {
            *votes.entry(self.classify_features(f)).or_insert(0) += 1;
        }
        votes.into_iter().max_by_key(|&(_, n)| n).map(|(c, _)| c)
    }

    fn distance(&self, a: &[f64; 5], b: &[f64; 5]) -> f64 {
        (0..5)
            .map(|d| {
                let diff = (a[d] - b[d]) / self.scale[d];
                diff * diff
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::gen::SignalGen;

    const FS: f64 = 8000.0;
    const WIN: usize = 512;

    fn corpus(seed: u64, len: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut g = SignalGen::new(seed);
        let (speech, _) = g.speech_sentence(FS, len);
        let music = g.music(261.0, FS, len);
        let noise = g.white_noise(0.4, len);
        (speech, music, noise)
    }

    #[test]
    fn separates_the_three_classes() {
        let (speech, music, noise) = corpus(71, 8192);
        let clf = Classifier::train(
            WIN,
            &[
                (AudioClass::Speech, &speech),
                (AudioClass::Music, &music),
                (AudioClass::Noise, &noise),
            ],
        )
        .unwrap();
        // Held-out data from different seeds.
        let (s2, m2, n2) = corpus(72, 8192);
        assert_eq!(clf.classify(&s2), Some(AudioClass::Speech));
        assert_eq!(clf.classify(&m2), Some(AudioClass::Music));
        assert_eq!(clf.classify(&n2), Some(AudioClass::Noise));
    }

    #[test]
    fn accuracy_beats_chance_across_seeds() {
        let (speech, music, noise) = corpus(73, 8192);
        let clf = Classifier::train(
            WIN,
            &[
                (AudioClass::Speech, &speech),
                (AudioClass::Music, &music),
                (AudioClass::Noise, &noise),
            ],
        )
        .unwrap();
        let mut correct = 0;
        let mut total = 0;
        for seed in 80..90 {
            let (s, m, n) = corpus(seed, 4096);
            for (truth, x) in [
                (AudioClass::Speech, s),
                (AudioClass::Music, m),
                (AudioClass::Noise, n),
            ] {
                total += 1;
                if clf.classify(&x) == Some(truth) {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.7, "accuracy {acc:.2} barely beats chance (0.33)");
    }

    #[test]
    fn short_input_returns_none() {
        let (speech, music, noise) = corpus(74, 4096);
        let clf = Classifier::train(
            WIN,
            &[
                (AudioClass::Speech, &speech),
                (AudioClass::Music, &music),
                (AudioClass::Noise, &noise),
            ],
        )
        .unwrap();
        assert_eq!(clf.classify(&[0.0; 10]), None);
    }

    #[test]
    fn empty_class_rejected() {
        let err = Classifier::train(WIN, &[(AudioClass::Music, &[0.0; 8][..])]).unwrap_err();
        assert_eq!(err, TrainError::EmptyClass(AudioClass::Music));
        assert_eq!(Classifier::train(WIN, &[]).unwrap_err(), TrainError::NoData);
    }
}
