//! Commercial-break detection — the DVR feature of paper §5.
//!
//! *"The Replay (TM) digital video recorder, for example, automatically
//! identifies commercials and skips them."* The detector combines the
//! black-frame separator cue with break-length plausibility: a commercial
//! break is a region bracketed by black-frame runs whose length sits in a
//! plausible range. Frames inside detected breaks (and the separators
//! themselves) are marked skippable.

use video::frame::Frame;
use video::synth::BroadcastLabel;

use crate::blackframe::{BlackFrameConfig, BlackFrameDetector};

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommercialConfig {
    /// Black-frame thresholds.
    pub black: BlackFrameConfig,
    /// Minimum consecutive black frames to count as a separator.
    pub min_black_run: usize,
    /// Minimum frames between separators to count as a break body.
    pub min_break_len: usize,
    /// Maximum frames between separators to count as a break body.
    pub max_break_len: usize,
}

impl Default for CommercialConfig {
    /// Separators of ≥2 black frames; break bodies of 2..=120 frames.
    /// `max_break_len` is the load-bearing prior: it must sit below the
    /// typical program-segment length, otherwise the span between one
    /// break's trailing separator and the next break's leading separator
    /// would itself look like a break.
    fn default() -> Self {
        Self {
            black: BlackFrameConfig::default(),
            min_black_run: 2,
            min_break_len: 2,
            max_break_len: 120,
        }
    }
}

/// A detected skippable interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipInterval {
    /// First skippable frame.
    pub start: usize,
    /// One past the last skippable frame.
    pub end: usize,
}

impl SkipInterval {
    /// Interval length in frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for an empty interval.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The commercial detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommercialDetector {
    config: CommercialConfig,
}

impl CommercialDetector {
    /// Creates a detector.
    #[must_use]
    pub fn new(config: CommercialConfig) -> Self {
        Self { config }
    }

    /// Finds skippable intervals: each pair of *consecutive* black-frame
    /// runs whose gap length is plausible (short enough to be a break
    /// body, not a program segment) becomes
    /// `[first_run.start, second_run.end)`. Overlapping intervals are
    /// merged, so a break containing several spots separated by black
    /// chains into one interval.
    #[must_use]
    pub fn detect(&self, frames: &[Frame]) -> Vec<SkipInterval> {
        let runs = BlackFrameDetector::new(self.config.black)
            .black_runs(frames, self.config.min_black_run);
        let mut intervals: Vec<SkipInterval> = Vec::new();
        for w in runs.windows(2) {
            let (s1, l1) = w[0];
            let (s2, l2) = w[1];
            let gap = s2 - (s1 + l1);
            if gap >= self.config.min_break_len && gap <= self.config.max_break_len {
                intervals.push(SkipInterval {
                    start: s1,
                    end: s2 + l2,
                });
            }
        }
        // Merge overlaps.
        intervals.sort_by_key(|iv| iv.start);
        let mut merged: Vec<SkipInterval> = Vec::new();
        for iv in intervals {
            match merged.last_mut() {
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => merged.push(iv),
            }
        }
        merged
    }

    /// Per-frame skip flags.
    #[must_use]
    pub fn skip_flags(&self, frames: &[Frame]) -> Vec<bool> {
        let mut flags = vec![false; frames.len()];
        for iv in self.detect(frames) {
            for f in flags
                .iter_mut()
                .take(iv.end.min(frames.len()))
                .skip(iv.start)
            {
                *f = true;
            }
        }
        flags
    }

    /// Scores skip flags against broadcast ground truth, frame by frame.
    #[must_use]
    pub fn score(flags: &[bool], labels: &[BroadcastLabel]) -> signal::stats::Detection {
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        for (flag, label) in flags.iter().zip(labels) {
            match (flag, label.is_skippable()) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
        signal::stats::Detection::new(tp, fp, fn_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use video::synth::SequenceGen;

    #[test]
    fn clean_broadcast_breaks_found() {
        let mut g = SequenceGen::new(51);
        let (frames, labels) = g.broadcast(32, 32, 150, 12, 2, 3, false, 1.0);
        let det = CommercialDetector::default();
        let flags = det.skip_flags(&frames);
        let score = CommercialDetector::score(&flags, &labels);
        assert!(score.f1() > 0.95, "clean broadcast: {score}");
    }

    #[test]
    fn noisy_broadcast_still_detected() {
        let mut g = SequenceGen::new(52);
        let (frames, labels) = g.broadcast(32, 32, 140, 10, 3, 3, false, 5.0);
        let det = CommercialDetector::default();
        let flags = det.skip_flags(&frames);
        let score = CommercialDetector::score(&flags, &labels);
        assert!(score.f1() > 0.9, "noisy broadcast: {score}");
    }

    #[test]
    fn program_without_breaks_is_untouched() {
        let mut g = SequenceGen::new(53);
        let frames = g.panning_sequence(32, 32, 30, 1, 0);
        let det = CommercialDetector::default();
        assert!(det.detect(&frames).is_empty());
        assert!(det.skip_flags(&frames).iter().all(|&f| !f));
    }

    #[test]
    fn implausibly_long_gaps_are_rejected() {
        let mut g = SequenceGen::new(54);
        let det = CommercialDetector::new(CommercialConfig {
            max_break_len: 5,
            ..Default::default()
        });
        // Break body of 12 frames exceeds max_break_len = 5.
        let (frames, _) = g.broadcast(32, 32, 10, 12, 1, 3, false, 0.5);
        assert!(det.detect(&frames).is_empty());
    }

    #[test]
    fn intervals_merge_for_multi_spot_breaks() {
        let mut g = SequenceGen::new(55);
        // Two breaks close together: black-program-black-commercial-black…
        let (frames, _) = g.broadcast(32, 32, 8, 6, 3, 2, false, 0.5);
        let det = CommercialDetector::default();
        let intervals = det.detect(&frames);
        for w in intervals.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "intervals must not overlap after merge"
            );
        }
    }

    #[test]
    fn score_counts_frame_level_errors() {
        use video::synth::BroadcastLabel as L;
        let flags = [true, true, false, false];
        let labels = [
            L::Commercial { spot: 0 },
            L::Program { scene: 0 },
            L::Commercial { spot: 0 },
            L::Program { scene: 0 },
        ];
        let d = CommercialDetector::score(&flags, &labels);
        assert_eq!((d.tp, d.fp, d.fn_), (1, 1, 1));
    }
}
