//! Descriptive statistics used across experiment harnesses.

/// Summary statistics for a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `values`.
    ///
    /// Returns `None` for an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Some(Self {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample `p`-quantile (nearest-rank, `p` in `[0,1]`).
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((p * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    Some(sorted[idx])
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` when lengths differ, the sample is shorter than 2, or
/// either variance is zero.
#[must_use]
pub fn correlation(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Precision / recall / F1 for a detection task.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Detection {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Detection {
    /// Creates a detection tally.
    #[must_use]
    pub fn new(tp: usize, fp: usize, fn_: usize) -> Self {
        Self { tp, fp, fn_ }
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when nothing was there to find.
    #[must_use]
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall; 0.0 when both are zero.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl core::fmt::Display for Detection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} (tp={} fp={} fn={})",
            self.precision(),
            self.recall(),
            self.f1(),
            self.tp,
            self.fp,
            self.fn_
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_hand_computed() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn quantiles() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let z = [3.0, 2.0, 1.0];
        assert!((correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&x, &z).unwrap() + 1.0).abs() < 1e-12);
        assert!(correlation(&x, &[1.0, 1.0, 1.0]).is_none(), "zero variance");
        assert!(correlation(&x, &[1.0]).is_none(), "length mismatch");
    }

    #[test]
    fn detection_scores() {
        let d = Detection::new(8, 2, 2);
        assert!((d.precision() - 0.8).abs() < 1e-12);
        assert!((d.recall() - 0.8).abs() < 1e-12);
        assert!((d.f1() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn detection_degenerate_cases() {
        let none_predicted = Detection::new(0, 0, 5);
        assert_eq!(none_predicted.precision(), 1.0);
        assert_eq!(none_predicted.recall(), 0.0);
        assert_eq!(none_predicted.f1(), 0.0);
        let nothing_there = Detection::new(0, 0, 0);
        assert_eq!(nothing_there.f1(), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Detection::new(1, 1, 1).to_string().is_empty());
        assert!(!Summary::of(&[1.0]).unwrap().to_string().is_empty());
    }
}
