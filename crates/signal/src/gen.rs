//! Parametric signal generators — the workspace's substitute for real
//! media corpora.
//!
//! The paper's audio model (§4) is explicit: *"Speech is often divided into
//! two types of sounds: voiced, which is periodic; and unvoiced, which has
//! broader frequency content. These two types of sound can be generated
//! filtering a combination of glottal resonance and noise."* The
//! [`SignalGen::speech`] generator implements exactly that source–filter
//! model, so the RPE-LTP codec is tested on signals from the same family it
//! was designed for. Tones, tone pairs (for masking probes), harmonic
//! "music" and coloured noise cover the remaining audio experiments.

use crate::filter::Biquad;
use crate::rng::Xoroshiro128;

/// A pure tone specification: frequency in Hz and linear amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneSpec {
    /// Frequency in Hz.
    pub freq_hz: f64,
    /// Peak amplitude (linear).
    pub amplitude: f64,
    /// Initial phase in radians.
    pub phase: f64,
}

impl ToneSpec {
    /// A tone with zero initial phase.
    #[must_use]
    pub fn new(freq_hz: f64, amplitude: f64) -> Self {
        Self {
            freq_hz,
            amplitude,
            phase: 0.0,
        }
    }
}

/// Segment kinds produced by the speech generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeechSegment {
    /// Periodic, glottal-pulse-excited sound (vowel-like).
    Voiced {
        /// Fundamental (pitch) frequency in Hz.
        pitch_hz: f64,
    },
    /// Noise-excited sound (fricative-like).
    Unvoiced,
    /// Silence between words.
    Silence,
}

/// Deterministic signal generator. All methods are pure functions of the
/// seed, so experiment workloads are reproducible.
///
/// # Example
///
/// ```
/// use signal::gen::{SignalGen, ToneSpec};
///
/// let mut g = SignalGen::new(1);
/// let s = g.tone(&ToneSpec::new(440.0, 0.5), 8_000.0, 800);
/// assert_eq!(s.len(), 800);
/// assert!(s.iter().all(|v| v.abs() <= 0.5 + 1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct SignalGen {
    rng: Xoroshiro128,
}

impl SignalGen {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoroshiro128::new(seed),
        }
    }

    /// A single sinusoid.
    #[must_use]
    pub fn tone(&mut self, spec: &ToneSpec, sample_rate: f64, len: usize) -> Vec<f64> {
        let w = core::f64::consts::TAU * spec.freq_hz / sample_rate;
        (0..len)
            .map(|i| spec.amplitude * (w * i as f64 + spec.phase).sin())
            .collect()
    }

    /// A sum of sinusoids — used for masking probes (§4: a strong tone
    /// masks a nearby weaker one) and harmonic "music".
    #[must_use]
    pub fn tones(&mut self, specs: &[ToneSpec], sample_rate: f64, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        for spec in specs {
            let w = core::f64::consts::TAU * spec.freq_hz / sample_rate;
            for (i, o) in out.iter_mut().enumerate() {
                *o += spec.amplitude * (w * i as f64 + spec.phase).sin();
            }
        }
        out
    }

    /// White Gaussian noise with the given standard deviation.
    #[must_use]
    pub fn white_noise(&mut self, sigma: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.rng.normal_with(0.0, sigma)).collect()
    }

    /// Band-limited noise: white noise through a bandpass biquad centred at
    /// `center_hz`.
    #[must_use]
    pub fn band_noise(
        &mut self,
        sigma: f64,
        center_hz: f64,
        q: f64,
        sample_rate: f64,
        len: usize,
    ) -> Vec<f64> {
        let mut bq = Biquad::bandpass((center_hz / sample_rate).clamp(1e-4, 0.499), q);
        let white = self.white_noise(sigma, len);
        bq.process(&white)
    }

    /// Linear chirp from `f0` to `f1` Hz over the buffer.
    #[must_use]
    pub fn chirp(
        &mut self,
        f0: f64,
        f1: f64,
        amplitude: f64,
        sample_rate: f64,
        len: usize,
    ) -> Vec<f64> {
        let n = len.max(1) as f64;
        (0..len)
            .map(|i| {
                let t = i as f64 / sample_rate;
                let f = f0 + (f1 - f0) * (i as f64 / n) / 2.0;
                amplitude * (core::f64::consts::TAU * f * t).sin()
            })
            .collect()
    }

    /// Source–filter speech synthesis per the paper's §4 voice model.
    ///
    /// Voiced segments are glottal impulse trains (periodic, at `pitch_hz`),
    /// unvoiced segments are white noise; both are shaped by a pair of
    /// formant-like resonators. Returns the samples and the per-sample
    /// segment labels (useful as ground truth for classification tests).
    #[must_use]
    pub fn speech(
        &mut self,
        segments: &[(SpeechSegment, usize)],
        sample_rate: f64,
    ) -> (Vec<f64>, Vec<SpeechSegment>) {
        let total: usize = segments.iter().map(|(_, n)| n).sum();
        let mut excitation = Vec::with_capacity(total);
        let mut labels = Vec::with_capacity(total);
        for &(seg, n) in segments {
            match seg {
                SpeechSegment::Voiced { pitch_hz } => {
                    let period = (sample_rate / pitch_hz).max(2.0) as usize;
                    for i in 0..n {
                        // Glottal pulse: impulse with a little shape.
                        let ph = i % period;
                        let v = match ph {
                            0 => 1.0,
                            1 => 0.6,
                            2 => 0.25,
                            _ => 0.0,
                        };
                        excitation.push(v + self.rng.normal_with(0.0, 0.01));
                        labels.push(seg);
                    }
                }
                SpeechSegment::Unvoiced => {
                    for _ in 0..n {
                        excitation.push(self.rng.normal_with(0.0, 0.3));
                        labels.push(seg);
                    }
                }
                SpeechSegment::Silence => {
                    for _ in 0..n {
                        excitation.push(self.rng.normal_with(0.0, 0.001));
                        labels.push(seg);
                    }
                }
            }
        }
        // Two formant resonators (≈ F1 500 Hz, F2 1500 Hz) — the "glottal
        // resonance" filter of the paper's description.
        let mut f1 = Biquad::bandpass((500.0 / sample_rate).clamp(1e-4, 0.45), 4.0);
        let mut f2 = Biquad::bandpass((1500.0 / sample_rate).clamp(1e-4, 0.45), 6.0);
        let shaped: Vec<f64> = excitation
            .iter()
            .map(|&x| 0.7 * f1.step(x) + 0.3 * f2.step(x) + 0.05 * x)
            .collect();
        (shaped, labels)
    }

    /// A stock "sentence": voiced/unvoiced/silence alternation of realistic
    /// proportions, `len` samples long.
    #[must_use]
    pub fn speech_sentence(
        &mut self,
        sample_rate: f64,
        len: usize,
    ) -> (Vec<f64>, Vec<SpeechSegment>) {
        let mut plan = Vec::new();
        let mut remaining = len;
        while remaining > 0 {
            let pitch = self.rng.range_f64(90.0, 220.0);
            for seg in [
                (
                    SpeechSegment::Voiced { pitch_hz: pitch },
                    (0.12 * sample_rate) as usize,
                ),
                (SpeechSegment::Unvoiced, (0.05 * sample_rate) as usize),
                (
                    SpeechSegment::Voiced {
                        pitch_hz: pitch * 1.1,
                    },
                    (0.10 * sample_rate) as usize,
                ),
                (SpeechSegment::Silence, (0.04 * sample_rate) as usize),
            ] {
                let n = seg.1.min(remaining);
                if n > 0 {
                    plan.push((seg.0, n));
                    remaining -= n;
                }
                if remaining == 0 {
                    break;
                }
            }
        }
        self.speech(&plan, sample_rate)
    }

    /// Harmonic "music": a fundamental plus decaying overtones with slow
    /// amplitude modulation — enough spectral structure for the subband
    /// coder and the genre classifier to chew on.
    #[must_use]
    pub fn music(&mut self, fundamental_hz: f64, sample_rate: f64, len: usize) -> Vec<f64> {
        let harmonics: Vec<ToneSpec> = (1..=8)
            .map(|h| ToneSpec {
                freq_hz: fundamental_hz * h as f64,
                amplitude: 0.5 / h as f64,
                phase: self.rng.range_f64(0.0, core::f64::consts::TAU),
            })
            .filter(|t| t.freq_hz < 0.45 * sample_rate)
            .collect();
        let base = self.tones(&harmonics, sample_rate, len);
        // Tremolo at ~4 Hz plus a faint noise floor.
        base.iter()
            .enumerate()
            .map(|(i, &v)| {
                let t = i as f64 / sample_rate;
                let trem = 1.0 + 0.2 * (core::f64::consts::TAU * 4.0 * t).sin();
                v * trem + self.rng.normal_with(0.0, 0.002)
            })
            .collect()
    }

    /// Access to the underlying RNG for ad-hoc jitter.
    pub fn rng_mut(&mut self) -> &mut Xoroshiro128 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;

    fn dominant_bin(x: &[f64]) -> usize {
        let fft = Fft::new(x.len());
        let p = fft.power_spectrum(x);
        p.iter()
            .enumerate()
            .skip(1) // skip DC
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    }

    #[test]
    fn tone_lands_in_expected_bin() {
        let mut g = SignalGen::new(1);
        let fs = 8000.0;
        let n = 1024;
        let s = g.tone(&ToneSpec::new(1000.0, 1.0), fs, n);
        // bin = f/fs * N = 128.
        assert_eq!(dominant_bin(&s), 128);
    }

    #[test]
    fn tones_superpose() {
        let mut g = SignalGen::new(2);
        let fs = 8000.0;
        let s = g.tones(
            &[ToneSpec::new(500.0, 1.0), ToneSpec::new(2000.0, 0.5)],
            fs,
            512,
        );
        let fft = Fft::new(512);
        let p = fft.power_spectrum(&s);
        let b1 = (500.0 / fs * 512.0) as usize;
        let b2 = (2000.0 / fs * 512.0) as usize;
        assert!(p[b1] > 10.0 * p[b1 + 5]);
        assert!(p[b2] > 10.0 * p[b2 + 5]);
        assert!(p[b1] > p[b2], "stronger tone carries more power");
    }

    #[test]
    fn white_noise_statistics() {
        let mut g = SignalGen::new(3);
        let s = g.white_noise(2.0, 50_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let var = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / s.len() as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 4.0).abs() < 0.2);
    }

    #[test]
    fn band_noise_concentrates_near_center() {
        let mut g = SignalGen::new(4);
        let fs = 8000.0;
        let s = g.band_noise(1.0, 1000.0, 5.0, fs, 4096);
        let fft = Fft::new(4096);
        let p = fft.power_spectrum(&s);
        let center_band: f64 = p[450..580].iter().sum();
        let far_band: f64 = p[1500..1630].iter().sum();
        assert!(center_band > 10.0 * far_band);
    }

    #[test]
    fn voiced_speech_is_periodic_unvoiced_is_not() {
        let mut g = SignalGen::new(5);
        let fs = 8000.0;
        let (voiced, _) = g.speech(&[(SpeechSegment::Voiced { pitch_hz: 100.0 }, 4000)], fs);
        let (unvoiced, _) = g.speech(&[(SpeechSegment::Unvoiced, 4000)], fs);
        // Normalized autocorrelation at the 80-sample pitch lag.
        let ac = |x: &[f64], lag: usize| {
            let e: f64 = x.iter().map(|v| v * v).sum();
            let c: f64 = x[..x.len() - lag]
                .iter()
                .zip(&x[lag..])
                .map(|(a, b)| a * b)
                .sum();
            c / e.max(1e-12)
        };
        let lag = (fs / 100.0) as usize;
        assert!(
            ac(&voiced[500..], lag) > 0.4,
            "voiced autocorrelation too low"
        );
        assert!(
            ac(&unvoiced[500..], lag) < 0.3,
            "unvoiced autocorrelation too high"
        );
    }

    #[test]
    fn speech_labels_cover_all_samples() {
        let mut g = SignalGen::new(6);
        let (s, labels) = g.speech_sentence(8000.0, 12_345);
        assert_eq!(s.len(), 12_345);
        assert_eq!(labels.len(), 12_345);
        assert!(labels
            .iter()
            .any(|l| matches!(l, SpeechSegment::Voiced { .. })));
        assert!(labels.iter().any(|l| matches!(l, SpeechSegment::Unvoiced)));
    }

    #[test]
    fn silence_is_quiet() {
        let mut g = SignalGen::new(7);
        let (s, _) = g.speech(&[(SpeechSegment::Silence, 2000)], 8000.0);
        let rms = (s.iter().map(|v| v * v).sum::<f64>() / s.len() as f64).sqrt();
        assert!(rms < 0.01, "silence rms {rms}");
    }

    #[test]
    fn music_has_harmonic_structure() {
        let mut g = SignalGen::new(8);
        let fs = 44_100.0;
        let s = g.music(440.0, fs, 8192);
        let fft = Fft::new(8192);
        let p = fft.power_spectrum(&s);
        let bin = |f: f64| (f / fs * 8192.0).round() as usize;
        // Fundamental and second harmonic both present, well above the floor.
        let floor: f64 = p[bin(300.0)];
        assert!(p[bin(440.0)] > 20.0 * floor);
        assert!(p[bin(880.0)] > 5.0 * floor);
    }

    #[test]
    fn chirp_sweeps_up() {
        let mut g = SignalGen::new(9);
        let fs = 8000.0;
        let s = g.chirp(200.0, 3000.0, 1.0, fs, 8192);
        let early = dominant_bin(&s[..1024]);
        let late_slice = &s[7168..8192];
        let late = dominant_bin(late_slice);
        assert!(
            late > early,
            "chirp frequency should increase: {early} -> {late}"
        );
    }

    #[test]
    fn determinism_same_seed() {
        let mut a = SignalGen::new(10);
        let mut b = SignalGen::new(10);
        assert_eq!(a.white_noise(1.0, 64), b.white_noise(1.0, 64));
    }
}
