//! Quality metrics: PSNR, SNR, MSE, SAD.
//!
//! Paper §3: *"each generation of transcoding reduces image quality"* —
//! experiments E5/E6/E18 quantify quality with the metrics here. SAD is the
//! motion-estimation matching cost of Figure 1's motion estimator.

/// Error returned when two sequences being compared have different lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthMismatchError {
    /// Length of the reference sequence.
    pub reference: usize,
    /// Length of the test sequence.
    pub test: usize,
}

impl core::fmt::Display for LengthMismatchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "sequence lengths differ: reference {} vs test {}",
            self.reference, self.test
        )
    }
}

impl std::error::Error for LengthMismatchError {}

fn check(a: usize, b: usize) -> Result<(), LengthMismatchError> {
    if a == b && a > 0 {
        Ok(())
    } else {
        Err(LengthMismatchError {
            reference: a,
            test: b,
        })
    }
}

/// Mean squared error between two equal-length sequences.
///
/// # Errors
///
/// Returns [`LengthMismatchError`] if lengths differ or are zero.
pub fn mse(reference: &[f64], test: &[f64]) -> Result<f64, LengthMismatchError> {
    check(reference.len(), test.len())?;
    let sum: f64 = reference
        .iter()
        .zip(test)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    Ok(sum / reference.len() as f64)
}

/// Peak signal-to-noise ratio in dB for signals with the given peak value
/// (255 for 8-bit imagery).
///
/// Returns `f64::INFINITY` for identical sequences.
///
/// # Errors
///
/// Returns [`LengthMismatchError`] if lengths differ or are zero.
pub fn psnr(reference: &[f64], test: &[f64], peak: f64) -> Result<f64, LengthMismatchError> {
    let m = mse(reference, test)?;
    if m == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (peak * peak / m).log10())
}

/// PSNR between two 8-bit pixel buffers (peak 255).
///
/// # Errors
///
/// Returns [`LengthMismatchError`] if lengths differ or are zero.
pub fn psnr_u8(reference: &[u8], test: &[u8]) -> Result<f64, LengthMismatchError> {
    check(reference.len(), test.len())?;
    let sum: f64 = reference
        .iter()
        .zip(test)
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum();
    let m = sum / reference.len() as f64;
    if m == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (255.0 * 255.0 / m).log10())
}

/// Signal-to-noise ratio in dB: signal energy over error energy.
///
/// Returns `f64::INFINITY` for identical sequences and `-INFINITY` for a
/// zero-energy reference with nonzero error.
///
/// # Errors
///
/// Returns [`LengthMismatchError`] if lengths differ or are zero.
pub fn snr(reference: &[f64], test: &[f64]) -> Result<f64, LengthMismatchError> {
    check(reference.len(), test.len())?;
    let sig: f64 = reference.iter().map(|v| v * v).sum();
    let err: f64 = reference
        .iter()
        .zip(test)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    if err == 0.0 {
        return Ok(f64::INFINITY);
    }
    if sig == 0.0 {
        return Ok(f64::NEG_INFINITY);
    }
    Ok(10.0 * (sig / err).log10())
}

/// Sum of absolute differences between two 8-bit blocks — the matching cost
/// used by every motion-estimation search in the `video` crate.
///
/// # Panics
///
/// Panics if lengths differ (hot path: callers guarantee equal-sized
/// blocks, so this is a programming error rather than a recoverable one).
#[must_use]
pub fn sad_u8(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "SAD blocks must be the same size");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs() as u64)
        .sum()
}

fn check_strided(len: usize, stride: usize, w: usize, h: usize) {
    assert!(w > 0 && h > 0, "SAD block must be non-empty");
    assert!(stride >= w, "stride shorter than row width");
    assert!(
        len >= (h - 1) * stride + w,
        "buffer too short for {h} rows at stride {stride}"
    );
}

/// Stride-aware SAD over a `w x h` window of two row-major buffers.
///
/// Unlike [`sad_u8`], the operands may live *inside* larger planes: `a`
/// and `b` start at each window's top-left sample and rows are `a_stride`
/// / `b_stride` apart. This is the motion-search matching cost evaluated
/// directly against the reference plane, with no block copy.
///
/// # Panics
///
/// Panics if a stride is shorter than `w` or a buffer cannot hold `h`
/// rows at its stride.
#[must_use]
pub fn sad_u8_strided(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
) -> u64 {
    sad_u8_bounded(a, a_stride, b, b_stride, w, h, u64::MAX)
}

/// [`sad_u8_strided`] with a row-wise early exit: once the running sum
/// exceeds `cutoff`, the remaining rows are skipped and the partial sum
/// (already `> cutoff`) is returned.
///
/// Motion search passes its current best SAD as the cutoff, so losing
/// candidates are abandoned after a few rows. The contract preserves
/// exactness where it matters: whenever the true SAD is `<= cutoff`, the
/// exact value is returned (a candidate is only abandoned once it is
/// strictly worse than the cutoff), so search results are identical to an
/// unbounded evaluation. With `cutoff = u64::MAX` this *is*
/// [`sad_u8_strided`].
///
/// # Panics
///
/// Panics under the same conditions as [`sad_u8_strided`].
#[must_use]
pub fn sad_u8_bounded(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
    cutoff: u64,
) -> u64 {
    sad_u8_bounded_ops(a, a_stride, b, b_stride, w, h, cutoff).0
}

/// Instrumented [`sad_u8_bounded`]: also returns the number of pixel
/// comparisons actually performed, so the perf harness can report the
/// *effective* arithmetic saved by early exit (not just wall time).
///
/// This is the single copy of the row-wise kernel — [`sad_u8_bounded`]
/// delegates here and drops the op count (inlining lets the counter
/// fold away on the hot path).
///
/// # Panics
///
/// Panics under the same conditions as [`sad_u8_strided`].
#[must_use]
#[inline]
pub fn sad_u8_bounded_ops(
    a: &[u8],
    a_stride: usize,
    b: &[u8],
    b_stride: usize,
    w: usize,
    h: usize,
    cutoff: u64,
) -> (u64, u64) {
    check_strided(a.len(), a_stride, w, h);
    check_strided(b.len(), b_stride, w, h);
    let mut total = 0u64;
    let mut rows = 0u64;
    for r in 0..h {
        let ra = &a[r * a_stride..r * a_stride + w];
        let rb = &b[r * b_stride..r * b_stride + w];
        total += ra
            .iter()
            .zip(rb)
            .map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs() as u64)
            .sum::<u64>();
        rows += 1;
        if total > cutoff {
            break;
        }
    }
    (total, rows * w as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(mse(&x, &x).unwrap(), 0.0);
    }

    #[test]
    fn mse_hand_computed() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((mse(&a, &b).unwrap() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn psnr_infinite_for_identical() {
        let x = [10.0, 20.0];
        assert!(psnr(&x, &x, 255.0).unwrap().is_infinite());
    }

    #[test]
    fn psnr_u8_known_value() {
        // Uniform error of 1 LSB -> MSE 1 -> PSNR = 20 log10(255) ≈ 48.13 dB.
        let a = vec![100u8; 64];
        let b = vec![101u8; 64];
        let p = psnr_u8(&a, &b).unwrap();
        assert!((p - 48.1308).abs() < 1e-3, "psnr {p}");
    }

    #[test]
    fn psnr_decreases_with_error() {
        let reference = vec![128u8; 100];
        let small: Vec<u8> = reference.iter().map(|&v| v + 1).collect();
        let large: Vec<u8> = reference.iter().map(|&v| v + 10).collect();
        assert!(psnr_u8(&reference, &small).unwrap() > psnr_u8(&reference, &large).unwrap());
    }

    #[test]
    fn snr_matches_definition() {
        let reference = [1.0, 1.0, 1.0, 1.0];
        let test = [1.1, 0.9, 1.1, 0.9];
        // signal energy 4, error energy 0.04 -> 20 dB.
        assert!((snr(&reference, &test).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn snr_edge_cases() {
        let z = [0.0, 0.0];
        let x = [1.0, 1.0];
        assert_eq!(snr(&z, &x).unwrap(), f64::NEG_INFINITY);
        assert_eq!(snr(&x, &x).unwrap(), f64::INFINITY);
    }

    #[test]
    fn length_mismatch_is_reported() {
        let err = mse(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            LengthMismatchError {
                reference: 1,
                test: 2
            }
        );
        assert!(err.to_string().contains("differ"));
        assert!(mse(&[], &[]).is_err(), "empty sequences are rejected");
    }

    #[test]
    fn sad_hand_computed() {
        assert_eq!(sad_u8(&[0, 10, 255], &[5, 10, 250]), 10);
        assert_eq!(sad_u8(&[7; 16], &[7; 16]), 0);
    }

    #[test]
    fn strided_sad_matches_contiguous() {
        // 2x2 window in a 4-wide plane vs a contiguous 2-wide buffer.
        let plane = [1u8, 2, 9, 9, 3, 4, 9, 9];
        let block = [0u8, 0, 0, 0];
        let expect = sad_u8(&[1, 2, 3, 4], &block);
        assert_eq!(sad_u8_strided(&plane, 4, &block, 2, 2, 2), expect);
    }

    #[test]
    fn bounded_sad_is_exact_at_or_below_cutoff() {
        let a = [10u8; 16];
        let b = [0u8; 16];
        // True SAD = 160; cutoffs >= 160 must return the exact value.
        assert_eq!(sad_u8_bounded(&a, 4, &b, 4, 4, 4, 160), 160);
        assert_eq!(sad_u8_bounded(&a, 4, &b, 4, 4, 4, u64::MAX), 160);
    }

    #[test]
    fn bounded_sad_abandons_losing_candidates() {
        let a = [100u8; 64];
        let b = [0u8; 64];
        // Row SAD = 800; with cutoff 0 the first row already exceeds it.
        let (sad, ops) = sad_u8_bounded_ops(&a, 8, &b, 8, 8, 8, 0);
        assert_eq!(ops, 8, "only one row should be evaluated");
        assert!(sad > 0 && sad < 6400, "partial sum returned on abandon");
        let early = sad_u8_bounded(&a, 8, &b, 8, 8, 8, 0);
        assert!(early > 0, "abandoned candidates report a sum above cutoff");
    }

    #[test]
    #[should_panic(expected = "stride shorter")]
    fn bad_stride_panics() {
        let _ = sad_u8_strided(&[0; 16], 2, &[0; 16], 4, 4, 4);
    }
}
