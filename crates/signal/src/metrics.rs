//! Quality metrics: PSNR, SNR, MSE, SAD.
//!
//! Paper §3: *"each generation of transcoding reduces image quality"* —
//! experiments E5/E6/E18 quantify quality with the metrics here. SAD is the
//! motion-estimation matching cost of Figure 1's motion estimator.

/// Error returned when two sequences being compared have different lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthMismatchError {
    /// Length of the reference sequence.
    pub reference: usize,
    /// Length of the test sequence.
    pub test: usize,
}

impl core::fmt::Display for LengthMismatchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "sequence lengths differ: reference {} vs test {}",
            self.reference, self.test
        )
    }
}

impl std::error::Error for LengthMismatchError {}

fn check(a: usize, b: usize) -> Result<(), LengthMismatchError> {
    if a == b && a > 0 {
        Ok(())
    } else {
        Err(LengthMismatchError {
            reference: a,
            test: b,
        })
    }
}

/// Mean squared error between two equal-length sequences.
///
/// # Errors
///
/// Returns [`LengthMismatchError`] if lengths differ or are zero.
pub fn mse(reference: &[f64], test: &[f64]) -> Result<f64, LengthMismatchError> {
    check(reference.len(), test.len())?;
    let sum: f64 = reference
        .iter()
        .zip(test)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    Ok(sum / reference.len() as f64)
}

/// Peak signal-to-noise ratio in dB for signals with the given peak value
/// (255 for 8-bit imagery).
///
/// Returns `f64::INFINITY` for identical sequences.
///
/// # Errors
///
/// Returns [`LengthMismatchError`] if lengths differ or are zero.
pub fn psnr(reference: &[f64], test: &[f64], peak: f64) -> Result<f64, LengthMismatchError> {
    let m = mse(reference, test)?;
    if m == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (peak * peak / m).log10())
}

/// PSNR between two 8-bit pixel buffers (peak 255).
///
/// # Errors
///
/// Returns [`LengthMismatchError`] if lengths differ or are zero.
pub fn psnr_u8(reference: &[u8], test: &[u8]) -> Result<f64, LengthMismatchError> {
    check(reference.len(), test.len())?;
    let sum: f64 = reference
        .iter()
        .zip(test)
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum();
    let m = sum / reference.len() as f64;
    if m == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (255.0 * 255.0 / m).log10())
}

/// Signal-to-noise ratio in dB: signal energy over error energy.
///
/// Returns `f64::INFINITY` for identical sequences and `-INFINITY` for a
/// zero-energy reference with nonzero error.
///
/// # Errors
///
/// Returns [`LengthMismatchError`] if lengths differ or are zero.
pub fn snr(reference: &[f64], test: &[f64]) -> Result<f64, LengthMismatchError> {
    check(reference.len(), test.len())?;
    let sig: f64 = reference.iter().map(|v| v * v).sum();
    let err: f64 = reference
        .iter()
        .zip(test)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    if err == 0.0 {
        return Ok(f64::INFINITY);
    }
    if sig == 0.0 {
        return Ok(f64::NEG_INFINITY);
    }
    Ok(10.0 * (sig / err).log10())
}

/// Sum of absolute differences between two 8-bit blocks — the matching cost
/// used by every motion-estimation search in the `video` crate.
///
/// # Panics
///
/// Panics if lengths differ (hot path: callers guarantee equal-sized
/// blocks, so this is a programming error rather than a recoverable one).
#[must_use]
pub fn sad_u8(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "SAD blocks must be the same size");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(mse(&x, &x).unwrap(), 0.0);
    }

    #[test]
    fn mse_hand_computed() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((mse(&a, &b).unwrap() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn psnr_infinite_for_identical() {
        let x = [10.0, 20.0];
        assert!(psnr(&x, &x, 255.0).unwrap().is_infinite());
    }

    #[test]
    fn psnr_u8_known_value() {
        // Uniform error of 1 LSB -> MSE 1 -> PSNR = 20 log10(255) ≈ 48.13 dB.
        let a = vec![100u8; 64];
        let b = vec![101u8; 64];
        let p = psnr_u8(&a, &b).unwrap();
        assert!((p - 48.1308).abs() < 1e-3, "psnr {p}");
    }

    #[test]
    fn psnr_decreases_with_error() {
        let reference = vec![128u8; 100];
        let small: Vec<u8> = reference.iter().map(|&v| v + 1).collect();
        let large: Vec<u8> = reference.iter().map(|&v| v + 10).collect();
        assert!(psnr_u8(&reference, &small).unwrap() > psnr_u8(&reference, &large).unwrap());
    }

    #[test]
    fn snr_matches_definition() {
        let reference = [1.0, 1.0, 1.0, 1.0];
        let test = [1.1, 0.9, 1.1, 0.9];
        // signal energy 4, error energy 0.04 -> 20 dB.
        assert!((snr(&reference, &test).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn snr_edge_cases() {
        let z = [0.0, 0.0];
        let x = [1.0, 1.0];
        assert_eq!(snr(&z, &x).unwrap(), f64::NEG_INFINITY);
        assert_eq!(snr(&x, &x).unwrap(), f64::INFINITY);
    }

    #[test]
    fn length_mismatch_is_reported() {
        let err = mse(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            LengthMismatchError {
                reference: 1,
                test: 2
            }
        );
        assert!(err.to_string().contains("differ"));
        assert!(mse(&[], &[]).is_err(), "empty sequences are rejected");
    }

    #[test]
    fn sad_hand_computed() {
        assert_eq!(sad_u8(&[0, 10, 255], &[5, 10, 250]), 10);
        assert_eq!(sad_u8(&[7; 16], &[7; 16]), 0);
    }
}
