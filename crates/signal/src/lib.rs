//! # `signal` — DSP substrate for the mm-mpsoc workspace
//!
//! Shared signal-processing building blocks used by every functional
//! subsystem of the reproduction of Wolf, *Multimedia Applications of
//! Multiprocessor Systems-on-Chips* (DATE 2005): transforms ([`fft`],
//! [`dct1d`], the fast fixed-size [`dct8`] butterfly), [`window`]
//! functions, digital [`filter`] primitives, quality
//! [`metrics`] (PSNR/SNR, strided/bounded SAD), a deterministic [`rng`],
//! descriptive [`stats`],
//! fixed-point helpers ([`fixed`]) and parametric signal [`gen`]erators
//! (tones, noise, the voiced/unvoiced speech model of the paper's §4, and
//! harmonic "music").
//!
//! Everything here is implemented from scratch; no external DSP crates are
//! used, so the whole codec stack above it is auditable end to end.
//!
//! # Example
//!
//! ```
//! use signal::fft::Fft;
//! use signal::gen::{SignalGen, ToneSpec};
//!
//! let tone = SignalGen::new(42).tone(&ToneSpec::new(1_000.0, 1.0), 8_000.0, 256);
//! let fft = Fft::new(256);
//! let spectrum = fft.forward_real(&tone);
//! // The 1 kHz bin (1000/8000 * 256 = bin 32) dominates.
//! let peak = spectrum
//!     .iter()
//!     .enumerate()
//!     .take(128)
//!     .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! assert_eq!(peak, 32);
//! ```

pub mod bits;
pub mod dct1d;
pub mod dct8;
pub mod fft;
pub mod filter;
pub mod fixed;
pub mod gen;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod window;

/// A complex number with `f64` parts, sufficient for all transforms in the
/// workspace.
///
/// A tiny purpose-built type is preferred over an external dependency; only
/// the operations the transforms need are provided.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    ///
    /// ```
    /// let z = signal::Complex::new(3.0, 4.0);
    /// assert_eq!(z.norm(), 5.0);
    /// ```
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A complex number on the unit circle at angle `theta` (radians).
    #[must_use]
    pub fn from_polar_unit(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Magnitude `sqrt(re^2 + im^2)`.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, avoiding the square root of [`Complex::norm`].
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Scales both parts by `k`.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl core::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl core::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl core::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl core::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl core::fmt::Display for Complex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Complex;

    #[test]
    fn complex_arithmetic_matches_hand_computation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn polar_unit_lies_on_unit_circle() {
        for k in 0..8 {
            let z = Complex::from_polar_unit(k as f64 * core::f64::consts::FRAC_PI_4);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        let z = Complex::new(2.5, -7.0);
        assert_eq!(z.conj(), Complex::new(2.5, 7.0));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn norm_sqr_equals_norm_squared() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn from_f64_is_purely_real() {
        let z: Complex = 4.0.into();
        assert_eq!(z, Complex::new(4.0, 0.0));
    }
}
