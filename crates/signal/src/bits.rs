//! Bit-level stream writer and reader, MSB-first.
//!
//! Shared by the video codec's variable-length encoder (Figure 1), the
//! audio frame packer (Figure 2), the RPE-LTP speech framer, and the DRM
//! license serializer. Bits are packed MSB-first into bytes.

/// Error returned when a reader runs out of bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBitsError {
    /// Bits requested.
    pub requested: u32,
    /// Bits remaining.
    pub remaining: usize,
}

impl core::fmt::Display for OutOfBitsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "requested {} bits but only {} remain",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for OutOfBitsError {}

/// MSB-first bit writer.
///
/// # Example
///
/// ```
/// use signal::bits::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFF, 8);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(8)?, 0xFF);
/// # Ok::<(), signal::bits::OutOfBitsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final partial byte (0..8).
    bit_pos: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u32, 1);
    }

    /// Total bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Pads with zero bits to a byte boundary and returns the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrows the bytes written so far (final byte may be partial).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, cursor: 0 }
    }

    /// Bits remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.cursor
    }

    /// Current absolute bit position.
    #[must_use]
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBitsError`] when fewer than `count` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u32) -> Result<u32, OutOfBitsError> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        if (count as usize) > self.remaining() {
            return Err(OutOfBitsError {
                requested: count,
                remaining: self.remaining(),
            });
        }
        let mut out = 0u32;
        for _ in 0..count {
            let byte = self.bytes[self.cursor / 8];
            let bit = (byte >> (7 - (self.cursor % 8))) & 1;
            out = (out << 1) | bit as u32;
            self.cursor += 1;
        }
        Ok(out)
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBitsError`] at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, OutOfBitsError> {
        Ok(self.read_bits(1)? == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b1010, 4);
        w.write_bits(0xABCD, 16);
        w.write_bits(0x7FFFFFFF, 31);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.read_bits(31).unwrap(), 0x7FFFFFFF);
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 8);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn reading_past_end_errors() {
        let bytes = [0xFF];
        let mut r = BitReader::new(&bytes);
        r.read_bits(6).unwrap();
        let err = r.read_bits(4).unwrap_err();
        assert_eq!(
            err,
            OutOfBitsError {
                requested: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        assert_eq!(w.into_bytes(), vec![0x80]);
    }

    #[test]
    fn as_bytes_reflects_progress() {
        let mut w = BitWriter::new();
        w.write_bits(0xF, 4);
        assert_eq!(w.as_bytes(), &[0xF0]);
    }

    #[test]
    fn remaining_and_position_track_cursor() {
        let bytes = [0u8; 4];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 32);
        r.read_bits(10).unwrap();
        assert_eq!(r.position(), 10);
        assert_eq!(r.remaining(), 22);
    }
}
