//! Digital filter primitives: FIR and biquad (second-order IIR) sections.
//!
//! Paper §7: DVD players *"must control their drives using complex digital
//! filters"*; the audio filterbank and the servo controllers are both built
//! from these primitives.

/// A direct-form FIR filter with arbitrary tap count.
///
/// # Example
///
/// ```
/// use signal::filter::Fir;
///
/// // 3-tap moving average.
/// let mut f = Fir::new(vec![1.0 / 3.0; 3]).unwrap();
/// let y: Vec<f64> = [3.0, 3.0, 3.0, 3.0].iter().map(|&x| f.step(x)).collect();
/// assert!((y[3] - 3.0).abs() < 1e-12); // settled to the input level
/// ```
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f64>,
    /// Circular delay line, most recent sample at `pos`.
    delay: Vec<f64>,
    pos: usize,
}

/// Error constructing a filter from an empty coefficient list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyTapsError;

impl core::fmt::Display for EmptyTapsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("filter requires at least one coefficient")
    }
}

impl std::error::Error for EmptyTapsError {}

impl Fir {
    /// Creates an FIR filter from its impulse response.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyTapsError`] if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Result<Self, EmptyTapsError> {
        if taps.is_empty() {
            return Err(EmptyTapsError);
        }
        let n = taps.len();
        Ok(Self {
            taps,
            delay: vec![0.0; n],
            pos: 0,
        })
    }

    /// Windowed-sinc low-pass design with cutoff `fc` (fraction of the
    /// sample rate, in `(0, 0.5)`) and `taps` coefficients (Hann window).
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `taps == 0`.
    #[must_use]
    pub fn lowpass(fc: f64, taps: usize) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
        assert!(taps > 0, "need at least one tap");
        let m = (taps - 1) as f64;
        let mut h: Vec<f64> = (0..taps)
            .map(|i| {
                let x = i as f64 - m / 2.0;
                let sinc = if x.abs() < 1e-12 {
                    2.0 * fc
                } else {
                    (core::f64::consts::TAU * fc * x).sin() / (core::f64::consts::PI * x)
                };
                let win = 0.5 - 0.5 * (core::f64::consts::TAU * i as f64 / m.max(1.0)).cos();
                sinc * win
            })
            .collect();
        // Normalize DC gain to exactly 1.
        let sum: f64 = h.iter().sum();
        if sum.abs() > 1e-12 {
            for v in &mut h {
                *v /= sum;
            }
        }
        Self::new(h).expect("taps checked non-empty")
    }

    /// Number of taps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if the filter has no taps (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// The filter coefficients.
    #[must_use]
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Processes one sample.
    pub fn step(&mut self, x: f64) -> f64 {
        self.pos = if self.pos == 0 {
            self.delay.len() - 1
        } else {
            self.pos - 1
        };
        self.delay[self.pos] = x;
        let n = self.delay.len();
        let mut acc = 0.0;
        for (i, t) in self.taps.iter().enumerate() {
            acc += t * self.delay[(self.pos + i) % n];
        }
        acc
    }

    /// Processes a whole block, returning the filtered samples.
    #[must_use]
    pub fn process(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.step(x)).collect()
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.delay.fill(0.0);
        self.pos = 0;
    }
}

/// A biquad (second-order IIR) section in direct form II transposed.
///
/// Transfer function `H(z) = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    z1: f64,
    z2: f64,
}

impl Biquad {
    /// Creates a biquad from its transfer-function coefficients (denominator
    /// normalized, `a0 = 1`).
    #[must_use]
    pub fn new(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Self {
            b0,
            b1,
            b2,
            a1,
            a2,
            z1: 0.0,
            z2: 0.0,
        }
    }

    /// RBJ-style low-pass design: cutoff `fc` as a fraction of the sample
    /// rate, quality factor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `q <= 0`.
    #[must_use]
    pub fn lowpass(fc: f64, q: f64) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
        assert!(q > 0.0, "q must be positive");
        let w0 = core::f64::consts::TAU * fc;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::new(
            (1.0 - cw) / 2.0 / a0,
            (1.0 - cw) / a0,
            (1.0 - cw) / 2.0 / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// RBJ-style high-pass design.
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `q <= 0`.
    #[must_use]
    pub fn highpass(fc: f64, q: f64) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
        assert!(q > 0.0, "q must be positive");
        let w0 = core::f64::consts::TAU * fc;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::new(
            (1.0 + cw) / 2.0 / a0,
            -(1.0 + cw) / a0,
            (1.0 + cw) / 2.0 / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// Band-pass design (constant peak gain).
    ///
    /// # Panics
    ///
    /// Panics if `fc` is outside `(0, 0.5)` or `q <= 0`.
    #[must_use]
    pub fn bandpass(fc: f64, q: f64) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
        assert!(q > 0.0, "q must be positive");
        let w0 = core::f64::consts::TAU * fc;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::new(
            alpha / a0,
            0.0,
            -alpha / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// Processes one sample (direct form II transposed).
    pub fn step(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.z1;
        self.z1 = self.b1 * x - self.a1 * y + self.z2;
        self.z2 = self.b2 * x - self.a2 * y;
        y
    }

    /// Processes a whole block.
    #[must_use]
    pub fn process(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.step(x)).collect()
    }

    /// Clears the internal state.
    pub fn reset(&mut self) {
        self.z1 = 0.0;
        self.z2 = 0.0;
    }

    /// Magnitude response at normalized frequency `f` (fraction of the
    /// sample rate).
    #[must_use]
    pub fn magnitude_at(&self, f: f64) -> f64 {
        use crate::Complex;
        let w = core::f64::consts::TAU * f;
        let z1 = Complex::from_polar_unit(-w);
        let z2 = Complex::from_polar_unit(-2.0 * w);
        let num = Complex::from(self.b0) + z1.scale(self.b1) + z2.scale(self.b2);
        let den = Complex::from(1.0) + z1.scale(self.a1) + z2.scale(self.a2);
        num.norm() / den.norm()
    }

    /// `true` if both poles are strictly inside the unit circle.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        // Jury criterion for z^2 + a1 z + a2.
        self.a2.abs() < 1.0 && self.a1.abs() < 1.0 + self.a2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_moving_average_smooths_step() {
        let mut f = Fir::new(vec![0.25; 4]).unwrap();
        let y = f.process(&[0.0, 0.0, 4.0, 4.0, 4.0, 4.0, 4.0]);
        assert!((y[6] - 4.0).abs() < 1e-12);
        assert!(y[3] > 0.0 && y[3] < 4.0, "transition is gradual");
    }

    #[test]
    fn fir_rejects_empty_taps() {
        assert_eq!(Fir::new(vec![]).unwrap_err(), EmptyTapsError);
    }

    #[test]
    fn fir_lowpass_passes_dc_and_rejects_nyquist() {
        let mut f = Fir::new(Fir::lowpass(0.1, 63).taps().to_vec()).unwrap();
        // DC gain.
        let dc: f64 = f.taps().iter().sum();
        assert!((dc - 1.0).abs() < 1e-9);
        // Nyquist: alternating +1/-1 input should be strongly attenuated.
        let y = f.process(
            &(0..200)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect::<Vec<_>>(),
        );
        let tail_max = y[100..].iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(tail_max < 1e-3, "nyquist leakage {tail_max}");
    }

    #[test]
    fn fir_reset_clears_state() {
        let mut f = Fir::new(vec![0.5, 0.5]).unwrap();
        f.step(10.0);
        f.reset();
        assert_eq!(f.step(0.0), 0.0);
    }

    #[test]
    fn biquad_lowpass_dc_unity_gain() {
        let bq = Biquad::lowpass(0.1, 0.707);
        assert!((bq.magnitude_at(1e-6) - 1.0).abs() < 1e-3);
        assert!(bq.magnitude_at(0.49) < 0.05, "nyquist should be attenuated");
        assert!(bq.is_stable());
    }

    #[test]
    fn biquad_highpass_mirrors_lowpass() {
        let bq = Biquad::highpass(0.1, 0.707);
        assert!(bq.magnitude_at(1e-6) < 1e-3);
        assert!((bq.magnitude_at(0.45) - 1.0).abs() < 0.05);
        assert!(bq.is_stable());
    }

    #[test]
    fn biquad_bandpass_peaks_at_center() {
        let bq = Biquad::bandpass(0.2, 2.0);
        let at_center = bq.magnitude_at(0.2);
        assert!(at_center > bq.magnitude_at(0.05));
        assert!(at_center > bq.magnitude_at(0.4));
    }

    #[test]
    fn biquad_step_matches_frequency_response() {
        // Drive with a sine at the cutoff and compare steady-state amplitude
        // with magnitude_at.
        let fc = 0.05;
        let mut bq = Biquad::lowpass(fc, 0.707);
        let n = 4000;
        let xs: Vec<f64> = (0..n)
            .map(|i| (core::f64::consts::TAU * fc * i as f64).sin())
            .collect();
        let ys = bq.process(&xs);
        let amp = ys[n / 2..].iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let expect = bq.magnitude_at(fc);
        assert!((amp - expect).abs() < 0.02, "amp {amp} vs {expect}");
    }

    #[test]
    fn unstable_biquad_detected() {
        let bq = Biquad::new(1.0, 0.0, 0.0, 0.0, 1.5);
        assert!(!bq.is_stable());
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn bad_cutoff_panics() {
        let _ = Biquad::lowpass(0.7, 1.0);
    }
}
