//! Analysis window functions.
//!
//! The audio encoder's psychoacoustic model (paper §4) windows each frame
//! before spectral analysis; the content-analysis features do the same.

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// Rectangular (no taper).
    Rect,
    /// Hann (raised cosine) — the default choice for spectral analysis.
    #[default]
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman.
    Blackman,
    /// Triangular (Bartlett).
    Triangular,
}

impl core::fmt::Display for WindowKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            WindowKind::Rect => "rect",
            WindowKind::Hann => "hann",
            WindowKind::Hamming => "hamming",
            WindowKind::Blackman => "blackman",
            WindowKind::Triangular => "triangular",
        };
        f.write_str(name)
    }
}

/// A precomputed window of fixed length.
///
/// # Example
///
/// ```
/// use signal::window::{Window, WindowKind};
///
/// let w = Window::new(WindowKind::Hann, 512);
/// let mut frame = vec![1.0; 512];
/// w.apply(&mut frame);
/// assert!(frame[0] < 1e-6);          // tapered ends
/// assert!((frame[256] - 1.0).abs() < 1e-3); // unity near the centre
/// ```
#[derive(Debug, Clone)]
pub struct Window {
    kind: WindowKind,
    coeffs: Vec<f64>,
}

impl Window {
    /// Builds a window of `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn new(kind: WindowKind, len: usize) -> Self {
        assert!(len > 0, "window length must be positive");
        let coeffs = (0..len).map(|i| sample(kind, i, len)).collect();
        Self { kind, coeffs }
    }

    /// The window shape.
    #[must_use]
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// Window length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// `true` if the window has zero length (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The window coefficients.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Multiplies `frame` by the window in place.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != self.len()`.
    pub fn apply(&self, frame: &mut [f64]) {
        assert_eq!(frame.len(), self.coeffs.len(), "window length mismatch");
        for (x, w) in frame.iter_mut().zip(&self.coeffs) {
            *x *= w;
        }
    }

    /// Returns a windowed copy of `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != self.len()`.
    #[must_use]
    pub fn applied(&self, frame: &[f64]) -> Vec<f64> {
        let mut out = frame.to_vec();
        self.apply(&mut out);
        out
    }

    /// Coherent gain: mean of the coefficients. Used to undo the window's
    /// amplitude scaling when estimating tone levels.
    #[must_use]
    pub fn coherent_gain(&self) -> f64 {
        self.coeffs.iter().sum::<f64>() / self.coeffs.len() as f64
    }
}

fn sample(kind: WindowKind, i: usize, len: usize) -> f64 {
    if len == 1 {
        return 1.0;
    }
    let x = i as f64 / (len - 1) as f64;
    let tau = core::f64::consts::TAU;
    match kind {
        WindowKind::Rect => 1.0,
        WindowKind::Hann => 0.5 - 0.5 * (tau * x).cos(),
        WindowKind::Hamming => 0.54 - 0.46 * (tau * x).cos(),
        WindowKind::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        WindowKind::Triangular => 1.0 - (2.0 * x - 1.0).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_all_ones() {
        let w = Window::new(WindowKind::Rect, 16);
        assert!(w.coefficients().iter().all(|&c| c == 1.0));
        assert!((w.coherent_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_is_symmetric_and_tapered() {
        let w = Window::new(WindowKind::Hann, 33);
        let c = w.coefficients();
        for i in 0..c.len() {
            assert!(
                (c[i] - c[c.len() - 1 - i]).abs() < 1e-12,
                "asymmetric at {i}"
            );
        }
        assert!(c[0].abs() < 1e-12 && (c[16] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_kinds_bounded_in_unit_interval() {
        for kind in [
            WindowKind::Rect,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Triangular,
        ] {
            let w = Window::new(kind, 64);
            for &c in w.coefficients() {
                assert!(
                    (-1e-12..=1.0 + 1e-12).contains(&c),
                    "{kind} out of range: {c}"
                );
            }
        }
    }

    #[test]
    fn apply_scales_samples() {
        let w = Window::new(WindowKind::Triangular, 5);
        let mut f = vec![2.0; 5];
        w.apply(&mut f);
        assert!((f[2] - 2.0).abs() < 1e-12);
        assert!(f[0].abs() < 1e-12);
    }

    #[test]
    fn length_one_window_is_unity() {
        for kind in [WindowKind::Hann, WindowKind::Blackman] {
            let w = Window::new(kind, 1);
            assert_eq!(w.coefficients(), &[1.0]);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(WindowKind::Hann.to_string(), "hann");
        assert_eq!(WindowKind::Blackman.to_string(), "blackman");
    }
}
