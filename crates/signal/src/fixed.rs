//! Q-format fixed-point arithmetic helpers.
//!
//! The consumer devices the paper targets (§2: "cost and power are
//! critical") implement their DSP kernels in fixed point. The workspace's
//! reference kernels are floating point; this module provides the Q-format
//! conversions used by the codec quantizers and by tests that bound
//! fixed-point error against the floating-point reference.

/// A signed fixed-point value in Q`FRAC` format stored in an `i32`.
///
/// `FRAC` is the number of fractional bits; Q15 (`Q<15>`) is the classic
/// 16-bit DSP format widened to 32-bit storage so intermediate sums do not
/// overflow.
///
/// # Example
///
/// ```
/// use signal::fixed::Q;
///
/// let a = Q::<15>::from_f64(0.5);
/// let b = Q::<15>::from_f64(0.25);
/// assert!((a.saturating_mul(b).to_f64() - 0.125).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q<const FRAC: u32>(i32);

impl<const FRAC: u32> Q<FRAC> {
    /// The scaling factor `2^FRAC`.
    pub const SCALE: i64 = 1 << FRAC;

    /// Zero.
    pub const ZERO: Self = Self(0);

    /// One, i.e. `2^FRAC` raw.
    pub const ONE: Self = Self(1 << FRAC);

    /// Creates a value from its raw integer representation.
    #[must_use]
    pub fn from_raw(raw: i32) -> Self {
        Self(raw)
    }

    /// The raw integer representation.
    #[must_use]
    pub fn raw(self) -> i32 {
        self.0
    }

    /// Converts from `f64`, saturating at the representable range.
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        let scaled = (x * Self::SCALE as f64).round();
        Self(scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32)
    }

    /// Converts to `f64`.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE as f64
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Fixed-point multiply with rounding, widened internally to `i64`
    /// and saturating at the representable range.
    #[must_use]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = self.0 as i64 * rhs.0 as i64;
        let rounded = (wide + (Self::SCALE >> 1)) >> FRAC;
        Self(rounded.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Quantization step of this format (`2^-FRAC`).
    #[must_use]
    pub fn epsilon() -> f64 {
        1.0 / Self::SCALE as f64
    }
}

impl<const FRAC: u32> core::fmt::Display for Q<FRAC> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}q{}", self.to_f64(), FRAC)
    }
}

/// Quantizes a floating-point slice to Q-format and back, returning the
/// round-tripped values. Used to model fixed-point kernels in tests.
#[must_use]
pub fn quantize_slice<const FRAC: u32>(xs: &[f64]) -> Vec<f64> {
    xs.iter()
        .map(|&x| Q::<FRAC>::from_f64(x).to_f64())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoroshiro128;

    #[test]
    fn round_trip_error_bounded_by_half_epsilon() {
        let mut rng = Xoroshiro128::new(6);
        for _ in 0..1000 {
            let x = rng.range_f64(-100.0, 100.0);
            let q = Q::<15>::from_f64(x);
            assert!((q.to_f64() - x).abs() <= Q::<15>::epsilon() / 2.0 + 1e-15);
        }
    }

    #[test]
    fn multiplication_close_to_float() {
        let mut rng = Xoroshiro128::new(7);
        for _ in 0..1000 {
            let a = rng.range_f64(-1.0, 1.0);
            let b = rng.range_f64(-1.0, 1.0);
            let qa = Q::<15>::from_f64(a);
            let qb = Q::<15>::from_f64(b);
            assert!((qa.saturating_mul(qb).to_f64() - a * b).abs() < 3.0 * Q::<15>::epsilon());
        }
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let big = Q::<15>::from_raw(i32::MAX);
        assert_eq!(big.saturating_add(big).raw(), i32::MAX);
        let small = Q::<15>::from_raw(i32::MIN);
        assert_eq!(small.saturating_add(small).raw(), i32::MIN);
    }

    #[test]
    fn constants() {
        assert_eq!(Q::<15>::ONE.to_f64(), 1.0);
        assert_eq!(Q::<15>::ZERO.to_f64(), 0.0);
        assert_eq!(Q::<15>::SCALE, 32768);
    }

    #[test]
    fn quantize_slice_is_elementwise() {
        let xs = [0.1, -0.2, 0.3];
        let qs = quantize_slice::<8>(&xs);
        for (x, q) in xs.iter().zip(&qs) {
            assert!((x - q).abs() <= Q::<8>::epsilon());
        }
    }

    #[test]
    fn display_mentions_format() {
        assert!(Q::<15>::ONE.to_string().contains("q15"));
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Q::<12>::from_f64(0.5) > Q::<12>::from_f64(0.25));
    }
}
