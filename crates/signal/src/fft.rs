//! Radix-2 fast Fourier transform.
//!
//! The psychoacoustic model of the audio encoder (paper §4, Figure 2) needs
//! a spectral analysis of each input frame; content analysis (§5) needs
//! spectral audio features. Both use this FFT.
//!
//! The implementation is an iterative, in-place, decimation-in-time radix-2
//! transform with precomputed twiddle factors, planned once per size via
//! [`Fft::new`] — the usual plan/execute split so per-frame work allocates
//! nothing but the output buffer.

use crate::Complex;

/// Error returned when a transform is applied to a buffer whose length does
/// not match the planned size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthMismatchError {
    /// The planned transform size.
    pub expected: usize,
    /// The length supplied by the caller.
    pub got: usize,
}

impl core::fmt::Display for LengthMismatchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "buffer length {} does not match planned FFT size {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for LengthMismatchError {}

/// A planned radix-2 FFT of a fixed power-of-two size.
///
/// # Example
///
/// ```
/// use signal::fft::Fft;
/// use signal::Complex;
///
/// let fft = Fft::new(8);
/// let x: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
/// let spec = fft.forward(&x);
/// let back = fft.inverse(&spec);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a.re - b.re).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Twiddles for each butterfly span, forward direction.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
}

impl Fft {
    /// Plans a transform of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a power of two"
        );
        let mut twiddles = Vec::with_capacity(n / 2);
        for k in 0..n / 2 {
            twiddles.push(Complex::from_polar_unit(
                -2.0 * core::f64::consts::PI * k as f64 / n as f64,
            ));
        }
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // For n == 1 the shift above is bogus; fix up.
        let rev = if n == 1 { vec![0] } else { rev };
        Self { n, twiddles, rev }
    }

    /// The planned transform size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the planned size is 1 (the identity transform).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    fn transform_in_place(&self, buf: &mut [Complex], invert: bool) {
        let n = self.n;
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut span = 1;
        while span < n {
            let step = n / (span * 2);
            for start in (0..n).step_by(span * 2) {
                for k in 0..span {
                    let mut w = self.twiddles[k * step];
                    if invert {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + span] * w;
                    buf[start + k] = a + b;
                    buf[start + k + span] = a - b;
                }
            }
            span *= 2;
        }
        if invert {
            let scale = 1.0 / n as f64;
            for v in buf.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    /// Forward DFT of a complex signal.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`; use [`Fft::try_forward`] for a
    /// fallible variant.
    #[must_use]
    pub fn forward(&self, input: &[Complex]) -> Vec<Complex> {
        self.try_forward(input).expect("FFT input length mismatch")
    }

    /// Fallible forward DFT.
    ///
    /// # Errors
    ///
    /// Returns [`LengthMismatchError`] when the buffer length differs from
    /// the planned size.
    pub fn try_forward(&self, input: &[Complex]) -> Result<Vec<Complex>, LengthMismatchError> {
        if input.len() != self.n {
            return Err(LengthMismatchError {
                expected: self.n,
                got: input.len(),
            });
        }
        let mut buf = input.to_vec();
        self.transform_in_place(&mut buf, false);
        Ok(buf)
    }

    /// Inverse DFT (normalized by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    #[must_use]
    pub fn inverse(&self, input: &[Complex]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "FFT input length mismatch");
        let mut buf = input.to_vec();
        self.transform_in_place(&mut buf, true);
        buf
    }

    /// Forward DFT of a real signal (imaginary parts taken as zero).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    #[must_use]
    pub fn forward_real(&self, input: &[f64]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "FFT input length mismatch");
        let mut buf: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
        self.transform_in_place(&mut buf, false);
        buf
    }

    /// Power spectrum `|X[k]|^2 / N` of a real signal, first `N/2 + 1` bins.
    ///
    /// This is the form the psychoacoustic model consumes.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    #[must_use]
    pub fn power_spectrum(&self, input: &[f64]) -> Vec<f64> {
        let spec = self.forward_real(input);
        let norm = 1.0 / self.n as f64;
        spec.iter()
            .take(self.n / 2 + 1)
            .map(|c| c.norm_sqr() * norm)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoroshiro128;

    /// Naive O(N^2) DFT as the oracle.
    fn dft_naive(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &v) in x.iter().enumerate() {
                    let w = Complex::from_polar_unit(
                        -2.0 * core::f64::consts::PI * (k * j) as f64 / n as f64,
                    );
                    acc = acc + v * w;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let mut rng = Xoroshiro128::new(1);
        for &n in &[1usize, 2, 4, 8, 64, 256] {
            let x: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
                .collect();
            let fast = Fft::new(n).forward(&x);
            let slow = dft_naive(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let mut rng = Xoroshiro128::new(2);
        let fft = Fft::new(128);
        let x: Vec<Complex> = (0..128)
            .map(|_| Complex::new(rng.normal(), rng.normal()))
            .collect();
        let back = fft.inverse(&fft.forward(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let fft = Fft::new(16);
        let mut x = vec![Complex::default(); 16];
        x[0] = Complex::new(1.0, 0.0);
        for c in fft.forward(&x) {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn sine_concentrates_in_one_bin() {
        let n = 64;
        let fft = Fft::new(n);
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * 5.0 * i as f64 / n as f64).sin())
            .collect();
        let p = fft.power_spectrum(&x);
        let peak = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 5);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let mut rng = Xoroshiro128::new(3);
        let n = 256;
        let fft = Fft::new(n);
        let x: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let spec = fft.forward_real(&x);
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
    }

    #[test]
    fn try_forward_reports_length_mismatch() {
        let fft = Fft::new(8);
        let err = fft.try_forward(&[Complex::default(); 4]).unwrap_err();
        assert_eq!(
            err,
            LengthMismatchError {
                expected: 8,
                got: 4
            }
        );
        assert!(err.to_string().contains("8"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_size_panics() {
        let _ = Fft::new(12);
    }

    #[test]
    fn size_one_is_identity() {
        let fft = Fft::new(1);
        let y = fft.forward(&[Complex::new(3.0, -1.0)]);
        assert_eq!(y[0], Complex::new(3.0, -1.0));
    }
}
