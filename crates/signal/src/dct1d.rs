//! One-dimensional discrete cosine transform (DCT-II / DCT-III).
//!
//! Paper §3: *"The discrete cosine transform (DCT) … is a frequency
//! transform with the advantage that a 2-D DCT can be computed from two
//! 1-D DCTs."* This module provides the 1-D building block; the `video`
//! crate composes it row–column into the 8×8 2-D transform of Figure 1, and
//! experiment **E4** quantifies the row–column advantage against a direct
//! O(N⁴) 2-D evaluation.
//!
//! Both a matrix-based transform for arbitrary `N` and operation counting
//! (so benches can report multiply–accumulate counts, not just wall time)
//! are provided.

/// A planned 1-D DCT of fixed size with precomputed basis matrix.
///
/// Uses the orthonormal DCT-II convention:
/// `X[k] = c(k) * sum_n x[n] cos(pi (2n+1) k / 2N)`, with
/// `c(0)=sqrt(1/N)`, `c(k)=sqrt(2/N)` — so the inverse is the transpose.
///
/// # Example
///
/// ```
/// use signal::dct1d::Dct1d;
///
/// let dct = Dct1d::new(8);
/// let x = [1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0];
/// let spec = dct.forward(&x);
/// let back = dct.inverse(&spec);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-10);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Dct1d {
    n: usize,
    /// Row-major `n x n` forward basis: `basis[k*n + j] = c(k) cos(...)`.
    basis: Vec<f64>,
}

impl Dct1d {
    /// Plans a DCT of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "DCT size must be positive");
        let mut basis = vec![0.0; n * n];
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let c = if k == 0 { norm0 } else { norm };
            for j in 0..n {
                basis[k * n + j] = c
                    * (core::f64::consts::PI * (2 * j + 1) as f64 * k as f64 / (2 * n) as f64)
                        .cos();
            }
        }
        Self { n, basis }
    }

    /// The planned size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the planned size is zero (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DCT-II.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "DCT input length mismatch");
        let mut out = vec![0.0; self.n];
        self.forward_into(x, &mut out);
        out
    }

    /// Forward DCT-II into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the planned size.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "DCT input length mismatch");
        assert_eq!(out.len(), self.n, "DCT output length mismatch");
        for (k, o) in out.iter_mut().enumerate() {
            let row = &self.basis[k * self.n..(k + 1) * self.n];
            *o = row.iter().zip(x).map(|(b, v)| b * v).sum();
        }
    }

    /// Inverse (DCT-III, i.e. the transpose of the orthonormal forward).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    #[must_use]
    pub fn inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "DCT input length mismatch");
        let mut out = vec![0.0; self.n];
        for (j, o) in out.iter_mut().enumerate() {
            *o = x
                .iter()
                .enumerate()
                .map(|(k, v)| self.basis[k * self.n + j] * v)
                .sum();
        }
        out
    }

    /// Multiply–accumulate operations for one forward transform.
    ///
    /// Exposed so experiment E4 can report algorithmic cost independent of
    /// machine speed.
    #[must_use]
    pub fn macs_per_transform(&self) -> u64 {
        (self.n * self.n) as u64
    }
}

/// MAC count for a direct (non-separable) 2-D DCT on an `n x n` block:
/// every one of the `n^2` output coefficients sums over all `n^2` inputs.
#[must_use]
pub fn direct_2d_macs(n: usize) -> u64 {
    let n = n as u64;
    n * n * n * n
}

/// MAC count for a separable row–column 2-D DCT on an `n x n` block:
/// `2n` one-dimensional transforms of size `n`.
#[must_use]
pub fn rowcol_2d_macs(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoroshiro128;

    #[test]
    fn forward_of_constant_is_dc_only() {
        let dct = Dct1d::new(8);
        let x = [5.0; 8];
        let spec = dct.forward(&x);
        // Orthonormal DC coefficient = 5 * 8 / sqrt(8) = 5 * sqrt(8).
        assert!((spec[0] - 5.0 * 8.0f64.sqrt()).abs() < 1e-10);
        for &c in &spec[1..] {
            assert!(c.abs() < 1e-10);
        }
    }

    #[test]
    fn round_trip_random_vectors() {
        let mut rng = Xoroshiro128::new(4);
        for &n in &[1usize, 2, 3, 8, 16, 31] {
            let dct = Dct1d::new(n);
            let x: Vec<f64> = (0..n).map(|_| rng.range_f64(-128.0, 128.0)).collect();
            let back = dct.inverse(&dct.forward(&x));
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn basis_is_orthonormal() {
        let dct = Dct1d::new(8);
        for k1 in 0..8 {
            for k2 in 0..8 {
                let dot: f64 = (0..8)
                    .map(|j| dct.basis[k1 * 8 + j] * dct.basis[k2 * 8 + j])
                    .sum();
                let expect = if k1 == k2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "rows {k1},{k2}");
            }
        }
    }

    #[test]
    fn energy_is_preserved() {
        let mut rng = Xoroshiro128::new(5);
        let dct = Dct1d::new(16);
        let x: Vec<f64> = (0..16).map(|_| rng.normal()).collect();
        let spec = dct.forward(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let es: f64 = spec.iter().map(|v| v * v).sum();
        assert!((ex - es).abs() < 1e-9 * ex.max(1.0));
    }

    #[test]
    fn mac_counts_follow_formulas() {
        assert_eq!(Dct1d::new(8).macs_per_transform(), 64);
        assert_eq!(direct_2d_macs(8), 4096);
        assert_eq!(rowcol_2d_macs(8), 1024);
        // The paper-claimed advantage of the separable form: 4x at n=8.
        assert_eq!(direct_2d_macs(8) / rowcol_2d_macs(8), 4);
    }

    #[test]
    fn forward_into_matches_forward() {
        let dct = Dct1d::new(8);
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let a = dct.forward(&x);
        let mut b = vec![0.0; 8];
        dct.forward_into(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Dct1d::new(0);
    }
}
