//! Deterministic pseudo-random number generation.
//!
//! All workload generators in the workspace draw from [`Xoroshiro128`], a
//! small, fast, seedable PRNG (xoroshiro128++). Determinism matters here:
//! every experiment in EXPERIMENTS.md must regenerate the same workload from
//! the same seed so that paper-shape comparisons are reproducible run to
//! run, machine to machine.

/// A deterministic xoroshiro128++ pseudo-random number generator.
///
/// Not cryptographically secure — the DRM crate has its own keystream
/// construction. This generator is for *workloads*: noise, jitter, test
/// corpora.
///
/// # Example
///
/// ```
/// use signal::rng::Xoroshiro128;
///
/// let mut a = Xoroshiro128::new(7);
/// let mut b = Xoroshiro128::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoroshiro128 {
    s0: u64,
    s1: u64,
}

/// One SplitMix64 step: advances `x` by the golden-ratio increment and
/// avalanches it. The seed expander for [`Xoroshiro128::new`], and a
/// stateless mixing hash in its own right (consistent sharding uses it
/// to spread consecutive indices).
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoroshiro128 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded with [`splitmix64`] so that nearby seeds
    /// (0, 1, 2…) yield unrelated streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let s0 = splitmix64(seed);
        let mut s1 = splitmix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        if s0 == 0 && s1 == 0 {
            s1 = 1; // the all-zero state is the one forbidden state
        }
        Self { s0, s1 }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let (s0, mut s1) = (self.s0, self.s1);
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
        self.s1 = s1.rotate_left(28);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`; uses rejection sampling to avoid modulo
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "bad range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal draw via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.normal()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

impl Default for Xoroshiro128 {
    /// Seeds with a fixed constant — the workspace favours reproducibility
    /// over entropy.
    fn default() -> Self {
        Self::new(0x6d6d_7073_6f63) // "mmpsoc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoroshiro128::new(123);
        let mut b = Xoroshiro128::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoroshiro128::new(1);
        let mut b = Xoroshiro128::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should not track");
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Xoroshiro128::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Xoroshiro128::new(5);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn range_i64_hits_both_endpoints() {
        let mut r = Xoroshiro128::new(11);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_has_unit_moments() {
        let mut r = Xoroshiro128::new(77);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoroshiro128::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = Xoroshiro128::new(3);
        assert!(r.choose::<u8>(&[]).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoroshiro128::new(8);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
