//! Fast fixed-size 8-point DCT (Loeffler/AAN-style butterfly).
//!
//! The generic matrix transform in [`crate::dct1d`] multiplies every
//! 8-sample row by a precomputed 8×8 basis — 64 multiplies per transform.
//! The video codec only ever needs `N = 8`, so this module specialises:
//! an even/odd butterfly decomposition (a 4-point DCT-II for the even
//! coefficients, a 4-point DCT-IV for the odd ones) that needs 29
//! multiplies, no planning step, no heap, and produces the *same
//! orthonormal DCT-II/DCT-III* convention as [`crate::dct1d::Dct1d`] to
//! within floating-point rounding. The matrix transform stays in the tree
//! as the correctness oracle; the property suite pins the two together at
//! `1e-9`.
//!
//! Forward: `X[k] = c(k) · Σ x[n] cos(π (2n+1) k / 16)` with
//! `c(0) = √(1/8)`, `c(k) = 1/2`. Inverse is the exact transpose of the
//! forward flow graph, so round-trips are identities up to rounding.

/// The fixed transform size.
pub const N: usize = 8;

/// Multiplies performed by one [`fdct8`] (or [`idct8`]): 5 in the even
/// (DCT-II) half, 16 in the odd (DCT-IV) half, 8 output scalings —
/// versus 64 for the 8×8 matrix product of [`crate::dct1d::Dct1d`].
pub const FAST8_MULS: u64 = 29;

// cos(k·π/16) for the odd-half (4-point DCT-IV) twiddles.
const C1: f64 = 0.980_785_280_403_230_4; // cos(π/16)
const C3: f64 = 0.831_469_612_302_545_2; // cos(3π/16)
const C5: f64 = 0.555_570_233_019_602_2; // cos(5π/16)
const C7: f64 = 0.195_090_322_016_128_27; // cos(7π/16)
                                          // cos(k·π/8) for the even-half (4-point DCT-II) twiddles.
const D1: f64 = 0.923_879_532_511_286_7; // cos(π/8)
const D3: f64 = 0.382_683_432_365_089_8; // cos(3π/8)
const R2: f64 = core::f64::consts::FRAC_1_SQRT_2; // cos(π/4)
                                                  // Orthonormal output scales: c(0) = √(1/8) = 1/(2√2), c(k>0) = 1/2.
const S0: f64 = 0.353_553_390_593_273_8;
const SK: f64 = 0.5;

/// Forward orthonormal 8-point DCT-II via even/odd butterflies.
#[must_use]
pub fn fdct8(x: &[f64; N]) -> [f64; N] {
    // Stage 1: fold around the centre.
    let u0 = x[0] + x[7];
    let u1 = x[1] + x[6];
    let u2 = x[2] + x[5];
    let u3 = x[3] + x[4];
    let v0 = x[0] - x[7];
    let v1 = x[1] - x[6];
    let v2 = x[2] - x[5];
    let v3 = x[3] - x[4];
    // Even half: 4-point DCT-II of u -> coefficients 0, 2, 4, 6.
    let a0 = u0 + u3;
    let a1 = u1 + u2;
    let b0 = u0 - u3;
    let b1 = u1 - u2;
    let s0 = a0 + a1;
    let s4 = (a0 - a1) * R2;
    let s2 = b0 * D1 + b1 * D3;
    let s6 = b0 * D3 - b1 * D1;
    // Odd half: 4-point DCT-IV of v -> coefficients 1, 3, 5, 7.
    let s1 = C1 * v0 + C3 * v1 + C5 * v2 + C7 * v3;
    let s3 = C3 * v0 - C7 * v1 - C1 * v2 - C5 * v3;
    let s5 = C5 * v0 - C1 * v1 + C7 * v2 + C3 * v3;
    let s7 = C7 * v0 - C5 * v1 + C3 * v2 - C1 * v3;
    [
        S0 * s0,
        SK * s1,
        SK * s2,
        SK * s3,
        SK * s4,
        SK * s5,
        SK * s6,
        SK * s7,
    ]
}

/// Inverse orthonormal 8-point DCT (DCT-III): the transpose of the
/// [`fdct8`] flow graph, stage for stage.
#[must_use]
pub fn idct8(c: &[f64; N]) -> [f64; N] {
    // Transpose of the output scaling.
    let s0 = S0 * c[0];
    let s1 = SK * c[1];
    let s2 = SK * c[2];
    let s3 = SK * c[3];
    let s4 = SK * c[4];
    let s5 = SK * c[5];
    let s6 = SK * c[6];
    let s7 = SK * c[7];
    // Transpose of the even half (4-point DCT-II).
    let u0 = s0 + D1 * s2 + R2 * s4 + D3 * s6;
    let u1 = s0 + D3 * s2 - R2 * s4 - D1 * s6;
    let u2 = s0 - D3 * s2 - R2 * s4 + D1 * s6;
    let u3 = s0 - D1 * s2 + R2 * s4 - D3 * s6;
    // Transpose of the odd half (4-point DCT-IV).
    let v0 = C1 * s1 + C3 * s3 + C5 * s5 + C7 * s7;
    let v1 = C3 * s1 - C7 * s3 - C1 * s5 - C5 * s7;
    let v2 = C5 * s1 - C1 * s3 + C7 * s5 + C3 * s7;
    let v3 = C7 * s1 - C5 * s3 + C3 * s5 - C1 * s7;
    // Transpose of the centre fold.
    [
        u0 + v0,
        u1 + v1,
        u2 + v2,
        u3 + v3,
        u3 - v3,
        u2 - v2,
        u1 - v1,
        u0 - v0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct1d::Dct1d;
    use crate::rng::Xoroshiro128;

    #[test]
    fn matches_matrix_oracle() {
        let oracle = Dct1d::new(8);
        let mut rng = Xoroshiro128::new(8);
        for _ in 0..50 {
            let mut x = [0.0; N];
            for v in &mut x {
                *v = rng.range_f64(-255.0, 255.0);
            }
            let fast = fdct8(&x);
            let slow = oracle.forward(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn inverse_matches_matrix_oracle() {
        let oracle = Dct1d::new(8);
        let mut rng = Xoroshiro128::new(9);
        for _ in 0..50 {
            let mut c = [0.0; N];
            for v in &mut c {
                *v = rng.range_f64(-255.0, 255.0);
            }
            let fast = idct8(&c);
            let slow = oracle.inverse(&c);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let mut rng = Xoroshiro128::new(10);
        let mut x = [0.0; N];
        for v in &mut x {
            *v = rng.range_f64(-128.0, 127.0);
        }
        let back = idct8(&fdct8(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dc_of_constant_input() {
        let spec = fdct8(&[5.0; N]);
        assert!((spec[0] - 5.0 * 8.0f64.sqrt()).abs() < 1e-12);
        for &c in &spec[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn energy_is_preserved() {
        let mut rng = Xoroshiro128::new(11);
        let mut x = [0.0; N];
        for v in &mut x {
            *v = rng.normal();
        }
        let spec = fdct8(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let es: f64 = spec.iter().map(|v| v * v).sum();
        assert!((ex - es).abs() < 1e-12 * ex.max(1.0));
    }

    #[test]
    fn mul_count_beats_matrix() {
        assert!(FAST8_MULS < Dct1d::new(8).macs_per_transform());
    }
}
