//! Platform descriptions: sets of PEs plus an interconnect specification.
//!
//! Paper §2 lists the consumer device classes an MPSoC must serve —
//! *multimedia cell phones, digital audio players, set-top boxes, digital
//! video recorders, digital video cameras* — each at a different
//! cost/performance/power point. The presets here encode those points as
//! platform sizes and clock rates; experiment E17 runs the corresponding
//! applications on them.

use crate::interconnect::{Interconnect, MeshNoc, SharedBus};
use crate::pe::{PeId, PeKind, ProcessingElement};

/// Interconnect specification — instantiated fresh for each simulation run
/// so runs never leak contention state into each other.
#[derive(Debug, Clone)]
pub enum InterconnectSpec {
    /// Single shared bus.
    Bus {
        /// Bandwidth in bytes per second.
        bandwidth_bytes_per_s: f64,
        /// Arbitration latency per transfer, seconds.
        arbitration_s: f64,
        /// Transfer energy, picojoules per byte.
        energy_pj_per_byte: f64,
    },
    /// 2-D mesh NoC with XY routing.
    Mesh {
        /// Grid columns.
        cols: usize,
        /// Grid rows.
        rows: usize,
        /// Per-link bandwidth in bytes per second.
        link_bandwidth_bytes_per_s: f64,
        /// Per-hop latency in seconds.
        hop_latency_s: f64,
        /// Energy in picojoules per byte per hop.
        energy_pj_per_byte_hop: f64,
    },
}

impl InterconnectSpec {
    /// Builds a fresh, idle interconnect instance.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn Interconnect> {
        match *self {
            InterconnectSpec::Bus {
                bandwidth_bytes_per_s,
                arbitration_s,
                energy_pj_per_byte,
            } => Box::new(SharedBus::new(
                bandwidth_bytes_per_s,
                arbitration_s,
                energy_pj_per_byte,
            )),
            InterconnectSpec::Mesh {
                cols,
                rows,
                link_bandwidth_bytes_per_s,
                hop_latency_s,
                energy_pj_per_byte_hop,
            } => Box::new(MeshNoc::new(
                cols,
                rows,
                link_bandwidth_bytes_per_s,
                hop_latency_s,
                energy_pj_per_byte_hop,
            )),
        }
    }
}

/// A complete MPSoC platform: named PEs plus interconnect.
///
/// # Example
///
/// ```
/// use mpsoc::platform::Platform;
///
/// let p = Platform::symmetric_bus("quad", 4, 200e6);
/// assert_eq!(p.pe_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    pes: Vec<ProcessingElement>,
    interconnect: InterconnectSpec,
}

impl Platform {
    /// Creates a platform from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is empty, or if a mesh spec does not cover the PE
    /// count.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        pes: Vec<ProcessingElement>,
        interconnect: InterconnectSpec,
    ) -> Self {
        assert!(!pes.is_empty(), "platform needs at least one PE");
        if let InterconnectSpec::Mesh { cols, rows, .. } = interconnect {
            assert!(
                cols * rows >= pes.len(),
                "mesh {}x{} too small for {} PEs",
                cols,
                rows,
                pes.len()
            );
        }
        Self {
            name: name.into(),
            pes,
            interconnect,
        }
    }

    /// `n` identical RISC cores on a default shared bus.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn symmetric_bus(name: impl Into<String>, n: usize, clock_hz: f64) -> Self {
        let pes = (0..n)
            .map(|i| ProcessingElement::new(format!("risc{i}"), PeKind::RiscCpu, clock_hz))
            .collect();
        Self::new(
            name,
            pes,
            InterconnectSpec::Bus {
                bandwidth_bytes_per_s: 400e6,
                arbitration_s: 50e-9,
                energy_pj_per_byte: 5.0,
            },
        )
    }

    /// `cols * rows` identical RISC cores on a mesh NoC.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    #[must_use]
    pub fn symmetric_mesh(
        name: impl Into<String>,
        cols: usize,
        rows: usize,
        clock_hz: f64,
    ) -> Self {
        let pes = (0..cols * rows)
            .map(|i| ProcessingElement::new(format!("risc{i}"), PeKind::RiscCpu, clock_hz))
            .collect();
        Self::new(
            name,
            pes,
            InterconnectSpec::Mesh {
                cols,
                rows,
                link_bandwidth_bytes_per_s: 200e6,
                hop_latency_s: 20e-9,
                energy_pj_per_byte_hop: 2.0,
            },
        )
    }

    /// Multimedia cell phone (§2): one control RISC plus one modest DSP,
    /// tight power budget, low clock.
    #[must_use]
    pub fn cell_phone() -> Self {
        Self::new(
            "cell-phone",
            vec![
                ProcessingElement::new("arm", PeKind::RiscCpu, 104e6),
                ProcessingElement::new("dsp", PeKind::Dsp, 104e6),
            ],
            InterconnectSpec::Bus {
                bandwidth_bytes_per_s: 100e6,
                arbitration_s: 100e-9,
                energy_pj_per_byte: 4.0,
            },
        )
    }

    /// Digital audio player (§2): single low-power DSP with a small
    /// control core.
    #[must_use]
    pub fn audio_player() -> Self {
        Self::new(
            "audio-player",
            vec![
                ProcessingElement::new("mcu", PeKind::RiscCpu, 75e6),
                ProcessingElement::new("dsp", PeKind::Dsp, 150e6),
            ],
            InterconnectSpec::Bus {
                bandwidth_bytes_per_s: 80e6,
                arbitration_s: 120e-9,
                energy_pj_per_byte: 3.5,
            },
        )
    }

    /// Digital set-top box (§2): decode-oriented — RISC host, DSP, and a
    /// video accelerator; mains-powered so clocks are higher.
    #[must_use]
    pub fn set_top_box() -> Self {
        Self::new(
            "set-top-box",
            vec![
                ProcessingElement::new("host", PeKind::RiscCpu, 300e6),
                ProcessingElement::new("dsp", PeKind::Dsp, 250e6),
                ProcessingElement::new("vdec", PeKind::Accelerator, 200e6),
            ],
            InterconnectSpec::Bus {
                bandwidth_bytes_per_s: 800e6,
                arbitration_s: 40e-9,
                energy_pj_per_byte: 6.0,
            },
        )
    }

    /// Digital video recorder (§2): must encode and decode concurrently
    /// plus run content analysis — the largest preset.
    #[must_use]
    pub fn video_recorder() -> Self {
        Self::new(
            "video-recorder",
            vec![
                ProcessingElement::new("host", PeKind::RiscCpu, 300e6),
                ProcessingElement::new("dsp0", PeKind::Dsp, 250e6),
                ProcessingElement::new("dsp1", PeKind::Dsp, 250e6),
                ProcessingElement::new("venc", PeKind::Accelerator, 250e6),
                ProcessingElement::new("vdec", PeKind::Accelerator, 200e6),
            ],
            InterconnectSpec::Bus {
                bandwidth_bytes_per_s: 1.2e9,
                arbitration_s: 40e-9,
                energy_pj_per_byte: 6.0,
            },
        )
    }

    /// Digital video camera (§2): encode-heavy, battery-powered.
    #[must_use]
    pub fn video_camera() -> Self {
        Self::new(
            "video-camera",
            vec![
                ProcessingElement::new("host", PeKind::RiscCpu, 200e6),
                ProcessingElement::new("dsp", PeKind::Dsp, 216e6),
                ProcessingElement::new("venc", PeKind::Accelerator, 216e6),
            ],
            InterconnectSpec::Bus {
                bandwidth_bytes_per_s: 600e6,
                arbitration_s: 60e-9,
                energy_pj_per_byte: 4.5,
            },
        )
    }

    /// The platform's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of PEs.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// The PEs.
    #[must_use]
    pub fn pes(&self) -> &[ProcessingElement] {
        &self.pes
    }

    /// The PE with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn pe(&self, id: PeId) -> &ProcessingElement {
        &self.pes[id.0]
    }

    /// The interconnect specification.
    #[must_use]
    pub fn interconnect_spec(&self) -> &InterconnectSpec {
        &self.interconnect
    }

    /// Replaces the interconnect specification (builder style).
    #[must_use]
    pub fn with_interconnect(mut self, spec: InterconnectSpec) -> Self {
        if let InterconnectSpec::Mesh { cols, rows, .. } = spec {
            assert!(cols * rows >= self.pes.len(), "mesh too small for PE count");
        }
        self.interconnect = spec;
        self
    }

    /// Total leakage power of all PEs in watts.
    #[must_use]
    pub fn leakage_w(&self) -> f64 {
        self.pes.iter().map(|p| p.leakage_mw() * 1e-3).sum()
    }
}

impl core::fmt::Display for Platform {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} [{} PEs, {}]",
            self.name,
            self.pes.len(),
            self.interconnect.instantiate().describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(Platform::cell_phone().pe_count(), 2);
        assert_eq!(Platform::audio_player().pe_count(), 2);
        assert_eq!(Platform::set_top_box().pe_count(), 3);
        assert_eq!(Platform::video_recorder().pe_count(), 5);
        assert_eq!(Platform::video_camera().pe_count(), 3);
    }

    #[test]
    fn phone_is_slowest_and_lowest_leakage_vs_dvr() {
        let phone = Platform::cell_phone();
        let dvr = Platform::video_recorder();
        let max_clock = |p: &Platform| {
            p.pes()
                .iter()
                .map(|pe| pe.clock_hz())
                .fold(0.0f64, f64::max)
        };
        assert!(max_clock(&phone) < max_clock(&dvr));
        assert!(phone.leakage_w() < dvr.leakage_w());
    }

    #[test]
    fn symmetric_builders() {
        let bus = Platform::symmetric_bus("b", 4, 100e6);
        assert_eq!(bus.pe_count(), 4);
        let mesh = Platform::symmetric_mesh("m", 2, 3, 100e6);
        assert_eq!(mesh.pe_count(), 6);
    }

    #[test]
    fn instantiate_gives_fresh_interconnect() {
        let p = Platform::symmetric_bus("b", 2, 100e6);
        let mut ic1 = p.interconnect_spec().instantiate();
        ic1.schedule(PeId(0), PeId(1), 1_000_000, 0.0);
        let ic2 = p.interconnect_spec().instantiate();
        assert_eq!(ic2.bytes_moved(), 0, "new instance must be idle");
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn empty_platform_panics() {
        let _ = Platform::new(
            "x",
            vec![],
            InterconnectSpec::Bus {
                bandwidth_bytes_per_s: 1e6,
                arbitration_s: 0.0,
                energy_pj_per_byte: 0.0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_mesh_panics() {
        let pes = (0..5)
            .map(|i| ProcessingElement::new(format!("p{i}"), PeKind::RiscCpu, 1e8))
            .collect();
        let _ = Platform::new(
            "x",
            pes,
            InterconnectSpec::Mesh {
                cols: 2,
                rows: 2,
                link_bandwidth_bytes_per_s: 1e6,
                hop_latency_s: 0.0,
                energy_pj_per_byte_hop: 0.0,
            },
        );
    }

    #[test]
    fn display_mentions_name_and_size() {
        let s = Platform::set_top_box().to_string();
        assert!(s.contains("set-top-box") && s.contains("3 PEs"));
    }
}
