//! The streaming head-end as an MPSoC task graph.
//!
//! Wolf's thesis is that one platform family serves every multimedia
//! box in the house — and the *head-end* that feeds those boxes is
//! itself a multiprocessor workload: one source fans out to an encoder
//! per ABR ladder rung, the rung streams are packetised, sealed (§6
//! content protection) and published. This module captures that
//! pipeline as pure data (a [`HeadendSpec`]) and builds the
//! corresponding [`TaskGraph`]:
//!
//! ```text
//!            ┌─ encode_r0 ─┐
//!  capture ──┼─ encode_r1 ─┼── mux ── seal ── publish
//!            └─ encode_r… ─┘
//! ```
//!
//! The spec is the *single definition* consumed two ways: the delivery
//! stack (`mmstream::headend`) derives one from a really-encoded ladder
//! — per-rung [`EncodeTally`]s measured by the `video` encoder, edge
//! bytes from actual elementary-stream/segment sizes — and (a) maps the
//! graph across platform configurations here, while (b) executing the
//! same per-rung stages on a host worker pool. `mpsoc` itself stays
//! dependency-free: everything in this module is plain counts and
//! bytes, and [`HeadendSpec::synthetic`] provides a dimensioned
//! stand-in for tests and benches that don't want to run an encoder.

use crate::task::{OpCounts, TaskGraph};

/// Per-stage operation tallies for one rung's encode, mirroring the
/// video encoder's stage counters (pure data so `mpsoc` needs no
/// dependency on the codec crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodeTally {
    /// Block-matching candidates evaluated by motion estimation.
    pub sad_evaluations: u64,
    /// Pixels absolute-differenced across all SAD evaluations.
    pub sad_pixel_ops: u64,
    /// Multiply–accumulates in the forward + inverse transforms.
    pub transform_macs: u64,
    /// Coefficients quantized (one multiply-round each).
    pub quant_coeffs: u64,
    /// Entropy symbols emitted (DC, AC, motion vectors).
    pub vlc_symbols: u64,
    /// Pixels produced by motion-compensated prediction.
    pub mc_pixels: u64,
}

impl EncodeTally {
    /// Classifies the tallies into the five [`OpCounts`] classes the
    /// PE cycle tables price:
    ///
    /// * SAD pixel work is absolute-difference + accumulate → `IntAlu`;
    /// * transforms and quantization are multiply–accumulate → `Mac`;
    /// * motion compensation streams reference pixels → `Mem`;
    /// * one branchy candidate loop per SAD evaluation → `Control`;
    /// * entropy coding shifts symbols into the bitstream → `Bit`.
    #[must_use]
    pub fn op_counts(&self) -> OpCounts {
        OpCounts::new()
            .with_int_alu(self.sad_pixel_ops)
            .with_mac(self.transform_macs + self.quant_coeffs)
            .with_mem(self.mc_pixels)
            .with_control(self.sad_evaluations)
            .with_bit(self.vlc_symbols)
    }
}

/// One ladder rung as a head-end stage: measured encode tallies plus
/// the real byte volumes flowing in and out of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungStage {
    /// Stage name, e.g. `"encode_r0"`.
    pub name: String,
    /// Measured (or modeled) encoder work for one pass over the source.
    pub tally: EncodeTally,
    /// Elementary-stream bytes the rung hands to the muxer.
    pub es_bytes: u64,
    /// Muxed wire bytes this rung contributes to the published ladder.
    pub wire_bytes: u64,
}

/// The head-end pipeline as pure data: source volume plus one
/// [`RungStage`] per ladder rung. One spec, two consumers — see the
/// module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadendSpec {
    /// Title being encoded (graph naming only).
    pub title: String,
    /// Raw source bytes per pipeline pass (all planes, all frames) —
    /// the volume `capture` feeds to *each* rung encoder.
    pub source_bytes: u64,
    /// The ladder rungs, lowest target first.
    pub rungs: Vec<RungStage>,
}

impl HeadendSpec {
    /// Creates an empty spec for `title`.
    #[must_use]
    pub fn new(title: impl Into<String>, source_bytes: u64) -> Self {
        Self {
            title: title.into(),
            source_bytes,
            rungs: Vec::new(),
        }
    }

    /// Appends a rung stage (named `encode_r<i>` after its position).
    pub fn push_rung(&mut self, tally: EncodeTally, es_bytes: u64, wire_bytes: u64) {
        let name = format!("encode_r{}", self.rungs.len());
        self.rungs.push(RungStage {
            name,
            tally,
            es_bytes,
            wire_bytes,
        });
    }

    /// Number of ladder rungs.
    #[must_use]
    pub fn rung_count(&self) -> usize {
        self.rungs.len()
    }

    /// Total wire bytes across all rungs — what mux emits and seal and
    /// publish each traverse.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.rungs.iter().map(|r| r.wire_bytes).sum()
    }

    /// Builds the head-end task graph: `capture` fanning out to one
    /// encode task per rung, joined by `mux`, then `seal` and
    /// `publish` in sequence. Every edge carries the real byte volume
    /// of the data crossing it.
    ///
    /// For `R` rungs the graph has `R + 4` tasks and `2R + 2` edges.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no rungs.
    #[must_use]
    pub fn task_graph(&self) -> TaskGraph {
        assert!(!self.rungs.is_empty(), "head-end spec needs >= 1 rung");
        let wire = self.wire_bytes();
        let mut g = TaskGraph::new(format!("headend:{}", self.title));
        let capture = g.add_task("capture", capture_ops(self.source_bytes), 0);
        let mux = {
            // Encode tasks first so ids follow pipeline order.
            let encodes: Vec<_> = self
                .rungs
                .iter()
                .map(|r| g.add_task(r.name.clone(), r.tally.op_counts(), 0))
                .collect();
            let mux = g.add_task("mux", mux_ops(wire), 0);
            for (rung, id) in self.rungs.iter().zip(&encodes) {
                g.add_edge(capture, *id, self.source_bytes)
                    .expect("fan-out cannot form a cycle");
                g.add_edge(*id, mux, rung.es_bytes)
                    .expect("fan-in cannot form a cycle");
            }
            mux
        };
        let seal = g.add_task("seal", seal_ops(wire), 0);
        let publish = g.add_task("publish", publish_ops(wire), 0);
        g.add_edge(mux, seal, wire).expect("chain is acyclic");
        g.add_edge(seal, publish, wire).expect("chain is acyclic");
        g
    }

    /// A dimensioned synthetic spec — a CIF-ish source modeled
    /// analytically (macroblock counts × a diamond-search candidate
    /// budget, 8×8 transform MACs, symbol counts growing with the rung
    /// target) so graph-construction tests and mapping benches can run
    /// without encoding anything.
    #[must_use]
    pub fn synthetic(rungs: usize) -> Self {
        assert!(rungs > 0, "head-end spec needs >= 1 rung");
        let (w, h, frames) = (352u64, 288u64, 8u64);
        let source_bytes = w * h * 3 / 2 * frames; // 4:2:0, one pass
        let macroblocks = (w / 16) * (h / 16) * frames;
        let blocks = (w / 8) * (h / 8) * frames;
        let mut spec = Self::new(format!("synthetic_{rungs}rung"), source_bytes);
        for ri in 0..rungs as u64 {
            // Higher rungs emit more symbols and bytes; motion search
            // and transforms are rate-independent.
            let tally = EncodeTally {
                sad_evaluations: macroblocks * 81,
                sad_pixel_ops: macroblocks * 81 * 256,
                transform_macs: blocks * 2 * 2 * 8 * 8 * 8,
                quant_coeffs: blocks * 64,
                vlc_symbols: blocks * 8 * (ri + 1),
                mc_pixels: (frames - 1) * w * h,
            };
            let es_bytes = frames * 1_500 * (ri + 1);
            // TS-style overhead: 188-byte packets with 4-byte headers.
            let wire_bytes = es_bytes + es_bytes / 46 + 376;
            spec.push_rung(tally, es_bytes, wire_bytes);
        }
        spec
    }
}

/// Source stage model: one memory fetch per raw byte handed on.
#[must_use]
pub fn capture_ops(source_bytes: u64) -> OpCounts {
    OpCounts::new().with_mem(source_bytes)
}

/// Muxer model for TS-style packetisation: every wire byte is written
/// once and shifted through the CRC, with per-packet header control.
#[must_use]
pub fn mux_ops(wire_bytes: u64) -> OpCounts {
    let packets = wire_bytes / 188;
    OpCounts::new()
        .with_mem(wire_bytes)
        .with_bit(wire_bytes)
        .with_control(packets)
}

/// Sealing model for XTEA-CTR: 32 rounds per 8-byte block, each round
/// ~6 adds and ~8 shift/xor ops, plus a read and a write per byte.
#[must_use]
pub fn seal_ops(wire_bytes: u64) -> OpCounts {
    let blocks = wire_bytes.div_ceil(8);
    OpCounts::new()
        .with_int_alu(blocks * 32 * 6)
        .with_bit(blocks * 32 * 8)
        .with_mem(wire_bytes * 2)
}

/// Publish model: copy the sealed ladder into the origin's object
/// store (read + write per byte).
#[must_use]
pub fn publish_ops(wire_bytes: u64) -> OpCounts {
    OpCounts::new().with_mem(wire_bytes * 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Mapping;
    use crate::pe::PeId;
    use crate::platform::Platform;
    use crate::sched::Simulator;

    #[test]
    fn rung_count_sets_task_and_edge_counts() {
        for rungs in [1usize, 3, 5, 7] {
            let g = HeadendSpec::synthetic(rungs).task_graph();
            assert_eq!(g.task_count(), rungs + 4, "{rungs} rungs");
            assert_eq!(g.edge_count(), 2 * rungs + 2, "{rungs} rungs");
        }
    }

    #[test]
    fn topological_order_matches_the_pipeline() {
        let g = HeadendSpec::synthetic(3).task_graph();
        let names: Vec<&str> = g
            .topological_order()
            .unwrap()
            .into_iter()
            .map(|id| g.task(id).name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "capture",
                "encode_r0",
                "encode_r1",
                "encode_r2",
                "mux",
                "seal",
                "publish"
            ]
        );
    }

    #[test]
    fn edges_carry_the_spec_byte_volumes() {
        let spec = HeadendSpec::synthetic(2);
        let g = spec.task_graph();
        let wire = spec.wire_bytes();
        // capture -> encode edges carry the raw source volume.
        let order = g.topological_order().unwrap();
        let capture = order[0];
        for e in g.successors(capture) {
            assert_eq!(e.bytes, spec.source_bytes);
        }
        // The mux -> seal -> publish chain carries the full wire volume.
        let chain: Vec<u64> = g
            .edges()
            .iter()
            .filter(|e| {
                let names = (g.task(e.from).name.as_str(), g.task(e.to).name.as_str());
                matches!(names, ("mux", "seal") | ("seal", "publish"))
            })
            .map(|e| e.bytes)
            .collect();
        assert_eq!(chain, vec![wire, wire]);
        // encode -> mux edges carry each rung's elementary stream.
        for (ri, rung) in spec.rungs.iter().enumerate() {
            let es: Vec<u64> = g
                .edges()
                .iter()
                .filter(|e| g.task(e.from).name == format!("encode_r{ri}"))
                .map(|e| e.bytes)
                .collect();
            assert_eq!(es, vec![rung.es_bytes]);
        }
    }

    #[test]
    fn critical_path_grows_with_the_heaviest_rung() {
        // Adding rungs to the synthetic ladder adds heavier top rungs
        // (more symbols), so the critical path — capture, the heaviest
        // encode, mux, seal, publish — must grow strictly.
        let mut last = 0;
        for rungs in [1usize, 3, 5, 7] {
            let cp = HeadendSpec::synthetic(rungs)
                .task_graph()
                .critical_path_ops();
            assert!(cp > last, "{rungs} rungs: {cp} vs {last}");
            last = cp;
        }
        // And it equals the analytic chain through the heaviest rung.
        let spec = HeadendSpec::synthetic(4);
        let g = spec.task_graph();
        let wire = spec.wire_bytes();
        let heaviest = spec
            .rungs
            .iter()
            .map(|r| r.tally.op_counts().total())
            .max()
            .unwrap();
        let expect = capture_ops(spec.source_bytes).total()
            + heaviest
            + mux_ops(wire).total()
            + seal_ops(wire).total()
            + publish_ops(wire).total();
        assert_eq!(g.critical_path_ops(), expect);
    }

    #[test]
    fn one_pe_mapping_equals_the_sequential_ops_sum() {
        let g = HeadendSpec::synthetic(5).task_graph();
        let p = Platform::symmetric_bus("uni", 1, 200e6);
        let r = Simulator::new(&p)
            .run(&g, &Mapping::all_on_one(&g))
            .unwrap();
        // Everything on one PE: no transfers, makespan is exactly the
        // time of the summed op profile (per-class pricing is linear).
        let sequential_s = p.pe(PeId(0)).seconds_for(&g.total_ops());
        assert!(
            (r.makespan_s() - sequential_s).abs() < 1e-9 * sequential_s,
            "{} vs {}",
            r.makespan_s(),
            sequential_s
        );
        assert_eq!(r.bytes_moved(), 0);
    }

    #[test]
    fn more_pes_cut_latency_until_the_tail_dominates() {
        let g = HeadendSpec::synthetic(5).task_graph();
        let mut last = f64::INFINITY;
        for pes in [1usize, 2, 4] {
            let p = Platform::symmetric_bus("p", pes, 200e6);
            let m = Mapping::load_balanced(&g, &p);
            let r = Simulator::new(&p).run_stream(&g, &m, 8).unwrap();
            assert!(
                r.makespan_s() < last,
                "{pes} PEs did not improve: {} vs {last}",
                r.makespan_s()
            );
            last = r.makespan_s();
        }
    }

    #[test]
    #[should_panic(expected = ">= 1 rung")]
    fn empty_spec_panics() {
        let _ = HeadendSpec::new("empty", 0).task_graph();
    }
}
