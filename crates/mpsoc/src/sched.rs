//! Deterministic task-level simulator.
//!
//! Executes a [`TaskGraph`] on a [`Platform`] under a [`Mapping`], either
//! for a single graph iteration ([`Simulator::run`]) or for a stream of
//! iterations ([`Simulator::run_stream`]) — the latter models the
//! frame-after-frame operation of the paper's encoders, where mapping
//! pipeline stages to different PEs overlaps iteration `i+1` of early
//! stages with iteration `i` of late ones.
//!
//! The simulation is list-scheduled in topological order: a task instance
//! starts when (a) all its input transfers have completed and (b) its PE is
//! free. Transfers contend on the platform interconnect. Everything is
//! deterministic — same inputs, same schedule.

use crate::energy::EnergyReport;
use crate::map::{Mapping, MappingError};
use crate::pe::PeId;
use crate::platform::Platform;
use crate::task::{GraphError, TaskGraph, TaskId};
use crate::trace::{Trace, TraceEvent, TraceKind};

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The task graph is invalid (cyclic).
    Graph(GraphError),
    /// The mapping does not fit the graph/platform.
    Mapping(MappingError),
    /// Zero iterations requested.
    NoIterations,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Graph(e) => write!(f, "invalid task graph: {e}"),
            SimError::Mapping(e) => write!(f, "invalid mapping: {e}"),
            SimError::NoIterations => f.write_str("at least one iteration is required"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}

impl From<MappingError> for SimError {
    fn from(e: MappingError) -> Self {
        SimError::Mapping(e)
    }
}

/// Results of a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    makespan_s: f64,
    iterations: usize,
    pe_busy_s: Vec<f64>,
    energy: EnergyReport,
    bytes_moved: u64,
    interconnect_busy_s: f64,
    trace: Trace,
}

impl RunReport {
    /// Wall-clock time from 0 to the last completion, in seconds.
    #[must_use]
    pub fn makespan_s(&self) -> f64 {
        self.makespan_s
    }

    /// Number of graph iterations simulated.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Iterations completed per second of simulated time (streaming
    /// throughput, e.g. frames/s for a video graph).
    #[must_use]
    pub fn throughput_per_s(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.iterations as f64 / self.makespan_s
        } else {
            f64::INFINITY
        }
    }

    /// Busy seconds per PE, indexed by `PeId.0`.
    #[must_use]
    pub fn pe_busy_s(&self) -> &[f64] {
        &self.pe_busy_s
    }

    /// Utilization (busy / makespan) per PE.
    #[must_use]
    pub fn pe_utilization(&self) -> Vec<f64> {
        self.pe_busy_s
            .iter()
            .map(|&b| {
                if self.makespan_s > 0.0 {
                    b / self.makespan_s
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// The energy breakdown.
    #[must_use]
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Bytes moved over the interconnect.
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Interconnect busy time (seconds; summed per-resource).
    #[must_use]
    pub fn interconnect_busy_s(&self) -> f64 {
        self.interconnect_busy_s
    }

    /// Fraction of the makespan the interconnect was busy. May exceed 1 on
    /// a NoC (several links busy in parallel).
    #[must_use]
    pub fn interconnect_utilization(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.interconnect_busy_s / self.makespan_s
        } else {
            0.0
        }
    }

    /// The execution trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

/// The simulator, borrowing a platform description.
#[derive(Debug, Clone, Copy)]
pub struct Simulator<'p> {
    platform: &'p Platform,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for the given platform.
    #[must_use]
    pub fn new(platform: &'p Platform) -> Self {
        Self { platform }
    }

    /// Simulates a single iteration of the graph.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for cyclic graphs or invalid mappings.
    pub fn run(&self, graph: &TaskGraph, mapping: &Mapping) -> Result<RunReport, SimError> {
        self.run_stream(graph, mapping, 1)
    }

    /// Simulates `iterations` back-to-back iterations of the graph
    /// (streaming operation). Task instance `(t, i)` depends on its
    /// predecessors' instances `(p, i)` and, implicitly through PE
    /// occupancy, on whatever else its PE runs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for cyclic graphs, invalid mappings, or zero
    /// iterations.
    pub fn run_stream(
        &self,
        graph: &TaskGraph,
        mapping: &Mapping,
        iterations: usize,
    ) -> Result<RunReport, SimError> {
        if iterations == 0 {
            return Err(SimError::NoIterations);
        }
        // Validate the mapping against this graph and platform.
        Mapping::from_vec(
            graph,
            self.platform.pe_count(),
            mapping.assignments().to_vec(),
        )?;
        let order = graph.topological_order()?;

        let n_pes = self.platform.pe_count();
        let mut interconnect = self.platform.interconnect_spec().instantiate();
        let mut pe_free = vec![0.0f64; n_pes];
        let mut pe_busy = vec![0.0f64; n_pes];
        let mut compute_j = 0.0;
        let mut transfer_j = 0.0;
        let mut finish = vec![0.0f64; graph.task_count()];
        let mut trace = Trace::new();
        let mut makespan: f64 = 0.0;

        for iter in 0..iterations {
            for &tid in &order {
                let pe_id = mapping.pe_of(tid);
                let pe = self.platform.pe(pe_id);
                // Gather inputs: schedule each incoming transfer when its
                // producer instance finished.
                let mut data_ready = 0.0f64;
                for edge in graph.predecessors(tid) {
                    let src_pe = mapping.pe_of(edge.from);
                    let t = interconnect.schedule(src_pe, pe_id, edge.bytes, finish[edge.from.0]);
                    transfer_j += t.energy_j;
                    if src_pe != pe_id && edge.bytes > 0 {
                        trace.push(TraceEvent {
                            kind: TraceKind::Transfer {
                                from: edge.from,
                                to: edge.to,
                                bytes: edge.bytes,
                            },
                            pe: src_pe,
                            iteration: iter,
                            start_s: t.start_s,
                            end_s: t.end_s,
                        });
                    }
                    data_ready = data_ready.max(t.end_s);
                }
                let exec_s = pe.seconds_for(&graph.task(tid).ops);
                let start = data_ready.max(pe_free[pe_id.0]);
                let end = start + exec_s;
                pe_free[pe_id.0] = end;
                pe_busy[pe_id.0] += exec_s;
                compute_j += pe.energy_j_for(&graph.task(tid).ops);
                finish[tid.0] = end;
                makespan = makespan.max(end);
                trace.push(TraceEvent {
                    kind: TraceKind::Execute { task: tid },
                    pe: pe_id,
                    iteration: iter,
                    start_s: start,
                    end_s: end,
                });
            }
        }

        let leakage_j = self.platform.leakage_w() * makespan;
        Ok(RunReport {
            makespan_s: makespan,
            iterations,
            pe_busy_s: pe_busy,
            energy: EnergyReport::new(compute_j, transfer_j, leakage_j),
            bytes_moved: interconnect.bytes_moved(),
            interconnect_busy_s: interconnect.busy_s(),
            trace,
        })
    }

    /// Convenience: simulated seconds for one task's ops on one PE.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    #[must_use]
    pub fn task_seconds(&self, graph: &TaskGraph, task: TaskId, pe: PeId) -> f64 {
        self.platform.pe(pe).seconds_for(&graph.task(task).ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::OpCounts;

    fn two_stage(bytes: u64, ops: u64) -> TaskGraph {
        TaskGraph::linear_pipeline(
            "p",
            &[
                ("a", OpCounts::new().with_int_alu(ops), bytes),
                ("b", OpCounts::new().with_int_alu(ops), 0),
            ],
        )
    }

    #[test]
    fn single_task_makespan_matches_pe_time() {
        let mut g = TaskGraph::new("one");
        let t = g.add_task("only", OpCounts::new().with_int_alu(1_000_000), 0);
        let p = Platform::symmetric_bus("p", 1, 100e6);
        let m = Mapping::all_on_one(&g);
        let r = Simulator::new(&p).run(&g, &m).unwrap();
        // 1e6 int ops at 1 cycle/op on 100 MHz = 10 ms.
        assert!((r.makespan_s() - 0.01).abs() < 1e-12);
        assert!((Simulator::new(&p).task_seconds(&g, t, PeId(0)) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn same_pe_communication_is_free() {
        let g = two_stage(1 << 20, 100_000);
        let p = Platform::symmetric_bus("p", 2, 100e6);
        let same = Simulator::new(&p)
            .run(&g, &Mapping::all_on_one(&g))
            .unwrap();
        let split = Simulator::new(&p)
            .run(&g, &Mapping::round_robin(&g, 2))
            .unwrap();
        // One iteration of a linear chain cannot go faster on 2 PEs, and the
        // split mapping additionally pays the transfer.
        assert!(split.makespan_s() > same.makespan_s());
        assert_eq!(same.bytes_moved(), 0);
        assert_eq!(split.bytes_moved(), 1 << 20);
    }

    #[test]
    fn streaming_pipeline_overlaps_iterations() {
        let g = two_stage(1024, 1_000_000);
        let p = Platform::symmetric_bus("p", 2, 100e6);
        let sim = Simulator::new(&p);
        let iters = 16;
        let serial = sim.run_stream(&g, &Mapping::all_on_one(&g), iters).unwrap();
        let pipelined = sim
            .run_stream(&g, &Mapping::round_robin(&g, 2), iters)
            .unwrap();
        // Two balanced stages on two PEs approach 2x throughput.
        let speedup = serial.makespan_s() / pipelined.makespan_s();
        assert!(speedup > 1.7, "pipeline speedup only {speedup:.2}");
        assert!(pipelined.throughput_per_s() > serial.throughput_per_s());
    }

    #[test]
    fn utilization_is_sane() {
        let g = two_stage(0, 500_000);
        let p = Platform::symmetric_bus("p", 2, 100e6);
        let r = Simulator::new(&p)
            .run_stream(&g, &Mapping::round_robin(&g, 2), 32)
            .unwrap();
        for u in r.pe_utilization() {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        // Balanced two-stage pipeline: both PEs should be busy most of the
        // time in steady state.
        assert!(r.pe_utilization().iter().all(|&u| u > 0.9));
    }

    #[test]
    fn energy_components_all_accounted() {
        let g = two_stage(1 << 16, 100_000);
        let p = Platform::symmetric_bus("p", 2, 100e6);
        let r = Simulator::new(&p)
            .run_stream(&g, &Mapping::round_robin(&g, 2), 4)
            .unwrap();
        let e = r.energy();
        assert!(e.compute_j() > 0.0);
        assert!(e.transfer_j() > 0.0);
        assert!(e.leakage_j() > 0.0);
        assert!((e.total_j() - (e.compute_j() + e.transfer_j() + e.leakage_j())).abs() < 1e-18);
    }

    #[test]
    fn zero_iterations_is_an_error() {
        let g = two_stage(0, 1);
        let p = Platform::symmetric_bus("p", 1, 1e8);
        let err = Simulator::new(&p)
            .run_stream(&g, &Mapping::all_on_one(&g), 0)
            .unwrap_err();
        assert_eq!(err, SimError::NoIterations);
    }

    #[test]
    fn invalid_mapping_is_an_error() {
        let g = two_stage(0, 1);
        let other = two_stage(0, 1);
        let mut bigger = other.clone();
        bigger.add_task("extra", OpCounts::new(), 0);
        let p = Platform::symmetric_bus("p", 1, 1e8);
        let m = Mapping::all_on_one(&bigger); // wrong length for g
        assert!(matches!(
            Simulator::new(&p).run(&g, &m).unwrap_err(),
            SimError::Mapping(_)
        ));
    }

    #[test]
    fn schedule_is_pinned_through_the_adjacency_refactor() {
        // Pin the list schedule the old Vec-allocating predecessor walk
        // produced, so the O(V+E) iterator refactor provably changed
        // nothing: a fork-join graph with zero-byte edges has an exact,
        // hand-computable schedule (no interconnect terms).
        //
        //   src(1e6) -> a(2e6), b(1e6) -> sink(1e6),  100 MHz, 1 cycle/op
        //   src on pe0: [0, 10ms]   a on pe1: [10, 30ms]
        //   b on pe2:   [10, 20ms]  sink on pe0: [30, 40ms]
        let mut g = TaskGraph::new("fork-join");
        let src = g.add_task("src", OpCounts::new().with_int_alu(1_000_000), 0);
        let a = g.add_task("a", OpCounts::new().with_int_alu(2_000_000), 0);
        let b = g.add_task("b", OpCounts::new().with_int_alu(1_000_000), 0);
        let sink = g.add_task("sink", OpCounts::new().with_int_alu(1_000_000), 0);
        g.add_edge(src, a, 0).unwrap();
        g.add_edge(src, b, 0).unwrap();
        g.add_edge(a, sink, 0).unwrap();
        g.add_edge(b, sink, 0).unwrap();
        let p = Platform::symmetric_bus("p", 3, 100e6);
        let m = Mapping::from_vec(&g, 3, vec![PeId(0), PeId(1), PeId(2), PeId(0)]).unwrap();
        let r = Simulator::new(&p).run(&g, &m).unwrap();
        assert!((r.makespan_s() - 0.04).abs() < 1e-12, "{}", r.makespan_s());
        assert!((r.pe_busy_s()[0] - 0.02).abs() < 1e-12);
        assert!((r.pe_busy_s()[1] - 0.02).abs() < 1e-12);
        assert!((r.pe_busy_s()[2] - 0.01).abs() < 1e-12);
        // Execute events carry the exact start/end instants above.
        let execs: Vec<(f64, f64)> = r
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Execute { .. }))
            .map(|e| (e.start_s, e.end_s))
            .collect();
        let expect = [(0.0, 0.01), (0.01, 0.03), (0.01, 0.02), (0.03, 0.04)];
        assert_eq!(execs.len(), expect.len());
        for ((s, e), (es, ee)) in execs.iter().zip(expect) {
            assert!((s - es).abs() < 1e-12 && (e - ee).abs() < 1e-12);
        }
    }

    #[test]
    fn bus_contention_slows_parallel_transfers() {
        // Fork: one source feeding two sinks on distinct PEs; transfers
        // serialize on the bus.
        let mut g = TaskGraph::new("fork");
        let s = g.add_task("src", OpCounts::new().with_int_alu(1), 0);
        let a = g.add_task("a", OpCounts::new().with_int_alu(1), 0);
        let b = g.add_task("b", OpCounts::new().with_int_alu(1), 0);
        g.add_edge(s, a, 4_000_000).unwrap();
        g.add_edge(s, b, 4_000_000).unwrap();
        let p = Platform::symmetric_bus("p", 3, 1e9); // bus 400 MB/s
        let m = Mapping::from_vec(&g, 3, vec![PeId(0), PeId(1), PeId(2)]).unwrap();
        let r = Simulator::new(&p).run(&g, &m).unwrap();
        // Each transfer takes 10 ms on the bus; serialized ≈ 20 ms.
        assert!(
            r.makespan_s() > 0.019,
            "makespan {} too small",
            r.makespan_s()
        );
    }

    #[test]
    fn trace_contains_all_executions() {
        let g = two_stage(1024, 100);
        let p = Platform::symmetric_bus("p", 2, 1e8);
        let r = Simulator::new(&p)
            .run_stream(&g, &Mapping::round_robin(&g, 2), 3)
            .unwrap();
        let execs = r
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Execute { .. }))
            .count();
        assert_eq!(execs, 6); // 2 tasks x 3 iterations
    }

    #[test]
    fn more_pes_help_parallel_graphs() {
        // Wide graph: 8 independent tasks.
        let mut g = TaskGraph::new("wide");
        for i in 0..8 {
            g.add_task(format!("w{i}"), OpCounts::new().with_int_alu(1_000_000), 0);
        }
        let sim1_platform = Platform::symmetric_bus("p1", 1, 1e8);
        let sim4_platform = Platform::symmetric_bus("p4", 4, 1e8);
        let r1 = Simulator::new(&sim1_platform)
            .run(&g, &Mapping::round_robin(&g, 1))
            .unwrap();
        let r4 = Simulator::new(&sim4_platform)
            .run(&g, &Mapping::round_robin(&g, 4))
            .unwrap();
        let speedup = r1.makespan_s() / r4.makespan_s();
        assert!((speedup - 4.0).abs() < 0.01, "speedup {speedup}");
    }
}
