//! Processing elements: the heterogeneous cores of the MPSoC.
//!
//! Paper §1–2: multimedia MPSoCs combine general-purpose control
//! processors with DSPs and function accelerators to hit consumer
//! cost/power points. Each [`ProcessingElement`] carries a
//! cycles-per-operation table ([`CycleTable`]) over the workspace's
//! operation classes and per-operation energy costs, so the same task graph
//! costs differently on different core kinds.

/// Classes of operations a task is composed of.
///
/// Tasks are profiled as counts per class (see
/// [`OpCounts`](crate::task::OpCounts)); PEs price each class via their
/// [`CycleTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operations (adds, compares, address arithmetic).
    IntAlu,
    /// Multiply–accumulate operations (filters, transforms, SAD cores).
    Mac,
    /// Memory accesses that miss the local scratchpad.
    Mem,
    /// Branchy control and table lookup (VLC, parsers).
    Control,
    /// Bit-serial packing/unpacking (bitstreams, framing).
    Bit,
}

impl OpClass {
    /// All operation classes, in a fixed order used by the tables.
    pub const ALL: [OpClass; 5] = [
        OpClass::IntAlu,
        OpClass::Mac,
        OpClass::Mem,
        OpClass::Control,
        OpClass::Bit,
    ];

    /// Stable index into per-class arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::Mac => 1,
            OpClass::Mem => 2,
            OpClass::Control => 3,
            OpClass::Bit => 4,
        }
    }
}

impl core::fmt::Display for OpClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int",
            OpClass::Mac => "mac",
            OpClass::Mem => "mem",
            OpClass::Control => "ctl",
            OpClass::Bit => "bit",
        };
        f.write_str(s)
    }
}

/// Cycles-per-operation for each [`OpClass`], in class-index order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleTable {
    cycles: [f64; 5],
}

impl CycleTable {
    /// Builds a table from per-class cycle costs
    /// `[int, mac, mem, control, bit]`.
    ///
    /// # Panics
    ///
    /// Panics if any entry is not strictly positive and finite.
    #[must_use]
    pub fn new(cycles: [f64; 5]) -> Self {
        for &c in &cycles {
            assert!(c.is_finite() && c > 0.0, "cycle costs must be positive");
        }
        Self { cycles }
    }

    /// Cycles for one operation of `class`.
    #[must_use]
    pub fn cycles_for(&self, class: OpClass) -> f64 {
        self.cycles[class.index()]
    }
}

/// The kind of core, which fixes its default cycle and energy tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// In-order RISC control processor: fine at everything, great at
    /// nothing.
    RiscCpu,
    /// DSP core: single-cycle (sub-cycle, via SIMD) MACs, weaker control.
    Dsp,
    /// Fixed-function accelerator: very fast MAC/bit engines, but pays a
    /// heavy penalty on control-dominated code.
    Accelerator,
}

impl PeKind {
    /// Default cycles-per-op for this kind.
    ///
    /// Values are representative of mid-2000s embedded cores (relative, not
    /// vendor-exact): RISC needs several cycles per MAC, a DSP does
    /// fractional-cycle MACs via SIMD datapaths, an accelerator streams
    /// MAC/bit work but emulates control slowly.
    #[must_use]
    pub fn default_cycles(self) -> CycleTable {
        match self {
            PeKind::RiscCpu => CycleTable::new([1.0, 4.0, 8.0, 1.5, 4.0]),
            PeKind::Dsp => CycleTable::new([1.0, 0.5, 6.0, 3.0, 2.0]),
            PeKind::Accelerator => CycleTable::new([0.5, 0.25, 4.0, 12.0, 0.5]),
        }
    }

    /// Default energy per operation in picojoules, per class.
    #[must_use]
    pub fn default_energy_pj(self) -> [f64; 5] {
        match self {
            PeKind::RiscCpu => [12.0, 30.0, 60.0, 15.0, 20.0],
            PeKind::Dsp => [10.0, 8.0, 55.0, 25.0, 12.0],
            PeKind::Accelerator => [4.0, 3.0, 40.0, 80.0, 3.0],
        }
    }

    /// Default leakage power in milliwatts while powered.
    #[must_use]
    pub fn default_leakage_mw(self) -> f64 {
        match self {
            PeKind::RiscCpu => 8.0,
            PeKind::Dsp => 6.0,
            PeKind::Accelerator => 3.0,
        }
    }
}

impl core::fmt::Display for PeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PeKind::RiscCpu => "risc",
            PeKind::Dsp => "dsp",
            PeKind::Accelerator => "accel",
        };
        f.write_str(s)
    }
}

/// Identifier of a processing element within a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId(pub usize);

impl core::fmt::Display for PeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// One core of the platform.
#[derive(Debug, Clone)]
pub struct ProcessingElement {
    name: String,
    kind: PeKind,
    clock_hz: f64,
    cycles: CycleTable,
    energy_pj: [f64; 5],
    leakage_mw: f64,
}

impl ProcessingElement {
    /// Creates a PE of the given kind with default tables at `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not strictly positive and finite.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: PeKind, clock_hz: f64) -> Self {
        assert!(
            clock_hz.is_finite() && clock_hz > 0.0,
            "clock must be positive"
        );
        Self {
            name: name.into(),
            kind,
            clock_hz,
            cycles: kind.default_cycles(),
            energy_pj: kind.default_energy_pj(),
            leakage_mw: kind.default_leakage_mw(),
        }
    }

    /// Overrides the cycle table (for calibration experiments).
    #[must_use]
    pub fn with_cycles(mut self, cycles: CycleTable) -> Self {
        self.cycles = cycles;
        self
    }

    /// Overrides the per-op energy table.
    #[must_use]
    pub fn with_energy_pj(mut self, energy_pj: [f64; 5]) -> Self {
        self.energy_pj = energy_pj;
        self
    }

    /// The PE's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The core kind.
    #[must_use]
    pub fn kind(&self) -> PeKind {
        self.kind
    }

    /// Clock frequency in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Leakage power in mW.
    #[must_use]
    pub fn leakage_mw(&self) -> f64 {
        self.leakage_mw
    }

    /// Cycles to execute the given op counts on this PE.
    #[must_use]
    pub fn cycles_for(&self, ops: &crate::task::OpCounts) -> f64 {
        OpClass::ALL
            .iter()
            .map(|&c| ops.count(c) as f64 * self.cycles.cycles_for(c))
            .sum()
    }

    /// Seconds to execute the given op counts on this PE.
    #[must_use]
    pub fn seconds_for(&self, ops: &crate::task::OpCounts) -> f64 {
        self.cycles_for(ops) / self.clock_hz
    }

    /// Dynamic energy in joules to execute the given op counts.
    #[must_use]
    pub fn energy_j_for(&self, ops: &crate::task::OpCounts) -> f64 {
        OpClass::ALL
            .iter()
            .map(|&c| ops.count(c) as f64 * self.energy_pj[c.index()] * 1e-12)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::OpCounts;

    #[test]
    fn dsp_beats_risc_on_mac_heavy_code() {
        let risc = ProcessingElement::new("r", PeKind::RiscCpu, 200e6);
        let dsp = ProcessingElement::new("d", PeKind::Dsp, 200e6);
        let macs = OpCounts::new().with_mac(1_000_000);
        assert!(dsp.seconds_for(&macs) < risc.seconds_for(&macs) / 4.0);
    }

    #[test]
    fn risc_beats_accelerator_on_control_code() {
        let risc = ProcessingElement::new("r", PeKind::RiscCpu, 200e6);
        let acc = ProcessingElement::new("a", PeKind::Accelerator, 200e6);
        let ctl = OpCounts::new().with_control(1_000_000);
        assert!(risc.seconds_for(&ctl) < acc.seconds_for(&ctl));
    }

    #[test]
    fn cycles_scale_linearly_with_ops() {
        let pe = ProcessingElement::new("p", PeKind::RiscCpu, 100e6);
        let one = OpCounts::new().with_int_alu(1000);
        let two = OpCounts::new().with_int_alu(2000);
        assert!((pe.cycles_for(&two) - 2.0 * pe.cycles_for(&one)).abs() < 1e-9);
    }

    #[test]
    fn faster_clock_means_less_time_same_energy() {
        let slow = ProcessingElement::new("s", PeKind::Dsp, 100e6);
        let fast = ProcessingElement::new("f", PeKind::Dsp, 400e6);
        let ops = OpCounts::new().with_mac(10_000);
        assert!(fast.seconds_for(&ops) < slow.seconds_for(&ops));
        assert!((fast.energy_j_for(&ops) - slow.energy_j_for(&ops)).abs() < 1e-18);
    }

    #[test]
    fn energy_hand_computed() {
        let pe = ProcessingElement::new("p", PeKind::RiscCpu, 100e6);
        let ops = OpCounts::new().with_int_alu(1000);
        // 1000 ops * 12 pJ = 12 nJ.
        assert!((pe.energy_j_for(&ops) - 12e-9).abs() < 1e-15);
    }

    #[test]
    fn op_class_indices_are_distinct() {
        let mut seen = [false; 5];
        for c in OpClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_panics() {
        let _ = ProcessingElement::new("bad", PeKind::RiscCpu, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_cycle_cost_panics() {
        let _ = CycleTable::new([1.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PeId(3).to_string(), "pe3");
        assert_eq!(PeKind::Dsp.to_string(), "dsp");
        assert_eq!(OpClass::Mac.to_string(), "mac");
    }
}
