//! Task graphs: the workload representation.
//!
//! Multimedia applications in the paper are block diagrams (Figures 1 and
//! 2): stages connected by data streams. A [`TaskGraph`] captures one
//! iteration of such a diagram as a DAG of [`Task`]s whose edges carry the
//! number of bytes exchanged per iteration; the scheduler replays the graph
//! over many iterations to model streaming.

use std::collections::VecDeque;

use crate::pe::OpClass;

/// Identifier of a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl core::fmt::Display for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Operation counts per class for one execution of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct OpCounts {
    counts: [u64; 5],
}

impl OpCounts {
    /// An empty profile (zero-cost task, e.g. a source node).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets integer-ALU operation count.
    #[must_use]
    pub fn with_int_alu(mut self, n: u64) -> Self {
        self.counts[OpClass::IntAlu.index()] = n;
        self
    }

    /// Sets multiply–accumulate count.
    #[must_use]
    pub fn with_mac(mut self, n: u64) -> Self {
        self.counts[OpClass::Mac.index()] = n;
        self
    }

    /// Sets non-local memory access count.
    #[must_use]
    pub fn with_mem(mut self, n: u64) -> Self {
        self.counts[OpClass::Mem.index()] = n;
        self
    }

    /// Sets control-flow operation count.
    #[must_use]
    pub fn with_control(mut self, n: u64) -> Self {
        self.counts[OpClass::Control.index()] = n;
        self
    }

    /// Sets bit-manipulation operation count.
    #[must_use]
    pub fn with_bit(mut self, n: u64) -> Self {
        self.counts[OpClass::Bit.index()] = n;
        self
    }

    /// Count for one class.
    #[must_use]
    pub fn count(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total operations across classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise sum of two profiles.
    #[must_use]
    pub fn plus(&self, other: &OpCounts) -> OpCounts {
        let mut out = *self;
        for i in 0..5 {
            out.counts[i] += other.counts[i];
        }
        out
    }

    /// Scales every class count by `k` (saturating).
    #[must_use]
    pub fn scaled(&self, k: u64) -> OpCounts {
        let mut out = *self;
        for c in &mut out.counts {
            *c = c.saturating_mul(k);
        }
        out
    }
}

/// One node of the task graph.
#[derive(Debug, Clone)]
pub struct Task {
    /// Human-readable stage name ("dct", "quantizer", …).
    pub name: String,
    /// Computation profile for one iteration.
    pub ops: OpCounts,
    /// Bytes of private state the task keeps resident (scratchpad demand).
    pub state_bytes: u64,
}

/// A directed edge carrying data between tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing task.
    pub from: TaskId,
    /// Consuming task.
    pub to: TaskId,
    /// Bytes transferred per graph iteration.
    pub bytes: u64,
}

/// Errors constructing or validating a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a task id that does not exist.
    UnknownTask(TaskId),
    /// An edge would connect a task to itself.
    SelfLoop(TaskId),
    /// The graph contains a cycle (task ids on the cycle path witness it).
    Cycle,
    /// The same edge was added twice.
    DuplicateEdge(TaskId, TaskId),
}

impl core::fmt::Display for GraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphError::UnknownTask(t) => write!(f, "unknown task {t}"),
            GraphError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            GraphError::Cycle => f.write_str("task graph contains a cycle"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed acyclic graph of tasks with byte-weighted edges.
///
/// # Example
///
/// ```
/// use mpsoc::task::{OpCounts, TaskGraph};
///
/// let mut g = TaskGraph::new("three-stage");
/// let a = g.add_task("in", OpCounts::new(), 0);
/// let b = g.add_task("work", OpCounts::new().with_mac(1_000), 0);
/// let c = g.add_task("out", OpCounts::new(), 0);
/// g.add_edge(a, b, 1024)?;
/// g.add_edge(b, c, 1024)?;
/// assert_eq!(g.topological_order()?.len(), 3);
/// # Ok::<(), mpsoc::task::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    /// Adjacency: successors of each task.
    succ: Vec<Vec<usize>>, // edge indices
    /// Adjacency: predecessors of each task.
    pred: Vec<Vec<usize>>, // edge indices
}

impl TaskGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
            succ: Vec::new(),
            pred: Vec::new(),
        }
    }

    /// The graph's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a task, returning its id.
    pub fn add_task(&mut self, name: impl Into<String>, ops: OpCounts, state_bytes: u64) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            name: name.into(),
            ops,
            state_bytes,
        });
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a data edge carrying `bytes` per iteration.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for unknown endpoints, self-loops, duplicate
    /// edges, or edges that would create a cycle.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId, bytes: u64) -> Result<(), GraphError> {
        if from.0 >= self.tasks.len() {
            return Err(GraphError::UnknownTask(from));
        }
        if to.0 >= self.tasks.len() {
            return Err(GraphError::UnknownTask(to));
        }
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        let idx = self.edges.len();
        self.edges.push(Edge { from, to, bytes });
        self.succ[from.0].push(idx);
        self.pred[to.0].push(idx);
        if self.topological_order().is_err() {
            // Roll back the offending edge.
            self.edges.pop();
            self.succ[from.0].pop();
            self.pred[to.0].pop();
            return Err(GraphError::Cycle);
        }
        Ok(())
    }

    /// Number of tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// All tasks, indexable by `TaskId.0`.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of all tasks in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Incoming edges of `id`, in insertion order.
    ///
    /// Backed by the adjacency index built up in [`TaskGraph::add_edge`],
    /// so iterating costs nothing beyond the edges themselves — the
    /// scheduler's inner loop visits every task's predecessors once per
    /// graph iteration, and the old `Vec<&Edge>`-returning version made
    /// list-scheduling allocate per task instance.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = &Edge> + '_ {
        self.pred[id.0].iter().map(|&i| &self.edges[i])
    }

    /// Outgoing edges of `id`, in insertion order (allocation-free, like
    /// [`TaskGraph::predecessors`]).
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = &Edge> + '_ {
        self.succ[id.0].iter().map(|&i| &self.edges[i])
    }

    /// Kahn topological sort.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the graph is cyclic.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, GraphError> {
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.pred[i].len()).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(TaskId(i));
            for &e in &self.succ[i] {
                let t = self.edges[e].to.0;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cycle)
        }
    }

    /// Total operation counts across all tasks.
    #[must_use]
    pub fn total_ops(&self) -> OpCounts {
        self.tasks
            .iter()
            .fold(OpCounts::new(), |acc, t| acc.plus(&t.ops))
    }

    /// Total bytes moved per iteration across all edges.
    #[must_use]
    pub fn total_edge_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Critical-path length in *operation counts* using a uniform
    /// one-cycle-per-op weighting — a platform-independent lower bound used
    /// by mapping heuristics.
    #[must_use]
    pub fn critical_path_ops(&self) -> u64 {
        let order = match self.topological_order() {
            Ok(o) => o,
            Err(_) => return 0,
        };
        let mut dist = vec![0u64; self.tasks.len()];
        let mut best = 0;
        for id in order {
            let here = self
                .predecessors(id)
                .map(|e| dist[e.from.0])
                .max()
                .unwrap_or(0)
                + self.task(id).ops.total();
            best = best.max(here);
            dist[id.0] = here;
        }
        best
    }

    /// Builds a linear pipeline from named stages — the shape of both
    /// paper figures.
    #[must_use]
    pub fn linear_pipeline(name: &str, stages: &[(&str, OpCounts, u64)]) -> Self {
        let mut g = TaskGraph::new(name);
        let mut prev: Option<(TaskId, u64)> = None;
        for &(stage, ops, out_bytes) in stages {
            let id = g.add_task(stage, ops, 0);
            if let Some((p, bytes)) = prev {
                g.add_edge(p, id, bytes)
                    .expect("linear pipeline cannot form a cycle");
            }
            prev = Some((id, out_bytes));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new("diamond");
        let a = g.add_task("a", OpCounts::new().with_int_alu(10), 0);
        let b = g.add_task("b", OpCounts::new().with_int_alu(20), 0);
        let c = g.add_task("c", OpCounts::new().with_int_alu(30), 0);
        let d = g.add_task("d", OpCounts::new().with_int_alu(40), 0);
        g.add_edge(a, b, 100).unwrap();
        g.add_edge(a, c, 100).unwrap();
        g.add_edge(b, d, 100).unwrap();
        g.add_edge(c, d, 100).unwrap();
        g
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order().unwrap();
        let pos: HashMap<TaskId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for e in g.edges() {
            assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    #[test]
    fn cycle_is_rejected_and_rolled_back() {
        let mut g = TaskGraph::new("cyclic");
        let a = g.add_task("a", OpCounts::new(), 0);
        let b = g.add_task("b", OpCounts::new(), 0);
        g.add_edge(a, b, 1).unwrap();
        assert_eq!(g.add_edge(b, a, 1).unwrap_err(), GraphError::Cycle);
        // The rejected edge must not linger.
        assert_eq!(g.edge_count(), 1);
        assert!(g.topological_order().is_ok());
    }

    #[test]
    fn self_loop_and_unknown_rejected() {
        let mut g = TaskGraph::new("bad");
        let a = g.add_task("a", OpCounts::new(), 0);
        assert_eq!(g.add_edge(a, a, 1).unwrap_err(), GraphError::SelfLoop(a));
        assert_eq!(
            g.add_edge(a, TaskId(9), 1).unwrap_err(),
            GraphError::UnknownTask(TaskId(9))
        );
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = TaskGraph::new("dup");
        let a = g.add_task("a", OpCounts::new(), 0);
        let b = g.add_task("b", OpCounts::new(), 0);
        g.add_edge(a, b, 1).unwrap();
        assert_eq!(
            g.add_edge(a, b, 2).unwrap_err(),
            GraphError::DuplicateEdge(a, b)
        );
    }

    #[test]
    fn critical_path_of_diamond() {
        let g = diamond();
        // a(10) -> c(30) -> d(40) = 80.
        assert_eq!(g.critical_path_ops(), 80);
    }

    #[test]
    fn op_counts_builders_and_sums() {
        let ops = OpCounts::new()
            .with_int_alu(1)
            .with_mac(2)
            .with_mem(3)
            .with_control(4)
            .with_bit(5);
        assert_eq!(ops.total(), 15);
        assert_eq!(ops.count(OpClass::Mac), 2);
        assert_eq!(ops.plus(&ops).total(), 30);
        assert_eq!(ops.scaled(3).count(OpClass::Bit), 15);
    }

    #[test]
    fn linear_pipeline_shape() {
        let g = TaskGraph::linear_pipeline(
            "p",
            &[
                ("s0", OpCounts::new().with_int_alu(1), 64),
                ("s1", OpCounts::new().with_int_alu(1), 32),
                ("s2", OpCounts::new().with_int_alu(1), 0),
            ],
        );
        assert_eq!(g.task_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges()[0].bytes, 64);
        assert_eq!(g.edges()[1].bytes, 32);
    }

    #[test]
    fn predecessors_and_successors() {
        let g = diamond();
        assert_eq!(g.predecessors(TaskId(3)).count(), 2);
        assert_eq!(g.successors(TaskId(0)).count(), 2);
        assert_eq!(g.predecessors(TaskId(0)).count(), 0);
    }

    #[test]
    fn adjacency_iterators_match_a_full_edge_scan() {
        // The O(V+E) adjacency iterators must report exactly the edges a
        // naive O(V·E) scan of `edges()` finds, in insertion order — the
        // equivalence the scheduler refactor relies on.
        let g = diamond();
        for id in g.task_ids() {
            let preds: Vec<Edge> = g.predecessors(id).copied().collect();
            let scan: Vec<Edge> = g.edges().iter().filter(|e| e.to == id).copied().collect();
            assert_eq!(preds, scan, "predecessors of {id}");
            let succs: Vec<Edge> = g.successors(id).copied().collect();
            let scan: Vec<Edge> = g.edges().iter().filter(|e| e.from == id).copied().collect();
            assert_eq!(succs, scan, "successors of {id}");
        }
    }

    #[test]
    fn totals() {
        let g = diamond();
        assert_eq!(g.total_ops().total(), 100);
        assert_eq!(g.total_edge_bytes(), 400);
    }

    #[test]
    fn graph_error_display() {
        assert!(GraphError::Cycle.to_string().contains("cycle"));
        assert!(GraphError::SelfLoop(TaskId(1)).to_string().contains("t1"));
    }
}
