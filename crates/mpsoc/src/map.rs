//! Task-to-PE mappings and mapping heuristics.
//!
//! Choosing which stage of Figure 1/Figure 2 runs on which core is *the*
//! MPSoC design decision the paper's platforms embody. This module provides
//! the baseline heuristics experiment E16 compares: everything-on-one-PE,
//! round-robin, load-balanced (LPT on estimated seconds), pipeline-affine
//! (contiguous stage groups), plus a hill-climbing improver that uses the
//! simulator itself as its cost function.

use crate::pe::PeId;
use crate::platform::Platform;
use crate::task::{TaskGraph, TaskId};

/// Errors constructing a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The assignment vector length differs from the task count.
    WrongLength {
        /// Number of tasks in the graph.
        tasks: usize,
        /// Number of assignments supplied.
        got: usize,
    },
    /// An assignment referenced a PE outside the platform.
    UnknownPe(PeId),
}

impl core::fmt::Display for MappingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MappingError::WrongLength { tasks, got } => {
                write!(f, "mapping length {got} does not match task count {tasks}")
            }
            MappingError::UnknownPe(pe) => write!(f, "mapping references unknown {pe}"),
        }
    }
}

impl std::error::Error for MappingError {}

/// An assignment of every task in a graph to a PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    assign: Vec<PeId>,
}

impl Mapping {
    /// Builds a mapping from an explicit assignment vector (indexed by
    /// `TaskId.0`), validated against a graph and PE count.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError`] when the vector length mismatches the task
    /// count or references a PE `>= pe_count`.
    pub fn from_vec(
        graph: &TaskGraph,
        pe_count: usize,
        assign: Vec<PeId>,
    ) -> Result<Self, MappingError> {
        if assign.len() != graph.task_count() {
            return Err(MappingError::WrongLength {
                tasks: graph.task_count(),
                got: assign.len(),
            });
        }
        if let Some(&bad) = assign.iter().find(|pe| pe.0 >= pe_count) {
            return Err(MappingError::UnknownPe(bad));
        }
        Ok(Self { assign })
    }

    /// Every task on PE 0 — the uniprocessor baseline.
    #[must_use]
    pub fn all_on_one(graph: &TaskGraph) -> Self {
        Self {
            assign: vec![PeId(0); graph.task_count()],
        }
    }

    /// Task `i` on PE `i % pe_count`.
    ///
    /// # Panics
    ///
    /// Panics if `pe_count == 0`.
    #[must_use]
    pub fn round_robin(graph: &TaskGraph, pe_count: usize) -> Self {
        assert!(pe_count > 0, "need at least one PE");
        Self {
            assign: (0..graph.task_count())
                .map(|i| PeId(i % pe_count))
                .collect(),
        }
    }

    /// Longest-processing-time-first load balancing: tasks are sorted by
    /// their estimated time on each platform PE kind and greedily assigned
    /// to the PE whose queue finishes earliest (taking per-PE speed into
    /// account, so a DSP absorbs more MAC-heavy stages).
    #[must_use]
    pub fn load_balanced(graph: &TaskGraph, platform: &Platform) -> Self {
        let n = platform.pe_count();
        let mut order: Vec<TaskId> = graph.task_ids().collect();
        // Sort heaviest first by op total.
        order.sort_by_key(|&t| core::cmp::Reverse(graph.task(t).ops.total()));
        let mut pe_load = vec![0.0f64; n];
        let mut assign = vec![PeId(0); graph.task_count()];
        for t in order {
            let ops = &graph.task(t).ops;
            // Pick the PE minimizing its finish time if given this task.
            let (best, _) = (0..n)
                .map(|p| {
                    let secs = platform.pe(PeId(p)).seconds_for(ops);
                    (p, pe_load[p] + secs)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("platform has at least one PE");
            pe_load[best] += platform.pe(PeId(best)).seconds_for(ops);
            assign[t.0] = PeId(best);
        }
        Self { assign }
    }

    /// Pipeline-affine mapping for (near-)linear graphs: splits the tasks,
    /// in topological order, into `pe_count` contiguous groups with
    /// approximately equal total estimated time, assigning group `k` to PE
    /// `k`. Contiguity keeps producer→consumer traffic between neighbours
    /// and preserves streaming pipelining.
    ///
    /// # Panics
    ///
    /// Panics if `platform` has no PEs (impossible by construction) or the
    /// graph is cyclic.
    #[must_use]
    pub fn pipeline_affine(graph: &TaskGraph, platform: &Platform) -> Self {
        let order = graph
            .topological_order()
            .expect("pipeline mapping requires an acyclic graph");
        let n = platform.pe_count();
        // Estimated seconds of each task on an "average" PE of the platform.
        let avg_secs: Vec<f64> = order
            .iter()
            .map(|&t| {
                let ops = &graph.task(t).ops;
                platform
                    .pes()
                    .iter()
                    .map(|pe| pe.seconds_for(ops))
                    .sum::<f64>()
                    / n as f64
            })
            .collect();
        let total: f64 = avg_secs.iter().sum();
        let target = total / n as f64;
        let mut assign = vec![PeId(0); graph.task_count()];
        let mut pe = 0usize;
        let mut acc = 0.0;
        for (k, &t) in order.iter().enumerate() {
            // Move to the next PE when the current group is full — but never
            // leave later PEs unused if tasks remain exactly fill groups.
            if acc >= target && pe + 1 < n && (order.len() - k) as f64 > 0.0 {
                pe += 1;
                acc = 0.0;
            }
            assign[t.0] = PeId(pe);
            acc += avg_secs[k];
        }
        Self { assign }
    }

    /// Uniformly random assignment (for baselines and the improver's
    /// restarts).
    ///
    /// # Panics
    ///
    /// Panics if `pe_count == 0`.
    #[must_use]
    pub fn random(graph: &TaskGraph, pe_count: usize, seed: u64) -> Self {
        assert!(pe_count > 0, "need at least one PE");
        // Tiny inline LCG; mapping quality is irrelevant, determinism isn't.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let assign = (0..graph.task_count())
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                PeId(((state >> 33) % pe_count as u64) as usize)
            })
            .collect();
        Self { assign }
    }

    /// The PE a task is mapped to.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for the mapped graph.
    #[must_use]
    pub fn pe_of(&self, task: TaskId) -> PeId {
        self.assign[task.0]
    }

    /// The full assignment vector, indexed by `TaskId.0`.
    #[must_use]
    pub fn assignments(&self) -> &[PeId] {
        &self.assign
    }

    /// Number of distinct PEs actually used.
    #[must_use]
    pub fn pes_used(&self) -> usize {
        let mut seen: Vec<usize> = self.assign.iter().map(|p| p.0).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Hill-climbing improvement: repeatedly tries moving one task to a
    /// different PE, keeping the move when the simulated streaming
    /// makespan for `iterations` graph iterations improves. Deterministic
    /// sweep order; stops after a full sweep with no improvement or
    /// `max_sweeps` sweeps.
    #[must_use]
    pub fn improved(
        mut self,
        graph: &TaskGraph,
        platform: &Platform,
        iterations: usize,
        max_sweeps: usize,
    ) -> Self {
        let sim = crate::sched::Simulator::new(platform);
        let score = |m: &Mapping| -> f64 {
            sim.run_stream(graph, m, iterations)
                .map(|r| r.makespan_s())
                .unwrap_or(f64::INFINITY)
        };
        let mut best = score(&self);
        for _ in 0..max_sweeps {
            let mut changed = false;
            for t in 0..self.assign.len() {
                let mut current = self.assign[t];
                for pe in 0..platform.pe_count() {
                    if PeId(pe) == current {
                        continue;
                    }
                    self.assign[t] = PeId(pe);
                    let s = score(&self);
                    if s + 1e-12 < best {
                        best = s;
                        current = PeId(pe);
                        changed = true;
                    } else {
                        self.assign[t] = current;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self
    }
}

impl core::fmt::Display for Mapping {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[")?;
        for (i, pe) in self.assign.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "t{i}->{pe}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::OpCounts;

    fn chain(n: usize, ops_each: u64) -> TaskGraph {
        let stages: Vec<(String, OpCounts, u64)> = (0..n)
            .map(|i| {
                (
                    format!("s{i}"),
                    OpCounts::new().with_int_alu(ops_each),
                    1024,
                )
            })
            .collect();
        let refs: Vec<(&str, OpCounts, u64)> = stages
            .iter()
            .map(|(s, o, b)| (s.as_str(), *o, *b))
            .collect();
        TaskGraph::linear_pipeline("chain", &refs)
    }

    #[test]
    fn round_robin_cycles_pes() {
        let g = chain(5, 10);
        let m = Mapping::round_robin(&g, 2);
        assert_eq!(m.pe_of(TaskId(0)), PeId(0));
        assert_eq!(m.pe_of(TaskId(1)), PeId(1));
        assert_eq!(m.pe_of(TaskId(2)), PeId(0));
        assert_eq!(m.pes_used(), 2);
    }

    #[test]
    fn all_on_one_uses_single_pe() {
        let g = chain(4, 10);
        let m = Mapping::all_on_one(&g);
        assert_eq!(m.pes_used(), 1);
    }

    #[test]
    fn from_vec_validates() {
        let g = chain(3, 10);
        assert!(Mapping::from_vec(&g, 2, vec![PeId(0), PeId(1), PeId(0)]).is_ok());
        assert_eq!(
            Mapping::from_vec(&g, 2, vec![PeId(0)]).unwrap_err(),
            MappingError::WrongLength { tasks: 3, got: 1 }
        );
        assert_eq!(
            Mapping::from_vec(&g, 2, vec![PeId(0), PeId(5), PeId(0)]).unwrap_err(),
            MappingError::UnknownPe(PeId(5))
        );
    }

    #[test]
    fn load_balanced_spreads_heavy_tasks() {
        let mut g = TaskGraph::new("heavy");
        for i in 0..4 {
            g.add_task(format!("t{i}"), OpCounts::new().with_int_alu(1000), 0);
        }
        let p = Platform::symmetric_bus("p", 2, 100e6);
        let m = Mapping::load_balanced(&g, &p);
        assert_eq!(m.pes_used(), 2, "equal tasks must be split across both PEs");
        let on0 = m.assignments().iter().filter(|pe| pe.0 == 0).count();
        assert_eq!(on0, 2);
    }

    #[test]
    fn load_balanced_prefers_dsp_for_macs() {
        let mut g = TaskGraph::new("mac-heavy");
        g.add_task("filter", OpCounts::new().with_mac(1_000_000), 0);
        let p = Platform::cell_phone(); // pe0 = RISC, pe1 = DSP
        let m = Mapping::load_balanced(&g, &p);
        assert_eq!(m.pe_of(TaskId(0)), PeId(1), "MAC work belongs on the DSP");
    }

    #[test]
    fn pipeline_affine_is_contiguous_and_ordered() {
        let g = chain(8, 100);
        let p = Platform::symmetric_bus("p", 4, 100e6);
        let m = Mapping::pipeline_affine(&g, &p);
        // Assignments along the chain must be non-decreasing.
        let pes: Vec<usize> = (0..8).map(|i| m.pe_of(TaskId(i)).0).collect();
        assert!(pes.windows(2).all(|w| w[0] <= w[1]), "{pes:?}");
        assert_eq!(m.pes_used(), 4);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = chain(6, 10);
        assert_eq!(
            Mapping::random(&g, 3, 42).assignments(),
            Mapping::random(&g, 3, 42).assignments()
        );
        assert_ne!(
            Mapping::random(&g, 3, 1).assignments(),
            Mapping::random(&g, 3, 2).assignments(),
            "different seeds should almost surely differ"
        );
    }

    #[test]
    fn improved_never_regresses() {
        let g = chain(6, 10_000);
        let p = Platform::symmetric_bus("p", 3, 100e6);
        let sim = crate::sched::Simulator::new(&p);
        let start = Mapping::all_on_one(&g);
        let before = sim.run_stream(&g, &start, 8).unwrap().makespan_s();
        let better = start.improved(&g, &p, 8, 4);
        let after = sim.run_stream(&g, &better, 8).unwrap().makespan_s();
        assert!(after <= before + 1e-12, "{after} vs {before}");
        assert!(better.pes_used() > 1, "improver should exploit extra PEs");
    }

    #[test]
    fn display_lists_assignments() {
        let g = chain(2, 1);
        let m = Mapping::round_robin(&g, 2);
        assert_eq!(m.to_string(), "[t0->pe0 t1->pe1]");
    }
}
