//! Execution traces and a text Gantt renderer.
//!
//! Every simulation run records what ran where and when; the renderer
//! draws a per-PE timeline so mapping decisions can be inspected by eye in
//! example programs and experiment logs.

use crate::pe::PeId;
use crate::task::TaskId;

/// What a trace event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A task instance executed.
    Execute {
        /// Which task.
        task: TaskId,
    },
    /// Data moved between two tasks over the interconnect.
    Transfer {
        /// Producing task.
        from: TaskId,
        /// Consuming task.
        to: TaskId,
        /// Payload size.
        bytes: u64,
    },
}

/// One timed event of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event payload.
    pub kind: TraceKind,
    /// The PE involved (executing PE, or source PE for transfers).
    pub pe: PeId,
    /// Graph iteration index.
    pub iteration: usize,
    /// Start time in seconds.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
}

impl TraceEvent {
    /// Event duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// An ordered collection of trace events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All recorded events in insertion order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest end time, or 0 for an empty trace.
    #[must_use]
    pub fn horizon_s(&self) -> f64 {
        self.events.iter().fold(0.0, |m, e| m.max(e.end_s))
    }

    /// Renders a text Gantt chart: one row per PE, `width` columns over
    /// `[0, horizon]`. Execution is drawn with the last digit of the task
    /// id, idle with `.`.
    ///
    /// Returns an empty string for an empty trace.
    #[must_use]
    pub fn render_gantt(&self, width: usize) -> String {
        if self.events.is_empty() || width == 0 {
            return String::new();
        }
        let horizon = self.horizon_s();
        if horizon <= 0.0 {
            return String::new();
        }
        let max_pe = self.events.iter().map(|e| e.pe.0).max().unwrap_or(0);
        let mut rows: Vec<Vec<char>> = vec![vec!['.'; width]; max_pe + 1];
        for e in &self.events {
            if let TraceKind::Execute { task } = e.kind {
                let c = char::from_digit((task.0 % 10) as u32, 10).unwrap_or('#');
                let lo = ((e.start_s / horizon) * width as f64).floor() as usize;
                let hi = (((e.end_s / horizon) * width as f64).ceil() as usize).min(width);
                for cell in rows[e.pe.0].iter_mut().take(hi).skip(lo) {
                    *cell = c;
                }
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!("pe{i} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("      0 .. {horizon:.6}s\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(task: usize, pe: usize, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            kind: TraceKind::Execute { task: TaskId(task) },
            pe: PeId(pe),
            iteration: 0,
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn horizon_tracks_latest_event() {
        let mut t = Trace::new();
        assert_eq!(t.horizon_s(), 0.0);
        t.push(exec(0, 0, 0.0, 1.0));
        t.push(exec(1, 1, 0.5, 2.5));
        assert_eq!(t.horizon_s(), 2.5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn gantt_draws_rows_per_pe() {
        let mut t = Trace::new();
        t.push(exec(0, 0, 0.0, 1.0));
        t.push(exec(1, 1, 1.0, 2.0));
        let g = t.render_gantt(20);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("pe0 |"));
        assert!(lines[1].starts_with("pe1 |"));
        // Task 0 occupies the first half of row 0, task 1 the second half
        // of row 1.
        assert!(lines[0].contains('0'));
        assert!(lines[1].contains('1'));
        assert!(lines[0][5..15].contains('0'));
        assert!(lines[1][5..15].contains('.'));
    }

    #[test]
    fn gantt_empty_trace_is_empty_string() {
        assert_eq!(Trace::new().render_gantt(40), "");
        let mut t = Trace::new();
        t.push(exec(0, 0, 0.0, 0.0));
        assert_eq!(t.render_gantt(0), "");
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert!((exec(0, 0, 1.0, 3.5).duration_s() - 2.5).abs() < 1e-12);
    }
}
