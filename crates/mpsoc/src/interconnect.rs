//! On-chip interconnect models: shared bus and 2-D mesh NoC.
//!
//! The paper's MPSoCs are bus-based consumer chips, but the mapping
//! experiment (E16) also needs the scaling alternative — a mesh
//! network-on-chip — to show where a shared medium saturates.
//!
//! Both models answer one question for the scheduler: *given that `bytes`
//! want to move from PE `src` to PE `dst` starting no earlier than `ready`,
//! when does the transfer start and finish?* Contention is modelled by
//! per-resource (bus or link) busy horizons: a resource serializes the
//! transfers that use it.

use crate::pe::PeId;

/// A scheduled data movement returned by an interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// When the transfer began occupying the interconnect (seconds).
    pub start_s: f64,
    /// When the data is fully available at the destination (seconds).
    pub end_s: f64,
    /// Energy spent moving the data (joules).
    pub energy_j: f64,
}

impl Transfer {
    /// An instantaneous, free transfer (used for same-PE communication).
    #[must_use]
    pub fn instant(at_s: f64) -> Self {
        Self {
            start_s: at_s,
            end_s: at_s,
            energy_j: 0.0,
        }
    }

    /// Transfer duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Interconnect model used by the simulator.
///
/// Implementations are stateful within one simulation run: each call to
/// [`Interconnect::schedule`] may advance internal busy horizons. Call
/// [`Interconnect::reset`] between runs.
pub trait Interconnect: core::fmt::Debug {
    /// Schedules a `bytes`-byte transfer from `src` to `dst` that becomes
    /// ready at `ready_s`. Returns when it starts/ends and its energy.
    fn schedule(&mut self, src: PeId, dst: PeId, bytes: u64, ready_s: f64) -> Transfer;

    /// Clears all busy state for a fresh simulation.
    fn reset(&mut self);

    /// Short human-readable description ("bus@100MB/s", "mesh2x2@…").
    fn describe(&self) -> String;

    /// Total bytes moved since the last reset.
    fn bytes_moved(&self) -> u64;

    /// Total time the interconnect spent busy since the last reset
    /// (for utilization reporting; for the NoC this sums per-link busy
    /// time).
    fn busy_s(&self) -> f64;
}

/// A single shared bus: every inter-PE transfer serializes on it.
///
/// # Example
///
/// ```
/// use mpsoc::interconnect::{Interconnect, SharedBus};
/// use mpsoc::pe::PeId;
///
/// let mut bus = SharedBus::new(100e6, 1e-6, 0.1);
/// let t1 = bus.schedule(PeId(0), PeId(1), 100_000, 0.0);
/// let t2 = bus.schedule(PeId(2), PeId(3), 100_000, 0.0);
/// assert!(t2.start_s >= t1.end_s); // second transfer waits for the bus
/// ```
#[derive(Debug, Clone)]
pub struct SharedBus {
    bandwidth_bytes_per_s: f64,
    arbitration_s: f64,
    energy_pj_per_byte: f64,
    free_at_s: f64,
    bytes_moved: u64,
    busy_s: f64,
}

impl SharedBus {
    /// Creates a bus with the given bandwidth (bytes/s), per-transfer
    /// arbitration latency (s), and energy cost (pJ/byte).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_s` is not strictly positive or the
    /// other parameters are negative.
    #[must_use]
    pub fn new(bandwidth_bytes_per_s: f64, arbitration_s: f64, energy_pj_per_byte: f64) -> Self {
        assert!(
            bandwidth_bytes_per_s > 0.0 && bandwidth_bytes_per_s.is_finite(),
            "bandwidth must be positive"
        );
        assert!(
            arbitration_s >= 0.0 && energy_pj_per_byte >= 0.0,
            "costs must be non-negative"
        );
        Self {
            bandwidth_bytes_per_s,
            arbitration_s,
            energy_pj_per_byte,
            free_at_s: 0.0,
            bytes_moved: 0,
            busy_s: 0.0,
        }
    }

    /// The configured bandwidth in bytes per second.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth_bytes_per_s
    }
}

impl Interconnect for SharedBus {
    fn schedule(&mut self, src: PeId, dst: PeId, bytes: u64, ready_s: f64) -> Transfer {
        if src == dst || bytes == 0 {
            return Transfer::instant(ready_s);
        }
        let start = ready_s.max(self.free_at_s);
        let dur = self.arbitration_s + bytes as f64 / self.bandwidth_bytes_per_s;
        let end = start + dur;
        self.free_at_s = end;
        self.bytes_moved += bytes;
        self.busy_s += dur;
        Transfer {
            start_s: start,
            end_s: end,
            energy_j: bytes as f64 * self.energy_pj_per_byte * 1e-12,
        }
    }

    fn reset(&mut self) {
        self.free_at_s = 0.0;
        self.bytes_moved = 0;
        self.busy_s = 0.0;
    }

    fn describe(&self) -> String {
        format!("shared-bus@{:.0}MB/s", self.bandwidth_bytes_per_s / 1e6)
    }

    fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    fn busy_s(&self) -> f64 {
        self.busy_s
    }
}

/// A 2-D mesh network-on-chip with XY (dimension-ordered) routing.
///
/// PEs are laid out row-major on a `cols x rows` grid; `PeId(i)` sits at
/// `(i % cols, i / cols)`. Each directed link serializes the transfers
/// routed through it; a transfer occupies every link on its route for its
/// serialization time (store-and-forward at transfer granularity — coarse,
/// but it exposes the contention structure mapping cares about).
#[derive(Debug, Clone)]
pub struct MeshNoc {
    cols: usize,
    rows: usize,
    link_bandwidth_bytes_per_s: f64,
    hop_latency_s: f64,
    energy_pj_per_byte_hop: f64,
    /// Busy horizon per directed link, keyed by (from_node, to_node).
    link_free_s: std::collections::HashMap<(usize, usize), f64>,
    bytes_moved: u64,
    busy_s: f64,
}

impl MeshNoc {
    /// Creates a `cols x rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or the bandwidth is not positive.
    #[must_use]
    pub fn new(
        cols: usize,
        rows: usize,
        link_bandwidth_bytes_per_s: f64,
        hop_latency_s: f64,
        energy_pj_per_byte_hop: f64,
    ) -> Self {
        assert!(cols > 0 && rows > 0, "mesh must be non-empty");
        assert!(
            link_bandwidth_bytes_per_s > 0.0 && link_bandwidth_bytes_per_s.is_finite(),
            "bandwidth must be positive"
        );
        Self {
            cols,
            rows,
            link_bandwidth_bytes_per_s,
            hop_latency_s,
            energy_pj_per_byte_hop,
            link_free_s: std::collections::HashMap::new(),
            bytes_moved: 0,
            busy_s: 0.0,
        }
    }

    /// Number of mesh nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.cols * self.rows
    }

    fn coords(&self, pe: PeId) -> (usize, usize) {
        (pe.0 % self.cols, pe.0 / self.cols)
    }

    /// The XY route between two PEs as a list of node indices.
    ///
    /// # Panics
    ///
    /// Panics if either PE is outside the grid.
    #[must_use]
    pub fn route(&self, src: PeId, dst: PeId) -> Vec<usize> {
        assert!(
            src.0 < self.node_count() && dst.0 < self.node_count(),
            "PE outside mesh"
        );
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = vec![y * self.cols + x];
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(y * self.cols + x);
        }
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(y * self.cols + x);
        }
        path
    }
}

impl Interconnect for MeshNoc {
    fn schedule(&mut self, src: PeId, dst: PeId, bytes: u64, ready_s: f64) -> Transfer {
        if src == dst || bytes == 0 {
            return Transfer::instant(ready_s);
        }
        let path = self.route(src, dst);
        let hops = path.len() - 1;
        let serialize = bytes as f64 / self.link_bandwidth_bytes_per_s;
        // The transfer cannot start before every link on the route is free.
        let mut start = ready_s;
        for w in path.windows(2) {
            let key = (w[0], w[1]);
            start = start.max(self.link_free_s.get(&key).copied().unwrap_or(0.0));
        }
        // Wormhole-ish approximation: total latency = hop latency per hop +
        // one serialization of the payload; every link is then busy for the
        // serialization time starting at `start`.
        let end = start + hops as f64 * self.hop_latency_s + serialize;
        for w in path.windows(2) {
            self.link_free_s.insert((w[0], w[1]), start + serialize);
        }
        self.bytes_moved += bytes;
        self.busy_s += serialize * hops as f64;
        Transfer {
            start_s: start,
            end_s: end,
            energy_j: bytes as f64 * hops as f64 * self.energy_pj_per_byte_hop * 1e-12,
        }
    }

    fn reset(&mut self) {
        self.link_free_s.clear();
        self.bytes_moved = 0;
        self.busy_s = 0.0;
    }

    fn describe(&self) -> String {
        format!(
            "mesh{}x{}@{:.0}MB/s-link",
            self.cols,
            self.rows,
            self.link_bandwidth_bytes_per_s / 1e6
        )
    }

    fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    fn busy_s(&self) -> f64 {
        self.busy_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_serializes_concurrent_transfers() {
        let mut bus = SharedBus::new(1e6, 0.0, 1.0);
        let a = bus.schedule(PeId(0), PeId(1), 1_000_000, 0.0);
        let b = bus.schedule(PeId(2), PeId(3), 1_000_000, 0.0);
        assert!((a.end_s - 1.0).abs() < 1e-9);
        assert!((b.start_s - 1.0).abs() < 1e-9);
        assert!((b.end_s - 2.0).abs() < 1e-9);
        assert_eq!(bus.bytes_moved(), 2_000_000);
    }

    #[test]
    fn bus_same_pe_transfer_is_free() {
        let mut bus = SharedBus::new(1e6, 1.0, 1.0);
        let t = bus.schedule(PeId(1), PeId(1), 1 << 20, 5.0);
        assert_eq!(t.start_s, 5.0);
        assert_eq!(t.end_s, 5.0);
        assert_eq!(t.energy_j, 0.0);
    }

    #[test]
    fn bus_arbitration_adds_latency() {
        let mut bus = SharedBus::new(1e6, 0.5, 0.0);
        let t = bus.schedule(PeId(0), PeId(1), 1_000_000, 0.0);
        assert!((t.duration_s() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bus_reset_clears_horizon() {
        let mut bus = SharedBus::new(1e6, 0.0, 0.0);
        bus.schedule(PeId(0), PeId(1), 1_000_000, 0.0);
        bus.reset();
        let t = bus.schedule(PeId(0), PeId(1), 1, 0.0);
        assert_eq!(t.start_s, 0.0);
        assert_eq!(bus.bytes_moved(), 1);
    }

    #[test]
    fn mesh_route_is_xy() {
        let noc = MeshNoc::new(3, 3, 1e6, 0.0, 0.0);
        // PE0 at (0,0) to PE8 at (2,2): x first (0->1->2), then y.
        assert_eq!(noc.route(PeId(0), PeId(8)), vec![0, 1, 2, 5, 8]);
        assert_eq!(noc.route(PeId(4), PeId(4)), vec![4]);
    }

    #[test]
    fn mesh_disjoint_routes_run_in_parallel() {
        let mut noc = MeshNoc::new(2, 2, 1e6, 0.0, 0.0);
        // 0->1 (top edge) and 2->3 (bottom edge) share no link.
        let a = noc.schedule(PeId(0), PeId(1), 1_000_000, 0.0);
        let b = noc.schedule(PeId(2), PeId(3), 1_000_000, 0.0);
        assert_eq!(a.start_s, 0.0);
        assert_eq!(b.start_s, 0.0, "disjoint routes must not serialize");
    }

    #[test]
    fn mesh_shared_link_serializes() {
        let mut noc = MeshNoc::new(3, 1, 1e6, 0.0, 0.0);
        // Both transfers traverse link 1->2.
        let a = noc.schedule(PeId(0), PeId(2), 1_000_000, 0.0);
        let b = noc.schedule(PeId(1), PeId(2), 1_000_000, 0.0);
        assert!(
            b.start_s >= a.start_s + 1.0 - 1e-9,
            "link contention ignored"
        );
    }

    #[test]
    fn mesh_energy_scales_with_hops() {
        let mut noc = MeshNoc::new(4, 1, 1e9, 0.0, 2.0);
        let one_hop = noc.schedule(PeId(0), PeId(1), 1000, 0.0);
        let three_hop = noc.schedule(PeId(0), PeId(3), 1000, 10.0);
        assert!((three_hop.energy_j - 3.0 * one_hop.energy_j).abs() < 1e-18);
    }

    #[test]
    fn mesh_hop_latency_counts() {
        let mut noc = MeshNoc::new(4, 1, 1e9, 1e-6, 0.0);
        let t = noc.schedule(PeId(0), PeId(3), 0, 0.0);
        // Zero bytes: free and instant by contract.
        assert_eq!(t.duration_s(), 0.0);
        let t = noc.schedule(PeId(0), PeId(3), 1000, 0.0);
        assert!(t.duration_s() >= 3e-6);
    }

    #[test]
    fn describe_mentions_topology() {
        assert!(SharedBus::new(1e6, 0.0, 0.0).describe().contains("bus"));
        assert!(MeshNoc::new(2, 3, 1e6, 0.0, 0.0)
            .describe()
            .contains("mesh2x3"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mesh_panics() {
        let _ = MeshNoc::new(0, 2, 1e6, 0.0, 0.0);
    }
}
