//! # `mpsoc` — multiprocessor system-on-chip platform simulator
//!
//! The substrate for the reproduction of Wolf, *Multimedia Applications of
//! Multiprocessor Systems-on-Chips* (DATE 2005). The paper surveys the
//! application side; this crate supplies the *platform* side those
//! applications run on: heterogeneous processing elements ([`pe`]),
//! task-graph workloads ([`task`]), shared-bus and mesh-NoC interconnects
//! ([`interconnect`]), mapping heuristics ([`map`]), a deterministic
//! discrete-event scheduler ([`sched`]), an activity-based [`energy`]
//! model, and execution [`trace`]s.
//!
//! ## Fidelity
//!
//! The simulator is *task-level*, not cycle-accurate RTL: tasks carry
//! operation counts per operation class, PEs carry cycles-per-operation
//! tables, and transfers contend on the interconnect. That is the right
//! granularity for the paper's claims, which are about relative compute
//! structure (where the cycles go, how many PEs a workload needs, when the
//! interconnect saturates) rather than absolute silicon numbers. See
//! DESIGN.md §5.
//!
//! # Example
//!
//! ```
//! use mpsoc::platform::Platform;
//! use mpsoc::task::{OpCounts, TaskGraph};
//! use mpsoc::map::Mapping;
//! use mpsoc::sched::Simulator;
//!
//! // Two-stage pipeline on a 2-PE shared-bus platform.
//! let mut g = TaskGraph::new("pipeline");
//! let a = g.add_task("produce", OpCounts::new().with_int_alu(10_000), 0);
//! let b = g.add_task("consume", OpCounts::new().with_int_alu(10_000), 0);
//! g.add_edge(a, b, 4_096).unwrap();
//!
//! let platform = Platform::symmetric_bus("demo", 2, 200_000_000.0);
//! let mapping = Mapping::round_robin(&g, platform.pe_count());
//! let run = Simulator::new(&platform).run(&g, &mapping).unwrap();
//! assert!(run.makespan_s() > 0.0);
//! ```

pub mod energy;
pub mod headend;
pub mod interconnect;
pub mod map;
pub mod pe;
pub mod platform;
pub mod sched;
pub mod task;
pub mod trace;

pub use energy::EnergyReport;
pub use map::Mapping;
pub use platform::Platform;
pub use sched::{RunReport, Simulator};
pub use task::{OpCounts, TaskGraph, TaskId};
