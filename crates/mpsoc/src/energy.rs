//! Activity-based energy accounting.
//!
//! Paper §2: consumer multimedia devices live or die on *cost and power*.
//! The simulator charges dynamic energy per executed operation (per PE
//! kind), transfer energy per byte moved (per interconnect), and leakage
//! for the whole makespan. Experiment E17 ranks the device-class platforms
//! by these budgets.

/// Energy breakdown for one simulation run, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    compute_j: f64,
    transfer_j: f64,
    leakage_j: f64,
}

impl EnergyReport {
    /// Creates a report from its components (joules).
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or non-finite.
    #[must_use]
    pub fn new(compute_j: f64, transfer_j: f64, leakage_j: f64) -> Self {
        for v in [compute_j, transfer_j, leakage_j] {
            assert!(v.is_finite() && v >= 0.0, "energy must be non-negative");
        }
        Self {
            compute_j,
            transfer_j,
            leakage_j,
        }
    }

    /// Dynamic energy spent executing operations.
    #[must_use]
    pub fn compute_j(&self) -> f64 {
        self.compute_j
    }

    /// Energy spent moving bytes over the interconnect.
    #[must_use]
    pub fn transfer_j(&self) -> f64 {
        self.transfer_j
    }

    /// Static (leakage) energy over the run's makespan.
    #[must_use]
    pub fn leakage_j(&self) -> f64 {
        self.leakage_j
    }

    /// Total energy.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.transfer_j + self.leakage_j
    }

    /// Average power over a run of the given duration (watts).
    ///
    /// Returns 0 for a zero-length run.
    #[must_use]
    pub fn average_power_w(&self, makespan_s: f64) -> f64 {
        if makespan_s > 0.0 {
            self.total_j() / makespan_s
        } else {
            0.0
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport::new(
            self.compute_j + other.compute_j,
            self.transfer_j + other.transfer_j,
            self.leakage_j + other.leakage_j,
        )
    }
}

impl core::fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "compute {:.3} mJ + transfer {:.3} mJ + leakage {:.3} mJ = {:.3} mJ",
            self.compute_j * 1e3,
            self.transfer_j * 1e3,
            self.leakage_j * 1e3,
            self.total_j() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_parts() {
        let e = EnergyReport::new(1e-3, 2e-3, 3e-3);
        assert!((e.total_j() - 6e-3).abs() < 1e-15);
    }

    #[test]
    fn average_power() {
        let e = EnergyReport::new(0.5, 0.25, 0.25);
        assert!((e.average_power_w(2.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.average_power_w(0.0), 0.0);
    }

    #[test]
    fn plus_adds_componentwise() {
        let a = EnergyReport::new(1.0, 2.0, 3.0);
        let b = EnergyReport::new(0.5, 0.5, 0.5);
        let c = a.plus(&b);
        assert_eq!(c.compute_j(), 1.5);
        assert_eq!(c.transfer_j(), 2.5);
        assert_eq!(c.leakage_j(), 3.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_panics() {
        let _ = EnergyReport::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn display_reports_millijoules() {
        let e = EnergyReport::new(1e-3, 0.0, 0.0);
        assert!(e.to_string().contains("1.000 mJ"));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(EnergyReport::default().total_j(), 0.0);
    }
}
