//! Bit-level stream I/O plus JPEG-style amplitude coding.
//!
//! The writer/reader live in [`signal::bits`] (they are shared with the
//! audio framer and the DRM serializer) and are re-exported here; this
//! module adds the size-category amplitude coding used by the video
//! entropy coder.

pub use signal::bits::{BitReader, BitWriter, OutOfBitsError};

/// Writes a signed value as a size-category amplitude, JPEG style: the
/// magnitude category `size` must already be known to the reader. Negative
/// values are stored one's-complement within `size` bits.
pub fn write_amplitude(w: &mut BitWriter, value: i32, size: u32) {
    if size == 0 {
        return;
    }
    let bits = if value >= 0 {
        value as u32
    } else {
        // One's complement representation in `size` bits.
        (value - 1 + (1 << size)) as u32
    };
    w.write_bits(bits & ((1u32 << size) - 1), size);
}

/// Reads an amplitude written by [`write_amplitude`].
///
/// # Errors
///
/// Returns [`OutOfBitsError`] at end of stream.
pub fn read_amplitude(r: &mut BitReader<'_>, size: u32) -> Result<i32, OutOfBitsError> {
    if size == 0 {
        return Ok(0);
    }
    let bits = r.read_bits(size)?;
    let threshold = 1u32 << (size - 1);
    Ok(if bits >= threshold {
        bits as i32
    } else {
        bits as i32 - (1 << size) + 1
    })
}

/// Magnitude category of a value: the number of bits needed for `|v|`
/// (0 for 0), as used by JPEG-style entropy coding.
#[must_use]
pub fn size_category(v: i32) -> u32 {
    let mag = v.unsigned_abs();
    32 - mag.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_round_trip_all_sizes() {
        for v in [-2047, -1024, -255, -3, -1, 0, 1, 2, 100, 1023, 2047] {
            let size = size_category(v);
            let mut w = BitWriter::new();
            write_amplitude(&mut w, v, size);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(read_amplitude(&mut r, size).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn size_categories_match_jpeg_table() {
        assert_eq!(size_category(0), 0);
        assert_eq!(size_category(1), 1);
        assert_eq!(size_category(-1), 1);
        assert_eq!(size_category(2), 2);
        assert_eq!(size_category(3), 2);
        assert_eq!(size_category(-4), 3);
        assert_eq!(size_category(255), 8);
        assert_eq!(size_category(-256), 9);
    }

    #[test]
    fn zero_size_amplitude_is_zero_bits() {
        let mut w = BitWriter::new();
        write_amplitude(&mut w, 0, 0);
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_amplitude(&mut r, 0).unwrap(), 0);
    }

    #[test]
    fn reexports_are_usable() {
        let mut w = BitWriter::new();
        w.write_bits(0x3, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 3);
    }
}
