//! Generic 8-bit sample planes.
//!
//! The encoder treats luma and both chroma planes uniformly through this
//! type: block extraction/insertion and clamped access for
//! motion-compensated prediction at arbitrary offsets.
//!
//! Three views of a plane, allocation-cheapest first:
//!
//! * [`BlockView`] — a borrowed `bs x bs` window at an *arbitrary* pixel
//!   position, with stride and edge replication resolved without copying.
//!   When the window lies fully inside the plane it exposes a strided
//!   slice directly into the samples ([`BlockView::interior`]); otherwise
//!   [`BlockView::gather_into`] fills a caller-provided scratch buffer.
//!   This is what the motion-search and prediction hot paths use — no
//!   heap allocation per candidate.
//! * [`PlaneRef`] — a borrowed `(data, width, height)` triple, so the
//!   encoder can walk a [`crate::frame::Frame`]'s planes without copying
//!   them into owned [`Plane8`]s first.
//! * [`Plane8`] — the owned plane, still used wherever a plane is built
//!   up (reconstruction, decoding).

/// An 8-bit sample plane of arbitrary (positive) dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane8 {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane8 {
    /// Creates a plane from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or either dimension is 0.
    #[must_use]
    pub fn new(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "plane must be non-empty");
        assert_eq!(data.len(), width * height, "plane size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// A plane filled with one value.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    #[must_use]
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Self::new(width, height, vec![value; width * height])
    }

    /// Plane width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The samples, row-major.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the plane, returning its samples.
    #[must_use]
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }

    /// Sample at `(x, y)` with edge clamping for out-of-range coordinates.
    #[must_use]
    pub fn at_clamped(&self, x: i32, y: i32) -> u8 {
        let px = x.clamp(0, self.width as i32 - 1) as usize;
        let py = y.clamp(0, self.height as i32 - 1) as usize;
        self.data[py * self.width + px]
    }

    /// Extracts a `bs x bs` block whose top-left is at pixel `(x, y)`,
    /// clamping at the edges.
    #[must_use]
    pub fn block_at(&self, x: i32, y: i32, bs: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(bs * bs);
        for r in 0..bs as i32 {
            for c in 0..bs as i32 {
                out.push(self.at_clamped(x + c, y + r));
            }
        }
        out
    }

    /// Writes a `bs x bs` block at pixel `(x, y)` (must be fully inside).
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit or `data` is too short.
    pub fn set_block(&mut self, x: usize, y: usize, bs: usize, data: &[u8]) {
        assert!(
            x + bs <= self.width && y + bs <= self.height,
            "block outside plane"
        );
        assert!(data.len() >= bs * bs, "block data too short");
        for r in 0..bs {
            let dst = (y + r) * self.width + x;
            self.data[dst..dst + bs].copy_from_slice(&data[r * bs..(r + 1) * bs]);
        }
    }

    /// Number of `bs x bs` blocks horizontally and vertically (dimensions
    /// must divide evenly — guaranteed for 8 with frame dims multiple of
    /// 16).
    #[must_use]
    pub fn blocks(&self, bs: usize) -> (usize, usize) {
        (self.width / bs, self.height / bs)
    }

    /// A borrowed view of this plane (no copy).
    #[must_use]
    pub fn borrowed(&self) -> PlaneRef<'_> {
        PlaneRef::new(&self.data, self.width, self.height)
    }

    /// A borrowed, clamping `bs x bs` window at pixel `(x, y)`.
    #[must_use]
    pub fn view(&self, x: i32, y: i32, bs: usize) -> BlockView<'_> {
        BlockView::new(&self.data, self.width, self.height, x, y, bs)
    }

    /// Zero-allocation [`Plane8::block_at`]: writes the edge-replicated
    /// `bs x bs` block into `out` instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < bs * bs`.
    pub fn block_into(&self, x: i32, y: i32, bs: usize, out: &mut [u8]) {
        self.view(x, y, bs).gather_into(out);
    }
}

/// A borrowed 8-bit plane: the same geometry as [`Plane8`] over samples
/// owned elsewhere (typically a [`crate::frame::Frame`]'s planes).
#[derive(Debug, Clone, Copy)]
pub struct PlaneRef<'a> {
    data: &'a [u8],
    width: usize,
    height: usize,
}

impl<'a> PlaneRef<'a> {
    /// Wraps raw row-major samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or either dimension is 0.
    #[must_use]
    pub fn new(data: &'a [u8], width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane must be non-empty");
        assert_eq!(data.len(), width * height, "plane size mismatch");
        Self {
            data,
            width,
            height,
        }
    }

    /// Plane width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The samples, row-major.
    #[must_use]
    pub fn data(&self) -> &'a [u8] {
        self.data
    }

    /// Number of `bs x bs` blocks horizontally and vertically.
    #[must_use]
    pub fn blocks(&self, bs: usize) -> (usize, usize) {
        (self.width / bs, self.height / bs)
    }

    /// A borrowed, clamping `bs x bs` window at pixel `(x, y)`.
    #[must_use]
    pub fn view(&self, x: i32, y: i32, bs: usize) -> BlockView<'a> {
        BlockView::new(self.data, self.width, self.height, x, y, bs)
    }

    /// Writes the edge-replicated `bs x bs` block at `(x, y)` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < bs * bs`.
    pub fn block_into(&self, x: i32, y: i32, bs: usize, out: &mut [u8]) {
        self.view(x, y, bs).gather_into(out);
    }
}

/// A borrowed `bs x bs` window of a plane at an arbitrary (possibly
/// partially outside) pixel position.
///
/// The motion-search hot path resolves every candidate through this type:
/// interior candidates — the overwhelming majority — are compared straight
/// out of the plane via [`BlockView::interior`]'s strided slice, and only
/// edge-clamped candidates fall back to an explicit gather into a
/// caller-provided scratch buffer. Neither path heap-allocates.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    data: &'a [u8],
    plane_w: usize,
    plane_h: usize,
    x: i32,
    y: i32,
    bs: usize,
}

impl<'a> BlockView<'a> {
    /// A `bs x bs` window of the `plane_w x plane_h` row-major samples in
    /// `data`, with its top-left at pixel `(x, y)`. Out-of-range
    /// coordinates replicate the nearest edge sample.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != plane_w * plane_h` or any dimension is 0.
    #[must_use]
    pub fn new(data: &'a [u8], plane_w: usize, plane_h: usize, x: i32, y: i32, bs: usize) -> Self {
        assert!(plane_w > 0 && plane_h > 0, "plane must be non-empty");
        assert!(bs > 0, "block size must be positive");
        assert_eq!(data.len(), plane_w * plane_h, "plane size mismatch");
        Self {
            data,
            plane_w,
            plane_h,
            x,
            y,
            bs,
        }
    }

    /// The block size.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bs
    }

    /// When the window lies fully inside the plane, the strided slice
    /// starting at its top-left sample, paired with the plane's row
    /// stride. `None` when any part of the window needs edge clamping.
    #[must_use]
    pub fn interior(&self) -> Option<(&'a [u8], usize)> {
        let bs = self.bs as i32;
        if self.x >= 0
            && self.y >= 0
            && self.x + bs <= self.plane_w as i32
            && self.y + bs <= self.plane_h as i32
        {
            let start = self.y as usize * self.plane_w + self.x as usize;
            let end = (self.y as usize + self.bs - 1) * self.plane_w + self.x as usize + self.bs;
            Some((&self.data[start..end], self.plane_w))
        } else {
            None
        }
    }

    /// Sample at block-relative `(row, col)`, edge-clamped.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> u8 {
        let px = (self.x + col as i32).clamp(0, self.plane_w as i32 - 1) as usize;
        let py = (self.y + row as i32).clamp(0, self.plane_h as i32 - 1) as usize;
        self.data[py * self.plane_w + px]
    }

    /// Writes the window, edge-replicated, into the first `bs * bs` bytes
    /// of `out` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < bs * bs`.
    pub fn gather_into(&self, out: &mut [u8]) {
        assert!(out.len() >= self.bs * self.bs, "scratch buffer too short");
        if let Some((src, stride)) = self.interior() {
            for r in 0..self.bs {
                out[r * self.bs..(r + 1) * self.bs]
                    .copy_from_slice(&src[r * stride..r * stride + self.bs]);
            }
            return;
        }
        for r in 0..self.bs {
            let py = (self.y + r as i32).clamp(0, self.plane_h as i32 - 1) as usize;
            let src = &self.data[py * self.plane_w..(py + 1) * self.plane_w];
            for (c, d) in out[r * self.bs..(r + 1) * self.bs].iter_mut().enumerate() {
                let px = (self.x + c as i32).clamp(0, self.plane_w as i32 - 1) as usize;
                *d = src[px];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let p = Plane8::new(4, 2, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(p.at_clamped(2, 1), 6);
        assert_eq!(p.at_clamped(-5, 0), 0, "clamps left");
        assert_eq!(p.at_clamped(99, 99), 7, "clamps bottom-right");
    }

    #[test]
    fn block_round_trip() {
        let mut p = Plane8::filled(16, 16, 0);
        let data: Vec<u8> = (0..64).collect();
        p.set_block(8, 8, 8, &data);
        assert_eq!(p.block_at(8, 8, 8), data);
    }

    #[test]
    fn block_at_edge_replicates() {
        let p = Plane8::new(2, 2, vec![1, 2, 3, 4]);
        let b = p.block_at(1, 1, 2);
        assert_eq!(b, vec![4, 4, 4, 4]);
    }

    #[test]
    fn blocks_count() {
        let p = Plane8::filled(32, 16, 0);
        assert_eq!(p.blocks(8), (4, 2));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_data_length_panics() {
        let _ = Plane8::new(3, 3, vec![0; 8]);
    }

    #[test]
    fn view_interior_exposes_strided_slice() {
        let data: Vec<u8> = (0..64).collect();
        let p = Plane8::new(8, 8, data);
        let v = p.view(2, 3, 4);
        let (slice, stride) = v.interior().expect("fully inside");
        assert_eq!(stride, 8);
        assert_eq!(slice[0], 3 * 8 + 2);
        assert_eq!(v.at(0, 0), 3 * 8 + 2);
        assert_eq!(v.at(3, 3), 6 * 8 + 5);
    }

    #[test]
    fn view_outside_has_no_interior_and_gathers_clamped() {
        let p = Plane8::new(4, 4, (0..16).collect());
        for (x, y) in [(-1, 0), (0, -1), (2, 0), (0, 2), (5, 5)] {
            let v = p.view(x, y, 3);
            assert!(v.interior().is_none(), "({x},{y}) needs clamping");
            let mut got = [0u8; 9];
            v.gather_into(&mut got);
            assert_eq!(got.to_vec(), p.block_at(x, y, 3), "view at ({x},{y})");
        }
        assert!(p.view(1, 1, 3).interior().is_some(), "(1,1) is interior");
    }

    #[test]
    fn gather_matches_block_at_everywhere() {
        let p = Plane8::new(5, 4, (0..20).collect());
        let mut scratch = [0u8; 4];
        for y in -3..6 {
            for x in -3..7 {
                p.block_into(x, y, 2, &mut scratch);
                assert_eq!(scratch.to_vec(), p.block_at(x, y, 2), "({x},{y})");
            }
        }
    }

    #[test]
    fn plane_ref_mirrors_plane() {
        let p = Plane8::new(8, 8, (0..64).collect());
        let r = p.borrowed();
        assert_eq!((r.width(), r.height()), (8, 8));
        assert_eq!(r.blocks(4), (2, 2));
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        p.block_into(-2, 5, 4, &mut a);
        r.block_into(-2, 5, 4, &mut b);
        assert_eq!(a, b);
        assert_eq!(r.data(), p.data());
    }

    #[test]
    #[should_panic(expected = "scratch buffer too short")]
    fn short_scratch_panics() {
        let p = Plane8::filled(4, 4, 0);
        let mut out = [0u8; 3];
        p.block_into(0, 0, 2, &mut out);
    }
}
