//! Generic 8-bit sample planes.
//!
//! The encoder treats luma and both chroma planes uniformly through this
//! type: block extraction/insertion and clamped access for
//! motion-compensated prediction at arbitrary offsets.

/// An 8-bit sample plane of arbitrary (positive) dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane8 {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane8 {
    /// Creates a plane from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or either dimension is 0.
    #[must_use]
    pub fn new(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "plane must be non-empty");
        assert_eq!(data.len(), width * height, "plane size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// A plane filled with one value.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    #[must_use]
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Self::new(width, height, vec![value; width * height])
    }

    /// Plane width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The samples, row-major.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the plane, returning its samples.
    #[must_use]
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }

    /// Sample at `(x, y)` with edge clamping for out-of-range coordinates.
    #[must_use]
    pub fn at_clamped(&self, x: i32, y: i32) -> u8 {
        let px = x.clamp(0, self.width as i32 - 1) as usize;
        let py = y.clamp(0, self.height as i32 - 1) as usize;
        self.data[py * self.width + px]
    }

    /// Extracts a `bs x bs` block whose top-left is at pixel `(x, y)`,
    /// clamping at the edges.
    #[must_use]
    pub fn block_at(&self, x: i32, y: i32, bs: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(bs * bs);
        for r in 0..bs as i32 {
            for c in 0..bs as i32 {
                out.push(self.at_clamped(x + c, y + r));
            }
        }
        out
    }

    /// Writes a `bs x bs` block at pixel `(x, y)` (must be fully inside).
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit or `data` is too short.
    pub fn set_block(&mut self, x: usize, y: usize, bs: usize, data: &[u8]) {
        assert!(
            x + bs <= self.width && y + bs <= self.height,
            "block outside plane"
        );
        assert!(data.len() >= bs * bs, "block data too short");
        for r in 0..bs {
            let dst = (y + r) * self.width + x;
            self.data[dst..dst + bs].copy_from_slice(&data[r * bs..(r + 1) * bs]);
        }
    }

    /// Number of `bs x bs` blocks horizontally and vertically (dimensions
    /// must divide evenly — guaranteed for 8 with frame dims multiple of
    /// 16).
    #[must_use]
    pub fn blocks(&self, bs: usize) -> (usize, usize) {
        (self.width / bs, self.height / bs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let p = Plane8::new(4, 2, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(p.at_clamped(2, 1), 6);
        assert_eq!(p.at_clamped(-5, 0), 0, "clamps left");
        assert_eq!(p.at_clamped(99, 99), 7, "clamps bottom-right");
    }

    #[test]
    fn block_round_trip() {
        let mut p = Plane8::filled(16, 16, 0);
        let data: Vec<u8> = (0..64).collect();
        p.set_block(8, 8, 8, &data);
        assert_eq!(p.block_at(8, 8, 8), data);
    }

    #[test]
    fn block_at_edge_replicates() {
        let p = Plane8::new(2, 2, vec![1, 2, 3, 4]);
        let b = p.block_at(1, 1, 2);
        assert_eq!(b, vec![4, 4, 4, 4]);
    }

    #[test]
    fn blocks_count() {
        let p = Plane8::filled(32, 16, 0);
        assert_eq!(p.blocks(8), (4, 2));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_data_length_panics() {
        let _ = Plane8::new(3, 3, vec![0; 8]);
    }
}
