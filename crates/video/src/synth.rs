//! Synthetic video generation — the workspace's substitute for camera and
//! broadcast material (DESIGN.md §5).
//!
//! Provides textured frames with controllable motion for codec tests,
//! multi-scene sequences with hard cuts for shot detection (§5), and a
//! broadcast generator with black-frame-separated commercial breaks and
//! color/monochrome programs for the Replay-style commercial detector.

use signal::rng::Xoroshiro128;

use crate::frame::Frame;

/// Ground-truth annotation for one generated broadcast frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastLabel {
    /// Program content (scene id).
    Program {
        /// Which program scene.
        scene: usize,
    },
    /// Commercial content (spot id).
    Commercial {
        /// Which commercial spot.
        spot: usize,
    },
    /// A black separator frame.
    Black,
}

impl BroadcastLabel {
    /// `true` for commercial or separator frames (the material a DVR
    /// skips).
    #[must_use]
    pub fn is_skippable(self) -> bool {
        !matches!(self, BroadcastLabel::Program { .. })
    }
}

/// Deterministic video sequence generator.
///
/// # Example
///
/// ```
/// use video::synth::SequenceGen;
///
/// let mut g = SequenceGen::new(1);
/// let frames = g.panning_sequence(64, 48, 10, 2, 1);
/// assert_eq!(frames.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct SequenceGen {
    rng: Xoroshiro128,
}

impl SequenceGen {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoroshiro128::new(seed),
        }
    }

    /// A frame with smooth low-frequency texture plus detail — enough
    /// structure for motion search to lock onto.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are not multiples of 16.
    #[must_use]
    pub fn textured_frame(&mut self, width: usize, height: usize) -> Frame {
        let px = self.rng.range_f64(0.01, 0.05);
        let py = self.rng.range_f64(0.01, 0.05);
        let ph1 = self.rng.range_f64(0.0, std::f64::consts::TAU);
        let ph2 = self.rng.range_f64(0.0, std::f64::consts::TAU);
        let mut f = Frame::grey(width, height).expect("dimensions validated by caller");
        for y in 0..height {
            for x in 0..width {
                let v = 128.0
                    + 50.0 * (px * x as f64 * std::f64::consts::TAU + ph1).sin()
                    + 40.0 * (py * y as f64 * std::f64::consts::TAU + ph2).cos()
                    + 15.0 * ((x / 4 + y / 4) % 2) as f64
                    + self.rng.normal_with(0.0, 2.0);
                f.set_luma(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        // Mild colour cast so chroma paths carry signal.
        let (cb, cr) = f.chroma_mut();
        for v in cb.iter_mut() {
            *v = 140;
        }
        for v in cr.iter_mut() {
            *v = 120;
        }
        f
    }

    /// Shifts a frame's luma by `(dx, dy)` pixels with edge clamping
    /// (positive `dx` moves content right).
    #[must_use]
    pub fn shift_frame(&mut self, src: &Frame, dx: i32, dy: i32) -> Frame {
        let (w, h) = (src.width(), src.height());
        let mut out = src.clone();
        for y in 0..h {
            for x in 0..w {
                let sx = (x as i32 - dx).clamp(0, w as i32 - 1) as usize;
                let sy = (y as i32 - dy).clamp(0, h as i32 - 1) as usize;
                out.set_luma(x, y, src.luma_at(sx, sy));
            }
        }
        out
    }

    /// Adds Gaussian luma noise with the given standard deviation.
    pub fn add_noise(&mut self, frame: &mut Frame, sigma: f64) {
        for v in frame.luma_mut() {
            let nv = *v as f64 + self.rng.normal_with(0.0, sigma);
            *v = nv.clamp(0.0, 255.0) as u8;
        }
    }

    /// A panning sequence: a textured scene translating `(dx, dy)` per
    /// frame — the classic motion-compensation test pattern.
    #[must_use]
    pub fn panning_sequence(
        &mut self,
        width: usize,
        height: usize,
        frames: usize,
        dx: i32,
        dy: i32,
    ) -> Vec<Frame> {
        let base = self.textured_frame(width, height);
        (0..frames)
            .map(|i| self.shift_frame(&base, dx * i as i32, dy * i as i32))
            .collect()
    }

    /// A multi-scene sequence with hard cuts: `scene_lens[i]` frames of
    /// scene `i`. Returns the frames and the first frame index of each cut
    /// (i.e. indices where a new scene starts, excluding 0).
    #[must_use]
    pub fn scene_sequence(
        &mut self,
        width: usize,
        height: usize,
        scene_lens: &[usize],
    ) -> (Vec<Frame>, Vec<usize>) {
        let mut frames = Vec::new();
        let mut cuts = Vec::new();
        for (s, &len) in scene_lens.iter().enumerate() {
            if s > 0 {
                cuts.push(frames.len());
            }
            let mut base = self.textured_frame(width, height);
            // Scenes differ in overall brightness as well as texture, so
            // their intensity histograms are genuinely distinct (as real
            // scene changes are). A cycled palette guarantees adjacent
            // scenes are well separated plus a little random spice.
            const OFFSETS: [i64; 8] = [-70, 35, -35, 70, 0, -55, 55, 20];
            let offset = OFFSETS[s % OFFSETS.len()] + self.rng.range_i64(-8, 8);
            for v in base.luma_mut() {
                *v = (*v as i64 + offset).clamp(0, 255) as u8;
            }
            let (dx, dy) = (
                self.rng.range_i64(-2, 2) as i32,
                self.rng.range_i64(-1, 1) as i32,
            );
            for i in 0..len {
                let mut f = self.shift_frame(&base, dx * i as i32, dy * i as i32);
                self.add_noise(&mut f, 1.5);
                frames.push(f);
            }
        }
        (frames, cuts)
    }

    /// A commercial-style frame: saturated colour, bright, high-frequency
    /// texture.
    #[must_use]
    pub fn commercial_frame(&mut self, width: usize, height: usize) -> Frame {
        let mut f = self.textured_frame(width, height);
        for v in f.luma_mut() {
            *v = v.saturating_add(30);
        }
        let (cb, cr) = f.chroma_mut();
        for v in cb.iter_mut() {
            *v = 190;
        }
        for v in cr.iter_mut() {
            *v = 70;
        }
        f
    }

    /// A monochrome program frame (the old-movie case of the §5
    /// color-burst detector: programs B&W, commercials in color).
    #[must_use]
    pub fn monochrome_frame(&mut self, width: usize, height: usize) -> Frame {
        let mut f = self.textured_frame(width, height);
        let (cb, cr) = f.chroma_mut();
        for v in cb.iter_mut() {
            *v = 128;
        }
        for v in cr.iter_mut() {
            *v = 128;
        }
        f
    }

    /// Generates a broadcast: alternating program segments and commercial
    /// breaks, separated by runs of black frames, with optional
    /// monochrome programs and additive noise. Returns frames plus
    /// per-frame ground truth.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn broadcast(
        &mut self,
        width: usize,
        height: usize,
        program_len: usize,
        commercial_len: usize,
        breaks: usize,
        black_run: usize,
        monochrome_program: bool,
        noise_sigma: f64,
    ) -> (Vec<Frame>, Vec<BroadcastLabel>) {
        let mut frames = Vec::new();
        let mut labels = Vec::new();
        let emit_black = |frames: &mut Vec<Frame>, labels: &mut Vec<BroadcastLabel>| {
            for _ in 0..black_run {
                frames.push(Frame::black(width, height).expect("validated dims"));
                labels.push(BroadcastLabel::Black);
            }
        };
        for b in 0..=breaks {
            // Program segment.
            let base = if monochrome_program {
                self.monochrome_frame(width, height)
            } else {
                self.textured_frame(width, height)
            };
            for i in 0..program_len {
                let mut f = self.shift_frame(&base, i as i32, 0);
                self.add_noise(&mut f, noise_sigma);
                frames.push(f);
                labels.push(BroadcastLabel::Program { scene: b });
            }
            if b == breaks {
                break;
            }
            // Break: black, commercials, black.
            emit_black(&mut frames, &mut labels);
            let cbase = self.commercial_frame(width, height);
            for i in 0..commercial_len {
                let mut f = self.shift_frame(&cbase, -(i as i32) * 2, i as i32);
                self.add_noise(&mut f, noise_sigma);
                frames.push(f);
                labels.push(BroadcastLabel::Commercial { spot: b });
            }
            emit_black(&mut frames, &mut labels);
        }
        (frames, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textured_frame_has_spread() {
        let mut g = SequenceGen::new(1);
        let f = g.textured_frame(64, 64);
        let lo = f.luma().iter().copied().min().unwrap();
        let hi = f.luma().iter().copied().max().unwrap();
        assert!(hi - lo > 60, "texture too flat: {lo}..{hi}");
    }

    #[test]
    fn shift_moves_content() {
        let mut g = SequenceGen::new(2);
        let f = g.textured_frame(64, 64);
        let s = g.shift_frame(&f, 5, 3);
        // Interior pixel equality: s(x, y) == f(x-5, y-3).
        assert_eq!(s.luma_at(20, 20), f.luma_at(15, 17));
    }

    #[test]
    fn panning_sequence_is_consistent() {
        let mut g = SequenceGen::new(3);
        let frames = g.panning_sequence(64, 48, 5, 2, 0);
        assert_eq!(frames.len(), 5);
        // Frame 3 equals frame 0 shifted by 6 pixels (interior check).
        assert_eq!(frames[3].luma_at(30, 20), frames[0].luma_at(24, 20));
    }

    #[test]
    fn scene_sequence_reports_cut_positions() {
        let mut g = SequenceGen::new(4);
        let (frames, cuts) = g.scene_sequence(32, 32, &[4, 5, 3]);
        assert_eq!(frames.len(), 12);
        assert_eq!(cuts, vec![4, 9]);
    }

    #[test]
    fn broadcast_structure_and_labels() {
        let mut g = SequenceGen::new(5);
        let (frames, labels) = g.broadcast(32, 32, 10, 6, 2, 2, false, 0.0);
        assert_eq!(frames.len(), labels.len());
        // 3 programs x10 + 2 breaks x (2 black + 6 comm + 2 black) = 30+20.
        assert_eq!(frames.len(), 50);
        let blacks = labels
            .iter()
            .filter(|l| **l == BroadcastLabel::Black)
            .count();
        assert_eq!(blacks, 8);
        // Black frames really are black.
        for (f, l) in frames.iter().zip(&labels) {
            if *l == BroadcastLabel::Black {
                assert!(f.mean_luma() < 20.0);
            }
        }
    }

    #[test]
    fn commercial_frames_are_more_saturated_than_programs() {
        let mut g = SequenceGen::new(6);
        let prog = g.monochrome_frame(32, 32);
        let comm = g.commercial_frame(32, 32);
        assert!(comm.chroma_saturation() > prog.chroma_saturation() + 20.0);
    }

    #[test]
    fn skippable_classification() {
        assert!(BroadcastLabel::Black.is_skippable());
        assert!(BroadcastLabel::Commercial { spot: 0 }.is_skippable());
        assert!(!BroadcastLabel::Program { scene: 1 }.is_skippable());
    }

    #[test]
    fn determinism() {
        let mut a = SequenceGen::new(9);
        let mut b = SequenceGen::new(9);
        assert_eq!(a.textured_frame(32, 32), b.textured_frame(32, 32));
    }
}
