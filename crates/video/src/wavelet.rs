//! 5/3 LeGall integer wavelet transform (the JPEG2000 lossless kernel).
//!
//! Paper §3: *"Wavelets represent the frequency content hierarchically and
//! do not suffer from the edge artifacts common to DCT-based encoding.
//! Wavelets [have] been incorporated into JPEG2000."* Experiment E18
//! compares this transform against the block DCT on sharp-edged images at
//! equal coefficient budgets and measures blocking artifacts.
//!
//! The lifting implementation is exactly invertible in integer arithmetic.

/// One-dimensional forward 5/3 lifting step. Input length must be even.
///
/// Output layout: first half = approximation (low-pass), second half =
/// detail (high-pass).
///
/// # Panics
///
/// Panics if `x.len()` is odd or zero.
#[must_use]
pub fn forward_1d(x: &[i32]) -> Vec<i32> {
    assert!(
        !x.is_empty() && x.len() % 2 == 0,
        "length must be even and nonzero"
    );
    let n = x.len();
    let half = n / 2;
    let at = |i: i64| -> i32 {
        // Whole-sample symmetric (mirror) extension, as in JPEG2000: the
        // sample one past the end reflects back to index n-2, which keeps
        // the lifting exactly invertible.
        let idx = if i >= n as i64 {
            2 * (n as i64 - 1) - i
        } else {
            i.max(0)
        } as usize;
        x[idx]
    };
    let mut detail = vec![0i32; half];
    let mut approx = vec![0i32; half];
    // Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
    for i in 0..half {
        let left = at(2 * i as i64);
        let right = at(2 * i as i64 + 2);
        detail[i] = x[2 * i + 1] - ((left + right) >> 1);
    }
    // Update: a[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4)
    for i in 0..half {
        let dl = if i == 0 { detail[0] } else { detail[i - 1] };
        approx[i] = x[2 * i] + ((dl + detail[i] + 2) >> 2);
    }
    let mut out = approx;
    out.extend(detail);
    out
}

/// Inverse of [`forward_1d`].
///
/// # Panics
///
/// Panics if `x.len()` is odd or zero.
#[must_use]
pub fn inverse_1d(x: &[i32]) -> Vec<i32> {
    assert!(
        !x.is_empty() && x.len() % 2 == 0,
        "length must be even and nonzero"
    );
    let n = x.len();
    let half = n / 2;
    let approx = &x[..half];
    let detail = &x[half..];
    let mut even = vec![0i32; half];
    for i in 0..half {
        let dl = if i == 0 { detail[0] } else { detail[i - 1] };
        even[i] = approx[i] - ((dl + detail[i] + 2) >> 2);
    }
    let mut out = vec![0i32; n];
    for i in 0..half {
        out[2 * i] = even[i];
    }
    for i in 0..half {
        let left = out[2 * i];
        let right = if i + 1 < half {
            out[2 * i + 2]
        } else {
            out[2 * i]
        };
        out[2 * i + 1] = detail[i] + ((left + right) >> 1);
    }
    out
}

/// A 2-D multi-level 5/3 wavelet transform on a square image.
#[derive(Debug, Clone, Copy)]
pub struct Wavelet2d {
    levels: usize,
}

impl Wavelet2d {
    /// Creates a transform with the given number of decomposition levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    #[must_use]
    pub fn new(levels: usize) -> Self {
        assert!(levels > 0, "need at least one level");
        Self { levels }
    }

    /// Number of levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Forward transform of a `size x size` image (row-major). `size` must
    /// be divisible by `2^levels`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible sizes.
    #[must_use]
    pub fn forward(&self, img: &[i32], size: usize) -> Vec<i32> {
        assert_eq!(img.len(), size * size, "image size mismatch");
        assert!(
            size % (1 << self.levels) == 0,
            "size must be divisible by 2^levels"
        );
        let mut out = img.to_vec();
        let mut cur = size;
        for _ in 0..self.levels {
            // Rows.
            for r in 0..cur {
                let row: Vec<i32> = (0..cur).map(|c| out[r * size + c]).collect();
                let t = forward_1d(&row);
                for (c, v) in t.into_iter().enumerate() {
                    out[r * size + c] = v;
                }
            }
            // Columns.
            for c in 0..cur {
                let col: Vec<i32> = (0..cur).map(|r| out[r * size + c]).collect();
                let t = forward_1d(&col);
                for (r, v) in t.into_iter().enumerate() {
                    out[r * size + c] = v;
                }
            }
            cur /= 2;
        }
        out
    }

    /// Inverse transform.
    ///
    /// # Panics
    ///
    /// Panics on incompatible sizes.
    #[must_use]
    pub fn inverse(&self, coeffs: &[i32], size: usize) -> Vec<i32> {
        assert_eq!(coeffs.len(), size * size, "image size mismatch");
        let mut out = coeffs.to_vec();
        let mut sizes = Vec::new();
        let mut cur = size;
        for _ in 0..self.levels {
            sizes.push(cur);
            cur /= 2;
        }
        for &cur in sizes.iter().rev() {
            // Columns first (reverse of forward order).
            for c in 0..cur {
                let col: Vec<i32> = (0..cur).map(|r| out[r * size + c]).collect();
                let t = inverse_1d(&col);
                for (r, v) in t.into_iter().enumerate() {
                    out[r * size + c] = v;
                }
            }
            for r in 0..cur {
                let row: Vec<i32> = (0..cur).map(|c| out[r * size + c]).collect();
                let t = inverse_1d(&row);
                for (c, v) in t.into_iter().enumerate() {
                    out[r * size + c] = v;
                }
            }
        }
        out
    }

    /// Keeps only the `keep` largest-magnitude coefficients (zeroing the
    /// rest) — the equal-budget comparison used by E18.
    #[must_use]
    pub fn threshold_keep(coeffs: &[i32], keep: usize) -> Vec<i32> {
        let mut idx: Vec<usize> = (0..coeffs.len()).collect();
        idx.sort_by_key(|&i| core::cmp::Reverse(coeffs[i].unsigned_abs()));
        let mut out = vec![0i32; coeffs.len()];
        for &i in idx.iter().take(keep) {
            out[i] = coeffs[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    #[test]
    fn lifting_1d_is_exactly_invertible() {
        let mut rng = Xoroshiro128::new(61);
        for &n in &[2usize, 8, 64, 256] {
            let x: Vec<i32> = (0..n).map(|_| rng.range_i64(-255, 255) as i32).collect();
            assert_eq!(inverse_1d(&forward_1d(&x)), x, "n={n}");
        }
    }

    #[test]
    fn transform_2d_round_trip() {
        let mut rng = Xoroshiro128::new(62);
        let size = 32;
        let img: Vec<i32> = (0..size * size)
            .map(|_| rng.range_i64(0, 255) as i32)
            .collect();
        for levels in 1..=3 {
            let w = Wavelet2d::new(levels);
            let back = w.inverse(&w.forward(&img, size), size);
            assert_eq!(back, img, "levels={levels}");
        }
    }

    #[test]
    fn smooth_signal_has_small_details() {
        let x: Vec<i32> = (0..64).map(|i| 100 + i).collect();
        let t = forward_1d(&x);
        // Linear ramps are exactly predicted by the 5/3 kernel interior.
        for &d in &t[33..63] {
            assert_eq!(d, 0, "interior detail should vanish on a ramp");
        }
    }

    #[test]
    fn energy_concentrates_in_approximation() {
        let mut rng = Xoroshiro128::new(63);
        let size = 32;
        // Smooth image: low-frequency blobs.
        let img: Vec<i32> = (0..size * size)
            .map(|i| {
                let (x, y) = (i % size, i / size);
                (128.0
                    + 60.0 * ((x as f64 / 9.0).sin() + (y as f64 / 7.0).cos())
                    + rng.normal_with(0.0, 1.0)) as i32
            })
            .collect();
        let w = Wavelet2d::new(2);
        let c = w.forward(&img, size);
        // The 8x8 top-left corner holds the level-2 approximation.
        let approx_energy: i64 = (0..8)
            .flat_map(|r| (0..8).map(move |c_| (r, c_)))
            .map(|(r, cc)| (c[r * size + cc] as i64).pow(2))
            .sum();
        let total_energy: i64 = c.iter().map(|&v| (v as i64).pow(2)).sum();
        assert!(
            approx_energy * 10 > total_energy * 9,
            "approximation should hold >90% of energy"
        );
    }

    #[test]
    fn threshold_keeps_requested_count() {
        let coeffs = vec![5, -9, 1, 0, 7, -2];
        let kept = Wavelet2d::threshold_keep(&coeffs, 2);
        let nonzero = kept.iter().filter(|&&v| v != 0).count();
        assert_eq!(nonzero, 2);
        assert_eq!(kept[1], -9);
        assert_eq!(kept[4], 7);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_panics() {
        let _ = forward_1d(&[1, 2, 3]);
    }
}
