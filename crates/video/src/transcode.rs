//! Transcoding and generation loss.
//!
//! Paper §3: *"Since different devices may use different compression
//! standards, content must be recoded to be used on a different device.
//! Because encoding is lossy, each generation of transcoding reduces image
//! quality."* Experiment E6 runs [`generations`] and checks PSNR is
//! monotonically non-increasing.

use signal::metrics::psnr_u8;

use crate::decoder::{decode, DecodeError};
use crate::encoder::{Encoder, EncoderConfig, EncoderError};
use crate::frame::Frame;

/// Errors during a transcode chain.
#[derive(Debug, Clone, PartialEq)]
pub enum TranscodeError {
    /// Encoding failed.
    Encode(EncoderError),
    /// Decoding failed.
    Decode(DecodeError),
}

impl core::fmt::Display for TranscodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TranscodeError::Encode(e) => write!(f, "transcode encode failed: {e}"),
            TranscodeError::Decode(e) => write!(f, "transcode decode failed: {e}"),
        }
    }
}

impl std::error::Error for TranscodeError {}

impl From<EncoderError> for TranscodeError {
    fn from(e: EncoderError) -> Self {
        TranscodeError::Encode(e)
    }
}

impl From<DecodeError> for TranscodeError {
    fn from(e: DecodeError) -> Self {
        TranscodeError::Decode(e)
    }
}

/// Result of one transcode generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStats {
    /// Generation index (1 = first encode).
    pub generation: usize,
    /// Mean luma PSNR against the *original* source, dB.
    pub psnr_vs_original_db: f64,
    /// Stream size in bits.
    pub bits: usize,
}

/// Decode-and-re-encode `count` generations, alternating between the two
/// configurations (device A ↔ device B), measuring PSNR against the
/// original each time.
///
/// # Errors
///
/// Returns [`TranscodeError`] if any encode/decode in the chain fails.
pub fn generations(
    source: &[Frame],
    config_a: EncoderConfig,
    config_b: EncoderConfig,
    count: usize,
) -> Result<Vec<GenerationStats>, TranscodeError> {
    let mut stats = Vec::with_capacity(count);
    let mut current: Vec<Frame> = source.to_vec();
    for g in 0..count {
        let config = if g % 2 == 0 { config_a } else { config_b };
        let encoded = Encoder::new(config)?.encode(&current)?;
        let decoded = decode(&encoded.bytes)?;
        let mut psnr_sum = 0.0;
        for (orig, out) in source.iter().zip(&decoded.frames) {
            psnr_sum += psnr_u8(orig.luma(), out.luma()).expect("equal dims");
        }
        stats.push(GenerationStats {
            generation: g + 1,
            psnr_vs_original_db: psnr_sum / source.len() as f64,
            bits: encoded.total_bits(),
        });
        current = decoded.frames;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SequenceGen;

    #[test]
    fn psnr_never_increases_across_generations() {
        let frames = SequenceGen::new(81).panning_sequence(48, 48, 4, 1, 0);
        let a = EncoderConfig {
            quality: 60,
            gop: 4,
            ..Default::default()
        };
        let b = EncoderConfig {
            quality: 45,
            gop: 4,
            ..Default::default()
        };
        let stats = generations(&frames, a, b, 4).unwrap();
        assert_eq!(stats.len(), 4);
        // Re-quantization noise can produce sub-dB wiggle between adjacent
        // generations when quantizers alternate; the trend must still be
        // downward and the cumulative loss real.
        for w in stats.windows(2) {
            assert!(
                w[1].psnr_vs_original_db <= w[0].psnr_vs_original_db + 0.5,
                "generation {} gained quality: {} -> {}",
                w[1].generation,
                w[0].psnr_vs_original_db,
                w[1].psnr_vs_original_db
            );
        }
        assert!(
            stats.last().unwrap().psnr_vs_original_db
                < stats.first().unwrap().psnr_vs_original_db + 0.01,
            "no cumulative generation loss observed"
        );
    }

    #[test]
    fn first_generation_hurts_most() {
        let frames = SequenceGen::new(82).panning_sequence(48, 48, 3, 1, 0);
        let cfg = EncoderConfig {
            quality: 50,
            gop: 3,
            ..Default::default()
        };
        let stats = generations(&frames, cfg, cfg, 3).unwrap();
        let drop1 = 100.0 - stats[0].psnr_vs_original_db; // vs lossless
        let drop2 = stats[0].psnr_vs_original_db - stats[1].psnr_vs_original_db;
        assert!(
            drop1 > drop2,
            "first-generation loss {drop1:.2} should exceed later loss {drop2:.2}"
        );
    }

    #[test]
    fn same_config_retranscoding_stabilizes() {
        // Re-encoding with the identical quantizer tends to re-hit the same
        // lattice points: later generations lose much less than the first.
        let frames = SequenceGen::new(83).panning_sequence(48, 48, 3, 0, 0);
        let cfg = EncoderConfig {
            quality: 50,
            gop: 1,
            ..Default::default()
        };
        let stats = generations(&frames, cfg, cfg, 4).unwrap();
        let late_loss = stats[2].psnr_vs_original_db - stats[3].psnr_vs_original_db;
        assert!(
            late_loss < 0.5,
            "late generations should stabilize, lost {late_loss}"
        );
    }
}
