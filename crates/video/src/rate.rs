//! Rate control: the buffer→quantizer feedback of Figure 1.
//!
//! The encoder's output enters a fixed-size channel buffer drained at the
//! channel rate; the controller steers the quantizer quality so the buffer
//! neither overflows (bits dropped) nor underflows (channel idle). This is
//! exactly the dashed feedback arrow in the paper's encoder diagram.

/// Rate controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateConfig {
    /// Channel drain per frame, in bits.
    pub target_bits_per_frame: f64,
    /// Buffer capacity in bits.
    pub buffer_bits: f64,
    /// Lowest quality the controller may select.
    pub min_quality: u8,
    /// Highest quality the controller may select.
    pub max_quality: u8,
}

impl RateConfig {
    /// A configuration for the given per-frame bit budget with a buffer of
    /// four frames' worth of bits and quality limits 5..=95.
    ///
    /// # Panics
    ///
    /// Panics if `target_bits_per_frame` is not positive.
    #[must_use]
    pub fn for_target(target_bits_per_frame: f64) -> Self {
        assert!(
            target_bits_per_frame > 0.0,
            "target bitrate must be positive"
        );
        Self {
            target_bits_per_frame,
            buffer_bits: 4.0 * target_bits_per_frame,
            min_quality: 5,
            max_quality: 95,
        }
    }
}

/// The buffer-feedback rate controller.
///
/// # Example
///
/// ```
/// use video::rate::{RateConfig, RateController};
///
/// let mut rc = RateController::new(RateConfig::for_target(10_000.0), 50);
/// // Frames repeatedly over budget fill the buffer; quality must drop.
/// let q0 = rc.quality();
/// for _ in 0..4 {
///     rc.frame_encoded(25_000.0);
/// }
/// assert!(rc.quality() < q0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateController {
    config: RateConfig,
    occupancy_bits: f64,
    quality: u8,
    overflow_events: usize,
    underflow_events: usize,
}

impl RateController {
    /// Creates a controller starting at `initial_quality` with an empty
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `initial_quality` is outside the config's quality range
    /// or the range is inverted.
    #[must_use]
    pub fn new(config: RateConfig, initial_quality: u8) -> Self {
        assert!(
            config.min_quality <= config.max_quality,
            "inverted quality range"
        );
        assert!(
            (config.min_quality..=config.max_quality).contains(&initial_quality),
            "initial quality outside range"
        );
        Self {
            config,
            occupancy_bits: 0.0,
            quality: initial_quality,
            overflow_events: 0,
            underflow_events: 0,
        }
    }

    /// The quality the encoder should use for the next frame.
    #[must_use]
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// Buffer occupancy as a fraction of capacity (0..=1).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        (self.occupancy_bits / self.config.buffer_bits).clamp(0.0, 1.0)
    }

    /// Times the buffer would have overflowed (bits discarded).
    #[must_use]
    pub fn overflow_events(&self) -> usize {
        self.overflow_events
    }

    /// Times the buffer ran dry (channel idle).
    #[must_use]
    pub fn underflow_events(&self) -> usize {
        self.underflow_events
    }

    /// Informs the controller that a frame of `bits` was produced; updates
    /// the buffer model and picks the next quality.
    pub fn frame_encoded(&mut self, bits: f64) {
        self.occupancy_bits += bits.max(0.0) - self.config.target_bits_per_frame;
        if self.occupancy_bits > self.config.buffer_bits {
            self.occupancy_bits = self.config.buffer_bits;
            self.overflow_events += 1;
        }
        if self.occupancy_bits < 0.0 {
            self.occupancy_bits = 0.0;
            self.underflow_events += 1;
        }
        // Proportional control on occupancy with a dead zone in the middle.
        let occ = self.occupancy();
        let q = self.quality as i32;
        let next = if occ > 0.85 {
            q - 8
        } else if occ > 0.65 {
            q - 3
        } else if occ < 0.15 {
            q + 8
        } else if occ < 0.35 {
            q + 3
        } else {
            q
        };
        self.quality = next.clamp(
            self.config.min_quality as i32,
            self.config.max_quality as i32,
        ) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_frames_drive_quality_down() {
        let mut rc = RateController::new(RateConfig::for_target(1000.0), 90);
        for _ in 0..20 {
            rc.frame_encoded(3000.0);
        }
        assert_eq!(rc.quality(), 5, "sustained overshoot must hit min quality");
    }

    #[test]
    fn undersized_frames_drive_quality_up() {
        let mut rc = RateController::new(RateConfig::for_target(1000.0), 20);
        for _ in 0..10 {
            rc.frame_encoded(100.0);
        }
        assert_eq!(rc.quality(), 95);
    }

    #[test]
    fn on_target_frames_leave_quality_stable() {
        let mut rc = RateController::new(RateConfig::for_target(1000.0), 50);
        // Pre-fill to mid-buffer so we sit in the dead zone.
        rc.frame_encoded(1000.0 + 2000.0);
        let q = rc.quality();
        for _ in 0..5 {
            rc.frame_encoded(1000.0);
        }
        assert_eq!(rc.quality(), q);
    }

    #[test]
    fn occupancy_is_bounded_and_events_counted() {
        let mut rc = RateController::new(RateConfig::for_target(100.0), 50);
        for _ in 0..20 {
            rc.frame_encoded(10_000.0);
        }
        assert!(rc.occupancy() <= 1.0);
        assert!(rc.overflow_events() > 0);
        for _ in 0..20 {
            rc.frame_encoded(0.0);
        }
        assert_eq!(rc.occupancy(), 0.0);
        assert!(rc.underflow_events() > 0);
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn initial_quality_validated() {
        let _ = RateController::new(RateConfig::for_target(100.0), 99);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        let _ = RateConfig::for_target(0.0);
    }
}
