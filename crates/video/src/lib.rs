//! # `video` — the video compression system of Wolf's Figure 1
//!
//! A clean-room, MPEG-shaped video codec implementing every box of the
//! paper's encoder diagram and its §3 discussion:
//!
//! * [`dct`] — 8×8 2-D DCT built from two 1-D passes (the paper's stated
//!   advantage; see experiment E4), with a direct O(N⁴) oracle.
//! * [`quant`] — perceptual quantization ("finer detail eliminated
//!   first").
//! * [`zigzag`] + [`rle`] + [`huffman`] over [`bitstream`] — the
//!   variable-length encode box.
//! * [`me`] / [`mc`] — motion estimation (full, three-step, diamond
//!   searches) and motion-compensated prediction.
//! * [`rate`] — the buffer→quantizer feedback arrow.
//! * [`encoder`] / [`decoder`] — the full loop, including the inverse-DCT
//!   reconstruction feedback that keeps encoder and decoder in lockstep.
//! * [`wavelet`] — the 5/3 JPEG2000 kernel for the §3 wavelet comparison.
//! * [`transcode`] — generation-loss measurement (§3's transcoding
//!   problem).
//! * [`synth`] — synthetic sequences and broadcasts (DESIGN.md §5
//!   substitution for real footage).
//!
//! # Example
//!
//! ```
//! use video::encoder::{Encoder, EncoderConfig};
//! use video::decoder::decode;
//! use video::synth::SequenceGen;
//!
//! let frames = SequenceGen::new(42).panning_sequence(64, 48, 8, 2, 0);
//! let encoded = Encoder::new(EncoderConfig::default())?.encode(&frames)?;
//! println!(
//!     "{} frames -> {} bytes ({:.1}:1, {:.1} dB)",
//!     frames.len(),
//!     encoded.bytes.len(),
//!     encoded.compression_ratio(),
//!     encoded.mean_psnr_db()
//! );
//! let decoded = decode(&encoded.bytes).unwrap();
//! assert_eq!(decoded.frames.len(), frames.len());
//! # Ok::<(), video::encoder::EncoderError>(())
//! ```

pub mod bitstream;
pub mod dct;
pub mod decoder;
pub mod encoder;
pub mod frame;
pub mod huffman;
pub mod mc;
pub mod me;
pub mod plane;
pub mod quant;
pub mod rate;
pub mod rle;
pub mod synth;
pub mod transcode;
pub mod wavelet;
pub mod zigzag;

pub use decoder::{decode, DecodedSequence};
pub use encoder::{EncodedSequence, Encoder, EncoderConfig, FrameKind, StageTally};
pub use frame::Frame;
pub use me::{MotionEstimator, MotionVector, SearchKind};
