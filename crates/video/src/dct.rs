//! 8×8 two-dimensional DCT: fast separable butterfly, plus a direct
//! oracle.
//!
//! Paper §3: the DCT *"is a frequency transform with the advantage that a
//! 2-D DCT can be computed from two 1-D DCTs"*. [`Dct2d::forward`] is that
//! row–column composition, specialised to the fixed-size 8-point
//! butterfly of [`signal::dct8`] (29 multiplies per 1-D transform instead
//! of the 64 of the generic matrix [`signal::dct1d::Dct1d`]); everything
//! runs on stack scratch, with no heap allocation per block.
//! [`forward_direct`] is the naive O(N⁴) evaluation kept as the
//! correctness oracle and as the baseline of experiment E4; the matrix
//! `Dct1d` remains in `signal` as the 1-D oracle the property suite pins
//! the butterfly against.

use signal::dct8::{fdct8, idct8};

/// Block size used throughout the video codec.
pub const BLOCK: usize = 8;

/// The 8×8 2-D DCT (separable row–column butterfly implementation).
///
/// # Example
///
/// ```
/// use video::dct::{Dct2d, BLOCK};
///
/// let dct = Dct2d::new();
/// let block = [128.0; BLOCK * BLOCK];
/// let coeffs = dct.forward(&block);
/// assert!((coeffs[0] - 1024.0).abs() < 1e-9); // DC = 8 * mean
/// assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-9));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dct2d;

impl Dct2d {
    /// Creates the transform (stateless — the 8-point butterfly needs no
    /// planning).
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Forward 2-D DCT via rows then columns of the fast 8-point
    /// butterfly.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != 64`.
    #[must_use]
    pub fn forward(&self, block: &[f64]) -> [f64; BLOCK * BLOCK] {
        assert_eq!(block.len(), BLOCK * BLOCK, "expected an 8x8 block");
        let mut tmp = [0.0; BLOCK * BLOCK];
        let mut line = [0.0; BLOCK];
        // Rows.
        for r in 0..BLOCK {
            line.copy_from_slice(&block[r * BLOCK..(r + 1) * BLOCK]);
            tmp[r * BLOCK..(r + 1) * BLOCK].copy_from_slice(&fdct8(&line));
        }
        // Columns.
        let mut out = [0.0; BLOCK * BLOCK];
        for c in 0..BLOCK {
            for r in 0..BLOCK {
                line[r] = tmp[r * BLOCK + c];
            }
            let t = fdct8(&line);
            for r in 0..BLOCK {
                out[r * BLOCK + c] = t[r];
            }
        }
        out
    }

    /// Inverse 2-D DCT (row–column butterfly).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != 64`.
    #[must_use]
    pub fn inverse(&self, coeffs: &[f64]) -> [f64; BLOCK * BLOCK] {
        assert_eq!(coeffs.len(), BLOCK * BLOCK, "expected an 8x8 block");
        let mut tmp = [0.0; BLOCK * BLOCK];
        let mut line = [0.0; BLOCK];
        // Columns first (order is irrelevant for separable transforms).
        for c in 0..BLOCK {
            for r in 0..BLOCK {
                line[r] = coeffs[r * BLOCK + c];
            }
            let t = idct8(&line);
            for r in 0..BLOCK {
                tmp[r * BLOCK + c] = t[r];
            }
        }
        let mut out = [0.0; BLOCK * BLOCK];
        for r in 0..BLOCK {
            line.copy_from_slice(&tmp[r * BLOCK..(r + 1) * BLOCK]);
            out[r * BLOCK..(r + 1) * BLOCK].copy_from_slice(&idct8(&line));
        }
        out
    }

    /// Forward transform of a `u8` pixel block, level-shifted by −128 as in
    /// JPEG/MPEG intra coding.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != 64`.
    #[must_use]
    pub fn forward_pixels(&self, pixels: &[u8]) -> [f64; BLOCK * BLOCK] {
        assert_eq!(pixels.len(), BLOCK * BLOCK, "expected an 8x8 block");
        let mut shifted = [0.0; BLOCK * BLOCK];
        for (s, &p) in shifted.iter_mut().zip(pixels) {
            *s = p as f64 - 128.0;
        }
        self.forward(&shifted)
    }

    /// Inverse transform back to clamped `u8` pixels (undoes the −128
    /// level shift).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != 64`.
    #[must_use]
    pub fn inverse_to_pixels(&self, coeffs: &[f64]) -> [u8; BLOCK * BLOCK] {
        let f = self.inverse(coeffs);
        let mut out = [0u8; BLOCK * BLOCK];
        for (o, &v) in out.iter_mut().zip(f.iter()) {
            *o = (v + 128.0).round().clamp(0.0, 255.0) as u8;
        }
        out
    }
}

/// Direct O(N⁴) 2-D DCT — the correctness oracle and E4 baseline.
///
/// # Panics
///
/// Panics if `block.len() != 64`.
#[must_use]
pub fn forward_direct(block: &[f64]) -> [f64; BLOCK * BLOCK] {
    assert_eq!(block.len(), BLOCK * BLOCK, "expected an 8x8 block");
    let n = BLOCK;
    let mut out = [0.0; BLOCK * BLOCK];
    for u in 0..n {
        for v in 0..n {
            let cu = if u == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            let cv = if v == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            let mut acc = 0.0;
            for x in 0..n {
                for y in 0..n {
                    acc += block[x * n + y]
                        * (core::f64::consts::PI * (2 * x + 1) as f64 * u as f64 / (2 * n) as f64)
                            .cos()
                        * (core::f64::consts::PI * (2 * y + 1) as f64 * v as f64 / (2 * n) as f64)
                            .cos();
                }
            }
            out[u * n + v] = cu * cv * acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    #[test]
    fn rowcol_matches_direct() {
        let mut rng = Xoroshiro128::new(11);
        let dct = Dct2d::new();
        for _ in 0..20 {
            let block: Vec<f64> = (0..64).map(|_| rng.range_f64(-128.0, 127.0)).collect();
            let fast = dct.forward(&block);
            let slow = forward_direct(&block);
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!((a - b).abs() < 1e-8, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let mut rng = Xoroshiro128::new(12);
        let dct = Dct2d::new();
        let block: Vec<f64> = (0..64).map(|_| rng.range_f64(-128.0, 127.0)).collect();
        let back = dct.inverse(&dct.forward(&block));
        for (a, b) in block.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pixel_round_trip_exact_for_smooth_blocks() {
        let dct = Dct2d::new();
        let pixels: Vec<u8> = (0..64).map(|i| (100 + (i % 8) * 2) as u8).collect();
        let back = dct.inverse_to_pixels(&dct.forward_pixels(&pixels));
        for (a, b) in pixels.iter().zip(back.iter()) {
            assert!((*a as i32 - *b as i32).abs() <= 1);
        }
    }

    #[test]
    fn energy_compaction_on_smooth_ramp() {
        // A horizontal ramp: energy should concentrate in the first row of
        // coefficients (low vertical frequency).
        let dct = Dct2d::new();
        let block: Vec<f64> = (0..64).map(|i| (i % 8) as f64 * 10.0).collect();
        let c = dct.forward(&block);
        let low: f64 = c[..8].iter().map(|v| v * v).sum();
        let total: f64 = c.iter().map(|v| v * v).sum();
        assert!(low / total > 0.99, "ramp energy should be in row 0");
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let dct = Dct2d::new();
        let block = [50.0; 64];
        let c = dct.forward(&block);
        // Orthonormal: DC = mean * 8.
        assert!((c[0] - 400.0).abs() < 1e-9);
    }

    #[test]
    fn parseval_in_2d() {
        let mut rng = Xoroshiro128::new(13);
        let dct = Dct2d::new();
        let block: Vec<f64> = (0..64).map(|_| rng.normal()).collect();
        let c = dct.forward(&block);
        let e_time: f64 = block.iter().map(|v| v * v).sum();
        let e_freq: f64 = c.iter().map(|v| v * v).sum();
        assert!((e_time - e_freq).abs() < 1e-9 * e_time.max(1.0));
    }

    #[test]
    #[should_panic(expected = "8x8")]
    fn wrong_size_panics() {
        let dct = Dct2d::new();
        let _ = dct.forward(&[0.0; 16]);
    }
}
