//! Motion estimation — the dominant cost of Figure 1's encoder.
//!
//! Paper §3: *"Motion estimation compares part of one frame to a reference
//! frame and determines what motion would cause the selected part to
//! appear in the reference frame."* Three search strategies are provided,
//! spanning the compute/quality trade-off that experiment E5 measures:
//!
//! * [`SearchKind::Full`] — exhaustive window search; best SAD, most ops.
//! * [`SearchKind::ThreeStep`] — logarithmic coarse-to-fine probing.
//! * [`SearchKind::Diamond`] — large/small diamond pattern descent.
//!
//! Every searcher counts its SAD evaluations so benches report algorithmic
//! cost, not just wall time.

use signal::metrics::sad_u8;

use crate::frame::Frame;

/// A motion vector in integer pixels (reference = current + vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MotionVector {
    /// Horizontal displacement.
    pub dx: i32,
    /// Vertical displacement.
    pub dy: i32,
}

impl MotionVector {
    /// Creates a vector.
    #[must_use]
    pub fn new(dx: i32, dy: i32) -> Self {
        Self { dx, dy }
    }

    /// Squared length (for regularity metrics).
    #[must_use]
    pub fn magnitude_sq(self) -> i64 {
        self.dx as i64 * self.dx as i64 + self.dy as i64 * self.dy as i64
    }
}

impl core::fmt::Display for MotionVector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.dx, self.dy)
    }
}

/// Search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchKind {
    /// Exhaustive search of the whole ±range window.
    Full,
    /// Three-step (logarithmic) search.
    ThreeStep,
    /// Diamond search (large diamond then small diamond refinement).
    Diamond,
}

impl core::fmt::Display for SearchKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            SearchKind::Full => "full",
            SearchKind::ThreeStep => "three-step",
            SearchKind::Diamond => "diamond",
        };
        f.write_str(s)
    }
}

/// Result of estimating one block's motion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMotion {
    /// The chosen vector.
    pub mv: MotionVector,
    /// SAD of the chosen candidate.
    pub sad: u64,
    /// Number of SAD evaluations performed for this block.
    pub evaluations: u64,
}

/// The motion field of a frame: one vector per macroblock, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotionField {
    /// Macroblock columns.
    pub cols: usize,
    /// Macroblock rows.
    pub rows: usize,
    /// Per-block results, row-major.
    pub blocks: Vec<BlockMotion>,
}

impl MotionField {
    /// The result for macroblock `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[must_use]
    pub fn at(&self, bx: usize, by: usize) -> &BlockMotion {
        assert!(bx < self.cols && by < self.rows, "macroblock out of range");
        &self.blocks[by * self.cols + bx]
    }

    /// Total SAD evaluations over the frame.
    #[must_use]
    pub fn total_evaluations(&self) -> u64 {
        self.blocks.iter().map(|b| b.evaluations).sum()
    }

    /// Total best-match SAD over the frame (residual energy proxy).
    #[must_use]
    pub fn total_sad(&self) -> u64 {
        self.blocks.iter().map(|b| b.sad).sum()
    }
}

/// Motion estimator over 16×16 macroblocks.
#[derive(Debug, Clone, Copy)]
pub struct MotionEstimator {
    kind: SearchKind,
    range: i32,
}

/// Macroblock size used by the estimator.
pub const MB: usize = 16;

impl MotionEstimator {
    /// Creates an estimator with the given strategy and search range
    /// (± pixels in each axis).
    ///
    /// # Panics
    ///
    /// Panics if `range < 1`.
    #[must_use]
    pub fn new(kind: SearchKind, range: i32) -> Self {
        assert!(range >= 1, "search range must be at least 1");
        Self { kind, range }
    }

    /// The strategy.
    #[must_use]
    pub fn kind(&self) -> SearchKind {
        self.kind
    }

    /// The search range.
    #[must_use]
    pub fn range(&self) -> i32 {
        self.range
    }

    /// Estimates motion for every macroblock of `current` against
    /// `reference`.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different dimensions.
    #[must_use]
    pub fn estimate(&self, current: &Frame, reference: &Frame) -> MotionField {
        assert!(
            current.width() == reference.width() && current.height() == reference.height(),
            "frame dimensions differ"
        );
        let (cols, rows) = current.macroblocks();
        let mut blocks = Vec::with_capacity(cols * rows);
        for by in 0..rows {
            for bx in 0..cols {
                blocks.push(self.estimate_block(current, reference, bx, by));
            }
        }
        MotionField { cols, rows, blocks }
    }

    /// Estimates motion for one macroblock.
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    #[must_use]
    pub fn estimate_block(
        &self,
        current: &Frame,
        reference: &Frame,
        bx: usize,
        by: usize,
    ) -> BlockMotion {
        let target = current.luma_block(bx, by, MB);
        let x0 = (bx * MB) as i32;
        let y0 = (by * MB) as i32;
        let mut evals = 0u64;
        let mut cost = |mv: MotionVector| -> u64 {
            evals += 1;
            let cand = reference.luma_block_at(x0 + mv.dx, y0 + mv.dy, MB);
            sad_u8(&target, &cand)
        };
        let (mv, sad) = match self.kind {
            SearchKind::Full => {
                let mut best = (MotionVector::default(), u64::MAX);
                for dy in -self.range..=self.range {
                    for dx in -self.range..=self.range {
                        let mv = MotionVector::new(dx, dy);
                        let s = cost(mv);
                        // Prefer smaller vectors on ties for a regular field.
                        if s < best.1 || (s == best.1 && mv.magnitude_sq() < best.0.magnitude_sq())
                        {
                            best = (mv, s);
                        }
                    }
                }
                best
            }
            SearchKind::ThreeStep => {
                let mut center = MotionVector::default();
                let mut best_sad = cost(center);
                let mut step = (self.range / 2).max(1);
                while step >= 1 {
                    let mut improved = None;
                    for dy in [-step, 0, step] {
                        for dx in [-step, 0, step] {
                            if dx == 0 && dy == 0 {
                                continue;
                            }
                            let mv = MotionVector::new(
                                (center.dx + dx).clamp(-self.range, self.range),
                                (center.dy + dy).clamp(-self.range, self.range),
                            );
                            let s = cost(mv);
                            if s < best_sad {
                                best_sad = s;
                                improved = Some(mv);
                            }
                        }
                    }
                    if let Some(mv) = improved {
                        center = mv;
                    }
                    step /= 2;
                }
                (center, best_sad)
            }
            SearchKind::Diamond => {
                const LARGE: [(i32, i32); 8] = [
                    (0, -2),
                    (1, -1),
                    (2, 0),
                    (1, 1),
                    (0, 2),
                    (-1, 1),
                    (-2, 0),
                    (-1, -1),
                ];
                const SMALL: [(i32, i32); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];
                let mut center = MotionVector::default();
                let mut best_sad = cost(center);
                // Large diamond until the centre wins (bounded iterations).
                for _ in 0..(2 * self.range) {
                    let mut best_move = None;
                    for &(dx, dy) in &LARGE {
                        let mv = MotionVector::new(
                            (center.dx + dx).clamp(-self.range, self.range),
                            (center.dy + dy).clamp(-self.range, self.range),
                        );
                        if mv == center {
                            continue;
                        }
                        let s = cost(mv);
                        if s < best_sad {
                            best_sad = s;
                            best_move = Some(mv);
                        }
                    }
                    match best_move {
                        Some(mv) => center = mv,
                        None => break,
                    }
                }
                // Small diamond refinement.
                for &(dx, dy) in &SMALL {
                    let mv = MotionVector::new(
                        (center.dx + dx).clamp(-self.range, self.range),
                        (center.dy + dy).clamp(-self.range, self.range),
                    );
                    let s = cost(mv);
                    if s < best_sad {
                        best_sad = s;
                        center = mv;
                    }
                }
                (center, best_sad)
            }
        };
        BlockMotion {
            mv,
            sad,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SequenceGen;

    /// A frame pair where the content moves by exactly (dx, dy).
    fn shifted_pair(dx: i32, dy: i32) -> (Frame, Frame) {
        let mut gen = SequenceGen::new(99);
        let reference = gen.textured_frame(64, 64);
        let current = gen.shift_frame(&reference, dx, dy);
        (current, reference)
    }

    #[test]
    fn full_search_finds_exact_translation() {
        let (current, reference) = shifted_pair(3, -2);
        let me = MotionEstimator::new(SearchKind::Full, 7);
        let field = me.estimate(&current, &reference);
        // Interior blocks (not touching frame edges) must find (-3, 2):
        // content moved (3,-2), so the matching reference block sits at
        // current position + (-3, +2).
        let b = field.at(2, 2);
        assert_eq!(b.mv, MotionVector::new(-3, 2));
        assert_eq!(b.sad, 0);
    }

    #[test]
    fn full_search_evaluation_count_is_window_size() {
        let (current, reference) = shifted_pair(0, 0);
        let me = MotionEstimator::new(SearchKind::Full, 7);
        let b = me.estimate_block(&current, &reference, 1, 1);
        assert_eq!(b.evaluations, 15 * 15);
    }

    #[test]
    fn fast_searches_use_far_fewer_evaluations() {
        let (current, reference) = shifted_pair(2, 1);
        let full = MotionEstimator::new(SearchKind::Full, 15).estimate(&current, &reference);
        let tss = MotionEstimator::new(SearchKind::ThreeStep, 15).estimate(&current, &reference);
        let dia = MotionEstimator::new(SearchKind::Diamond, 15).estimate(&current, &reference);
        assert!(tss.total_evaluations() * 10 < full.total_evaluations());
        assert!(dia.total_evaluations() * 10 < full.total_evaluations());
    }

    #[test]
    fn fast_searches_find_small_translations() {
        let (current, reference) = shifted_pair(2, 2);
        for kind in [SearchKind::ThreeStep, SearchKind::Diamond] {
            let me = MotionEstimator::new(kind, 15);
            let b = me.estimate_block(&current, &reference, 2, 2);
            assert_eq!(b.mv, MotionVector::new(-2, -2), "{kind}");
            assert_eq!(b.sad, 0, "{kind}");
        }
    }

    #[test]
    fn full_search_is_never_worse_than_fast_searches() {
        let mut gen = SequenceGen::new(5);
        let reference = gen.textured_frame(64, 64);
        let mut current = gen.shift_frame(&reference, 4, -3);
        // Add noise so no candidate is perfect.
        gen.add_noise(&mut current, 8.0);
        let full = MotionEstimator::new(SearchKind::Full, 8).estimate(&current, &reference);
        for kind in [SearchKind::ThreeStep, SearchKind::Diamond] {
            let fast = MotionEstimator::new(kind, 8).estimate(&current, &reference);
            assert!(
                full.total_sad() <= fast.total_sad(),
                "{kind}: full {} > fast {}",
                full.total_sad(),
                fast.total_sad()
            );
        }
    }

    #[test]
    fn zero_motion_on_identical_frames() {
        let mut gen = SequenceGen::new(6);
        let f = gen.textured_frame(48, 48);
        for kind in [SearchKind::Full, SearchKind::ThreeStep, SearchKind::Diamond] {
            let field = MotionEstimator::new(kind, 7).estimate(&f, &f);
            for b in &field.blocks {
                assert_eq!(b.mv, MotionVector::default(), "{kind}");
                assert_eq!(b.sad, 0);
            }
        }
    }

    #[test]
    fn vectors_respect_search_range() {
        let (current, reference) = shifted_pair(6, 6);
        let me = MotionEstimator::new(SearchKind::Full, 2); // too small to find it
        let field = me.estimate(&current, &reference);
        for b in &field.blocks {
            assert!(b.mv.dx.abs() <= 2 && b.mv.dy.abs() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn mismatched_frames_panic() {
        let a = Frame::grey(32, 32).unwrap();
        let b = Frame::grey(64, 32).unwrap();
        let _ = MotionEstimator::new(SearchKind::Full, 4).estimate(&a, &b);
    }
}
