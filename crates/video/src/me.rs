//! Motion estimation — the dominant cost of Figure 1's encoder.
//!
//! Paper §3: *"Motion estimation compares part of one frame to a reference
//! frame and determines what motion would cause the selected part to
//! appear in the reference frame."* Three search strategies are provided,
//! spanning the compute/quality trade-off that experiment E5 measures:
//!
//! * [`SearchKind::Full`] — exhaustive window search; best SAD, most ops.
//! * [`SearchKind::ThreeStep`] — logarithmic coarse-to-fine probing.
//! * [`SearchKind::Diamond`] — large/small diamond pattern descent.
//!
//! # Hot-path design
//!
//! The inner loop performs **no heap allocation per candidate**: the
//! target macroblock is gathered once per block into a `[u8; 256]`
//! scratch, and every candidate is compared *in place* against the
//! reference plane through a borrowed [`crate::plane::BlockView`] —
//! interior candidates as a strided slice straight into the reference
//! luma, edge candidates via a second stack scratch. Candidate evaluation
//! uses [`signal::metrics::sad_u8_bounded`] with the current best SAD as
//! cutoff, abandoning losers row-wise; because a candidate is only
//! abandoned once it is *strictly worse* than the best, the chosen
//! vectors (including tie-breaks) are bit-identical to an unbounded
//! evaluation — [`SearchKind::Full`] fields match the naive
//! implementation exactly.
//!
//! The fast searches additionally exploit inter-block coherence when run
//! over a whole frame via [`MotionEstimator::estimate`]: the search is
//! seeded from the component-wise **median of the left / top / top-right
//! neighbour vectors** (H.263-style, absent neighbours count as zero),
//! and a block whose zero-motion SAD is at or below
//! [`ZERO_MV_EXIT_SAD`] terminates immediately with the zero vector.
//! [`MotionEstimator::estimate_block`] evaluates one block with no
//! neighbour context (zero predictor) but applies the same zero-motion
//! early exit, so a near-static block may now return the zero vector
//! where the seed implementation refined further.
//!
//! Every searcher counts its SAD evaluations ([`BlockMotion::evaluations`]
//! is exact — one count per candidate, whether or not the bounded SAD
//! exited early) so benches report algorithmic cost, not just wall time.

use signal::metrics::sad_u8_bounded;

use crate::frame::Frame;

/// Zero-motion early-termination threshold for the fast searches
/// ([`SearchKind::ThreeStep`], [`SearchKind::Diamond`]): if the SAD at
/// `(0, 0)` is at or below this (0.5 per pixel over a 16×16 block), the
/// block is declared static and the search stops after one evaluation.
/// [`SearchKind::Full`] never early-terminates — its field is exact.
pub const ZERO_MV_EXIT_SAD: u64 = (MB * MB) as u64 / 2;

/// A motion vector in integer pixels (reference = current + vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MotionVector {
    /// Horizontal displacement.
    pub dx: i32,
    /// Vertical displacement.
    pub dy: i32,
}

impl MotionVector {
    /// Creates a vector.
    #[must_use]
    pub fn new(dx: i32, dy: i32) -> Self {
        Self { dx, dy }
    }

    /// Squared length (for regularity metrics).
    #[must_use]
    pub fn magnitude_sq(self) -> i64 {
        self.dx as i64 * self.dx as i64 + self.dy as i64 * self.dy as i64
    }
}

impl core::fmt::Display for MotionVector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.dx, self.dy)
    }
}

/// Search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchKind {
    /// Exhaustive search of the whole ±range window.
    Full,
    /// Three-step (logarithmic) search.
    ThreeStep,
    /// Diamond search (large diamond then small diamond refinement).
    Diamond,
}

impl core::fmt::Display for SearchKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            SearchKind::Full => "full",
            SearchKind::ThreeStep => "three-step",
            SearchKind::Diamond => "diamond",
        };
        f.write_str(s)
    }
}

/// Result of estimating one block's motion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMotion {
    /// The chosen vector.
    pub mv: MotionVector,
    /// SAD of the chosen candidate.
    pub sad: u64,
    /// Number of SAD evaluations performed for this block.
    pub evaluations: u64,
}

/// The motion field of a frame: one vector per macroblock, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotionField {
    /// Macroblock columns.
    pub cols: usize,
    /// Macroblock rows.
    pub rows: usize,
    /// Per-block results, row-major.
    pub blocks: Vec<BlockMotion>,
}

impl MotionField {
    /// The result for macroblock `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[must_use]
    pub fn at(&self, bx: usize, by: usize) -> &BlockMotion {
        assert!(bx < self.cols && by < self.rows, "macroblock out of range");
        &self.blocks[by * self.cols + bx]
    }

    /// Total SAD evaluations over the frame.
    #[must_use]
    pub fn total_evaluations(&self) -> u64 {
        self.blocks.iter().map(|b| b.evaluations).sum()
    }

    /// Total best-match SAD over the frame (residual energy proxy).
    #[must_use]
    pub fn total_sad(&self) -> u64 {
        self.blocks.iter().map(|b| b.sad).sum()
    }
}

/// Motion estimator over 16×16 macroblocks.
#[derive(Debug, Clone, Copy)]
pub struct MotionEstimator {
    kind: SearchKind,
    range: i32,
}

/// Macroblock size used by the estimator.
pub const MB: usize = 16;

impl MotionEstimator {
    /// Creates an estimator with the given strategy and search range
    /// (± pixels in each axis).
    ///
    /// # Panics
    ///
    /// Panics if `range < 1`.
    #[must_use]
    pub fn new(kind: SearchKind, range: i32) -> Self {
        assert!(range >= 1, "search range must be at least 1");
        Self { kind, range }
    }

    /// The strategy.
    #[must_use]
    pub fn kind(&self) -> SearchKind {
        self.kind
    }

    /// The search range.
    #[must_use]
    pub fn range(&self) -> i32 {
        self.range
    }

    /// Estimates motion for every macroblock of `current` against
    /// `reference`.
    ///
    /// Fast searches ([`SearchKind::ThreeStep`], [`SearchKind::Diamond`])
    /// are seeded from the median of the already-decided left, top, and
    /// top-right neighbour vectors; [`SearchKind::Full`] ignores the
    /// predictor and produces the exact exhaustive-search field.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different dimensions.
    #[must_use]
    pub fn estimate(&self, current: &Frame, reference: &Frame) -> MotionField {
        assert!(
            current.width() == reference.width() && current.height() == reference.height(),
            "frame dimensions differ"
        );
        let (cols, rows) = current.macroblocks();
        let mut blocks: Vec<BlockMotion> = Vec::with_capacity(cols * rows);
        let mut target = [0u8; MB * MB];
        for by in 0..rows {
            for bx in 0..cols {
                let predictor = self.predict_mv(&blocks, cols, bx, by);
                blocks.push(self.search_block(current, reference, bx, by, predictor, &mut target));
            }
        }
        MotionField { cols, rows, blocks }
    }

    /// Estimates motion for one macroblock in isolation (zero predictor —
    /// no neighbour context is available through this entry point; the
    /// fast searches still zero-motion-early-exit at
    /// [`ZERO_MV_EXIT_SAD`]).
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    #[must_use]
    pub fn estimate_block(
        &self,
        current: &Frame,
        reference: &Frame,
        bx: usize,
        by: usize,
    ) -> BlockMotion {
        let mut target = [0u8; MB * MB];
        self.search_block(
            current,
            reference,
            bx,
            by,
            MotionVector::default(),
            &mut target,
        )
    }

    /// H.263-style motion-vector predictor: the component-wise median of
    /// the left, top, and top-right neighbours already decided this frame
    /// (absent neighbours count as zero), clamped to the search range.
    fn predict_mv(
        &self,
        blocks: &[BlockMotion],
        cols: usize,
        bx: usize,
        by: usize,
    ) -> MotionVector {
        let neighbour = |dx: isize, dy: isize| -> MotionVector {
            let (nx, ny) = (bx as isize + dx, by as isize + dy);
            if nx < 0 || ny < 0 || nx as usize >= cols {
                MotionVector::default()
            } else {
                blocks[ny as usize * cols + nx as usize].mv
            }
        };
        fn median3(a: i32, b: i32, c: i32) -> i32 {
            a.max(b).min(a.min(b).max(c))
        }
        let left = neighbour(-1, 0);
        let top = neighbour(0, -1);
        let top_right = neighbour(1, -1);
        MotionVector::new(
            median3(left.dx, top.dx, top_right.dx).clamp(-self.range, self.range),
            median3(left.dy, top.dy, top_right.dy).clamp(-self.range, self.range),
        )
    }

    /// The per-block search over the zero-allocation candidate evaluator.
    fn search_block(
        &self,
        current: &Frame,
        reference: &Frame,
        bx: usize,
        by: usize,
        predictor: MotionVector,
        target: &mut [u8; MB * MB],
    ) -> BlockMotion {
        current.luma_block_into(bx, by, MB, target);
        let x0 = (bx * MB) as i32;
        let y0 = (by * MB) as i32;
        let mut scratch = [0u8; MB * MB];
        let mut evals = 0u64;
        // Candidate cost: strided SAD straight out of the reference plane
        // when the candidate is interior (the common case), a stack gather
        // when it needs edge clamping. `cutoff` is the caller's current
        // best; once the running sum exceeds it the candidate is abandoned
        // row-wise and any value > cutoff comes back.
        let mut cost = |mv: MotionVector, cutoff: u64| -> u64 {
            evals += 1;
            let view = reference.luma_view(x0 + mv.dx, y0 + mv.dy, MB);
            match view.interior() {
                Some((cand, stride)) => {
                    sad_u8_bounded(&target[..], MB, cand, stride, MB, MB, cutoff)
                }
                None => {
                    view.gather_into(&mut scratch);
                    sad_u8_bounded(&target[..], MB, &scratch, MB, MB, MB, cutoff)
                }
            }
        };
        let (mv, sad) = match self.kind {
            SearchKind::Full => self.full_search(&mut cost),
            SearchKind::ThreeStep => self.three_step_search(&mut cost, predictor),
            SearchKind::Diamond => self.diamond_search(&mut cost, predictor),
        };
        BlockMotion {
            mv,
            sad,
            evaluations: evals,
        }
    }

    /// Exhaustive window scan. The cutoff tightens as better candidates
    /// are found, but the scan order and tie-breaks match the naive
    /// implementation exactly (bounded SAD is exact at or below the
    /// cutoff), so the resulting field is bit-identical.
    fn full_search(&self, cost: &mut impl FnMut(MotionVector, u64) -> u64) -> (MotionVector, u64) {
        let mut best = (MotionVector::default(), u64::MAX);
        for dy in -self.range..=self.range {
            for dx in -self.range..=self.range {
                let mv = MotionVector::new(dx, dy);
                let s = cost(mv, best.1);
                // Prefer smaller vectors on ties for a regular field.
                if s < best.1 || (s == best.1 && mv.magnitude_sq() < best.0.magnitude_sq()) {
                    best = (mv, s);
                }
            }
        }
        best
    }

    /// Shared fast-search seeding: evaluate zero motion (early-exiting
    /// static blocks), then let the neighbour predictor compete for the
    /// starting centre. Returns `(centre, best_sad, done)`.
    fn seed_center(
        &self,
        cost: &mut impl FnMut(MotionVector, u64) -> u64,
        predictor: MotionVector,
    ) -> (MotionVector, u64, bool) {
        let zero = MotionVector::default();
        let mut best_sad = cost(zero, u64::MAX);
        if best_sad <= ZERO_MV_EXIT_SAD {
            return (zero, best_sad, true);
        }
        let mut center = zero;
        if predictor != zero {
            let s = cost(predictor, best_sad);
            if s < best_sad {
                best_sad = s;
                center = predictor;
            }
        }
        (center, best_sad, false)
    }

    /// Three-step (logarithmic) search from the seeded centre.
    fn three_step_search(
        &self,
        cost: &mut impl FnMut(MotionVector, u64) -> u64,
        predictor: MotionVector,
    ) -> (MotionVector, u64) {
        let (mut center, mut best_sad, done) = self.seed_center(cost, predictor);
        if done {
            return (center, best_sad);
        }
        let mut step = (self.range / 2).max(1);
        while step >= 1 {
            let mut improved = None;
            for dy in [-step, 0, step] {
                for dx in [-step, 0, step] {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let mv = MotionVector::new(
                        (center.dx + dx).clamp(-self.range, self.range),
                        (center.dy + dy).clamp(-self.range, self.range),
                    );
                    let s = cost(mv, best_sad);
                    if s < best_sad {
                        best_sad = s;
                        improved = Some(mv);
                    }
                }
            }
            if let Some(mv) = improved {
                center = mv;
            }
            step /= 2;
        }
        (center, best_sad)
    }

    /// Diamond search (large diamond descent, small diamond refinement)
    /// from the seeded centre.
    fn diamond_search(
        &self,
        cost: &mut impl FnMut(MotionVector, u64) -> u64,
        predictor: MotionVector,
    ) -> (MotionVector, u64) {
        const LARGE: [(i32, i32); 8] = [
            (0, -2),
            (1, -1),
            (2, 0),
            (1, 1),
            (0, 2),
            (-1, 1),
            (-2, 0),
            (-1, -1),
        ];
        const SMALL: [(i32, i32); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];
        let (mut center, mut best_sad, done) = self.seed_center(cost, predictor);
        if done {
            return (center, best_sad);
        }
        // Large diamond until the centre wins (bounded iterations).
        for _ in 0..(2 * self.range) {
            let mut best_move = None;
            for &(dx, dy) in &LARGE {
                let mv = MotionVector::new(
                    (center.dx + dx).clamp(-self.range, self.range),
                    (center.dy + dy).clamp(-self.range, self.range),
                );
                if mv == center {
                    continue;
                }
                let s = cost(mv, best_sad);
                if s < best_sad {
                    best_sad = s;
                    best_move = Some(mv);
                }
            }
            match best_move {
                Some(mv) => center = mv,
                None => break,
            }
        }
        // Small diamond refinement.
        for &(dx, dy) in &SMALL {
            let mv = MotionVector::new(
                (center.dx + dx).clamp(-self.range, self.range),
                (center.dy + dy).clamp(-self.range, self.range),
            );
            let s = cost(mv, best_sad);
            if s < best_sad {
                best_sad = s;
                center = mv;
            }
        }
        (center, best_sad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SequenceGen;

    /// A frame pair where the content moves by exactly (dx, dy).
    fn shifted_pair(dx: i32, dy: i32) -> (Frame, Frame) {
        let mut gen = SequenceGen::new(99);
        let reference = gen.textured_frame(64, 64);
        let current = gen.shift_frame(&reference, dx, dy);
        (current, reference)
    }

    #[test]
    fn full_search_finds_exact_translation() {
        let (current, reference) = shifted_pair(3, -2);
        let me = MotionEstimator::new(SearchKind::Full, 7);
        let field = me.estimate(&current, &reference);
        // Interior blocks (not touching frame edges) must find (-3, 2):
        // content moved (3,-2), so the matching reference block sits at
        // current position + (-3, +2).
        let b = field.at(2, 2);
        assert_eq!(b.mv, MotionVector::new(-3, 2));
        assert_eq!(b.sad, 0);
    }

    #[test]
    fn full_search_evaluation_count_is_window_size() {
        let (current, reference) = shifted_pair(0, 0);
        let me = MotionEstimator::new(SearchKind::Full, 7);
        let b = me.estimate_block(&current, &reference, 1, 1);
        assert_eq!(b.evaluations, 15 * 15);
    }

    #[test]
    fn fast_searches_use_far_fewer_evaluations() {
        let (current, reference) = shifted_pair(2, 1);
        let full = MotionEstimator::new(SearchKind::Full, 15).estimate(&current, &reference);
        let tss = MotionEstimator::new(SearchKind::ThreeStep, 15).estimate(&current, &reference);
        let dia = MotionEstimator::new(SearchKind::Diamond, 15).estimate(&current, &reference);
        assert!(tss.total_evaluations() * 10 < full.total_evaluations());
        assert!(dia.total_evaluations() * 10 < full.total_evaluations());
    }

    #[test]
    fn fast_searches_find_small_translations() {
        let (current, reference) = shifted_pair(2, 2);
        for kind in [SearchKind::ThreeStep, SearchKind::Diamond] {
            let me = MotionEstimator::new(kind, 15);
            let b = me.estimate_block(&current, &reference, 2, 2);
            assert_eq!(b.mv, MotionVector::new(-2, -2), "{kind}");
            assert_eq!(b.sad, 0, "{kind}");
        }
    }

    #[test]
    fn full_search_is_never_worse_than_fast_searches() {
        let mut gen = SequenceGen::new(5);
        let reference = gen.textured_frame(64, 64);
        let mut current = gen.shift_frame(&reference, 4, -3);
        // Add noise so no candidate is perfect.
        gen.add_noise(&mut current, 8.0);
        let full = MotionEstimator::new(SearchKind::Full, 8).estimate(&current, &reference);
        for kind in [SearchKind::ThreeStep, SearchKind::Diamond] {
            let fast = MotionEstimator::new(kind, 8).estimate(&current, &reference);
            assert!(
                full.total_sad() <= fast.total_sad(),
                "{kind}: full {} > fast {}",
                full.total_sad(),
                fast.total_sad()
            );
        }
    }

    #[test]
    fn zero_motion_on_identical_frames() {
        let mut gen = SequenceGen::new(6);
        let f = gen.textured_frame(48, 48);
        for kind in [SearchKind::Full, SearchKind::ThreeStep, SearchKind::Diamond] {
            let field = MotionEstimator::new(kind, 7).estimate(&f, &f);
            for b in &field.blocks {
                assert_eq!(b.mv, MotionVector::default(), "{kind}");
                assert_eq!(b.sad, 0);
            }
        }
    }

    #[test]
    fn vectors_respect_search_range() {
        let (current, reference) = shifted_pair(6, 6);
        let me = MotionEstimator::new(SearchKind::Full, 2); // too small to find it
        let field = me.estimate(&current, &reference);
        for b in &field.blocks {
            assert!(b.mv.dx.abs() <= 2 && b.mv.dy.abs() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn mismatched_frames_panic() {
        let a = Frame::grey(32, 32).unwrap();
        let b = Frame::grey(64, 32).unwrap();
        let _ = MotionEstimator::new(SearchKind::Full, 4).estimate(&a, &b);
    }

    /// The naive full search the seed implementation performed: one
    /// allocating copy per candidate, unbounded SAD, same scan order.
    fn naive_full_search(current: &Frame, reference: &Frame, range: i32) -> Vec<MotionVector> {
        use signal::metrics::sad_u8;
        let (cols, rows) = current.macroblocks();
        let mut out = Vec::new();
        for by in 0..rows {
            for bx in 0..cols {
                let target = current.luma_block(bx, by, MB);
                let (x0, y0) = ((bx * MB) as i32, (by * MB) as i32);
                let mut best = (MotionVector::default(), u64::MAX);
                for dy in -range..=range {
                    for dx in -range..=range {
                        let mv = MotionVector::new(dx, dy);
                        let cand = reference.luma_block_at(x0 + mv.dx, y0 + mv.dy, MB);
                        let s = sad_u8(&target, &cand);
                        if s < best.1 || (s == best.1 && mv.magnitude_sq() < best.0.magnitude_sq())
                        {
                            best = (mv, s);
                        }
                    }
                }
                out.push(best.0);
            }
        }
        out
    }

    #[test]
    fn full_search_is_bit_identical_to_naive_implementation() {
        let mut gen = SequenceGen::new(2005);
        let reference = gen.textured_frame(64, 48);
        let mut current = gen.shift_frame(&reference, 3, -1);
        gen.add_noise(&mut current, 6.0);
        let field = MotionEstimator::new(SearchKind::Full, 7).estimate(&current, &reference);
        let naive = naive_full_search(&current, &reference, 7);
        let got: Vec<MotionVector> = field.blocks.iter().map(|b| b.mv).collect();
        assert_eq!(got, naive, "early-exit SAD must not change the field");
    }

    #[test]
    fn fast_searches_early_exit_on_static_blocks() {
        let mut gen = SequenceGen::new(21);
        let f = gen.textured_frame(48, 48);
        for kind in [SearchKind::ThreeStep, SearchKind::Diamond] {
            let field = MotionEstimator::new(kind, 15).estimate(&f, &f);
            for b in &field.blocks {
                assert_eq!(
                    b.evaluations, 1,
                    "{kind}: static block stops after zero-MV probe"
                );
                assert_eq!(b.mv, MotionVector::default());
            }
        }
    }

    #[test]
    fn predictor_seeding_does_not_hurt_fast_search_quality() {
        // A large pan: with predictor seeding, interior blocks should all
        // lock onto the global translation.
        let mut gen = SequenceGen::new(30);
        let reference = gen.textured_frame(96, 96);
        let current = gen.shift_frame(&reference, 5, 4);
        let field = MotionEstimator::new(SearchKind::Diamond, 15).estimate(&current, &reference);
        let mut exact = 0;
        for by in 1..5 {
            for bx in 1..5 {
                if field.at(bx, by).mv == MotionVector::new(-5, -4) {
                    exact += 1;
                }
            }
        }
        assert!(exact >= 12, "only {exact}/16 interior blocks locked on");
    }
}
