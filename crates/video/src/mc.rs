//! Motion compensation — Figure 1's "motion compensated predictor".
//!
//! Paper §3: *"Motion compensation at the receiver then applies that
//! motion vector to reconstruct the frame."* Given a reference frame and a
//! motion field, [`predict`] builds the predicted frame; [`residual`] and
//! [`add_residual`] convert between frames and the residual signal the
//! transform path actually codes.

use crate::frame::Frame;
use crate::me::{MotionField, MB};

/// Builds the motion-compensated prediction of a frame from `reference`
/// and a motion field (one vector per 16×16 macroblock).
///
/// # Panics
///
/// Panics if the field's macroblock grid does not match the reference
/// dimensions.
#[must_use]
pub fn predict(reference: &Frame, field: &MotionField) -> Frame {
    let (cols, rows) = reference.macroblocks();
    assert!(
        field.cols == cols && field.rows == rows,
        "motion field grid mismatch"
    );
    let mut out = reference.clone();
    let mut block = [0u8; MB * MB];
    for by in 0..rows {
        for bx in 0..cols {
            let mv = field.at(bx, by).mv;
            reference
                .luma_view((bx * MB) as i32 + mv.dx, (by * MB) as i32 + mv.dy, MB)
                .gather_into(&mut block);
            out.set_luma_block(bx, by, MB, &block);
        }
    }
    out
}

/// Per-pixel residual `current - predicted`, as `i16`.
///
/// Allocates a fresh buffer per call; hot paths should reuse one via
/// [`residual_into`].
///
/// # Panics
///
/// Panics if dimensions differ.
#[must_use]
pub fn residual(current: &Frame, predicted: &Frame) -> Vec<i16> {
    let mut out = vec![0i16; current.luma().len()];
    residual_into(current, predicted, &mut out);
    out
}

/// Writes the per-pixel residual `current - predicted` into a
/// caller-provided buffer (no allocation).
///
/// # Panics
///
/// Panics if the frames' dimensions differ or `out` is shorter than the
/// luma plane.
pub fn residual_into(current: &Frame, predicted: &Frame, out: &mut [i16]) {
    assert!(
        current.width() == predicted.width() && current.height() == predicted.height(),
        "frame dimensions differ"
    );
    assert!(
        out.len() >= current.luma().len(),
        "residual buffer too short"
    );
    for (o, (&c, &p)) in out
        .iter_mut()
        .zip(current.luma().iter().zip(predicted.luma()))
    {
        *o = c as i16 - p as i16;
    }
}

/// Reconstructs a frame by adding a residual onto a prediction, clamping
/// to 8 bits.
///
/// # Panics
///
/// Panics if the residual length does not match the frame.
#[must_use]
pub fn add_residual(predicted: &Frame, residual: &[i16]) -> Frame {
    assert_eq!(
        residual.len(),
        predicted.luma().len(),
        "residual length mismatch"
    );
    let mut out = predicted.clone();
    for (o, (&p, &r)) in out
        .luma_mut()
        .iter_mut()
        .zip(predicted.luma().iter().zip(residual))
    {
        let _ = p;
        *o = (*o as i16 + r).clamp(0, 255) as u8;
    }
    out
}

/// Sum of absolute residual values — the "bits to spend" proxy used by
/// experiment E5 to show motion estimation shrinking the signal.
#[must_use]
pub fn residual_energy(residual: &[i16]) -> u64 {
    residual.iter().map(|&r| r.unsigned_abs() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::me::{MotionEstimator, SearchKind};
    use crate::synth::SequenceGen;

    #[test]
    fn perfect_prediction_for_pure_translation() {
        let mut g = SequenceGen::new(41);
        let reference = g.textured_frame(64, 64);
        let current = g.shift_frame(&reference, 2, 1);
        let field = MotionEstimator::new(SearchKind::Full, 4).estimate(&current, &reference);
        let pred = predict(&reference, &field);
        // Interior blocks match exactly; border blocks may clamp.
        for by in 1..3 {
            for bx in 1..3 {
                assert_eq!(
                    pred.luma_block(bx, by, 16),
                    current.luma_block(bx, by, 16),
                    "block {bx},{by}"
                );
            }
        }
    }

    #[test]
    fn residual_add_round_trips() {
        let mut g = SequenceGen::new(42);
        let a = g.textured_frame(32, 32);
        let b = g.textured_frame(32, 32);
        let r = residual(&a, &b);
        let back = add_residual(&b, &r);
        assert_eq!(back.luma(), a.luma());
    }

    #[test]
    fn residual_into_reuses_buffer() {
        let mut g = SequenceGen::new(46);
        let a = g.textured_frame(32, 32);
        let b = g.textured_frame(32, 32);
        let mut buf = vec![99i16; 32 * 32];
        residual_into(&a, &b, &mut buf);
        assert_eq!(buf, residual(&a, &b));
        // Reuse for the reverse direction without reallocating.
        residual_into(&b, &a, &mut buf);
        assert!(buf.iter().zip(residual(&a, &b)).all(|(&x, y)| x == -y));
    }

    #[test]
    #[should_panic(expected = "buffer too short")]
    fn residual_into_short_buffer_panics() {
        let f = Frame::grey(16, 16).unwrap();
        let mut buf = vec![0i16; 10];
        residual_into(&f, &f, &mut buf);
    }

    #[test]
    fn motion_compensation_shrinks_residual() {
        let mut g = SequenceGen::new(43);
        let reference = g.textured_frame(64, 64);
        let current = g.shift_frame(&reference, 3, 2);
        // Without MC: residual vs the raw reference.
        let no_mc = residual_energy(&residual(&current, &reference));
        // With MC.
        let field = MotionEstimator::new(SearchKind::Full, 7).estimate(&current, &reference);
        let pred = predict(&reference, &field);
        let with_mc = residual_energy(&residual(&current, &pred));
        assert!(
            with_mc * 2 < no_mc,
            "MC should at least halve residual energy: {with_mc} vs {no_mc}"
        );
    }

    #[test]
    fn zero_field_prediction_is_reference() {
        let mut g = SequenceGen::new(44);
        let reference = g.textured_frame(32, 32);
        let field = MotionEstimator::new(SearchKind::Full, 1).estimate(&reference, &reference);
        let pred = predict(&reference, &field);
        assert_eq!(pred.luma(), reference.luma());
    }

    #[test]
    fn residual_energy_zero_for_identical() {
        let mut g = SequenceGen::new(45);
        let f = g.textured_frame(32, 32);
        assert_eq!(residual_energy(&residual(&f, &f)), 0);
    }

    #[test]
    fn add_residual_clamps() {
        let bright = Frame::filled(16, 16, 250, 128, 128).unwrap();
        let r = vec![100i16; 16 * 16];
        let out = add_residual(&bright, &r);
        assert!(out.luma().iter().all(|&v| v == 255));
    }
}
