//! Zig-zag scan ordering of 8×8 coefficient blocks.
//!
//! The scan orders coefficients from low to high spatial frequency so that
//! the quantizer's trailing zeros cluster at the end of the scan, where
//! run-length coding removes them cheaply.

use crate::dct::BLOCK;

/// The classic 8×8 zig-zag order: `ZIGZAG[k]` is the row-major index of
/// the `k`-th scanned coefficient.
pub const ZIGZAG: [usize; BLOCK * BLOCK] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Scans a row-major block into zig-zag order.
///
/// # Panics
///
/// Panics if `block.len() != 64`.
#[must_use]
pub fn scan(block: &[i16]) -> [i16; BLOCK * BLOCK] {
    assert_eq!(block.len(), BLOCK * BLOCK, "expected an 8x8 block");
    let mut out = [0i16; BLOCK * BLOCK];
    for (k, &idx) in ZIGZAG.iter().enumerate() {
        out[k] = block[idx];
    }
    out
}

/// Inverse of [`scan`]: restores row-major order.
///
/// # Panics
///
/// Panics if `scanned.len() != 64`.
#[must_use]
pub fn unscan(scanned: &[i16]) -> [i16; BLOCK * BLOCK] {
    assert_eq!(scanned.len(), BLOCK * BLOCK, "expected an 8x8 block");
    let mut out = [0i16; BLOCK * BLOCK];
    for (k, &idx) in ZIGZAG.iter().enumerate() {
        out[idx] = scanned[k];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn first_entries_follow_the_classic_path() {
        // (0,0) (0,1) (1,0) (2,0) (1,1) (0,2) ...
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn scan_unscan_round_trip() {
        let block: Vec<i16> = (0..64).map(|i| i as i16 * 3 - 90).collect();
        assert_eq!(unscan(&scan(&block)).to_vec(), block);
    }

    #[test]
    fn scan_moves_high_frequencies_to_tail() {
        // Put nonzero values only in the top-left (low-frequency) 2x2
        // corner; after scanning, all energy must be in the first few slots.
        let mut block = [0i16; 64];
        block[0] = 10;
        block[1] = 20;
        block[8] = 30;
        block[9] = 40;
        let s = scan(&block);
        assert!(s[..5].iter().filter(|&&v| v != 0).count() == 4);
        assert!(s[5..].iter().all(|&v| v == 0));
    }

    #[test]
    fn diagonal_symmetry_of_path_lengths() {
        // The k-th scanned element's frequency (row+col) must be
        // non-decreasing by at most 1 step at a time along diagonals.
        let mut prev_diag = 0usize;
        for &idx in &ZIGZAG {
            let diag = idx / 8 + idx % 8;
            assert!(
                diag + 1 >= prev_diag,
                "scan jumped backwards by >1 diagonal"
            );
            prev_diag = prev_diag.max(diag);
        }
    }
}
