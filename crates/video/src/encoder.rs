//! The video encoder of the paper's Figure 1.
//!
//! Stage for stage: **DCT → quantizer → variable-length encode → buffer**,
//! with the feedback loop **inverse DCT → motion-compensated predictor →
//! motion estimator** reconstructing exactly what the decoder will see so
//! prediction drift cannot accumulate. The optional rate controller closes
//! the buffer→quantizer feedback arrow.
//!
//! The encoder is deliberately a *clean-room MPEG-shaped* codec, not a
//! standard-conformant one (DESIGN.md §5): 16×16 macroblock motion, 8×8
//! DCT, zig-zag + run-length + canonical Huffman entropy coding, I/P GOP
//! structure, 4:2:0 chroma with halved motion vectors.

use signal::metrics::psnr_u8;

use crate::bitstream::{size_category, write_amplitude, BitWriter};
use crate::dct::{Dct2d, BLOCK};
use crate::frame::Frame;
use crate::huffman::{HuffmanCode, HuffmanError};
use crate::me::{MotionEstimator, MotionField, SearchKind, MB};
use crate::plane::{Plane8, PlaneRef};
use crate::quant::{BadQualityError, Quantizer, BASE_MATRIX, FLAT_MATRIX};
use crate::rate::{RateConfig, RateController};
use crate::rle;
use crate::zigzag;

/// Frame coding kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Intra-coded: no prediction.
    Intra,
    /// Predicted from the previous reconstructed frame.
    Predicted,
}

impl core::fmt::Display for FrameKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            FrameKind::Intra => "I",
            FrameKind::Predicted => "P",
        })
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Base quality (1..=100) used when no rate control is active.
    pub quality: u8,
    /// GOP length: an I frame every `gop` frames (1 = all intra).
    pub gop: usize,
    /// Motion search strategy.
    pub search: SearchKind,
    /// Motion search range (±pixels, max 31).
    pub search_range: i32,
    /// Optional buffer-feedback rate control (Figure 1's dashed arrow).
    pub rate: Option<RateConfig>,
}

impl Default for EncoderConfig {
    /// Quality 75, GOP 12, full search ±15, no rate control.
    fn default() -> Self {
        Self {
            quality: 75,
            gop: 12,
            search: SearchKind::Full,
            search_range: 15,
            rate: None,
        }
    }
}

impl EncoderConfig {
    /// A broadcast-style asymmetric configuration: exhaustive motion
    /// search, long GOP (expensive encoder, cheap decoder — §2).
    #[must_use]
    pub fn asymmetric_broadcast() -> Self {
        Self {
            search: SearchKind::Full,
            search_range: 15,
            gop: 15,
            ..Self::default()
        }
    }

    /// A videoconference-style symmetric configuration: cheap diamond
    /// search, short GOP (§2: both ends must encode and decode).
    #[must_use]
    pub fn symmetric_conference() -> Self {
        Self {
            search: SearchKind::Diamond,
            search_range: 7,
            gop: 8,
            ..Self::default()
        }
    }
}

/// Errors from encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum EncoderError {
    /// No frames supplied.
    Empty,
    /// Quality outside 1..=100.
    BadQuality(BadQualityError),
    /// GOP length of zero.
    ZeroGop,
    /// Search range outside 1..=31 (the bitstream stores 6-bit vectors).
    BadSearchRange(i32),
    /// Frames in the sequence have differing dimensions.
    MixedDimensions,
    /// Entropy coding failed (internal).
    Huffman(HuffmanError),
}

impl core::fmt::Display for EncoderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EncoderError::Empty => f.write_str("no frames to encode"),
            EncoderError::BadQuality(e) => write!(f, "{e}"),
            EncoderError::ZeroGop => f.write_str("gop length must be at least 1"),
            EncoderError::BadSearchRange(r) => write!(f, "search range {r} outside 1..=31"),
            EncoderError::MixedDimensions => f.write_str("frames have differing dimensions"),
            EncoderError::Huffman(e) => write!(f, "entropy coding failed: {e}"),
        }
    }
}

impl std::error::Error for EncoderError {}

impl From<BadQualityError> for EncoderError {
    fn from(e: BadQualityError) -> Self {
        EncoderError::BadQuality(e)
    }
}

impl From<HuffmanError> for EncoderError {
    fn from(e: HuffmanError) -> Self {
        EncoderError::Huffman(e)
    }
}

/// Per-stage operation tallies for one encode run — the calibration data
/// the MPSoC deployment layer (and experiment E1) consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTally {
    /// SAD evaluations performed by the motion estimator.
    pub me_sad_evaluations: u64,
    /// Pixels compared per SAD (16×16) times evaluations.
    pub me_pixel_ops: u64,
    /// Forward 8×8 DCTs performed.
    pub dct_blocks: u64,
    /// Inverse 8×8 DCTs performed (reconstruction loop).
    pub idct_blocks: u64,
    /// Coefficients quantized.
    pub quant_coeffs: u64,
    /// Entropy symbols emitted (DC + AC + motion vectors).
    pub vlc_symbols: u64,
    /// Pixels produced by motion-compensated prediction.
    pub mc_pixels: u64,
}

impl StageTally {
    /// Multiply–accumulate operations implied by the transform stages
    /// (row–column 2-D DCT = `2·8·8·8` MACs per block).
    #[must_use]
    pub fn dct_macs(&self) -> u64 {
        (self.dct_blocks + self.idct_blocks) * 2 * 8 * 8 * 8
    }
}

/// Statistics for one encoded frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameStats {
    /// I or P.
    pub kind: FrameKind,
    /// Quality actually used.
    pub quality: u8,
    /// Exact bits this frame occupies in the stream.
    pub bits: usize,
    /// Luma PSNR of the reconstruction against the source, dB.
    pub psnr_luma_db: f64,
}

/// A complete encoded sequence.
#[derive(Debug, Clone)]
pub struct EncodedSequence {
    /// The bitstream.
    pub bytes: Vec<u8>,
    /// Per-frame statistics.
    pub frames: Vec<FrameStats>,
    /// Stage tallies for the whole run.
    pub tally: StageTally,
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Bits occupied by the sequence header (magic, dimensions, frame
    /// count, Huffman tables) before the first frame payload.
    pub header_bits: usize,
}

impl EncodedSequence {
    /// Total bits in the stream.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Mean bits per frame.
    #[must_use]
    pub fn mean_bits_per_frame(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.frames.iter().map(|f| f.bits as f64).sum::<f64>() / self.frames.len() as f64
        }
    }

    /// Mean luma PSNR across frames, dB.
    #[must_use]
    pub fn mean_psnr_db(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.frames.iter().map(|f| f.psnr_luma_db).sum::<f64>() / self.frames.len() as f64
        }
    }

    /// Compression ratio against raw 4:2:0 8-bit video.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let raw_bits = self.frames.len() * self.width * self.height * 12; // 12 bpp for 4:2:0
        raw_bits as f64 / self.total_bits().max(1) as f64
    }

    /// Per-frame `(bit_offset, bit_length)` spans within the stream, in
    /// frame order. Frame payloads are contiguous after the header, so
    /// span `i` starts where span `i - 1` ends; the first starts at
    /// [`EncodedSequence::header_bits`]. This is the metadata a
    /// packetizer/segmenter needs to index access units without parsing
    /// the entropy-coded payload.
    #[must_use]
    pub fn frame_bit_spans(&self) -> Vec<(usize, usize)> {
        let mut offset = self.header_bits;
        self.frames
            .iter()
            .map(|f| {
                let span = (offset, f.bits);
                offset += f.bits;
                span
            })
            .collect()
    }

    /// Indices of the intra (I) frames — the GOP entry points at which a
    /// stream may be cut or a decoder may join.
    #[must_use]
    pub fn gop_starts(&self) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.kind == FrameKind::Intra)
            .map(|(i, _)| i)
            .collect()
    }

    /// Frame-index ranges of each GOP: every range starts at an I frame
    /// and runs up to (not including) the next one. Segment boundaries
    /// for delivery fall exactly on these ranges.
    #[must_use]
    pub fn gop_frame_ranges(&self) -> Vec<core::ops::Range<usize>> {
        let starts = self.gop_starts();
        starts
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let end = starts.get(i + 1).copied().unwrap_or(self.frames.len());
                s..end
            })
            .collect()
    }
}

/// Magic number opening every sequence.
pub(crate) const MAGIC: u32 = 0x5657; // "VW"
pub(crate) const MV_BITS: u32 = 6;
pub(crate) const DC_ALPHABET: usize = 16;
pub(crate) const AC_ALPHABET: usize = 256;

/// Analysis result for one plane of one frame: quantized levels per block.
struct PlaneLevels {
    /// One `[i16; 64]` zig-zag-scanned block after quantization, row-major.
    blocks: Vec<[i16; BLOCK * BLOCK]>,
    cols: usize,
}

/// Analysis result for one frame.
struct FrameAnalysis {
    kind: FrameKind,
    quality: u8,
    field: Option<MotionField>,
    planes: Vec<PlaneLevels>, // y, cb, cr
    psnr_luma_db: f64,
}

/// The encoder.
///
/// # Example
///
/// ```
/// use video::encoder::{Encoder, EncoderConfig};
/// use video::synth::SequenceGen;
///
/// let frames = SequenceGen::new(7).panning_sequence(64, 48, 6, 1, 0);
/// let encoded = Encoder::new(EncoderConfig::default())?.encode(&frames)?;
/// assert!(encoded.compression_ratio() > 4.0);
/// # Ok::<(), video::encoder::EncoderError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    config: EncoderConfig,
    dct: Dct2d,
}

impl Encoder {
    /// Creates an encoder after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EncoderError`] for invalid quality, GOP, or search range.
    pub fn new(config: EncoderConfig) -> Result<Self, EncoderError> {
        Quantizer::from_quality(config.quality)?;
        if config.gop == 0 {
            return Err(EncoderError::ZeroGop);
        }
        if !(1..=31).contains(&config.search_range) {
            return Err(EncoderError::BadSearchRange(config.search_range));
        }
        Ok(Self {
            config,
            dct: Dct2d::new(),
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Encodes a sequence of equally-sized frames.
    ///
    /// # Errors
    ///
    /// Returns [`EncoderError::Empty`] for an empty slice and
    /// [`EncoderError::MixedDimensions`] if frame sizes differ.
    pub fn encode(&self, frames: &[Frame]) -> Result<EncodedSequence, EncoderError> {
        let first = frames.first().ok_or(EncoderError::Empty)?;
        let (w, h) = (first.width(), first.height());
        if frames.iter().any(|f| f.width() != w || f.height() != h) {
            return Err(EncoderError::MixedDimensions);
        }

        let mut tally = StageTally::default();
        let mut rate = self.config.rate.map(|cfg| {
            RateController::new(
                cfg,
                self.config.quality.clamp(cfg.min_quality, cfg.max_quality),
            )
        });

        // ---- Pass 1: analyse every frame, producing levels + stats and
        // maintaining the reconstruction loop of Figure 1.
        let mut analyses = Vec::with_capacity(frames.len());
        let mut reference: Option<Frame> = None;
        for (idx, frame) in frames.iter().enumerate() {
            let quality = rate
                .as_ref()
                .map(|r| r.quality())
                .unwrap_or(self.config.quality);
            let forced_intra = idx % self.config.gop == 0 || reference.is_none();
            let analysis = if forced_intra {
                self.analyse_intra(frame, quality, &mut tally, &mut reference)?
            } else {
                let reference_frame = reference.take().expect("reference exists for P frames");
                self.analyse_predicted(
                    frame,
                    &reference_frame,
                    quality,
                    &mut tally,
                    &mut reference,
                )?
            };
            if let Some(rc) = rate.as_mut() {
                rc.frame_encoded(Self::estimate_bits(&analysis));
            }
            analyses.push(analysis);
        }

        // ---- Build entropy codes from global symbol statistics.
        let mut dc_freq = vec![0u64; DC_ALPHABET];
        let mut ac_freq = vec![0u64; AC_ALPHABET];
        for a in &analyses {
            for plane in &a.planes {
                let mut prev_dc = 0i16;
                for blk in &plane.blocks {
                    let diff = blk[0] - prev_dc;
                    prev_dc = blk[0];
                    dc_freq[size_category(diff as i32) as usize] += 1;
                    for ev in rle::encode_ac(blk) {
                        ac_freq[rle::event_symbol(&ev) as usize] += 1;
                    }
                }
            }
        }
        // Guarantee EOB exists so the tables are never empty.
        ac_freq[0x00] = ac_freq[0x00].max(1);
        dc_freq[0] = dc_freq[0].max(1);
        let dc_code = HuffmanCode::from_frequencies(&dc_freq)?;
        let ac_code = HuffmanCode::from_frequencies(&ac_freq)?;

        // ---- Pass 2: emit the bitstream.
        let mut writer = BitWriter::new();
        writer.write_bits(MAGIC, 16);
        writer.write_bits((w / 16) as u32, 8);
        writer.write_bits((h / 16) as u32, 8);
        writer.write_bits(frames.len() as u32, 16);
        dc_code.write_table(&mut writer);
        ac_code.write_table(&mut writer);
        let header_bits = writer.bit_len();

        let mut stats = Vec::with_capacity(analyses.len());
        for a in &analyses {
            let start_bits = writer.bit_len();
            writer.write_bit(a.kind == FrameKind::Predicted);
            writer.write_bits(a.quality as u32, 7);
            if let Some(field) = &a.field {
                for b in &field.blocks {
                    writer.write_bits((b.mv.dx & 0x3F) as u32, MV_BITS);
                    writer.write_bits((b.mv.dy & 0x3F) as u32, MV_BITS);
                    tally.vlc_symbols += 2;
                }
            }
            for plane in &a.planes {
                let mut prev_dc = 0i16;
                for blk in &plane.blocks {
                    let diff = (blk[0] - prev_dc) as i32;
                    prev_dc = blk[0];
                    let size = size_category(diff);
                    dc_code.encode(&mut writer, size as u16)?;
                    write_amplitude(&mut writer, diff, size);
                    tally.vlc_symbols += 1;
                    for ev in rle::encode_ac(blk) {
                        ac_code.encode(&mut writer, rle::event_symbol(&ev))?;
                        if let Some((v, s)) = rle::event_amplitude(&ev) {
                            write_amplitude(&mut writer, v, s);
                        }
                        tally.vlc_symbols += 1;
                    }
                }
            }
            stats.push(FrameStats {
                kind: a.kind,
                quality: a.quality,
                bits: writer.bit_len() - start_bits,
                psnr_luma_db: a.psnr_luma_db,
            });
        }

        Ok(EncodedSequence {
            bytes: writer.into_bytes(),
            frames: stats,
            tally,
            width: w,
            height: h,
            header_bits,
        })
    }

    /// Rough bit estimate for rate control, available before entropy
    /// coding: 5 bits per symbol plus amplitude bits plus vector bits.
    fn estimate_bits(a: &FrameAnalysis) -> f64 {
        let mut bits = 8.0;
        if let Some(f) = &a.field {
            bits += (f.blocks.len() * 12) as f64;
        }
        for plane in &a.planes {
            let mut prev_dc = 0i16;
            for blk in &plane.blocks {
                let diff = blk[0] - prev_dc;
                prev_dc = blk[0];
                bits += 5.0 + size_category(diff as i32) as f64;
                for ev in rle::encode_ac(blk) {
                    bits += 5.0;
                    if let Some((_, s)) = rle::event_amplitude(&ev) {
                        bits += s as f64;
                    }
                }
            }
        }
        bits
    }

    /// The frame's three planes, borrowed (no copies — the analysis loops
    /// read source and reference samples in place).
    fn planes_of(frame: &Frame) -> [PlaneRef<'_>; 3] {
        [frame.luma_plane(), frame.cb_plane(), frame.cr_plane()]
    }

    fn frame_from_planes(w: usize, h: usize, planes: [Plane8; 3]) -> Frame {
        let [y, cb, cr] = planes;
        Frame::from_planes(w, h, y.into_data(), cb.into_data(), cr.into_data())
            .expect("plane sizes are consistent by construction")
    }

    /// Intra analysis: transform-code every plane directly.
    fn analyse_intra(
        &self,
        frame: &Frame,
        quality: u8,
        tally: &mut StageTally,
        reference: &mut Option<Frame>,
    ) -> Result<FrameAnalysis, EncoderError> {
        let quant = Quantizer::from_quality_with_matrix(quality, &BASE_MATRIX)?;
        let mut planes = Vec::with_capacity(3);
        let mut recon_planes = Vec::with_capacity(3);
        // Per-block scratch, reused across every macroblock of the frame.
        let mut px = [0u8; BLOCK * BLOCK];
        for plane in Self::planes_of(frame) {
            let (cols, rows) = plane.blocks(BLOCK);
            let mut blocks = Vec::with_capacity(cols * rows);
            let mut recon = Plane8::filled(plane.width(), plane.height(), 128);
            for by in 0..rows {
                for bx in 0..cols {
                    plane.block_into((bx * BLOCK) as i32, (by * BLOCK) as i32, BLOCK, &mut px);
                    let coeffs = self.dct.forward_pixels(&px);
                    tally.dct_blocks += 1;
                    let levels = quant.quantize(&coeffs);
                    tally.quant_coeffs += 64;
                    let scanned = zigzag::scan(&levels);
                    blocks.push(scanned);
                    // Reconstruction loop (decoder mirror).
                    let rec = self.dct.inverse_to_pixels(&quant.dequantize(&levels));
                    tally.idct_blocks += 1;
                    recon.set_block(bx * BLOCK, by * BLOCK, BLOCK, &rec);
                }
            }
            planes.push(PlaneLevels { blocks, cols });
            recon_planes.push(recon);
        }
        let recon_frame = Self::frame_from_planes(
            frame.width(),
            frame.height(),
            recon_planes.try_into().expect("exactly three planes"),
        );
        let psnr = psnr_u8(frame.luma(), recon_frame.luma()).expect("same dimensions");
        *reference = Some(recon_frame);
        Ok(FrameAnalysis {
            kind: FrameKind::Intra,
            quality,
            field: None,
            planes,
            psnr_luma_db: psnr,
        })
    }

    /// Predicted-frame analysis: motion estimation against the
    /// reconstructed reference, residual transform coding, reconstruction.
    fn analyse_predicted(
        &self,
        frame: &Frame,
        reference: &Frame,
        quality: u8,
        tally: &mut StageTally,
        new_reference: &mut Option<Frame>,
    ) -> Result<FrameAnalysis, EncoderError> {
        let me = MotionEstimator::new(self.config.search, self.config.search_range);
        let field = me.estimate(frame, reference);
        tally.me_sad_evaluations += field.total_evaluations();
        tally.me_pixel_ops += field.total_evaluations() * (MB * MB) as u64;

        let quant = Quantizer::from_quality_with_matrix(quality, &FLAT_MATRIX)?;
        let cur_planes = Self::planes_of(frame);
        let ref_planes = Self::planes_of(reference);
        let mut planes = Vec::with_capacity(3);
        let mut recon_planes = Vec::with_capacity(3);
        // Per-block scratch, reused across every macroblock of the frame —
        // the analysis loop heap-allocates only the per-plane outputs.
        let mut pred = [0u8; BLOCK * BLOCK];
        let mut cur_blk = [0u8; BLOCK * BLOCK];
        let mut residual = [0.0f64; BLOCK * BLOCK];
        let mut rec = [0u8; BLOCK * BLOCK];

        for (pi, (cur, rp)) in cur_planes.iter().zip(ref_planes.iter()).enumerate() {
            let chroma = pi > 0;
            let (cols, rows) = cur.blocks(BLOCK);
            let mut blocks = Vec::with_capacity(cols * rows);
            let mut recon = Plane8::filled(cur.width(), cur.height(), 128);
            for by in 0..rows {
                for bx in 0..cols {
                    // The governing 16x16 luma macroblock for this 8x8 block.
                    let (mbx, mby) = if chroma { (bx, by) } else { (bx / 2, by / 2) };
                    let mv = field
                        .at(mbx.min(field.cols - 1), mby.min(field.rows - 1))
                        .mv;
                    let (dx, dy) = if chroma {
                        (mv.dx / 2, mv.dy / 2)
                    } else {
                        (mv.dx, mv.dy)
                    };
                    rp.block_into(
                        (bx * BLOCK) as i32 + dx,
                        (by * BLOCK) as i32 + dy,
                        BLOCK,
                        &mut pred,
                    );
                    tally.mc_pixels += (BLOCK * BLOCK) as u64;
                    cur.block_into(
                        (bx * BLOCK) as i32,
                        (by * BLOCK) as i32,
                        BLOCK,
                        &mut cur_blk,
                    );
                    // Residual (no level shift: it is already signed).
                    for (r, (&c, &p)) in residual.iter_mut().zip(cur_blk.iter().zip(&pred)) {
                        *r = c as f64 - p as f64;
                    }
                    let coeffs = self.dct.forward(&residual);
                    tally.dct_blocks += 1;
                    let levels = quant.quantize(&coeffs);
                    tally.quant_coeffs += 64;
                    blocks.push(zigzag::scan(&levels));
                    // Reconstruction.
                    let rec_res = self.dct.inverse(&quant.dequantize(&levels));
                    tally.idct_blocks += 1;
                    for (o, (&p, &r)) in rec.iter_mut().zip(pred.iter().zip(rec_res.iter())) {
                        *o = (p as f64 + r).round().clamp(0.0, 255.0) as u8;
                    }
                    recon.set_block(bx * BLOCK, by * BLOCK, BLOCK, &rec);
                }
            }
            planes.push(PlaneLevels { blocks, cols });
            recon_planes.push(recon);
        }
        let recon_frame = Self::frame_from_planes(
            frame.width(),
            frame.height(),
            recon_planes.try_into().expect("exactly three planes"),
        );
        let psnr = psnr_u8(frame.luma(), recon_frame.luma()).expect("same dimensions");
        *new_reference = Some(recon_frame);
        Ok(FrameAnalysis {
            kind: FrameKind::Predicted,
            quality,
            field: Some(field),
            planes,
            psnr_luma_db: psnr,
        })
    }
}

// `PlaneLevels.cols` is carried for debugging/pretty-printing; silence the
// lint without removing the information.
impl PlaneLevels {
    #[allow(dead_code)]
    fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SequenceGen;

    fn test_frames(n: usize) -> Vec<Frame> {
        SequenceGen::new(77).panning_sequence(64, 48, n, 2, 1)
    }

    #[test]
    fn encoder_is_sync_and_reentrant_across_threads() {
        // The streaming head-end encodes ladder rungs concurrently on a
        // worker pool, each rung holding `&Encoder`-style borrowed state
        // of its own — so `encode(&self)` must be freely shareable
        // (compile-time pin) and bit-identical under concurrency
        // (runtime pin: no hidden per-encoder mutable state).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Encoder>();

        let frames = test_frames(6);
        let enc = Encoder::new(EncoderConfig {
            gop: 3,
            ..EncoderConfig::default()
        })
        .unwrap();
        let baseline = enc.encode(&frames).unwrap();
        let concurrent: Vec<Vec<u8>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| enc.encode(&frames).unwrap().bytes))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for bytes in concurrent {
            assert_eq!(bytes, baseline.bytes, "concurrent encode diverged");
        }
    }

    #[test]
    fn config_validation() {
        assert!(Encoder::new(EncoderConfig::default()).is_ok());
        assert!(matches!(
            Encoder::new(EncoderConfig {
                quality: 0,
                ..Default::default()
            }),
            Err(EncoderError::BadQuality(_))
        ));
        assert!(matches!(
            Encoder::new(EncoderConfig {
                gop: 0,
                ..Default::default()
            }),
            Err(EncoderError::ZeroGop)
        ));
        assert!(matches!(
            Encoder::new(EncoderConfig {
                search_range: 32,
                ..Default::default()
            }),
            Err(EncoderError::BadSearchRange(32))
        ));
    }

    #[test]
    fn empty_and_mixed_inputs_rejected() {
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        assert_eq!(enc.encode(&[]).unwrap_err(), EncoderError::Empty);
        let mut frames = test_frames(2);
        frames.push(Frame::grey(32, 32).unwrap());
        assert_eq!(
            enc.encode(&frames).unwrap_err(),
            EncoderError::MixedDimensions
        );
    }

    #[test]
    fn gop_structure_is_respected() {
        let enc = Encoder::new(EncoderConfig {
            gop: 4,
            ..Default::default()
        })
        .unwrap();
        let seq = enc.encode(&test_frames(9)).unwrap();
        let kinds: Vec<FrameKind> = seq.frames.iter().map(|f| f.kind).collect();
        for (i, k) in kinds.iter().enumerate() {
            let expect = if i % 4 == 0 {
                FrameKind::Intra
            } else {
                FrameKind::Predicted
            };
            assert_eq!(*k, expect, "frame {i}");
        }
    }

    #[test]
    fn compresses_and_preserves_quality() {
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        let seq = enc.encode(&test_frames(8)).unwrap();
        assert!(
            seq.compression_ratio() > 5.0,
            "ratio {}",
            seq.compression_ratio()
        );
        assert!(seq.mean_psnr_db() > 30.0, "psnr {}", seq.mean_psnr_db());
    }

    #[test]
    fn p_frames_cost_fewer_bits_than_i_frames() {
        let enc = Encoder::new(EncoderConfig {
            gop: 6,
            ..Default::default()
        })
        .unwrap();
        let seq = enc.encode(&test_frames(12)).unwrap();
        let i_bits: Vec<usize> = seq
            .frames
            .iter()
            .filter(|f| f.kind == FrameKind::Intra)
            .map(|f| f.bits)
            .collect();
        let p_bits: Vec<usize> = seq
            .frames
            .iter()
            .filter(|f| f.kind == FrameKind::Predicted)
            .map(|f| f.bits)
            .collect();
        let i_mean = i_bits.iter().sum::<usize>() as f64 / i_bits.len() as f64;
        let p_mean = p_bits.iter().sum::<usize>() as f64 / p_bits.len() as f64;
        assert!(
            p_mean * 2.0 < i_mean,
            "motion compensation should at least halve P-frame bits: I {i_mean} P {p_mean}"
        );
    }

    #[test]
    fn higher_quality_costs_more_bits_and_gains_psnr() {
        let frames = test_frames(6);
        let lo = Encoder::new(EncoderConfig {
            quality: 25,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        let hi = Encoder::new(EncoderConfig {
            quality: 90,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        assert!(hi.total_bits() > lo.total_bits());
        assert!(hi.mean_psnr_db() > lo.mean_psnr_db());
    }

    #[test]
    fn motion_estimation_dominates_tally() {
        // The paper's central compute claim: ME is the expensive stage.
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        let seq = enc.encode(&test_frames(8)).unwrap();
        assert!(
            seq.tally.me_pixel_ops > seq.tally.dct_macs(),
            "ME ops {} should exceed DCT MACs {}",
            seq.tally.me_pixel_ops,
            seq.tally.dct_macs()
        );
    }

    #[test]
    fn rate_control_holds_frame_sizes_near_target() {
        let target = 20_000.0;
        let cfg = EncoderConfig {
            rate: Some(RateConfig::for_target(target)),
            gop: 8,
            ..Default::default()
        };
        let frames = test_frames(16);
        let seq = Encoder::new(cfg).unwrap().encode(&frames).unwrap();
        let mean = seq.mean_bits_per_frame();
        assert!(
            mean < 2.5 * target,
            "rate control failed to bound mean frame size: {mean}"
        );
        // And the controller must actually have moved quality at least once.
        let qualities: Vec<u8> = seq.frames.iter().map(|f| f.quality).collect();
        assert!(qualities.iter().any(|&q| q != qualities[0]));
    }

    #[test]
    fn frame_spans_are_contiguous_and_cover_the_stream() {
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        let seq = enc.encode(&test_frames(6)).unwrap();
        let spans = seq.frame_bit_spans();
        assert_eq!(spans.len(), 6);
        assert!(seq.header_bits > 0);
        let mut expect = seq.header_bits;
        for (i, &(off, len)) in spans.iter().enumerate() {
            assert_eq!(off, expect, "frame {i} span not contiguous");
            assert_eq!(len, seq.frames[i].bits);
            expect = off + len;
        }
        // Everything after the header is frame payload (modulo the final
        // byte-alignment padding).
        assert!(expect <= seq.total_bits());
        assert!(seq.total_bits() - expect < 8, "only padding may remain");
    }

    #[test]
    fn gop_ranges_tile_the_sequence_at_i_frames() {
        let enc = Encoder::new(EncoderConfig {
            gop: 4,
            ..Default::default()
        })
        .unwrap();
        let seq = enc.encode(&test_frames(10)).unwrap();
        assert_eq!(seq.gop_starts(), vec![0, 4, 8]);
        let ranges = seq.gop_frame_ranges();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        for r in &ranges {
            assert_eq!(seq.frames[r.start].kind, FrameKind::Intra);
            for i in r.start + 1..r.end {
                assert_eq!(seq.frames[i].kind, FrameKind::Predicted);
            }
        }
    }

    #[test]
    fn symmetric_config_is_cheaper_than_asymmetric() {
        let frames = test_frames(8);
        let sym = Encoder::new(EncoderConfig::symmetric_conference())
            .unwrap()
            .encode(&frames)
            .unwrap();
        let asym = Encoder::new(EncoderConfig::asymmetric_broadcast())
            .unwrap()
            .encode(&frames)
            .unwrap();
        assert!(
            sym.tally.me_sad_evaluations * 5 < asym.tally.me_sad_evaluations,
            "diamond search should be >5x cheaper: {} vs {}",
            sym.tally.me_sad_evaluations,
            asym.tally.me_sad_evaluations
        );
    }
}
