//! The video decoder: Figure 1 run in reverse.
//!
//! Variable-length decode → inverse quantizer → inverse DCT, plus the
//! motion-compensated predictor fed by the decoded vectors. Because the
//! encoder's reconstruction loop mirrors this code exactly, decoder output
//! is bit-identical to the encoder's internal reference frames.

use crate::bitstream::{read_amplitude, BitReader, OutOfBitsError};
use crate::dct::{Dct2d, BLOCK};
use crate::encoder::{FrameKind, MAGIC, MV_BITS};
use crate::frame::Frame;
use crate::huffman::{HuffmanCode, HuffmanError};
use crate::me::{BlockMotion, MotionField, MotionVector};
use crate::plane::Plane8;
use crate::quant::{Quantizer, BASE_MATRIX, FLAT_MATRIX};
use crate::rle::{self, RleEvent};
use crate::zigzag;

/// Errors decoding a bitstream.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The stream does not start with the expected magic number.
    BadMagic(u32),
    /// The stream ended prematurely.
    Truncated(OutOfBitsError),
    /// Entropy decoding failed.
    Huffman(HuffmanError),
    /// A quality value outside 1..=100 appeared in a frame header.
    BadQuality(u8),
    /// Run-length data overflowed a block.
    BadBlock,
    /// Frame dimensions in the header are invalid.
    BadDimensions,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            DecodeError::Truncated(e) => write!(f, "truncated stream: {e}"),
            DecodeError::Huffman(e) => write!(f, "entropy decode failed: {e}"),
            DecodeError::BadQuality(q) => write!(f, "invalid quality {q} in stream"),
            DecodeError::BadBlock => f.write_str("run-length data overflows a block"),
            DecodeError::BadDimensions => f.write_str("invalid dimensions in header"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<OutOfBitsError> for DecodeError {
    fn from(e: OutOfBitsError) -> Self {
        DecodeError::Truncated(e)
    }
}

impl From<HuffmanError> for DecodeError {
    fn from(e: HuffmanError) -> Self {
        DecodeError::Huffman(e)
    }
}

/// A decoded sequence with the per-frame kinds seen in the stream.
#[derive(Debug, Clone)]
pub struct DecodedSequence {
    /// The reconstructed frames.
    pub frames: Vec<Frame>,
    /// Frame kinds in stream order.
    pub kinds: Vec<FrameKind>,
    /// Total operations spent in the inverse transform path (IDCT blocks),
    /// the decoder-side cost proxy for experiment E3.
    pub idct_blocks: u64,
    /// Motion-compensated pixels produced.
    pub mc_pixels: u64,
}

/// Decodes a bitstream produced by [`crate::encoder::Encoder`].
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input.
///
/// # Example
///
/// ```
/// use video::decoder::decode;
/// use video::encoder::{Encoder, EncoderConfig};
/// use video::synth::SequenceGen;
///
/// let frames = SequenceGen::new(3).panning_sequence(32, 32, 4, 1, 0);
/// let encoded = Encoder::new(EncoderConfig::default()).unwrap().encode(&frames).unwrap();
/// let decoded = decode(&encoded.bytes)?;
/// assert_eq!(decoded.frames.len(), 4);
/// # Ok::<(), video::decoder::DecodeError>(())
/// ```
pub fn decode(bytes: &[u8]) -> Result<DecodedSequence, DecodeError> {
    let mut r = BitReader::new(bytes);
    let magic = r.read_bits(16)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let w = r.read_bits(8)? as usize * 16;
    let h = r.read_bits(8)? as usize * 16;
    if w == 0 || h == 0 {
        return Err(DecodeError::BadDimensions);
    }
    let frame_count = r.read_bits(16)? as usize;
    let dc_code = HuffmanCode::read_table(&mut r)?;
    let ac_code = HuffmanCode::read_table(&mut r)?;

    let dct = Dct2d::new();
    let mut frames: Vec<Frame> = Vec::with_capacity(frame_count);
    let mut kinds = Vec::with_capacity(frame_count);
    let mut reference: Option<Frame> = None;
    let mut idct_blocks = 0u64;
    let mut mc_pixels = 0u64;

    let mb_cols = w / 16;
    let mb_rows = h / 16;

    for _ in 0..frame_count {
        let predicted = r.read_bit()?;
        let quality = r.read_bits(7)? as u8;
        if quality == 0 || quality > 100 {
            return Err(DecodeError::BadQuality(quality));
        }
        let kind = if predicted {
            FrameKind::Predicted
        } else {
            FrameKind::Intra
        };
        // Motion vectors.
        let field = if predicted {
            let mut blocks = Vec::with_capacity(mb_cols * mb_rows);
            for _ in 0..mb_cols * mb_rows {
                let dx = sign_extend_6(r.read_bits(MV_BITS)?);
                let dy = sign_extend_6(r.read_bits(MV_BITS)?);
                blocks.push(BlockMotion {
                    mv: MotionVector::new(dx, dy),
                    sad: 0,
                    evaluations: 0,
                });
            }
            Some(MotionField {
                cols: mb_cols,
                rows: mb_rows,
                blocks,
            })
        } else {
            None
        };

        let matrix = if predicted {
            &FLAT_MATRIX
        } else {
            &BASE_MATRIX
        };
        let quant = Quantizer::from_quality_with_matrix(quality, matrix)
            .map_err(|e| DecodeError::BadQuality(e.0))?;

        // Borrowed views of the reference frame's planes (no copies).
        let ref_planes = reference
            .as_ref()
            .map(|f| [f.luma_plane(), f.cb_plane(), f.cr_plane()]);

        let mut out_planes: Vec<Plane8> = Vec::with_capacity(3);
        let mut pred = [0u8; BLOCK * BLOCK];
        let mut rec = [0u8; BLOCK * BLOCK];
        for pi in 0..3 {
            let (pw, ph) = if pi == 0 { (w, h) } else { (w / 2, h / 2) };
            let chroma = pi > 0;
            let (cols, rows) = (pw / BLOCK, ph / BLOCK);
            let mut plane = Plane8::filled(pw, ph, 128);
            let mut prev_dc = 0i16;
            for by in 0..rows {
                for bx in 0..cols {
                    // DC.
                    let size = dc_code.decode(&mut r)? as u32;
                    let diff = read_amplitude(&mut r, size)?;
                    let dc = prev_dc + diff as i16;
                    prev_dc = dc;
                    // AC events until EOB or 63 coefficients.
                    let mut events = Vec::new();
                    let mut coeffs_seen = 0usize;
                    loop {
                        let sym = ac_code.decode(&mut r)?;
                        let ev = if sym == 0x00 {
                            RleEvent::EndOfBlock
                        } else if sym == 0xF0 {
                            RleEvent::ZeroRunLength
                        } else {
                            let size = (sym & 0x0F) as u32;
                            let amp = read_amplitude(&mut r, size)?;
                            rle::event_from_symbol(sym, amp)
                        };
                        match ev {
                            RleEvent::EndOfBlock => {
                                events.push(ev);
                                break;
                            }
                            RleEvent::ZeroRunLength => {
                                coeffs_seen += 16;
                                events.push(ev);
                            }
                            RleEvent::Run { run, .. } => {
                                coeffs_seen += run as usize + 1;
                                events.push(ev);
                            }
                        }
                        if coeffs_seen > 63 {
                            return Err(DecodeError::BadBlock);
                        }
                        if coeffs_seen == 63 {
                            break;
                        }
                    }
                    let mut scanned = rle::decode_ac(&events).map_err(|_| DecodeError::BadBlock)?;
                    scanned[0] = dc;
                    let levels = zigzag::unscan(&scanned);
                    let coeffs = quant.dequantize(&levels);
                    idct_blocks += 1;
                    if predicted {
                        let rp = &ref_planes.as_ref().ok_or(DecodeError::BadBlock)?[pi];
                        let f = field.as_ref().expect("field exists for P frames");
                        let (mbx, mby) = if chroma { (bx, by) } else { (bx / 2, by / 2) };
                        let mv = f.at(mbx.min(f.cols - 1), mby.min(f.rows - 1)).mv;
                        let (dx, dy) = if chroma {
                            (mv.dx / 2, mv.dy / 2)
                        } else {
                            (mv.dx, mv.dy)
                        };
                        rp.block_into(
                            (bx * BLOCK) as i32 + dx,
                            (by * BLOCK) as i32 + dy,
                            BLOCK,
                            &mut pred,
                        );
                        mc_pixels += (BLOCK * BLOCK) as u64;
                        let res = dct.inverse(&coeffs);
                        for (o, (&p, &rv)) in rec.iter_mut().zip(pred.iter().zip(res.iter())) {
                            *o = (p as f64 + rv).round().clamp(0.0, 255.0) as u8;
                        }
                        plane.set_block(bx * BLOCK, by * BLOCK, BLOCK, &rec);
                    } else {
                        let rec = dct.inverse_to_pixels(&coeffs);
                        plane.set_block(bx * BLOCK, by * BLOCK, BLOCK, &rec);
                    }
                }
            }
            out_planes.push(plane);
        }
        let cr = out_planes.pop().expect("three planes");
        let cb = out_planes.pop().expect("three planes");
        let y = out_planes.pop().expect("three planes");
        let frame = Frame::from_planes(w, h, y.into_data(), cb.into_data(), cr.into_data())
            .map_err(|_| DecodeError::BadDimensions)?;
        reference = Some(frame.clone());
        frames.push(frame);
        kinds.push(kind);
    }

    Ok(DecodedSequence {
        frames,
        kinds,
        idct_blocks,
        mc_pixels,
    })
}

fn sign_extend_6(v: u32) -> i32 {
    let v = v as i32;
    if v >= 32 {
        v - 64
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};
    use crate::synth::SequenceGen;
    use signal::metrics::psnr_u8;

    fn round_trip(config: EncoderConfig, n: usize) -> (Vec<Frame>, DecodedSequence, f64) {
        let frames = SequenceGen::new(55).panning_sequence(64, 48, n, 2, 1);
        let enc = Encoder::new(config).unwrap().encode(&frames).unwrap();
        let dec = decode(&enc.bytes).unwrap();
        let mean_psnr = enc.mean_psnr_db();
        (frames, dec, mean_psnr)
    }

    #[test]
    fn decoder_matches_encoder_reconstruction() {
        let (frames, dec, enc_psnr) = round_trip(EncoderConfig::default(), 8);
        assert_eq!(dec.frames.len(), frames.len());
        // Decoder output PSNR vs source must equal the encoder's internal
        // reconstruction PSNR (same loop, same arithmetic).
        let mut psnrs = Vec::new();
        for (src, out) in frames.iter().zip(&dec.frames) {
            psnrs.push(psnr_u8(src.luma(), out.luma()).unwrap());
        }
        let dec_psnr = psnrs.iter().sum::<f64>() / psnrs.len() as f64;
        assert!(
            (dec_psnr - enc_psnr).abs() < 1e-9,
            "decoder drifted from encoder loop: {dec_psnr} vs {enc_psnr}"
        );
    }

    #[test]
    fn kinds_survive_the_stream() {
        let (_, dec, _) = round_trip(
            EncoderConfig {
                gop: 3,
                ..Default::default()
            },
            7,
        );
        for (i, k) in dec.kinds.iter().enumerate() {
            let expect = if i % 3 == 0 {
                FrameKind::Intra
            } else {
                FrameKind::Predicted
            };
            assert_eq!(*k, expect);
        }
    }

    #[test]
    fn all_intra_stream_decodes() {
        let (frames, dec, _) = round_trip(
            EncoderConfig {
                gop: 1,
                ..Default::default()
            },
            4,
        );
        assert!(dec.kinds.iter().all(|k| *k == FrameKind::Intra));
        for (src, out) in frames.iter().zip(&dec.frames) {
            assert!(psnr_u8(src.luma(), out.luma()).unwrap() > 28.0);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            decode(&[0, 0, 0, 0]),
            Err(DecodeError::BadMagic(0))
        ));
    }

    #[test]
    fn truncated_stream_rejected() {
        let frames = SequenceGen::new(1).panning_sequence(32, 32, 2, 1, 0);
        let enc = Encoder::new(EncoderConfig::default())
            .unwrap()
            .encode(&frames)
            .unwrap();
        let cut = &enc.bytes[..enc.bytes.len() / 2];
        assert!(matches!(
            decode(cut),
            Err(DecodeError::Truncated(_)) | Err(DecodeError::Huffman(_))
        ));
    }

    #[test]
    fn decoder_is_cheaper_than_encoder_for_broadcast_config() {
        // E3's asymmetry claim, at the ops level: decoder does no motion
        // search, so its MC+IDCT work is far below the encoder's ME work.
        let frames = SequenceGen::new(8).panning_sequence(64, 48, 8, 2, 0);
        let enc = Encoder::new(EncoderConfig::asymmetric_broadcast())
            .unwrap()
            .encode(&frames)
            .unwrap();
        let dec = decode(&enc.bytes).unwrap();
        let decoder_ops = dec.idct_blocks * 2 * 512 + dec.mc_pixels;
        assert!(
            enc.tally.me_pixel_ops > 5 * decoder_ops,
            "encoder ME {} should dwarf decoder {}",
            enc.tally.me_pixel_ops,
            decoder_ops
        );
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend_6(0), 0);
        assert_eq!(sign_extend_6(31), 31);
        assert_eq!(sign_extend_6(32), -32);
        assert_eq!(sign_extend_6(63), -1);
    }
}
