//! Video frames: 8-bit Y'CbCr planes with 4:2:0 chroma subsampling.
//!
//! Dimensions are constrained to multiples of 16 (one macroblock) so every
//! pipeline stage can walk whole blocks without edge special-casing — the
//! same constraint real consumer encoders of the paper's era imposed.
//!
//! Hot paths read frames through the borrowed views of
//! [`crate::plane`] — [`Frame::luma_plane`] / [`Frame::luma_view`] /
//! [`Frame::luma_block_into`] — which resolve stride and edge replication
//! without copying; the allocating accessors ([`Frame::luma_block`],
//! [`Frame::luma_block_at`]) remain for convenience and tests.

use crate::plane::{BlockView, PlaneRef};

/// Error constructing a frame with invalid dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadDimensionsError {
    /// Requested width.
    pub width: usize,
    /// Requested height.
    pub height: usize,
}

impl core::fmt::Display for BadDimensionsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "frame dimensions {}x{} must be nonzero multiples of 16",
            self.width, self.height
        )
    }
}

impl std::error::Error for BadDimensionsError {}

/// A Y'CbCr 4:2:0 frame.
///
/// # Example
///
/// ```
/// use video::frame::Frame;
///
/// let f = Frame::filled(64, 48, 128, 128, 128)?;
/// assert_eq!(f.width(), 64);
/// assert_eq!(f.luma().len(), 64 * 48);
/// assert_eq!(f.cb().len(), 32 * 24);
/// # Ok::<(), video::frame::BadDimensionsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    y: Vec<u8>,
    cb: Vec<u8>,
    cr: Vec<u8>,
}

impl Frame {
    /// Creates a frame with every plane set to the given values.
    ///
    /// # Errors
    ///
    /// Returns [`BadDimensionsError`] unless both dimensions are nonzero
    /// multiples of 16.
    pub fn filled(
        width: usize,
        height: usize,
        y: u8,
        cb: u8,
        cr: u8,
    ) -> Result<Self, BadDimensionsError> {
        if width == 0 || height == 0 || width % 16 != 0 || height % 16 != 0 {
            return Err(BadDimensionsError { width, height });
        }
        Ok(Self {
            width,
            height,
            y: vec![y; width * height],
            cb: vec![cb; width * height / 4],
            cr: vec![cr; width * height / 4],
        })
    }

    /// A mid-grey frame.
    ///
    /// # Errors
    ///
    /// Returns [`BadDimensionsError`] for invalid dimensions.
    pub fn grey(width: usize, height: usize) -> Result<Self, BadDimensionsError> {
        Self::filled(width, height, 128, 128, 128)
    }

    /// A black frame (the §5 commercial-break separator).
    ///
    /// # Errors
    ///
    /// Returns [`BadDimensionsError`] for invalid dimensions.
    pub fn black(width: usize, height: usize) -> Result<Self, BadDimensionsError> {
        Self::filled(width, height, 16, 128, 128)
    }

    /// Builds a frame from explicit planes.
    ///
    /// # Errors
    ///
    /// Returns [`BadDimensionsError`] if dimensions are invalid or plane
    /// sizes don't match.
    pub fn from_planes(
        width: usize,
        height: usize,
        y: Vec<u8>,
        cb: Vec<u8>,
        cr: Vec<u8>,
    ) -> Result<Self, BadDimensionsError> {
        if width == 0
            || height == 0
            || width % 16 != 0
            || height % 16 != 0
            || y.len() != width * height
            || cb.len() != width * height / 4
            || cr.len() != width * height / 4
        {
            return Err(BadDimensionsError { width, height });
        }
        Ok(Self {
            width,
            height,
            y,
            cb,
            cr,
        })
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The luma plane, row-major.
    #[must_use]
    pub fn luma(&self) -> &[u8] {
        &self.y
    }

    /// Mutable luma plane.
    pub fn luma_mut(&mut self) -> &mut [u8] {
        &mut self.y
    }

    /// Blue-difference chroma plane (half resolution).
    #[must_use]
    pub fn cb(&self) -> &[u8] {
        &self.cb
    }

    /// Red-difference chroma plane (half resolution).
    #[must_use]
    pub fn cr(&self) -> &[u8] {
        &self.cr
    }

    /// Mutable chroma planes `(cb, cr)`.
    pub fn chroma_mut(&mut self) -> (&mut [u8], &mut [u8]) {
        (&mut self.cb, &mut self.cr)
    }

    /// Luma sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn luma_at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.y[y * self.width + x]
    }

    /// Sets the luma sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set_luma(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.y[y * self.width + x] = v;
    }

    /// Mean luma level of the frame.
    #[must_use]
    pub fn mean_luma(&self) -> f64 {
        self.y.iter().map(|&v| v as f64).sum::<f64>() / self.y.len() as f64
    }

    /// Mean chroma saturation: average distance of Cb/Cr from neutral 128.
    /// Black-and-white material sits near 0 — the §5 color-burst cue.
    #[must_use]
    pub fn chroma_saturation(&self) -> f64 {
        let dev: f64 = self
            .cb
            .iter()
            .zip(&self.cr)
            .map(|(&b, &r)| ((b as f64 - 128.0).abs() + (r as f64 - 128.0).abs()) / 2.0)
            .sum();
        dev / self.cb.len() as f64
    }

    /// Copies the `bs x bs` luma block whose top-left corner is
    /// `(bx*bs, by*bs)` into a vector.
    ///
    /// # Panics
    ///
    /// Panics if the block lies outside the frame.
    #[must_use]
    pub fn luma_block(&self, bx: usize, by: usize, bs: usize) -> Vec<u8> {
        let (x0, y0) = (bx * bs, by * bs);
        assert!(
            x0 + bs <= self.width && y0 + bs <= self.height,
            "block outside frame"
        );
        let mut out = Vec::with_capacity(bs * bs);
        for row in 0..bs {
            let start = (y0 + row) * self.width + x0;
            out.extend_from_slice(&self.y[start..start + bs]);
        }
        out
    }

    /// Writes a `bs x bs` luma block at block coordinates `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics if the block lies outside the frame or `data` is too short.
    pub fn set_luma_block(&mut self, bx: usize, by: usize, bs: usize, data: &[u8]) {
        let (x0, y0) = (bx * bs, by * bs);
        assert!(
            x0 + bs <= self.width && y0 + bs <= self.height,
            "block outside frame"
        );
        assert!(data.len() >= bs * bs, "block data too short");
        for row in 0..bs {
            let start = (y0 + row) * self.width + x0;
            self.y[start..start + bs].copy_from_slice(&data[row * bs..(row + 1) * bs]);
        }
    }

    /// Extracts a `bs x bs` luma block at an *arbitrary pixel* position,
    /// clamping coordinates to the frame edge (used by motion search when
    /// candidate vectors point partially outside).
    #[must_use]
    pub fn luma_block_at(&self, x: i32, y: i32, bs: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(bs * bs);
        for row in 0..bs as i32 {
            for col in 0..bs as i32 {
                let px = (x + col).clamp(0, self.width as i32 - 1) as usize;
                let py = (y + row).clamp(0, self.height as i32 - 1) as usize;
                out.push(self.y[py * self.width + px]);
            }
        }
        out
    }

    /// The luma plane as a borrowed [`PlaneRef`] (no copy).
    #[must_use]
    pub fn luma_plane(&self) -> PlaneRef<'_> {
        PlaneRef::new(&self.y, self.width, self.height)
    }

    /// The Cb plane as a borrowed [`PlaneRef`] (half resolution, no copy).
    #[must_use]
    pub fn cb_plane(&self) -> PlaneRef<'_> {
        PlaneRef::new(&self.cb, self.width / 2, self.height / 2)
    }

    /// The Cr plane as a borrowed [`PlaneRef`] (half resolution, no copy).
    #[must_use]
    pub fn cr_plane(&self) -> PlaneRef<'_> {
        PlaneRef::new(&self.cr, self.width / 2, self.height / 2)
    }

    /// A borrowed, clamping `bs x bs` luma window at pixel `(x, y)` — the
    /// zero-copy counterpart of [`Frame::luma_block_at`] used by the
    /// motion-search hot path.
    #[must_use]
    pub fn luma_view(&self, x: i32, y: i32, bs: usize) -> BlockView<'_> {
        BlockView::new(&self.y, self.width, self.height, x, y, bs)
    }

    /// Copies the `bs x bs` luma block at block coordinates `(bx, by)`
    /// into `out` — the zero-allocation counterpart of
    /// [`Frame::luma_block`].
    ///
    /// # Panics
    ///
    /// Panics if the block lies outside the frame or `out` is shorter
    /// than `bs * bs`.
    pub fn luma_block_into(&self, bx: usize, by: usize, bs: usize, out: &mut [u8]) {
        let (x0, y0) = (bx * bs, by * bs);
        assert!(
            x0 + bs <= self.width && y0 + bs <= self.height,
            "block outside frame"
        );
        assert!(out.len() >= bs * bs, "block buffer too short");
        for row in 0..bs {
            let start = (y0 + row) * self.width + x0;
            out[row * bs..(row + 1) * bs].copy_from_slice(&self.y[start..start + bs]);
        }
    }

    /// 64-bin luma histogram (4 levels per bin), normalized to sum 1 —
    /// the shot-boundary feature of §5.
    #[must_use]
    pub fn luma_histogram(&self) -> [f64; 64] {
        let mut h = [0.0f64; 64];
        for &v in &self.y {
            h[(v >> 2) as usize] += 1.0;
        }
        let n = self.y.len() as f64;
        for b in &mut h {
            *b /= n;
        }
        h
    }

    /// Number of 16x16 macroblocks (horizontal, vertical).
    #[must_use]
    pub fn macroblocks(&self) -> (usize, usize) {
        (self.width / 16, self.height / 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_must_be_multiple_of_16() {
        assert!(Frame::grey(64, 48).is_ok());
        assert_eq!(
            Frame::grey(65, 48).unwrap_err(),
            BadDimensionsError {
                width: 65,
                height: 48
            }
        );
        assert!(Frame::grey(0, 16).is_err());
    }

    #[test]
    fn plane_sizes_follow_420() {
        let f = Frame::grey(160, 96).unwrap();
        assert_eq!(f.luma().len(), 160 * 96);
        assert_eq!(f.cb().len(), 80 * 48);
        assert_eq!(f.cr().len(), 80 * 48);
    }

    #[test]
    fn from_planes_validates_sizes() {
        let y = vec![0u8; 32 * 32];
        let c = vec![128u8; 16 * 16];
        assert!(Frame::from_planes(32, 32, y.clone(), c.clone(), c.clone()).is_ok());
        assert!(Frame::from_planes(32, 32, vec![0; 10], c.clone(), c).is_err());
    }

    #[test]
    fn black_frame_is_dark_and_neutral() {
        let f = Frame::black(32, 32).unwrap();
        assert!(f.mean_luma() < 20.0);
        assert_eq!(f.chroma_saturation(), 0.0);
    }

    #[test]
    fn pixel_accessors_round_trip() {
        let mut f = Frame::grey(32, 32).unwrap();
        f.set_luma(5, 7, 200);
        assert_eq!(f.luma_at(5, 7), 200);
    }

    #[test]
    fn block_round_trip() {
        let mut f = Frame::grey(32, 32).unwrap();
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        f.set_luma_block(1, 2, 8, &data);
        assert_eq!(f.luma_block(1, 2, 8), data);
        // Block at (1,2) covers pixels (8..16, 16..24).
        assert_eq!(f.luma_at(8, 16), 0);
        assert_eq!(f.luma_at(15, 23), 63);
    }

    #[test]
    fn clamped_block_extraction_at_edges() {
        let mut f = Frame::grey(32, 32).unwrap();
        f.set_luma(0, 0, 99);
        let b = f.luma_block_at(-4, -4, 8);
        // Top-left 4x4 region of the block replicates pixel (0,0) and row 0.
        assert_eq!(b[0], 99);
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn histogram_sums_to_one_and_localizes() {
        let f = Frame::filled(32, 32, 100, 128, 128).unwrap();
        let h = f.luma_histogram();
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[25] - 1.0).abs() < 1e-12, "all mass in bin 100/4");
    }

    #[test]
    fn borrowed_views_match_allocating_accessors() {
        let mut f = Frame::grey(32, 32).unwrap();
        for i in 0..32 * 32 {
            f.luma_mut()[i] = (i * 7) as u8;
        }
        // Aligned copy.
        let mut buf = [0u8; 64];
        f.luma_block_into(1, 2, 8, &mut buf);
        assert_eq!(buf.to_vec(), f.luma_block(1, 2, 8));
        // Clamped view, interior and edge.
        for (x, y) in [(3, 5), (-4, -4), (30, 30)] {
            let mut got = [0u8; 64];
            f.luma_view(x, y, 8).gather_into(&mut got);
            assert_eq!(got.to_vec(), f.luma_block_at(x, y, 8), "({x},{y})");
        }
        // Plane refs share geometry with the frame.
        assert_eq!(f.luma_plane().data(), f.luma());
        assert_eq!(f.cb_plane().width(), 16);
        assert_eq!(f.cr_plane().height(), 16);
    }

    #[test]
    fn macroblock_counts() {
        let f = Frame::grey(352, 288).unwrap();
        assert_eq!(f.macroblocks(), (22, 18));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_pixel_panics() {
        let f = Frame::grey(16, 16).unwrap();
        let _ = f.luma_at(16, 0);
    }
}
