//! Canonical Huffman coding.
//!
//! Paper §3: *"Lossless encoding, particularly Huffman-style encoding, is
//! used to remove entropy from the final data stream sent to the
//! decoder."* This is that box. Codes are canonical, so only the code
//! lengths travel in the stream header; both video and audio framers use
//! this module.

use std::collections::BinaryHeap;

use crate::bitstream::{BitReader, BitWriter, OutOfBitsError};

/// Errors building or using a Huffman code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffmanError {
    /// No symbol had a nonzero frequency.
    NoSymbols,
    /// A symbol outside the alphabet was encoded.
    UnknownSymbol(u16),
    /// The bitstream ended mid-codeword.
    OutOfBits(OutOfBitsError),
    /// The bitstream contained a prefix that matches no codeword.
    BadCode,
    /// A length table was invalid (violates Kraft inequality or empty).
    BadLengths,
}

impl core::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HuffmanError::NoSymbols => f.write_str("no symbols with nonzero frequency"),
            HuffmanError::UnknownSymbol(s) => write!(f, "symbol {s} is not in the code"),
            HuffmanError::OutOfBits(e) => write!(f, "bitstream exhausted: {e}"),
            HuffmanError::BadCode => f.write_str("invalid codeword in bitstream"),
            HuffmanError::BadLengths => f.write_str("invalid code length table"),
        }
    }
}

impl std::error::Error for HuffmanError {}

impl From<OutOfBitsError> for HuffmanError {
    fn from(e: OutOfBitsError) -> Self {
        HuffmanError::OutOfBits(e)
    }
}

const MAX_LEN: u32 = 16;

/// A canonical Huffman code over symbols `0..alphabet_len`.
///
/// # Example
///
/// ```
/// use video::huffman::HuffmanCode;
/// use video::bitstream::{BitReader, BitWriter};
///
/// let freqs = [50u64, 30, 15, 5];
/// let code = HuffmanCode::from_frequencies(&freqs)?;
/// let mut w = BitWriter::new();
/// for sym in [0u16, 1, 0, 3, 2] {
///     code.encode(&mut w, sym)?;
/// }
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// for expect in [0u16, 1, 0, 3, 2] {
///     assert_eq!(code.decode(&mut r)?, expect);
/// }
/// # Ok::<(), video::huffman::HuffmanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code length per symbol (0 = symbol unused).
    lengths: Vec<u8>,
    /// Canonical codeword per symbol (valid when length > 0).
    codes: Vec<u32>,
}

#[derive(PartialEq, Eq)]
struct HeapNode {
    weight: u64,
    /// Tie-break for determinism.
    order: usize,
    node: usize,
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reverse for a min-heap.
        other
            .weight
            .cmp(&self.weight)
            .then(other.order.cmp(&self.order))
    }
}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl HuffmanCode {
    /// Builds an optimal prefix code from symbol frequencies. Symbols with
    /// zero frequency get no codeword. Code lengths are capped at 16 by
    /// flattening (frequencies are scaled until the cap holds; for the
    /// alphabet sizes in this workspace the cap is never binding in
    /// practice).
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError::NoSymbols`] if every frequency is zero.
    pub fn from_frequencies(freqs: &[u64]) -> Result<Self, HuffmanError> {
        let used: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        if used.is_empty() {
            return Err(HuffmanError::NoSymbols);
        }
        let mut lengths = vec![0u8; freqs.len()];
        if used.len() == 1 {
            lengths[used[0]] = 1;
            return Self::from_lengths(lengths);
        }
        // Standard two-queue-equivalent heap construction.
        // parent[] over a forest of (leaf symbols + internal nodes).
        let n = used.len();
        let mut weights: Vec<u64> = used.iter().map(|&i| freqs[i]).collect();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut heap: BinaryHeap<HeapNode> = (0..n)
            .map(|i| HeapNode {
                weight: weights[i],
                order: i,
                node: i,
            })
            .collect();
        let mut order = n;
        while heap.len() > 1 {
            let a = heap.pop().expect("heap has >=2");
            let b = heap.pop().expect("heap has >=2");
            let idx = weights.len();
            weights.push(a.weight + b.weight);
            parent.push(None);
            parent[a.node] = Some(idx);
            parent[b.node] = Some(idx);
            heap.push(HeapNode {
                weight: a.weight + b.weight,
                order,
                node: idx,
            });
            order += 1;
        }
        // Depth of each leaf = code length.
        for (leaf, &sym) in used.iter().enumerate() {
            let mut d = 0u8;
            let mut cur = leaf;
            while let Some(p) = parent[cur] {
                d += 1;
                cur = p;
            }
            lengths[sym] = d.max(1);
        }
        // Enforce the length cap (rarely triggered).
        if lengths.iter().any(|&l| l as u32 > MAX_LEN) {
            let scaled: Vec<u64> = freqs
                .iter()
                .map(|&f| if f > 0 { (f >> 4).max(1) } else { 0 })
                .collect();
            return Self::from_frequencies(&scaled);
        }
        Self::from_lengths(lengths)
    }

    /// Builds the canonical code from a length table (lengths of 0 mean
    /// "symbol unused").
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError::BadLengths`] if the table is empty, has no
    /// used symbol, or overflows the code space (violates the Kraft
    /// inequality).
    pub fn from_lengths(lengths: Vec<u8>) -> Result<Self, HuffmanError> {
        if lengths.is_empty() || lengths.iter().all(|&l| l == 0) {
            return Err(HuffmanError::BadLengths);
        }
        if lengths.iter().any(|&l| l as u32 > MAX_LEN) {
            return Err(HuffmanError::BadLengths);
        }
        // Kraft check.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_LEN - l as u32))
            .sum();
        if kraft > 1u64 << MAX_LEN {
            return Err(HuffmanError::BadLengths);
        }
        // Canonical assignment: sort by (length, symbol).
        let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
        symbols.sort_by_key(|&s| (lengths[s], s));
        let mut codes = vec![0u32; lengths.len()];
        let mut code = 0u32;
        let mut prev_len = lengths[symbols[0]] as u32;
        for &s in &symbols {
            let l = lengths[s] as u32;
            code <<= l - prev_len;
            codes[s] = code;
            code += 1;
            prev_len = l;
        }
        Ok(Self { lengths, codes })
    }

    /// The code-length table (index = symbol).
    #[must_use]
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Number of symbols in the alphabet (including unused ones).
    #[must_use]
    pub fn alphabet_len(&self) -> usize {
        self.lengths.len()
    }

    /// Bits needed to encode `symbol`, or `None` if unused.
    #[must_use]
    pub fn bit_length(&self, symbol: u16) -> Option<u32> {
        self.lengths
            .get(symbol as usize)
            .and_then(|&l| if l > 0 { Some(l as u32) } else { None })
    }

    /// Writes the codeword for `symbol`.
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError::UnknownSymbol`] for symbols without a
    /// codeword.
    pub fn encode(&self, w: &mut BitWriter, symbol: u16) -> Result<(), HuffmanError> {
        let len = self
            .bit_length(symbol)
            .ok_or(HuffmanError::UnknownSymbol(symbol))?;
        w.write_bits(self.codes[symbol as usize], len);
        Ok(())
    }

    /// Decodes one symbol.
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError::OutOfBits`] or [`HuffmanError::BadCode`].
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, HuffmanError> {
        // Canonical decoding: accumulate bits, compare against per-length
        // first-code values. Linear in code length (<=16) — fine here.
        let mut code = 0u32;
        let mut len = 0u32;
        loop {
            code = (code << 1) | r.read_bit()? as u32;
            len += 1;
            if len > MAX_LEN {
                return Err(HuffmanError::BadCode);
            }
            // Scan for a symbol with this (length, code). Alphabets here
            // are <=512 symbols; a scan per bit keeps the table simple.
            for (s, &l) in self.lengths.iter().enumerate() {
                if l as u32 == len && self.codes[s] == code {
                    return Ok(s as u16);
                }
            }
        }
    }

    /// Serializes the length table into a bit stream (8 bits alphabet-size
    /// hi/lo, then 5 bits per length).
    pub fn write_table(&self, w: &mut BitWriter) {
        let n = self.lengths.len() as u32;
        w.write_bits(n, 16);
        for &l in &self.lengths {
            w.write_bits(l as u32, 5);
        }
    }

    /// Reads a length table written by [`HuffmanCode::write_table`].
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError`] on truncated input or an invalid table.
    pub fn read_table(r: &mut BitReader<'_>) -> Result<Self, HuffmanError> {
        let n = r.read_bits(16)? as usize;
        let mut lengths = Vec::with_capacity(n);
        for _ in 0..n {
            lengths.push(r.read_bits(5)? as u8);
        }
        Self::from_lengths(lengths)
    }

    /// Expected bits per symbol under the given frequency distribution.
    #[must_use]
    pub fn expected_bits(&self, freqs: &[u64]) -> f64 {
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            return 0.0;
        }
        freqs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(s, &f)| f as f64 * self.lengths[s] as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Shannon entropy in bits/symbol of a frequency table.
#[must_use]
pub fn entropy_bits(freqs: &[u64]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_random_symbols() {
        let freqs = [100u64, 50, 25, 12, 6, 3, 2, 1];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let mut w = BitWriter::new();
        let msg: Vec<u16> = (0..200).map(|i| (i * 7 % 8) as u16).collect();
        for &s in &msg {
            code.encode(&mut w, s).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(code.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let freqs = [1000u64, 10, 10, 10];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let l0 = code.bit_length(0).unwrap();
        for s in 1..4 {
            assert!(code.bit_length(s).unwrap() >= l0);
        }
    }

    #[test]
    fn expected_length_within_one_bit_of_entropy() {
        let freqs = [50u64, 30, 10, 5, 3, 1, 1];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let h = entropy_bits(&freqs);
        let l = code.expected_bits(&freqs);
        assert!(l >= h - 1e-9, "below entropy: {l} < {h}");
        assert!(l < h + 1.0, "more than 1 bit above entropy: {l} vs {h}");
    }

    #[test]
    fn code_is_prefix_free() {
        let freqs = [7u64, 6, 5, 4, 3, 2, 1, 1, 1, 20];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let words: Vec<(u32, u32)> = (0..freqs.len() as u16)
            .filter_map(|s| code.bit_length(s).map(|l| (code.codes[s as usize], l)))
            .collect();
        for (i, &(ca, la)) in words.iter().enumerate() {
            for (j, &(cb, lb)) in words.iter().enumerate() {
                if i == j {
                    continue;
                }
                if la <= lb {
                    assert_ne!(ca, cb >> (lb - la), "codeword {i} prefixes {j}");
                }
            }
        }
    }

    #[test]
    fn single_symbol_alphabet_works() {
        let code = HuffmanCode::from_frequencies(&[0, 42, 0]).unwrap();
        let mut w = BitWriter::new();
        code.encode(&mut w, 1).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(code.decode(&mut r).unwrap(), 1);
    }

    #[test]
    fn unknown_symbol_rejected() {
        let code = HuffmanCode::from_frequencies(&[1, 1]).unwrap();
        let mut w = BitWriter::new();
        assert_eq!(
            code.encode(&mut w, 9).unwrap_err(),
            HuffmanError::UnknownSymbol(9)
        );
    }

    #[test]
    fn all_zero_frequencies_rejected() {
        assert_eq!(
            HuffmanCode::from_frequencies(&[0, 0]).unwrap_err(),
            HuffmanError::NoSymbols
        );
    }

    #[test]
    fn table_round_trip() {
        let freqs = [9u64, 8, 7, 1, 0, 3];
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let mut w = BitWriter::new();
        code.write_table(&mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let restored = HuffmanCode::read_table(&mut r).unwrap();
        assert_eq!(restored, code);
    }

    #[test]
    fn bad_length_tables_rejected() {
        // Kraft violation: three length-1 codes.
        assert_eq!(
            HuffmanCode::from_lengths(vec![1, 1, 1]).unwrap_err(),
            HuffmanError::BadLengths
        );
        assert_eq!(
            HuffmanCode::from_lengths(vec![]).unwrap_err(),
            HuffmanError::BadLengths
        );
        assert_eq!(
            HuffmanCode::from_lengths(vec![0, 0]).unwrap_err(),
            HuffmanError::BadLengths
        );
    }

    #[test]
    fn entropy_known_values() {
        assert!((entropy_bits(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy_bits(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy_bits(&[5, 0, 0]), 0.0);
        assert_eq!(entropy_bits(&[]), 0.0);
    }

    #[test]
    fn deterministic_construction() {
        let freqs = [3u64, 3, 3, 3, 3];
        let a = HuffmanCode::from_frequencies(&freqs).unwrap();
        let b = HuffmanCode::from_frequencies(&freqs).unwrap();
        assert_eq!(a, b);
    }
}
