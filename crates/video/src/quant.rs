//! Coefficient quantization — the lossy box of Figure 1.
//!
//! Paper §3: *"The DCT itself does not fundamentally reduce the amount of
//! information … The higher spatial frequencies represent finer detail
//! that is eliminated first."* The quantizer implements that elimination:
//! a perceptual base matrix (coarser steps at high frequencies) scaled by
//! a quality factor that the rate controller adjusts frame to frame.

use crate::dct::BLOCK;

/// The JPEG Annex-K luminance quantization matrix — the canonical
/// "eliminate fine detail first" weighting.
pub const BASE_MATRIX: [u16; BLOCK * BLOCK] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// A flat matrix used for inter (residual) blocks, as in MPEG-2.
pub const FLAT_MATRIX: [u16; BLOCK * BLOCK] = [16; BLOCK * BLOCK];

/// Error for an out-of-range quality setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadQualityError(
    /// The rejected quality value.
    pub u8,
);

impl core::fmt::Display for BadQualityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "quality {} outside 1..=100", self.0)
    }
}

impl std::error::Error for BadQualityError {}

/// A quantizer: a scaled step matrix applied entrywise.
///
/// # Example
///
/// ```
/// use video::quant::Quantizer;
///
/// let q = Quantizer::from_quality(50)?;
/// let coeffs = [100.0; 64];
/// let levels = q.quantize(&coeffs);
/// let back = q.dequantize(&levels);
/// // Reconstruction error bounded by half a step.
/// for (c, b) in coeffs.iter().zip(&back) {
///     assert!((c - b).abs() <= q.step(0).max(q.step(63)) / 2.0 + 1e-9);
/// }
/// # Ok::<(), video::quant::BadQualityError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    steps: [f64; BLOCK * BLOCK],
    quality: u8,
}

impl Quantizer {
    /// Builds a quantizer from a JPEG-style quality factor in `1..=100`
    /// (higher = finer) using the base luminance matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BadQualityError`] outside `1..=100`.
    pub fn from_quality(quality: u8) -> Result<Self, BadQualityError> {
        Self::from_quality_with_matrix(quality, &BASE_MATRIX)
    }

    /// Builds a quantizer from a quality factor and an explicit base
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BadQualityError`] outside `1..=100`.
    pub fn from_quality_with_matrix(
        quality: u8,
        matrix: &[u16; BLOCK * BLOCK],
    ) -> Result<Self, BadQualityError> {
        if quality == 0 || quality > 100 {
            return Err(BadQualityError(quality));
        }
        // Standard IJG scaling.
        let scale = if quality < 50 {
            5000.0 / quality as f64
        } else {
            200.0 - 2.0 * quality as f64
        };
        let mut steps = [0.0; BLOCK * BLOCK];
        for (s, &m) in steps.iter_mut().zip(matrix.iter()) {
            *s = ((m as f64 * scale + 50.0) / 100.0).clamp(1.0, 255.0);
        }
        Ok(Self { steps, quality })
    }

    /// The quality this quantizer was built from.
    #[must_use]
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// The step size at coefficient index `i` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[must_use]
    pub fn step(&self, i: usize) -> f64 {
        self.steps[i]
    }

    /// Quantizes a coefficient block to integer levels.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != 64`.
    #[must_use]
    pub fn quantize(&self, coeffs: &[f64]) -> [i16; BLOCK * BLOCK] {
        assert_eq!(coeffs.len(), BLOCK * BLOCK, "expected an 8x8 block");
        let mut out = [0i16; BLOCK * BLOCK];
        for i in 0..BLOCK * BLOCK {
            out[i] = (coeffs[i] / self.steps[i]).round().clamp(-2047.0, 2047.0) as i16;
        }
        out
    }

    /// Reconstructs coefficients from levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != 64`.
    #[must_use]
    pub fn dequantize(&self, levels: &[i16]) -> [f64; BLOCK * BLOCK] {
        assert_eq!(levels.len(), BLOCK * BLOCK, "expected an 8x8 block");
        let mut out = [0.0; BLOCK * BLOCK];
        for i in 0..BLOCK * BLOCK {
            out[i] = levels[i] as f64 * self.steps[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    #[test]
    fn quality_bounds_enforced() {
        assert!(Quantizer::from_quality(1).is_ok());
        assert!(Quantizer::from_quality(100).is_ok());
        assert_eq!(Quantizer::from_quality(0).unwrap_err(), BadQualityError(0));
        assert_eq!(
            Quantizer::from_quality(101).unwrap_err(),
            BadQualityError(101)
        );
    }

    #[test]
    fn higher_quality_means_finer_steps() {
        let coarse = Quantizer::from_quality(10).unwrap();
        let fine = Quantizer::from_quality(90).unwrap();
        for i in 0..64 {
            assert!(fine.step(i) <= coarse.step(i), "index {i}");
        }
    }

    #[test]
    fn high_frequencies_get_coarser_steps() {
        let q = Quantizer::from_quality(50).unwrap();
        // DC step much smaller than the highest-frequency step.
        assert!(q.step(0) < q.step(63));
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = Xoroshiro128::new(21);
        let q = Quantizer::from_quality(50).unwrap();
        let coeffs: Vec<f64> = (0..64).map(|_| rng.range_f64(-500.0, 500.0)).collect();
        let back = q.dequantize(&q.quantize(&coeffs));
        for i in 0..64 {
            assert!(
                (coeffs[i] - back[i]).abs() <= q.step(i) / 2.0 + 1e-9,
                "index {i}: {} vs {}",
                coeffs[i],
                back[i]
            );
        }
    }

    #[test]
    fn small_high_frequency_coefficients_become_zero() {
        let q = Quantizer::from_quality(50).unwrap();
        let mut coeffs = [0.0; 64];
        coeffs[63] = 20.0; // below half the high-frequency step at q50
        let levels = q.quantize(&coeffs);
        assert_eq!(levels[63], 0, "fine detail must be eliminated first");
        // The same amplitude at DC survives.
        let mut coeffs2 = [0.0; 64];
        coeffs2[0] = 20.0;
        assert_ne!(q.quantize(&coeffs2)[0], 0);
    }

    #[test]
    fn levels_saturate_at_representable_range() {
        let q = Quantizer::from_quality(100).unwrap();
        let mut coeffs = [0.0; 64];
        coeffs[0] = 1e9;
        coeffs[1] = -1e9;
        let l = q.quantize(&coeffs);
        assert_eq!(l[0], 2047);
        assert_eq!(l[1], -2047);
    }

    #[test]
    fn flat_matrix_is_uniform() {
        let q = Quantizer::from_quality_with_matrix(50, &FLAT_MATRIX).unwrap();
        for i in 1..64 {
            assert_eq!(q.step(i), q.step(0));
        }
    }
}
