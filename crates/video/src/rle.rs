//! Run-length coding of zig-zag-scanned coefficient blocks.
//!
//! JPEG/MPEG style: each nonzero AC coefficient is coded as a
//! `(run-of-zeros, size-category)` symbol plus amplitude bits; a ZRL
//! symbol encodes 16 consecutive zeros, and EOB terminates the block. The
//! DC coefficient is differentially coded by the encoder layer and is not
//! handled here.

use crate::bitstream::size_category;
use crate::dct::BLOCK;

/// One run-length event in a scanned block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RleEvent {
    /// `run` zeros followed by a nonzero `level` (run is 0..=15).
    Run {
        /// Number of preceding zeros (0..=15).
        run: u8,
        /// The nonzero coefficient value.
        level: i16,
    },
    /// Sixteen consecutive zeros (JPEG's ZRL).
    ZeroRunLength,
    /// End of block: every remaining coefficient is zero.
    EndOfBlock,
}

/// Errors decoding a run-length event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RleError {
    /// Events describe more than 63 AC coefficients.
    Overflow,
    /// A run event carried a zero level (forbidden; zero levels are runs).
    ZeroLevel,
}

impl core::fmt::Display for RleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RleError::Overflow => f.write_str("run-length events exceed 63 AC coefficients"),
            RleError::ZeroLevel => f.write_str("run event with zero level"),
        }
    }
}

impl std::error::Error for RleError {}

/// Encodes the 63 AC coefficients of a scanned block (`scanned[1..]`) into
/// run-length events.
///
/// # Panics
///
/// Panics if `scanned.len() != 64`.
#[must_use]
pub fn encode_ac(scanned: &[i16]) -> Vec<RleEvent> {
    assert_eq!(
        scanned.len(),
        BLOCK * BLOCK,
        "expected an 8x8 scanned block"
    );
    let ac = &scanned[1..];
    let mut events = Vec::new();
    let mut run = 0u8;
    let last_nonzero = ac.iter().rposition(|&v| v != 0);
    let Some(last) = last_nonzero else {
        events.push(RleEvent::EndOfBlock);
        return events;
    };
    for &v in &ac[..=last] {
        if v == 0 {
            run += 1;
            if run == 16 {
                events.push(RleEvent::ZeroRunLength);
                run = 0;
            }
        } else {
            events.push(RleEvent::Run { run, level: v });
            run = 0;
        }
    }
    if last < ac.len() - 1 {
        events.push(RleEvent::EndOfBlock);
    }
    events
}

/// Decodes run-length events back into the 63 AC coefficients, returning a
/// full 64-slot scanned block with DC left as 0.
///
/// # Errors
///
/// Returns [`RleError`] on malformed event streams.
pub fn decode_ac(events: &[RleEvent]) -> Result<[i16; BLOCK * BLOCK], RleError> {
    let mut out = [0i16; BLOCK * BLOCK];
    let mut pos = 1usize; // AC coefficients start at index 1
    for ev in events {
        match *ev {
            RleEvent::Run { run, level } => {
                if level == 0 {
                    return Err(RleError::ZeroLevel);
                }
                pos += run as usize;
                if pos >= BLOCK * BLOCK {
                    return Err(RleError::Overflow);
                }
                out[pos] = level;
                pos += 1;
            }
            RleEvent::ZeroRunLength => {
                pos += 16;
                if pos > BLOCK * BLOCK {
                    return Err(RleError::Overflow);
                }
            }
            RleEvent::EndOfBlock => break,
        }
    }
    Ok(out)
}

/// Maps an event to its Huffman symbol: `(run << 4) | size` for runs,
/// `0x00` for EOB, `0xF0` for ZRL — the JPEG AC symbol space.
#[must_use]
pub fn event_symbol(ev: &RleEvent) -> u16 {
    match *ev {
        RleEvent::EndOfBlock => 0x00,
        RleEvent::ZeroRunLength => 0xF0,
        RleEvent::Run { run, level } => ((run as u16) << 4) | size_category(level as i32) as u16,
    }
}

/// The amplitude bits `(value, size)` an event contributes after its
/// symbol, or `None` for EOB/ZRL.
#[must_use]
pub fn event_amplitude(ev: &RleEvent) -> Option<(i32, u32)> {
    match *ev {
        RleEvent::Run { level, .. } => Some((level as i32, size_category(level as i32))),
        _ => None,
    }
}

/// Reconstructs an event from its symbol and decoded amplitude.
///
/// `amplitude` is ignored for EOB/ZRL symbols.
#[must_use]
pub fn event_from_symbol(symbol: u16, amplitude: i32) -> RleEvent {
    match symbol {
        0x00 => RleEvent::EndOfBlock,
        0xF0 => RleEvent::ZeroRunLength,
        s => RleEvent::Run {
            run: ((s >> 4) & 0x0F) as u8,
            level: amplitude as i16,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    #[test]
    fn all_zero_block_is_just_eob() {
        let block = [0i16; 64];
        let ev = encode_ac(&block);
        assert_eq!(ev, vec![RleEvent::EndOfBlock]);
        let back = decode_ac(&ev).unwrap();
        assert_eq!(back, block);
    }

    #[test]
    fn round_trip_random_sparse_blocks() {
        let mut rng = Xoroshiro128::new(31);
        for _ in 0..200 {
            let mut block = [0i16; 64];
            for slot in block.iter_mut().skip(1) {
                if rng.chance(0.15) {
                    let mut v = rng.range_i64(-255, 255) as i16;
                    if v == 0 {
                        v = 1;
                    }
                    *slot = v;
                }
            }
            let ev = encode_ac(&block);
            let mut back = decode_ac(&ev).unwrap();
            back[0] = block[0]; // DC handled elsewhere
            assert_eq!(back, block);
        }
    }

    #[test]
    fn long_zero_runs_use_zrl() {
        let mut block = [0i16; 64];
        block[40] = 5; // 39 zeros before it: 2 ZRL + run 7
        let ev = encode_ac(&block);
        let zrls = ev.iter().filter(|e| **e == RleEvent::ZeroRunLength).count();
        assert_eq!(zrls, 2);
        assert!(matches!(ev[2], RleEvent::Run { run: 7, level: 5 }));
        assert_eq!(decode_ac(&ev).unwrap()[40], 5);
    }

    #[test]
    fn trailing_nonzero_needs_no_eob() {
        let mut block = [0i16; 64];
        block[63] = -9;
        let ev = encode_ac(&block);
        assert!(!ev.contains(&RleEvent::EndOfBlock));
        assert_eq!(decode_ac(&ev).unwrap()[63], -9);
    }

    #[test]
    fn overflow_detected() {
        let ev = vec![
            RleEvent::ZeroRunLength,
            RleEvent::ZeroRunLength,
            RleEvent::ZeroRunLength,
            RleEvent::ZeroRunLength,
            RleEvent::Run { run: 0, level: 1 },
        ];
        assert_eq!(decode_ac(&ev).unwrap_err(), RleError::Overflow);
    }

    #[test]
    fn zero_level_rejected() {
        let ev = vec![RleEvent::Run { run: 0, level: 0 }];
        assert_eq!(decode_ac(&ev).unwrap_err(), RleError::ZeroLevel);
    }

    #[test]
    fn symbol_mapping_round_trip() {
        for ev in [
            RleEvent::EndOfBlock,
            RleEvent::ZeroRunLength,
            RleEvent::Run { run: 3, level: -17 },
            RleEvent::Run { run: 15, level: 1 },
        ] {
            let sym = event_symbol(&ev);
            let amp = event_amplitude(&ev).map(|(v, _)| v).unwrap_or(0);
            assert_eq!(event_from_symbol(sym, amp), ev);
        }
    }

    #[test]
    fn symbols_stay_in_byte_range() {
        let ev = RleEvent::Run {
            run: 15,
            level: 2047,
        };
        let sym = event_symbol(&ev);
        assert!(sym <= 0xFF, "symbol {sym:#x} exceeds the byte alphabet");
    }
}
