//! IP-style packets: header, checksum, fragmentation and reassembly.
//!
//! Paper §7: limited-purpose devices "can make use of the small IP stacks
//! that have been developed over the past several years". This is such a
//! stack's network layer: a compact fixed header with a 16-bit ones'-
//! complement checksum, MTU fragmentation, and in-memory reassembly.

/// A 32-bit host address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u32);

impl core::fmt::Display for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// Transport protocol selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Datagram service.
    Udp,
    /// Reliable-stream service (TCP-lite).
    Tcp,
}

impl Protocol {
    fn to_byte(self) -> u8 {
        match self {
            Protocol::Udp => 17,
            Protocol::Tcp => 6,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            17 => Some(Protocol::Udp),
            6 => Some(Protocol::Tcp),
            _ => None,
        }
    }
}

/// Header length in bytes.
pub const HEADER_LEN: usize = 20;

/// An IP-style packet (possibly a fragment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Datagram id (shared by all fragments of one datagram).
    pub id: u16,
    /// Byte offset of this fragment within the datagram.
    pub frag_offset: u16,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Errors decoding a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer bytes than a header.
    Truncated,
    /// Checksum mismatch (corruption).
    BadChecksum,
    /// Unknown protocol number.
    BadProtocol(u8),
    /// Length field disagrees with the buffer.
    BadLength,
}

impl core::fmt::Display for PacketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacketError::Truncated => f.write_str("packet truncated"),
            PacketError::BadChecksum => f.write_str("checksum mismatch"),
            PacketError::BadProtocol(p) => write!(f, "unknown protocol {p}"),
            PacketError::BadLength => f.write_str("length field mismatch"),
        }
    }
}

impl std::error::Error for PacketError {}

/// RFC-1071-style 16-bit ones'-complement checksum.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in bytes.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
    }
    !(sum as u16)
}

impl Packet {
    /// Serializes to wire format (header with checksum, then payload).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let total = HEADER_LEN + self.payload.len();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&self.src.0.to_be_bytes());
        out.extend_from_slice(&self.dst.0.to_be_bytes());
        out.push(self.protocol.to_byte());
        out.push(self.more_fragments as u8);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.frag_offset.to_be_bytes());
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // reserved
        debug_assert_eq!(out.len(), HEADER_LEN);
        out.extend_from_slice(&self.payload);
        let ck = checksum(&out);
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parses and verifies wire format.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < HEADER_LEN {
            return Err(PacketError::Truncated);
        }
        let total = u16::from_be_bytes([bytes[14], bytes[15]]) as usize;
        if total != bytes.len() {
            return Err(PacketError::BadLength);
        }
        // Verify checksum by zeroing the field.
        let mut copy = bytes.to_vec();
        copy[16] = 0;
        copy[17] = 0;
        let expect = u16::from_be_bytes([bytes[16], bytes[17]]);
        if checksum(&copy) != expect {
            return Err(PacketError::BadChecksum);
        }
        let protocol = Protocol::from_byte(bytes[8]).ok_or(PacketError::BadProtocol(bytes[8]))?;
        Ok(Self {
            src: Addr(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])),
            dst: Addr(u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]])),
            protocol,
            more_fragments: bytes[9] != 0,
            id: u16::from_be_bytes([bytes[10], bytes[11]]),
            frag_offset: u16::from_be_bytes([bytes[12], bytes[13]]),
            payload: bytes[HEADER_LEN..].to_vec(),
        })
    }

    /// Splits a datagram into MTU-sized fragments.
    ///
    /// # Panics
    ///
    /// Panics if `mtu <= HEADER_LEN`.
    #[must_use]
    pub fn fragment(&self, mtu: usize) -> Vec<Packet> {
        assert!(mtu > HEADER_LEN, "mtu must exceed the header");
        let chunk = mtu - HEADER_LEN;
        if self.payload.len() <= chunk {
            let mut p = self.clone();
            p.more_fragments = false;
            p.frag_offset = 0;
            return vec![p];
        }
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < self.payload.len() {
            let hi = (off + chunk).min(self.payload.len());
            out.push(Packet {
                src: self.src,
                dst: self.dst,
                protocol: self.protocol,
                id: self.id,
                frag_offset: off as u16,
                more_fragments: hi < self.payload.len(),
                payload: self.payload[off..hi].to_vec(),
            });
            off = hi;
        }
        out
    }
}

/// Reassembles fragments back into datagrams, keyed by (src, id).
#[derive(Debug, Clone, Default)]
pub struct Reassembler {
    partial: std::collections::HashMap<(Addr, u16), Vec<Packet>>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts a fragment; returns the complete datagram payload when the
    /// last missing piece arrives.
    pub fn push(&mut self, fragment: Packet) -> Option<Packet> {
        let key = (fragment.src, fragment.id);
        let entry = self.partial.entry(key).or_default();
        entry.push(fragment);
        // Complete when a no-more-fragments piece exists and offsets tile
        // contiguously from zero.
        let mut frags = entry.clone();
        frags.sort_by_key(|f| f.frag_offset);
        let has_last = frags.iter().any(|f| !f.more_fragments);
        if !has_last {
            return None;
        }
        let mut expect = 0usize;
        for f in &frags {
            if f.frag_offset as usize != expect {
                return None;
            }
            expect += f.payload.len();
        }
        // Tiled completely: assemble.
        let mut payload = Vec::with_capacity(expect);
        for f in &frags {
            payload.extend_from_slice(&f.payload);
        }
        let first = frags.remove(0);
        self.partial.remove(&key);
        Some(Packet {
            payload,
            frag_offset: 0,
            more_fragments: false,
            ..first
        })
    }

    /// Number of incomplete datagrams held.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    fn sample(payload_len: usize) -> Packet {
        Packet {
            src: Addr(0x0A000001),
            dst: Addr(0x0A000002),
            protocol: Protocol::Udp,
            id: 7,
            frag_offset: 0,
            more_fragments: false,
            payload: (0..payload_len).map(|i| i as u8).collect(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample(100);
        let wire = p.encode();
        assert_eq!(Packet::decode(&wire).unwrap(), p);
    }

    #[test]
    fn corruption_detected() {
        let mut wire = sample(50).encode();
        wire[25] ^= 0x40;
        assert_eq!(Packet::decode(&wire).unwrap_err(), PacketError::BadChecksum);
    }

    #[test]
    fn truncation_and_length_mismatch_detected() {
        let wire = sample(50).encode();
        assert_eq!(
            Packet::decode(&wire[..10]).unwrap_err(),
            PacketError::Truncated
        );
        assert_eq!(
            Packet::decode(&wire[..30]).unwrap_err(),
            PacketError::BadLength
        );
    }

    #[test]
    fn fragmentation_tiles_payload() {
        let p = sample(1000);
        let frags = p.fragment(256);
        assert!(frags.len() > 1);
        let mut total = 0;
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(f.frag_offset as usize, total);
            total += f.payload.len();
            assert_eq!(f.more_fragments, i + 1 < frags.len());
            assert!(f.encode().len() <= 256);
        }
        assert_eq!(total, 1000);
    }

    #[test]
    fn small_payload_is_single_fragment() {
        let p = sample(10);
        let frags = p.fragment(256);
        assert_eq!(frags.len(), 1);
        assert!(!frags[0].more_fragments);
    }

    #[test]
    fn reassembly_in_order_and_shuffled() {
        let p = sample(1200);
        let mut rng = Xoroshiro128::new(91);
        for shuffle in [false, true] {
            let mut frags = p.fragment(200);
            if shuffle {
                rng.shuffle(&mut frags);
            }
            let mut r = Reassembler::new();
            let mut done = None;
            for f in frags {
                if let Some(d) = r.push(f) {
                    done = Some(d);
                }
            }
            let d = done.expect("datagram should complete");
            assert_eq!(d.payload, p.payload);
            assert_eq!(r.pending(), 0);
        }
    }

    #[test]
    fn missing_fragment_keeps_datagram_pending() {
        let p = sample(600);
        let mut frags = p.fragment(200);
        frags.remove(1);
        let mut r = Reassembler::new();
        for f in frags {
            assert!(r.push(f).is_none());
        }
        assert_eq!(r.pending(), 1);
    }

    #[test]
    fn interleaved_datagrams_reassemble_independently() {
        let mut a = sample(500);
        a.id = 1;
        let mut b = sample(500);
        b.id = 2;
        let fa = a.fragment(200);
        let fb = b.fragment(200);
        let mut r = Reassembler::new();
        let mut complete = 0;
        for (x, y) in fa.into_iter().zip(fb) {
            if r.push(x).is_some() {
                complete += 1;
            }
            if r.push(y).is_some() {
                complete += 1;
            }
        }
        assert_eq!(complete, 2);
    }

    #[test]
    fn checksum_known_properties() {
        assert_eq!(checksum(&[]), 0xFFFF);
        // Appending the checksum makes the total sum ~0.
        let data = vec![0x12, 0x34, 0x56, 0x78];
        let ck = checksum(&data);
        let mut with = data.clone();
        with.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(checksum(&with), 0);
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr(0x0A000001).to_string(), "10.0.0.1");
    }
}
