//! TCP-lite: a reliable stream over the lossy link.
//!
//! Sequence-numbered segments, cumulative ACKs, a fixed sender window,
//! and timeout retransmission — the minimum machinery that turns the
//! lossy link into the reliable channel content download and DRM
//! transactions (§7) require. Deliberately not TCP-conformant: no
//! handshake, no congestion control beyond the fixed window (DESIGN.md
//! §5).

use crate::link::{Link, LinkConfig};
use crate::packet::{Addr, Packet, Protocol};

/// Transport configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Segment payload size in bytes.
    pub mss: usize,
    /// Sender window in segments.
    pub window: usize,
    /// Retransmission timeout in ticks.
    pub rto_ticks: u64,
    /// Give up after this many ticks.
    pub deadline_ticks: u64,
    /// Give up on the connection once any single segment has been
    /// retransmitted this many times — a dead link fails after
    /// `max_retransmits * rto_ticks`-ish ticks instead of burning the
    /// whole deadline.
    pub max_retransmits: u32,
}

impl Default for TcpConfig {
    /// MSS 512, window 8, RTO 200 ticks, deadline 2,000,000 ticks, 32
    /// retransmits per segment before declaring the connection dead.
    fn default() -> Self {
        Self {
            mss: 512,
            window: 8,
            rto_ticks: 200,
            deadline_ticks: 2_000_000,
            max_retransmits: 32,
        }
    }
}

/// Errors from a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// The deadline passed before every byte was acknowledged.
    Timeout,
    /// Empty input (nothing to transfer).
    Empty,
    /// One segment exhausted its retransmit budget
    /// ([`TcpConfig::max_retransmits`]): the peer (or the link) is
    /// dead, so the connection gives up long before the deadline.
    ConnectionTimedOut,
}

impl core::fmt::Display for TcpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            TcpError::Timeout => "transfer deadline exceeded",
            TcpError::Empty => "nothing to transfer",
            TcpError::ConnectionTimedOut => "connection timed out (retransmit budget exhausted)",
        })
    }
}

impl std::error::Error for TcpError {}

/// Statistics from a completed transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// The received byte stream (equal to the input on success).
    pub data: Vec<u8>,
    /// Ticks from start to the final ACK.
    pub ticks: u64,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Goodput in bytes per tick.
    pub goodput: f64,
}

/// Segment header layout inside the IP payload: seq (4), ack (4),
/// is_ack (1), then data.
fn encode_segment(seq: u32, ack: u32, is_ack: bool, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + data.len());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&ack.to_be_bytes());
    out.push(is_ack as u8);
    out.extend_from_slice(data);
    out
}

fn decode_segment(bytes: &[u8]) -> Option<(u32, u32, bool, &[u8])> {
    if bytes.len() < 9 {
        return None;
    }
    let seq = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let ack = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    Some((seq, ack, bytes[8] != 0, &bytes[9..]))
}

/// Transfers `data` reliably over a pair of simulated links (data and ACK
/// directions, independently lossy), returning the receive-side stream
/// and statistics.
///
/// # Errors
///
/// Returns [`TcpError`] on empty input, deadline expiry, or a segment
/// exhausting its retransmit budget (a dead connection).
pub fn transfer(
    data: &[u8],
    config: TcpConfig,
    link_config: LinkConfig,
    seed: u64,
) -> Result<TransferReport, TcpError> {
    if data.is_empty() {
        return Err(TcpError::Empty);
    }
    let mut data_link = Link::new(link_config, seed);
    let mut ack_link = Link::new(link_config, seed ^ 0xDEAD_BEEF);
    let src = Addr(1);
    let dst = Addr(2);

    // Sender state.
    let n_segments = data.len().div_ceil(config.mss);
    let mut acked = 0usize; // segments fully acknowledged (cumulative)
    let mut send_times: Vec<Option<u64>> = vec![None; n_segments];
    let mut retransmit_counts: Vec<u32> = vec![0; n_segments];
    let mut segments_sent = 0u64;
    let mut retransmissions = 0u64;

    // Receiver state.
    let mut received: Vec<Option<Vec<u8>>> = vec![None; n_segments];
    let mut next_expected = 0usize;

    let mut now = 0u64;
    // The IP-layer datagram id is a 16-bit counter that wraps every
    // 65,536 packets, so on long transfers distinct segments alias the
    // same id. It is diagnostic only: reliability is keyed entirely on
    // the byte `seq`/`ack` fields inside the segment header, never on
    // `Packet::id` (pinned by `transfer_crosses_the_packet_id_boundary`).
    let mut packet_id = 0u16;
    while acked < n_segments {
        if now > config.deadline_ticks {
            return Err(TcpError::Timeout);
        }
        // Sender: (re)transmit anything in the window that is unsent or
        // timed out.
        let window_end = (acked + config.window).min(n_segments);
        for (s, slot) in send_times
            .iter_mut()
            .enumerate()
            .take(window_end)
            .skip(acked)
        {
            let due = match *slot {
                None => true,
                Some(t) => now >= t + config.rto_ticks,
            };
            if due {
                if slot.is_some() {
                    if retransmit_counts[s] >= config.max_retransmits {
                        return Err(TcpError::ConnectionTimedOut);
                    }
                    retransmit_counts[s] += 1;
                    retransmissions += 1;
                }
                *slot = Some(now);
                segments_sent += 1;
                let lo = s * config.mss;
                let hi = (lo + config.mss).min(data.len());
                let seg = encode_segment((s * config.mss) as u32, 0, false, &data[lo..hi]);
                let packet = Packet {
                    src,
                    dst,
                    protocol: Protocol::Tcp,
                    id: packet_id,
                    frag_offset: 0,
                    more_fragments: false,
                    payload: seg,
                };
                packet_id = packet_id.wrapping_add(1);
                data_link.send(packet.encode(), now);
            }
        }
        // Advance time to the next interesting moment.
        now += 1;
        // Receiver: take arrived data segments, ACK cumulatively. Only
        // the byte `seq` identifies a segment — the packet's wrapped
        // 16-bit id is never consulted.
        for wire in data_link.deliver(now) {
            let Ok(packet) = Packet::decode(&wire) else {
                continue;
            };
            let Some((seq, _, is_ack, payload)) = decode_segment(&packet.payload) else {
                continue;
            };
            if is_ack {
                continue;
            }
            let s = seq as usize / config.mss;
            if s < n_segments && received[s].is_none() {
                received[s] = Some(payload.to_vec());
            }
            while next_expected < n_segments && received[next_expected].is_some() {
                next_expected += 1;
            }
            // Cumulative ACK: next expected byte.
            let ack_seg = encode_segment(0, (next_expected * config.mss) as u32, true, &[]);
            let ack_packet = Packet {
                src: dst,
                dst: src,
                protocol: Protocol::Tcp,
                id: packet_id,
                frag_offset: 0,
                more_fragments: false,
                payload: ack_seg,
            };
            packet_id = packet_id.wrapping_add(1);
            ack_link.send(ack_packet.encode(), now);
        }
        // Sender: process ACKs.
        for wire in ack_link.deliver(now) {
            let Ok(packet) = Packet::decode(&wire) else {
                continue;
            };
            let Some((_, ack, is_ack, _)) = decode_segment(&packet.payload) else {
                continue;
            };
            if !is_ack {
                continue;
            }
            let ack_segs = (ack as usize) / config.mss;
            if ack_segs > acked {
                acked = ack_segs;
            }
        }
    }

    let mut out = Vec::with_capacity(data.len());
    for seg in received.into_iter().flatten() {
        out.extend(seg);
    }
    out.truncate(data.len());
    Ok(TransferReport {
        goodput: data.len() as f64 / now.max(1) as f64,
        data: out,
        ticks: now,
        segments_sent,
        retransmissions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoroshiro128::new(seed);
        (0..len).map(|_| rng.next_u32() as u8).collect()
    }

    #[test]
    fn lossless_transfer_is_exact_with_no_retransmissions() {
        let data = payload(10_000, 1);
        let r = transfer(&data, TcpConfig::default(), LinkConfig::default(), 2).unwrap();
        assert_eq!(r.data, data);
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn lossy_transfer_still_exact() {
        let data = payload(20_000, 3);
        let cfg = LinkConfig::default().with_loss(0.2);
        let r = transfer(&data, TcpConfig::default(), cfg, 4).unwrap();
        assert_eq!(r.data, data);
        assert!(r.retransmissions > 0, "loss must force retransmissions");
    }

    #[test]
    fn cost_grows_with_loss() {
        let data = payload(20_000, 5);
        let mut prev_ticks = 0u64;
        for (i, loss) in [0.0, 0.1, 0.3].iter().enumerate() {
            let cfg = LinkConfig::default().with_loss(*loss);
            let r = transfer(&data, TcpConfig::default(), cfg, 6).unwrap();
            assert_eq!(r.data, data, "loss {loss}");
            if i > 0 {
                assert!(
                    r.ticks > prev_ticks,
                    "higher loss should take longer: {} vs {prev_ticks}",
                    r.ticks
                );
            }
            prev_ticks = r.ticks;
        }
    }

    #[test]
    fn severe_loss_eventually_times_out() {
        let data = payload(5_000, 7);
        let tcp = TcpConfig {
            deadline_ticks: 3_000,
            ..Default::default()
        };
        let cfg = LinkConfig::default().with_loss(0.9);
        assert_eq!(transfer(&data, tcp, cfg, 8).unwrap_err(), TcpError::Timeout);
    }

    #[test]
    fn dead_link_trips_the_retransmit_cap_long_before_the_deadline() {
        // 99% loss: a round trip survives one attempt in ~10,000, so
        // segments retransmit on every RTO until the cap trips — well
        // under the 2M-tick deadline a pure timeout would burn.
        let data = payload(2_000, 15);
        let tcp = TcpConfig::default();
        let dead = LinkConfig::default().with_loss(0.99);
        let err = transfer(&data, tcp, dead, 16).unwrap_err();
        assert_eq!(err, TcpError::ConnectionTimedOut);
        // The give-up point is max_retransmits RTOs plus change.
        let bound = (u64::from(tcp.max_retransmits) + 2) * tcp.rto_ticks;
        assert!(bound < tcp.deadline_ticks / 100, "cap must beat deadline");
    }

    #[test]
    fn retransmit_cap_is_per_segment_not_global() {
        // 20% loss forces plenty of total retransmissions across many
        // segments, but no single segment comes near the cap: the
        // transfer must still complete.
        let data = payload(50_000, 17);
        let cfg = LinkConfig::default().with_loss(0.2);
        let r = transfer(&data, TcpConfig::default(), cfg, 18).unwrap();
        assert_eq!(r.data, data);
        assert!(
            r.retransmissions > u64::from(TcpConfig::default().max_retransmits),
            "total retransmissions exceed the per-segment cap: {}",
            r.retransmissions
        );
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            transfer(&[], TcpConfig::default(), LinkConfig::default(), 9).unwrap_err(),
            TcpError::Empty
        );
    }

    #[test]
    fn single_byte_transfer() {
        let r = transfer(&[42], TcpConfig::default(), LinkConfig::default(), 10).unwrap();
        assert_eq!(r.data, vec![42]);
    }

    #[test]
    fn bigger_window_is_faster_on_clean_links() {
        let data = payload(50_000, 11);
        let slow = transfer(
            &data,
            TcpConfig {
                window: 1,
                ..Default::default()
            },
            LinkConfig::default(),
            12,
        )
        .unwrap();
        let fast = transfer(
            &data,
            TcpConfig {
                window: 16,
                ..Default::default()
            },
            LinkConfig::default(),
            12,
        )
        .unwrap();
        assert!(
            fast.ticks * 2 < slow.ticks,
            "window 16 ({}) should beat window 1 ({})",
            fast.ticks,
            slow.ticks
        );
        assert!(fast.goodput > slow.goodput);
    }

    #[test]
    fn transfer_crosses_the_packet_id_boundary() {
        // More than 65,536 data packets, so the u16 IP datagram id wraps
        // and distinct segments alias the same id. The transfer must
        // still be byte-exact because the receive side keys purely on
        // the byte `seq`/`ack` fields, never on the packet id.
        const N: usize = 70_000;
        let data = payload(N, 20);
        let tcp = TcpConfig {
            mss: 1, // one byte per packet -> one packet per segment
            window: 64,
            ..Default::default()
        };
        let r = transfer(&data, tcp, LinkConfig::default(), 21).unwrap();
        assert_eq!(r.data, data, "aliased packet ids must not corrupt data");
        assert_eq!(
            r.segments_sent, N as u64,
            "every byte is its own segment, sent exactly once on a clean link"
        );
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = payload(8_000, 13);
        let cfg = LinkConfig::default().with_loss(0.15);
        let a = transfer(&data, TcpConfig::default(), cfg, 14).unwrap();
        let b = transfer(&data, TcpConfig::default(), cfg, 14).unwrap();
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.retransmissions, b.retransmissions);
    }
}
