//! TCP-lite: a reliable stream over the lossy link.
//!
//! Sequence-numbered segments, cumulative ACKs, timeout retransmission,
//! and — since PR 10 — real congestion control: the machinery that turns
//! the lossy link into the reliable channel content download and DRM
//! transactions (§7) require, with a window honest enough to benchmark
//! ABR controllers against. Three sender modes
//! ([`CongestionControl`]):
//!
//! - `Fixed(w)` — the original fixed window, **bit-identical** to the
//!   pre-congestion-control engine (equality-pinned against an in-tree
//!   oracle copy);
//! - `Aimd` — Reno-style slow start / congestion avoidance /
//!   multiplicative decrease with fast retransmit on triple duplicate
//!   ACKs;
//! - `Cubic` — CUBIC-flavored window growth (β = 0.7, cubic recovery
//!   toward the pre-loss window).
//!
//! Adaptive modes estimate the RTO from SRTT/RTTVAR (RFC 6298 flavor)
//! under Karn's rule — no samples from retransmitted segments, samples
//! measured from transmit-complete (not offer) time — with exponential
//! backoff per retransmission. The retransmission timer itself starts at
//! the tick a frame finishes serializing ([`Link::send`]'s return
//! value): stamping at offer time made the tail of a window burst time
//! out while still queued behind `tx_free_at`, spawning spurious
//! retransmits that re-queued and compounded (the PR 10 storm bugfix).
//! Deliberately still not TCP-conformant: no handshake, no SACK
//! (DESIGN.md §5).

use crate::link::{Link, LinkConfig, LinkTrace};
use crate::packet::{Addr, Packet, Protocol};

/// Sender window policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CongestionControl {
    /// A fixed window of this many segments — the pre-PR-10 transport,
    /// pinned bit-identical to the original engine.
    Fixed(usize),
    /// Reno-style AIMD: slow start to `ssthresh`, additive increase
    /// past it, halve on loss, window capped at `max_window` segments.
    Aimd {
        /// Hard cap on the congestion window, in segments.
        max_window: usize,
    },
    /// CUBIC-flavored growth: concave recovery toward the pre-loss
    /// window `w_max`, then convex probing beyond it.
    Cubic {
        /// Hard cap on the congestion window, in segments.
        max_window: usize,
    },
}

impl CongestionControl {
    /// Reno-style AIMD with the default 256-segment cap.
    #[must_use]
    pub fn aimd() -> Self {
        Self::Aimd { max_window: 256 }
    }

    /// CUBIC-flavored growth with the default 256-segment cap.
    #[must_use]
    pub fn cubic() -> Self {
        Self::Cubic { max_window: 256 }
    }
}

impl Default for CongestionControl {
    /// The original fixed window of 8 segments.
    fn default() -> Self {
        Self::Fixed(8)
    }
}

/// Transport configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Segment payload size in bytes.
    pub mss: usize,
    /// Sender window policy (fixed window or congestion control).
    pub cc: CongestionControl,
    /// Retransmission timeout in ticks: the fixed RTO in
    /// [`CongestionControl::Fixed`] mode, the initial RTO (before any
    /// RTT sample) in the adaptive modes.
    pub rto_ticks: u64,
    /// Give up after this many ticks.
    pub deadline_ticks: u64,
    /// Give up on the connection once any single segment has been
    /// retransmitted this many times — a dead link fails after
    /// `max_retransmits * rto_ticks`-ish ticks instead of burning the
    /// whole deadline.
    pub max_retransmits: u32,
}

impl Default for TcpConfig {
    /// MSS 512, fixed window 8, RTO 200 ticks, deadline 2,000,000
    /// ticks, 32 retransmits per segment before declaring the
    /// connection dead.
    fn default() -> Self {
        Self {
            mss: 512,
            cc: CongestionControl::default(),
            rto_ticks: 200,
            deadline_ticks: 2_000_000,
            max_retransmits: 32,
        }
    }
}

/// Errors from a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// The deadline passed before every byte was acknowledged.
    Timeout,
    /// Empty input (nothing to transfer).
    Empty,
    /// One segment exhausted its retransmit budget
    /// ([`TcpConfig::max_retransmits`]): the peer (or the link) is
    /// dead, so the connection gives up long before the deadline.
    ConnectionTimedOut,
}

impl core::fmt::Display for TcpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            TcpError::Timeout => "transfer deadline exceeded",
            TcpError::Empty => "nothing to transfer",
            TcpError::ConnectionTimedOut => "connection timed out (retransmit budget exhausted)",
        })
    }
}

impl std::error::Error for TcpError {}

/// Statistics from a completed transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// The received byte stream (equal to the input on success).
    pub data: Vec<u8>,
    /// Ticks from start to the final ACK.
    pub ticks: u64,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Retransmissions triggered by triple duplicate ACKs (adaptive
    /// modes only) rather than an RTO.
    pub fast_retransmits: u64,
    /// Arrived data segments rejected by the receive-path validator
    /// (non-mss-aligned `seq` or wrong payload length).
    pub malformed_segments: u64,
    /// Goodput in bytes per tick.
    pub goodput: f64,
}

/// Floor on the adaptive RTO, so a converged (low-variance) estimator
/// cannot collapse onto the RTT itself and fire spuriously on the first
/// tick of jitter.
const MIN_RTO: u64 = 16;
/// Cap on the exponential RTO backoff shift (2^6 = 64x).
const RTO_BACKOFF_MAX_SHIFT: u32 = 6;
/// CUBIC multiplicative-decrease factor.
const CUBIC_BETA: f64 = 0.7;
/// CUBIC growth constant.
const CUBIC_C: f64 = 0.4;

/// Congestion-window and RTT-estimator state.
struct CwndState {
    cc: CongestionControl,
    cwnd: f64,
    ssthresh: f64,
    /// CUBIC: window at the last loss event.
    w_max: f64,
    /// CUBIC: start of the current growth epoch.
    epoch_start: Option<u64>,
    srtt: Option<f64>,
    rttvar: f64,
    /// Last tick a loss reaction was applied — one multiplicative
    /// decrease per RTO-ish window, not one per retransmitted segment.
    last_loss_reaction: Option<u64>,
}

impl CwndState {
    fn new(cc: CongestionControl) -> Self {
        Self {
            cc,
            cwnd: 2.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            srtt: None,
            rttvar: 0.0,
            last_loss_reaction: None,
        }
    }

    fn adaptive(&self) -> bool {
        !matches!(self.cc, CongestionControl::Fixed(_))
    }

    fn max_window(&self) -> usize {
        match self.cc {
            CongestionControl::Fixed(w) => w,
            CongestionControl::Aimd { max_window } | CongestionControl::Cubic { max_window } => {
                max_window.max(1)
            }
        }
    }

    /// The sender window, in segments, for this tick.
    fn window(&self) -> usize {
        match self.cc {
            CongestionControl::Fixed(w) => w,
            CongestionControl::Aimd { .. } | CongestionControl::Cubic { .. } => {
                (self.cwnd.floor() as usize).clamp(1, self.max_window())
            }
        }
    }

    /// Folds one RTT sample (RFC 6298 weights). Callers enforce Karn's
    /// rule: never sampled from a retransmitted segment.
    fn on_rtt_sample(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(s) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (s - sample).abs();
                self.srtt = Some(0.875 * s + 0.125 * sample);
            }
        }
    }

    /// The un-backed-off RTO: fixed in `Fixed` mode, estimated from
    /// SRTT/RTTVAR once a sample exists. The `srtt / 2` floor keeps the
    /// timer at least 1.5x the smoothed RTT even when the variance has
    /// converged to zero.
    fn base_rto(&self, config: &TcpConfig) -> u64 {
        if !self.adaptive() {
            return config.rto_ticks;
        }
        match self.srtt {
            None => config.rto_ticks,
            Some(s) => {
                let margin = (4.0 * self.rttvar).max(s / 2.0).max(1.0);
                let rto = (s + margin).ceil() as u64;
                rto.clamp(MIN_RTO, config.rto_ticks.max(MIN_RTO).saturating_mul(64))
            }
        }
    }

    /// The RTO for a segment already retransmitted `retransmit_count`
    /// times: exponential backoff in adaptive modes, flat in `Fixed`.
    fn rto_for(&self, config: &TcpConfig, retransmit_count: u32) -> u64 {
        let base = self.base_rto(config);
        if !self.adaptive() {
            return base;
        }
        base.saturating_mul(1 << retransmit_count.min(RTO_BACKOFF_MAX_SHIFT))
    }

    /// Window growth on `newly` cumulatively acknowledged segments.
    fn on_new_ack(&mut self, newly: usize, now: u64) {
        let newly = newly as f64;
        match self.cc {
            CongestionControl::Fixed(_) => {}
            CongestionControl::Aimd { .. } => {
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly;
                } else {
                    self.cwnd += newly / self.cwnd.max(1.0);
                }
            }
            CongestionControl::Cubic { .. } => {
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly;
                } else {
                    let epoch = *self.epoch_start.get_or_insert(now);
                    let rtt_unit = self.srtt.unwrap_or(MIN_RTO as f64).max(1.0);
                    let t = (now - epoch) as f64 / rtt_unit;
                    let k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
                    let target = CUBIC_C * (t - k).powi(3) + self.w_max;
                    if target > self.cwnd {
                        self.cwnd += (target - self.cwnd).min(newly);
                    } else {
                        // Below target (deep in the concave region):
                        // probe gently.
                        self.cwnd += 0.01 * newly;
                    }
                }
            }
        }
        self.cwnd = self.cwnd.min(self.max_window() as f64);
    }

    /// At most one multiplicative decrease per RTO-ish window, so a
    /// burst of same-event retransmissions does not collapse `ssthresh`
    /// to the floor.
    fn loss_reaction_due(&mut self, now: u64, config: &TcpConfig) -> bool {
        let window = self.base_rto(config);
        let due = match self.last_loss_reaction {
            Some(t) => now >= t.saturating_add(window),
            None => true,
        };
        if due {
            self.last_loss_reaction = Some(now);
        }
        due
    }

    /// Reaction to an RTO loss: back to slow start.
    fn on_rto_loss(&mut self) {
        match self.cc {
            CongestionControl::Fixed(_) => {}
            CongestionControl::Aimd { .. } => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = 1.0;
            }
            CongestionControl::Cubic { .. } => {
                self.w_max = self.cwnd.max(2.0);
                self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0);
                self.cwnd = 1.0;
                self.epoch_start = None;
            }
        }
    }

    /// Reaction to a fast retransmit: multiplicative decrease without
    /// draining to one segment.
    fn on_fast_retransmit(&mut self) {
        match self.cc {
            CongestionControl::Fixed(_) => {}
            CongestionControl::Aimd { .. } => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
            }
            CongestionControl::Cubic { .. } => {
                self.w_max = self.cwnd.max(2.0);
                self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0);
                self.ssthresh = self.cwnd;
                self.epoch_start = None;
            }
        }
    }
}

/// Segment header layout inside the IP payload: seq (4), ack (4),
/// is_ack (1), then data.
fn encode_segment(seq: u32, ack: u32, is_ack: bool, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + data.len());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&ack.to_be_bytes());
    out.push(is_ack as u8);
    out.extend_from_slice(data);
    out
}

fn decode_segment(bytes: &[u8]) -> Option<(u32, u32, bool, &[u8])> {
    if bytes.len() < 9 {
        return None;
    }
    let seq = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let ack = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    Some((seq, ack, bytes[8] != 0, &bytes[9..]))
}

/// Transfers `data` reliably over a pair of simulated links (data and ACK
/// directions, independently lossy), returning the receive-side stream
/// and statistics.
///
/// # Errors
///
/// Returns [`TcpError`] on empty input, deadline expiry, or a segment
/// exhausting its retransmit budget (a dead connection).
///
/// # Panics
///
/// Panics if `config.mss` is zero.
pub fn transfer(
    data: &[u8],
    config: TcpConfig,
    link_config: LinkConfig,
    seed: u64,
) -> Result<TransferReport, TcpError> {
    transfer_with(data, config, link_config, None, 0, seed)
}

/// [`transfer`] over links optionally driven by a bandwidth/loss trace,
/// evaluated from `trace_offset` (the absolute session tick at which
/// this transfer starts) so back-to-back fetches walk the schedule.
///
/// # Errors
///
/// As [`transfer`].
///
/// # Panics
///
/// Panics if `config.mss` is zero.
pub fn transfer_with(
    data: &[u8],
    config: TcpConfig,
    link_config: LinkConfig,
    trace: Option<&LinkTrace>,
    trace_offset: u64,
    seed: u64,
) -> Result<TransferReport, TcpError> {
    let mut data_link = match trace {
        Some(t) => Link::traced(link_config, t.clone(), trace_offset, seed),
        None => Link::new(link_config, seed),
    };
    let mut ack_link = match trace {
        Some(t) => Link::traced(link_config, t.clone(), trace_offset, seed ^ 0xDEAD_BEEF),
        None => Link::new(link_config, seed ^ 0xDEAD_BEEF),
    };
    transfer_over(data, config, &mut data_link, &mut ack_link)
}

/// The transfer engine over caller-supplied links — the injectable
/// entry: tests pre-load malformed frames, benchmarks pass traced or
/// queue-bounded links, and the wrappers above stay thin.
///
/// Within each tick the sender first processes that tick's arrived
/// ACKs, then retransmits: a cumulative ACK landing exactly on an RTO
/// boundary cancels the retransmission it just made moot.
///
/// # Errors
///
/// As [`transfer`].
///
/// # Panics
///
/// Panics if `config.mss` is zero.
pub fn transfer_over(
    data: &[u8],
    config: TcpConfig,
    data_link: &mut Link,
    ack_link: &mut Link,
) -> Result<TransferReport, TcpError> {
    assert!(config.mss > 0, "mss must be non-zero");
    if data.is_empty() {
        return Err(TcpError::Empty);
    }
    let src = Addr(1);
    let dst = Addr(2);

    // Sender state.
    let n_segments = data.len().div_ceil(config.mss);
    let mut acked = 0usize; // segments fully acknowledged (cumulative)
    let mut send_times: Vec<Option<u64>> = vec![None; n_segments];
    let mut retransmit_counts: Vec<u32> = vec![0; n_segments];
    let mut segments_sent = 0u64;
    let mut retransmissions = 0u64;
    let mut fast_retransmits = 0u64;
    let mut dup_acks = 0u32;
    let mut cwnd = CwndState::new(config.cc);

    // Receiver state.
    let mut received: Vec<Option<Vec<u8>>> = vec![None; n_segments];
    let mut next_expected = 0usize;
    let mut malformed_segments = 0u64;

    let mut now = 0u64;
    // The IP-layer datagram id is a 16-bit counter that wraps every
    // 65,536 packets, so on long transfers distinct segments alias the
    // same id. It is diagnostic only: reliability is keyed entirely on
    // the byte `seq`/`ack` fields inside the segment header, never on
    // `Packet::id` (pinned by `transfer_crosses_the_packet_id_boundary`).
    let mut packet_id = 0u16;
    loop {
        // Sender: process this tick's ACKs before any (re)transmission.
        for wire in ack_link.deliver(now) {
            let Ok(packet) = Packet::decode(&wire) else {
                continue;
            };
            let Some((_, ack, is_ack, _)) = decode_segment(&packet.payload) else {
                continue;
            };
            if !is_ack {
                continue;
            }
            let ack_segs = (ack as usize) / config.mss;
            if ack_segs > acked {
                // Karn's rule: RTT samples only from segments never
                // retransmitted, clocked from transmit-complete time.
                if cwnd.adaptive() {
                    for s in acked..ack_segs.min(n_segments) {
                        if retransmit_counts[s] == 0 {
                            if let Some(t) = send_times[s] {
                                cwnd.on_rtt_sample(now.saturating_sub(t).max(1) as f64);
                            }
                        }
                    }
                }
                cwnd.on_new_ack(ack_segs - acked, now);
                acked = ack_segs;
                dup_acks = 0;
            } else if ack_segs == acked {
                dup_acks += 1;
            }
        }
        if acked >= n_segments {
            break;
        }
        if now > config.deadline_ticks {
            return Err(TcpError::Timeout);
        }
        // Fast retransmit: three duplicate ACKs mean the segment at
        // `acked` is lost but the pipe is alive (adaptive modes only).
        if cwnd.adaptive() && dup_acks >= 3 && acked < n_segments {
            let s = acked;
            if retransmit_counts[s] >= config.max_retransmits {
                return Err(TcpError::ConnectionTimedOut);
            }
            retransmit_counts[s] += 1;
            retransmissions += 1;
            fast_retransmits += 1;
            segments_sent += 1;
            send_times[s] = Some(send_data_segment(
                data,
                &config,
                s,
                &mut packet_id,
                data_link,
                now,
            ));
            if cwnd.loss_reaction_due(now, &config) {
                cwnd.on_fast_retransmit();
            }
            dup_acks = 0;
        }
        // Sender: (re)transmit anything in the window that is unsent or
        // timed out. The timer runs from transmit-complete time — a
        // frame still queued behind `tx_free_at` has not been sent yet,
        // so it cannot spuriously time out (the PR 10 storm bugfix).
        let window_end = (acked + cwnd.window()).min(n_segments);
        for s in acked..window_end {
            let due = match send_times[s] {
                None => true,
                Some(t) => now >= t + cwnd.rto_for(&config, retransmit_counts[s]),
            };
            if due {
                if send_times[s].is_some() {
                    if retransmit_counts[s] >= config.max_retransmits {
                        return Err(TcpError::ConnectionTimedOut);
                    }
                    retransmit_counts[s] += 1;
                    retransmissions += 1;
                    if cwnd.adaptive() && cwnd.loss_reaction_due(now, &config) {
                        cwnd.on_rto_loss();
                    }
                }
                segments_sent += 1;
                send_times[s] = Some(send_data_segment(
                    data,
                    &config,
                    s,
                    &mut packet_id,
                    data_link,
                    now,
                ));
            }
        }
        now += 1;
        // Receiver: take arrived data segments, ACK cumulatively. Only
        // the byte `seq` identifies a segment — the packet's wrapped
        // 16-bit id is never consulted.
        for wire in data_link.deliver(now) {
            let Ok(packet) = Packet::decode(&wire) else {
                continue;
            };
            let Some((seq, _, is_ack, payload)) = decode_segment(&packet.payload) else {
                continue;
            };
            if is_ack {
                continue;
            }
            // Hardening: validate mss-alignment and exact payload
            // length before slotting `seq / mss` — a malformed segment
            // is counted and ignored, never mis-slotted.
            let seq = seq as usize;
            let s = seq / config.mss;
            let valid = seq % config.mss == 0
                && s < n_segments
                && payload.len() == config.mss.min(data.len() - s * config.mss);
            if !valid {
                malformed_segments += 1;
                continue;
            }
            if received[s].is_none() {
                received[s] = Some(payload.to_vec());
            }
            while next_expected < n_segments && received[next_expected].is_some() {
                next_expected += 1;
            }
            // Cumulative ACK: next expected byte.
            let ack_seg = encode_segment(0, (next_expected * config.mss) as u32, true, &[]);
            let ack_packet = Packet {
                src: dst,
                dst: src,
                protocol: Protocol::Tcp,
                id: packet_id,
                frag_offset: 0,
                more_fragments: false,
                payload: ack_seg,
            };
            packet_id = packet_id.wrapping_add(1);
            ack_link.send(ack_packet.encode(), now);
        }
    }

    let mut out = Vec::with_capacity(data.len());
    for seg in received.into_iter().flatten() {
        out.extend(seg);
    }
    out.truncate(data.len());
    Ok(TransferReport {
        goodput: data.len() as f64 / now.max(1) as f64,
        data: out,
        ticks: now,
        segments_sent,
        retransmissions,
        fast_retransmits,
        malformed_segments,
    })
}

/// Encodes and offers segment `s` to the data link, returning its
/// transmit-complete tick.
fn send_data_segment(
    data: &[u8],
    config: &TcpConfig,
    s: usize,
    packet_id: &mut u16,
    data_link: &mut Link,
    now: u64,
) -> u64 {
    let lo = s * config.mss;
    let hi = (lo + config.mss).min(data.len());
    let seg = encode_segment((s * config.mss) as u32, 0, false, &data[lo..hi]);
    let packet = Packet {
        src: Addr(1),
        dst: Addr(2),
        protocol: Protocol::Tcp,
        id: *packet_id,
        frag_offset: 0,
        more_fragments: false,
        payload: seg,
    };
    *packet_id = packet_id.wrapping_add(1);
    data_link.send(packet.encode(), now)
}

/// The pre-PR-10 transfer engine, kept verbatim as the equality oracle
/// for `CongestionControl::Fixed`: offer-time timer stamping, send
/// phase before ACK processing, no receive-path validation. Test-only.
#[cfg(test)]
pub(crate) mod oracle {
    use super::{decode_segment, encode_segment, TcpConfig, TcpError, TransferReport};
    use crate::link::{Link, LinkConfig};
    use crate::packet::{Addr, Packet, Protocol};

    pub(crate) fn transfer(
        data: &[u8],
        config: TcpConfig,
        window: usize,
        link_config: LinkConfig,
        seed: u64,
    ) -> Result<TransferReport, TcpError> {
        if data.is_empty() {
            return Err(TcpError::Empty);
        }
        let mut data_link = Link::new(link_config, seed);
        let mut ack_link = Link::new(link_config, seed ^ 0xDEAD_BEEF);
        let src = Addr(1);
        let dst = Addr(2);

        let n_segments = data.len().div_ceil(config.mss);
        let mut acked = 0usize;
        let mut send_times: Vec<Option<u64>> = vec![None; n_segments];
        let mut retransmit_counts: Vec<u32> = vec![0; n_segments];
        let mut segments_sent = 0u64;
        let mut retransmissions = 0u64;

        let mut received: Vec<Option<Vec<u8>>> = vec![None; n_segments];
        let mut next_expected = 0usize;

        let mut now = 0u64;
        let mut packet_id = 0u16;
        while acked < n_segments {
            if now > config.deadline_ticks {
                return Err(TcpError::Timeout);
            }
            let window_end = (acked + window).min(n_segments);
            for (s, slot) in send_times
                .iter_mut()
                .enumerate()
                .take(window_end)
                .skip(acked)
            {
                let due = match *slot {
                    None => true,
                    Some(t) => now >= t + config.rto_ticks,
                };
                if due {
                    if slot.is_some() {
                        if retransmit_counts[s] >= config.max_retransmits {
                            return Err(TcpError::ConnectionTimedOut);
                        }
                        retransmit_counts[s] += 1;
                        retransmissions += 1;
                    }
                    *slot = Some(now);
                    segments_sent += 1;
                    let lo = s * config.mss;
                    let hi = (lo + config.mss).min(data.len());
                    let seg = encode_segment((s * config.mss) as u32, 0, false, &data[lo..hi]);
                    let packet = Packet {
                        src,
                        dst,
                        protocol: Protocol::Tcp,
                        id: packet_id,
                        frag_offset: 0,
                        more_fragments: false,
                        payload: seg,
                    };
                    packet_id = packet_id.wrapping_add(1);
                    data_link.send(packet.encode(), now);
                }
            }
            now += 1;
            for wire in data_link.deliver(now) {
                let Ok(packet) = Packet::decode(&wire) else {
                    continue;
                };
                let Some((seq, _, is_ack, payload)) = decode_segment(&packet.payload) else {
                    continue;
                };
                if is_ack {
                    continue;
                }
                let s = seq as usize / config.mss;
                if s < n_segments && received[s].is_none() {
                    received[s] = Some(payload.to_vec());
                }
                while next_expected < n_segments && received[next_expected].is_some() {
                    next_expected += 1;
                }
                let ack_seg = encode_segment(0, (next_expected * config.mss) as u32, true, &[]);
                let ack_packet = Packet {
                    src: dst,
                    dst: src,
                    protocol: Protocol::Tcp,
                    id: packet_id,
                    frag_offset: 0,
                    more_fragments: false,
                    payload: ack_seg,
                };
                packet_id = packet_id.wrapping_add(1);
                ack_link.send(ack_packet.encode(), now);
            }
            for wire in ack_link.deliver(now) {
                let Ok(packet) = Packet::decode(&wire) else {
                    continue;
                };
                let Some((_, ack, is_ack, _)) = decode_segment(&packet.payload) else {
                    continue;
                };
                if !is_ack {
                    continue;
                }
                let ack_segs = (ack as usize) / config.mss;
                if ack_segs > acked {
                    acked = ack_segs;
                }
            }
        }

        let mut out = Vec::with_capacity(data.len());
        for seg in received.into_iter().flatten() {
            out.extend(seg);
        }
        out.truncate(data.len());
        Ok(TransferReport {
            goodput: data.len() as f64 / now.max(1) as f64,
            data: out,
            ticks: now,
            segments_sent,
            retransmissions,
            fast_retransmits: 0,
            malformed_segments: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoroshiro128::new(seed);
        (0..len).map(|_| rng.next_u32() as u8).collect()
    }

    #[test]
    fn lossless_transfer_is_exact_with_no_retransmissions() {
        let data = payload(10_000, 1);
        let r = transfer(&data, TcpConfig::default(), LinkConfig::default(), 2).unwrap();
        assert_eq!(r.data, data);
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn lossy_transfer_still_exact() {
        let data = payload(20_000, 3);
        let cfg = LinkConfig::default().with_loss(0.2);
        let r = transfer(&data, TcpConfig::default(), cfg, 4).unwrap();
        assert_eq!(r.data, data);
        assert!(r.retransmissions > 0, "loss must force retransmissions");
    }

    #[test]
    fn cost_grows_with_loss() {
        let data = payload(20_000, 5);
        let mut prev_ticks = 0u64;
        for (i, loss) in [0.0, 0.1, 0.3].iter().enumerate() {
            let cfg = LinkConfig::default().with_loss(*loss);
            let r = transfer(&data, TcpConfig::default(), cfg, 6).unwrap();
            assert_eq!(r.data, data, "loss {loss}");
            if i > 0 {
                assert!(
                    r.ticks > prev_ticks,
                    "higher loss should take longer: {} vs {prev_ticks}",
                    r.ticks
                );
            }
            prev_ticks = r.ticks;
        }
    }

    #[test]
    fn severe_loss_eventually_times_out() {
        let data = payload(5_000, 7);
        let tcp = TcpConfig {
            deadline_ticks: 3_000,
            ..Default::default()
        };
        let cfg = LinkConfig::default().with_loss(0.9);
        assert_eq!(transfer(&data, tcp, cfg, 8).unwrap_err(), TcpError::Timeout);
    }

    #[test]
    fn dead_link_trips_the_retransmit_cap_long_before_the_deadline() {
        // 99% loss: a round trip survives one attempt in ~10,000, so
        // segments retransmit on every RTO until the cap trips — well
        // under the 2M-tick deadline a pure timeout would burn.
        let data = payload(2_000, 15);
        let tcp = TcpConfig::default();
        let dead = LinkConfig::default().with_loss(0.99);
        let err = transfer(&data, tcp, dead, 16).unwrap_err();
        assert_eq!(err, TcpError::ConnectionTimedOut);
        // The give-up point is max_retransmits RTOs plus change.
        let bound = (u64::from(tcp.max_retransmits) + 2) * tcp.rto_ticks;
        assert!(bound < tcp.deadline_ticks / 100, "cap must beat deadline");
    }

    #[test]
    fn total_blackout_fails_via_the_retransmit_cap_not_the_deadline() {
        // loss = 1.0 (now accepted by with_loss): every frame drops, so
        // the first segment burns its retransmit budget and the
        // connection dies — ConnectionTimedOut, not a 2M-tick
        // deadline spin (which would surface as Timeout).
        let data = payload(2_000, 19);
        let blackout = LinkConfig::default().with_loss(1.0);
        let err = transfer(&data, TcpConfig::default(), blackout, 20).unwrap_err();
        assert_eq!(err, TcpError::ConnectionTimedOut);
    }

    #[test]
    fn retransmit_cap_is_per_segment_not_global() {
        // 20% loss forces plenty of total retransmissions across many
        // segments, but no single segment comes near the cap: the
        // transfer must still complete.
        let data = payload(50_000, 17);
        let cfg = LinkConfig::default().with_loss(0.2);
        let r = transfer(&data, TcpConfig::default(), cfg, 18).unwrap();
        assert_eq!(r.data, data);
        assert!(
            r.retransmissions > u64::from(TcpConfig::default().max_retransmits),
            "total retransmissions exceed the per-segment cap: {}",
            r.retransmissions
        );
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            transfer(&[], TcpConfig::default(), LinkConfig::default(), 9).unwrap_err(),
            TcpError::Empty
        );
    }

    #[test]
    fn single_byte_transfer() {
        let r = transfer(&[42], TcpConfig::default(), LinkConfig::default(), 10).unwrap();
        assert_eq!(r.data, vec![42]);
    }

    #[test]
    fn bigger_window_is_faster_on_clean_links() {
        let data = payload(50_000, 11);
        let slow = transfer(
            &data,
            TcpConfig {
                cc: CongestionControl::Fixed(1),
                ..Default::default()
            },
            LinkConfig::default(),
            12,
        )
        .unwrap();
        let fast = transfer(
            &data,
            TcpConfig {
                cc: CongestionControl::Fixed(16),
                ..Default::default()
            },
            LinkConfig::default(),
            12,
        )
        .unwrap();
        assert!(
            fast.ticks * 2 < slow.ticks,
            "window 16 ({}) should beat window 1 ({})",
            fast.ticks,
            slow.ticks
        );
        assert!(fast.goodput > slow.goodput);
    }

    #[test]
    fn transfer_crosses_the_packet_id_boundary() {
        // More than 65,536 data packets, so the u16 IP datagram id wraps
        // and distinct segments alias the same id. The transfer must
        // still be byte-exact because the receive side keys purely on
        // the byte `seq`/`ack` fields, never on the packet id.
        const N: usize = 70_000;
        let data = payload(N, 20);
        let tcp = TcpConfig {
            mss: 1, // one byte per packet -> one packet per segment
            cc: CongestionControl::Fixed(64),
            ..Default::default()
        };
        let r = transfer(&data, tcp, LinkConfig::default(), 21).unwrap();
        assert_eq!(r.data, data, "aliased packet ids must not corrupt data");
        assert_eq!(
            r.segments_sent, N as u64,
            "every byte is its own segment, sent exactly once on a clean link"
        );
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = payload(8_000, 13);
        let cfg = LinkConfig::default().with_loss(0.15);
        let a = transfer(&data, TcpConfig::default(), cfg, 14).unwrap();
        let b = transfer(&data, TcpConfig::default(), cfg, 14).unwrap();
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.retransmissions, b.retransmissions);
    }

    // ── PR 10: timer bugfix, validation, and congestion control ──────

    #[test]
    fn spurious_rto_regression_slow_link_large_window() {
        // Large window x high ticks_per_byte: the whole burst is
        // offered at t=0 but serializes for thousands of ticks. The
        // pre-fix engine stamped the retransmit timer at offer time, so
        // queued segments "timed out" while still serializing and the
        // retransmits re-queued — a storm. Post-fix (timer from
        // transmit-complete time) a lossless link sees zero
        // retransmissions.
        let data = payload(4_096, 30);
        let tcp = TcpConfig {
            cc: CongestionControl::Fixed(32),
            ..Default::default()
        };
        let slow = LinkConfig {
            ticks_per_byte: 1.0,
            ..LinkConfig::default()
        };
        let fixed = transfer(&data, tcp, slow, 31).unwrap();
        assert_eq!(fixed.data, data);
        assert_eq!(
            fixed.retransmissions, 0,
            "lossless link must see zero spurious retransmits"
        );
        // The regression test discriminates: the pre-fix oracle on the
        // same scenario either storms (retransmissions > 0) or dies.
        let storm = oracle::transfer(&data, tcp, 32, slow, 31);
        match storm {
            Ok(r) => assert!(r.retransmissions > 0, "pre-fix engine must storm"),
            Err(e) => assert_eq!(e, TcpError::ConnectionTimedOut),
        }
    }

    #[test]
    fn fixed_mode_is_bit_identical_to_the_pre_cc_engine_without_serialization() {
        // With ticks_per_byte = 0 a frame's transmit-complete time IS
        // its offer time, so the timer fix is a no-op and the whole
        // report must match the pre-PR engine bit for bit — across
        // losses, latencies, and window sizes.
        for &loss in &[0.0, 0.1, 0.3] {
            for &latency in &[0u64, 5] {
                for &window in &[1usize, 4, 8] {
                    for seed in 0..8u64 {
                        let data = payload(6_000 + seed as usize * 997, seed);
                        let link = LinkConfig {
                            latency_ticks: latency,
                            ticks_per_byte: 0.0,
                            ..LinkConfig::default()
                        }
                        .with_loss(loss);
                        let tcp = TcpConfig {
                            cc: CongestionControl::Fixed(window),
                            ..Default::default()
                        };
                        let new = transfer(&data, tcp, link, seed);
                        let old = oracle::transfer(&data, tcp, window, link, seed);
                        assert_eq!(
                            new, old,
                            "divergence at loss={loss} latency={latency} window={window} seed={seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fixed_mode_is_bit_identical_to_the_pre_cc_engine_on_clean_serialized_links() {
        // On a lossless link whose window-burst queueing delay stays
        // under the RTO, neither engine ever retransmits, so offer-time
        // vs wire-time stamping cannot diverge: full report equality.
        for &window in &[1usize, 8, 16] {
            for seed in 0..8u64 {
                let data = payload(9_000 + seed as usize * 1_371, 100 + seed);
                let tcp = TcpConfig {
                    cc: CongestionControl::Fixed(window),
                    ..Default::default()
                };
                let new = transfer(&data, tcp, LinkConfig::default(), seed);
                let old = oracle::transfer(&data, tcp, window, LinkConfig::default(), seed);
                assert_eq!(new, old, "divergence at window={window} seed={seed}");
            }
        }
    }

    #[test]
    fn malformed_segments_are_counted_and_never_mis_slotted() {
        // Inject two corrupt segments ahead of a normal transfer: one
        // with a non-mss-aligned seq, one aligned but with the wrong
        // payload length. Both must be rejected (counted), and the
        // transfer must still be byte-exact.
        let data = payload(4_000, 40);
        let config = TcpConfig::default();
        let mut data_link = Link::new(LinkConfig::default(), 41);
        let mut ack_link = Link::new(LinkConfig::default(), 42);
        let unaligned = Packet {
            src: Addr(9),
            dst: Addr(2),
            protocol: Protocol::Tcp,
            id: 9_999,
            frag_offset: 0,
            more_fragments: false,
            payload: encode_segment(13, 0, false, &[1, 2, 3, 4, 5]),
        };
        let wrong_length = Packet {
            src: Addr(9),
            dst: Addr(2),
            protocol: Protocol::Tcp,
            id: 9_998,
            frag_offset: 0,
            more_fragments: false,
            payload: encode_segment(0, 0, false, &vec![7u8; config.mss + 3]),
        };
        data_link.send(unaligned.encode(), 0);
        data_link.send(wrong_length.encode(), 0);
        let r = transfer_over(&data, config, &mut data_link, &mut ack_link).unwrap();
        assert_eq!(r.malformed_segments, 2, "both corrupt segments counted");
        assert_eq!(r.data, data, "corruption must never reach the stream");
    }

    #[test]
    fn aimd_transfers_exactly_under_loss() {
        let data = payload(30_000, 50);
        let tcp = TcpConfig {
            cc: CongestionControl::aimd(),
            ..Default::default()
        };
        let cfg = LinkConfig::default().with_loss(0.15);
        let r = transfer(&data, tcp, cfg, 51).unwrap();
        assert_eq!(r.data, data);
        assert!(r.retransmissions > 0);
    }

    #[test]
    fn cubic_transfers_exactly_under_loss() {
        let data = payload(30_000, 52);
        let tcp = TcpConfig {
            cc: CongestionControl::cubic(),
            ..Default::default()
        };
        let cfg = LinkConfig::default().with_loss(0.15);
        let r = transfer(&data, tcp, cfg, 53).unwrap();
        assert_eq!(r.data, data);
    }

    #[test]
    fn aimd_is_clean_on_a_lossless_link() {
        // The adaptive RTO must never fire spuriously when nothing is
        // lost — slow start ramps, the estimator converges, zero
        // retransmissions.
        let data = payload(60_000, 54);
        let tcp = TcpConfig {
            cc: CongestionControl::aimd(),
            ..Default::default()
        };
        let r = transfer(&data, tcp, LinkConfig::default(), 55).unwrap();
        assert_eq!(r.data, data);
        assert_eq!(r.retransmissions, 0, "no spurious adaptive RTOs");
    }

    #[test]
    fn fast_retransmit_fires_on_duplicate_acks() {
        let data = payload(80_000, 56);
        let tcp = TcpConfig {
            cc: CongestionControl::aimd(),
            ..Default::default()
        };
        let cfg = LinkConfig::default().with_loss(0.08);
        let r = transfer(&data, tcp, cfg, 57).unwrap();
        assert_eq!(r.data, data);
        assert!(
            r.fast_retransmits > 0,
            "triple dup ACKs must trigger fast retransmits"
        );
    }

    #[test]
    fn aimd_beats_fixed_goodput_on_a_bufferbloated_bounded_link() {
        // A bounded drop-tail queue punishes a big fixed window: the
        // burst tail-drops, every dropped segment waits out a full RTO,
        // and goodput craters. AIMD feels the same drops but backs off
        // to the queue's capacity.
        let data = payload(40_000, 60);
        let link = LinkConfig {
            ticks_per_byte: 0.05,
            ..LinkConfig::default()
        }
        .with_queue_bytes(2_000);
        let fixed = transfer(
            &data,
            TcpConfig {
                cc: CongestionControl::Fixed(64),
                ..Default::default()
            },
            link,
            61,
        )
        .unwrap();
        let aimd = transfer(
            &data,
            TcpConfig {
                cc: CongestionControl::aimd(),
                ..Default::default()
            },
            link,
            61,
        )
        .unwrap();
        assert_eq!(fixed.data, data);
        assert_eq!(aimd.data, data);
        assert!(
            aimd.goodput > fixed.goodput,
            "AIMD ({:.4}) must beat the bufferbloated fixed window ({:.4})",
            aimd.goodput,
            fixed.goodput
        );
    }

    #[test]
    fn transfer_over_a_mobile_handoff_trace_survives() {
        let data = payload(20_000, 70);
        let tcp = TcpConfig {
            cc: CongestionControl::aimd(),
            ..Default::default()
        };
        let trace = LinkTrace::mobile_handoff();
        let r = transfer_with(&data, tcp, LinkConfig::default(), Some(&trace), 0, 71).unwrap();
        assert_eq!(r.data, data, "the handoff gap must not corrupt the stream");
        // A transfer starting inside the handoff gap sees the bad phase
        // first and takes longer per byte on average than one starting
        // in the strong cell.
        let gap_start = 2_000 + 800 + 10;
        let r2 = transfer_with(
            &data,
            tcp,
            LinkConfig::default(),
            Some(&trace),
            gap_start,
            71,
        )
        .unwrap();
        assert_eq!(r2.data, data);
    }

    #[test]
    fn adaptive_mode_is_deterministic_given_seed() {
        let data = payload(16_000, 80);
        let tcp = TcpConfig {
            cc: CongestionControl::aimd(),
            ..Default::default()
        };
        let cfg = LinkConfig::default().with_loss(0.1);
        let a = transfer(&data, tcp, cfg, 81).unwrap();
        let b = transfer(&data, tcp, cfg, 81).unwrap();
        assert_eq!(a, b);
    }
}
