//! Datagram transport: best-effort, unordered, no retransmission.
//!
//! The cheap half of the small IP stack — what a device uses for
//! status beacons or clock sync, and the baseline that makes TCP-lite's
//! reliability cost visible in experiment E14.

use crate::link::{Link, LinkConfig};
use crate::packet::{Addr, Packet, Protocol, Reassembler};

/// Result of a UDP batch transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpReport {
    /// Datagrams offered to the link.
    pub sent: usize,
    /// Datagrams that arrived intact.
    pub received: Vec<Vec<u8>>,
}

impl UdpReport {
    /// Delivery ratio (received / sent).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.received.len() as f64 / self.sent as f64
        }
    }
}

/// Sends each datagram once over a fresh link and reports what survives.
/// Datagrams larger than `mtu` are fragmented; datagrams losing any
/// fragment are lost entirely (as real UDP over IP is).
#[must_use]
pub fn send_datagrams(
    datagrams: &[Vec<u8>],
    config: LinkConfig,
    mtu: usize,
    seed: u64,
) -> UdpReport {
    let mut link = Link::new(config, seed);
    let src = Addr(1);
    let dst = Addr(2);
    let mut now = 0u64;
    for (i, data) in datagrams.iter().enumerate() {
        let packet = Packet {
            src,
            dst,
            protocol: Protocol::Udp,
            id: i as u16,
            frag_offset: 0,
            more_fragments: false,
            payload: data.clone(),
        };
        for frag in packet.fragment(mtu) {
            link.send(frag.encode(), now);
            now += 1;
        }
    }
    // Drain everything the link will ever deliver.
    let mut reassembler = Reassembler::new();
    let mut received = Vec::new();
    let frames = link.deliver(u64::MAX / 2);
    for wire in frames {
        if let Ok(frag) = Packet::decode(&wire) {
            if let Some(dgram) = reassembler.push(frag) {
                received.push(dgram.payload);
            }
        }
    }
    UdpReport {
        sent: datagrams.len(),
        received,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datagrams(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; len]).collect()
    }

    #[test]
    fn lossless_delivers_everything() {
        let r = send_datagrams(&datagrams(20, 100), LinkConfig::default(), 256, 1);
        assert_eq!(r.received.len(), 20);
        assert!((r.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_reduces_delivery_without_retransmission() {
        let cfg = LinkConfig::default().with_loss(0.3);
        let r = send_datagrams(&datagrams(500, 100), cfg, 256, 2);
        let ratio = r.delivery_ratio();
        assert!(ratio < 0.85, "loss had no effect: {ratio}");
        assert!(ratio > 0.5, "too much loss: {ratio}");
    }

    #[test]
    fn fragmented_datagrams_need_every_fragment() {
        // Large datagrams fragment ~6x; per-fragment survival 0.9 =>
        // datagram survival ≈ 0.9^6 ≈ 0.53 — visibly below the frame rate.
        let cfg = LinkConfig::default().with_loss(0.1);
        let r = send_datagrams(&datagrams(300, 1000), cfg, 200, 3);
        let ratio = r.delivery_ratio();
        assert!(ratio < 0.75, "fragment loss amplification missing: {ratio}");
    }

    #[test]
    fn payload_content_is_preserved() {
        let data = vec![vec![7u8; 999]];
        let r = send_datagrams(&data, LinkConfig::default(), 256, 4);
        assert_eq!(r.received, data);
    }

    #[test]
    fn empty_batch() {
        let r = send_datagrams(&[], LinkConfig::default(), 256, 5);
        assert_eq!(r.sent, 0);
        assert_eq!(r.delivery_ratio(), 0.0);
    }
}
