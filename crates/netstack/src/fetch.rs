//! Content fetch: a tiny request/response protocol over TCP-lite.
//!
//! Paper §7: *"Some use the Internet for limited purposes, such as
//! content access or DRM."* This is that limited purpose, distilled: a
//! named-object GET against an in-memory server, carried reliably over
//! the lossy link. The DRM integration tests fetch sealed licenses
//! through exactly this path.

use std::collections::BTreeMap;

use crate::link::{LinkConfig, LinkTrace};
use crate::tcplite::{transfer_with, TcpConfig, TcpError};

/// An in-memory content server.
#[derive(Debug, Clone, Default)]
pub struct ContentServer {
    objects: BTreeMap<String, Vec<u8>>,
}

impl ContentServer {
    /// An empty server.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes an object.
    pub fn publish(&mut self, name: impl Into<String>, data: Vec<u8>) {
        self.objects.insert(name.into(), data);
    }

    /// Removes an object, returning its bytes if it was published. Edge
    /// caches use this to evict without rebuilding the server.
    pub fn remove(&mut self, name: &str) -> Option<Vec<u8>> {
        self.objects.remove(name)
    }

    /// The bytes of one published object, if present (no transport).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.objects.get(name).map(Vec::as_slice)
    }

    /// Number of published objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when nothing is published.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Names of every published object, in sorted order — the discovery
    /// API streaming sessions use to enumerate a title's segments.
    ///
    /// # Example
    ///
    /// Enumerate and fetch everything over a 10%-loss link; every object
    /// still arrives exactly.
    ///
    /// ```
    /// use netstack::fetch::{fetch, ContentServer};
    /// use netstack::link::LinkConfig;
    /// use netstack::tcplite::TcpConfig;
    ///
    /// let mut s = ContentServer::new();
    /// s.publish("title/seg0", vec![0xA0; 700]);
    /// s.publish("title/seg1", vec![0xA1; 700]);
    /// s.publish("title/manifest", b"two segments".to_vec());
    /// assert_eq!(
    ///     s.names(),
    ///     vec!["title/manifest", "title/seg0", "title/seg1"]
    /// );
    /// let lossy = LinkConfig::default().with_loss(0.1);
    /// for (i, name) in s.names().iter().enumerate() {
    ///     let r = fetch(&s, name, TcpConfig::default(), lossy, 40 + i as u64).unwrap();
    ///     assert!(!r.data.is_empty());
    /// }
    /// ```
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.objects.keys().cloned().collect()
    }

    /// Serves a request line, producing the response body.
    fn respond(&self, request: &str) -> Vec<u8> {
        match request.strip_prefix("GET ") {
            Some(name) => match self.objects.get(name.trim()) {
                Some(data) => {
                    let mut out = b"OK ".to_vec();
                    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
                    out.extend_from_slice(data);
                    out
                }
                None => b"ERR not-found".to_vec(),
            },
            None => b"ERR bad-request".to_vec(),
        }
    }
}

/// Errors from a fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// Transport failure on the request or response leg.
    Transport(TcpError),
    /// Server refused the request.
    Server(String),
    /// Response framing was malformed.
    BadResponse,
}

impl core::fmt::Display for FetchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FetchError::Transport(e) => write!(f, "transport failure: {e}"),
            FetchError::Server(msg) => write!(f, "server error: {msg}"),
            FetchError::BadResponse => f.write_str("malformed response"),
        }
    }
}

impl std::error::Error for FetchError {}

impl From<TcpError> for FetchError {
    fn from(e: TcpError) -> Self {
        FetchError::Transport(e)
    }
}

/// Statistics for one fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchReport {
    /// The object bytes.
    pub data: Vec<u8>,
    /// Total simulated ticks (request + response legs).
    pub ticks: u64,
    /// Total retransmissions across both legs.
    pub retransmissions: u64,
}

/// Fetches `name` from `server` over the given link conditions.
///
/// # Errors
///
/// Returns [`FetchError`] on transport failure, missing objects, or
/// malformed responses.
pub fn fetch(
    server: &ContentServer,
    name: &str,
    tcp: TcpConfig,
    link: LinkConfig,
    seed: u64,
) -> Result<FetchReport, FetchError> {
    fetch_traced(server, name, tcp, link, None, 0, seed)
}

/// [`fetch`] over a link optionally driven by a bandwidth/loss trace.
/// `start_tick` is the absolute session tick at which the fetch begins:
/// the request leg walks the schedule from there, and the response leg
/// continues from wherever the request leg finished.
///
/// # Errors
///
/// As [`fetch`].
pub fn fetch_traced(
    server: &ContentServer,
    name: &str,
    tcp: TcpConfig,
    link: LinkConfig,
    trace: Option<&LinkTrace>,
    start_tick: u64,
    seed: u64,
) -> Result<FetchReport, FetchError> {
    // Request leg.
    let request = format!("GET {name}");
    let req_report = transfer_with(request.as_bytes(), tcp, link, trace, start_tick, seed)?;
    let request_line = String::from_utf8_lossy(&req_report.data).to_string();
    // Server handles the request, response leg carries the body.
    let response = server.respond(&request_line);
    let resp_report = transfer_with(
        &response,
        tcp,
        link,
        trace,
        start_tick + req_report.ticks,
        seed ^ 0x5A5A,
    )?;
    let body = resp_report.data;
    if let Some(rest) = body.strip_prefix(b"OK ".as_slice()) {
        if rest.len() < 4 {
            return Err(FetchError::BadResponse);
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if rest.len() < 4 + len {
            return Err(FetchError::BadResponse);
        }
        Ok(FetchReport {
            data: rest[4..4 + len].to_vec(),
            ticks: req_report.ticks + resp_report.ticks,
            retransmissions: req_report.retransmissions + resp_report.retransmissions,
        })
    } else if let Some(msg) = body.strip_prefix(b"ERR ".as_slice()) {
        Err(FetchError::Server(String::from_utf8_lossy(msg).to_string()))
    } else {
        Err(FetchError::BadResponse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> ContentServer {
        let mut s = ContentServer::new();
        s.publish("song.mp3", vec![7u8; 5000]);
        s.publish("license.bin", vec![1, 2, 3, 4]);
        s
    }

    #[test]
    fn fetch_round_trips_content() {
        let s = server();
        let r = fetch(
            &s,
            "song.mp3",
            TcpConfig::default(),
            LinkConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(r.data, vec![7u8; 5000]);
        assert!(r.ticks > 0);
    }

    #[test]
    fn missing_object_is_a_server_error() {
        let s = server();
        let err = fetch(&s, "nope", TcpConfig::default(), LinkConfig::default(), 2).unwrap_err();
        assert_eq!(err, FetchError::Server("not-found".to_string()));
    }

    #[test]
    fn lossy_fetch_still_exact_but_costlier() {
        let s = server();
        let clean = fetch(
            &s,
            "song.mp3",
            TcpConfig::default(),
            LinkConfig::default(),
            3,
        )
        .unwrap();
        let lossy = fetch(
            &s,
            "song.mp3",
            TcpConfig::default(),
            LinkConfig::default().with_loss(0.2),
            3,
        )
        .unwrap();
        assert_eq!(clean.data, lossy.data);
        assert!(lossy.ticks > clean.ticks);
        assert!(lossy.retransmissions > 0);
    }

    #[test]
    fn small_license_fetch_works() {
        let s = server();
        let r = fetch(
            &s,
            "license.bin",
            TcpConfig::default(),
            LinkConfig::default(),
            4,
        )
        .unwrap();
        assert_eq!(r.data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn traced_fetch_is_exact_and_phase_dependent() {
        let s = server();
        let trace = LinkTrace::mobile_handoff();
        // Starting in the strong cell vs inside the handoff gap: both
        // exact, the gap start slower.
        let strong = fetch_traced(
            &s,
            "song.mp3",
            TcpConfig::default(),
            LinkConfig::default(),
            Some(&trace),
            0,
            6,
        )
        .unwrap();
        let gap = fetch_traced(
            &s,
            "song.mp3",
            TcpConfig::default(),
            LinkConfig::default(),
            Some(&trace),
            2_000 + 800,
            6,
        )
        .unwrap();
        assert_eq!(strong.data, vec![7u8; 5000]);
        assert_eq!(gap.data, vec![7u8; 5000]);
        assert!(
            gap.ticks > strong.ticks,
            "a fetch through the handoff gap ({}) must cost more than the strong cell ({})",
            gap.ticks,
            strong.ticks
        );
    }

    #[test]
    fn publish_and_len() {
        let mut s = ContentServer::new();
        assert!(s.is_empty());
        assert!(s.names().is_empty());
        s.publish("b", vec![1]);
        s.publish("a", vec![2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn get_and_remove() {
        let mut s = server();
        assert_eq!(s.get("license.bin"), Some([1u8, 2, 3, 4].as_slice()));
        assert_eq!(s.get("nope"), None);
        assert_eq!(s.remove("license.bin"), Some(vec![1, 2, 3, 4]));
        assert_eq!(s.remove("license.bin"), None);
        assert_eq!(s.get("license.bin"), None);
        // A removed object is no longer fetchable.
        let err = fetch(
            &s,
            "license.bin",
            TcpConfig::default(),
            LinkConfig::default(),
            5,
        )
        .unwrap_err();
        assert_eq!(err, FetchError::Server("not-found".to_string()));
    }
}
