//! A simulated point-to-point link with loss, latency, and serialization
//! delay.
//!
//! The workspace's substitute for a real access network (DESIGN.md §5):
//! deterministic (seeded) loss so every experiment is reproducible, and
//! discrete ticks so protocol behaviour (timeouts, retransmissions) is
//! exactly replayable.

use signal::rng::Xoroshiro128;

/// Link configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Probability a frame is dropped.
    pub loss: f64,
    /// Propagation delay in ticks.
    pub latency_ticks: u64,
    /// Serialization: ticks per byte (0 = infinite bandwidth).
    pub ticks_per_byte: f64,
}

impl Default for LinkConfig {
    /// Lossless, 5-tick latency, 100 bytes per tick.
    fn default() -> Self {
        Self {
            loss: 0.0,
            latency_ticks: 5,
            ticks_per_byte: 0.01,
        }
    }
}

impl LinkConfig {
    /// A lossy variant of this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1)`.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.loss = loss;
        self
    }
}

/// A frame in flight.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    payload: Vec<u8>,
}

/// One direction of a link.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: Xoroshiro128,
    queue: Vec<InFlight>,
    /// When the transmitter finishes serializing its current frame.
    tx_free_at: u64,
    sent: u64,
    dropped: u64,
    delivered: u64,
}

impl Link {
    /// Creates a link.
    #[must_use]
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Self {
            config,
            rng: Xoroshiro128::new(seed),
            queue: Vec::new(),
            tx_free_at: 0,
            sent: 0,
            dropped: 0,
            delivered: 0,
        }
    }

    /// Offers a frame for transmission at time `now`. Returns whether the
    /// frame entered the link (dropped frames vanish silently, like real
    /// ones).
    pub fn send(&mut self, payload: Vec<u8>, now: u64) -> bool {
        self.sent += 1;
        let serialize = (payload.len() as f64 * self.config.ticks_per_byte).ceil() as u64;
        let start = now.max(self.tx_free_at);
        self.tx_free_at = start + serialize;
        if self.rng.chance(self.config.loss) {
            self.dropped += 1;
            return false;
        }
        self.queue.push(InFlight {
            deliver_at: self.tx_free_at + self.config.latency_ticks,
            payload,
        });
        true
    }

    /// Removes and returns every frame that has arrived by `now`.
    pub fn deliver(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut arrived = Vec::new();
        let mut rest = Vec::new();
        for f in self.queue.drain(..) {
            if f.deliver_at <= now {
                arrived.push((f.deliver_at, f.payload));
            } else {
                rest.push(f);
            }
        }
        self.queue = rest;
        arrived.sort_by_key(|(t, _)| *t);
        self.delivered += arrived.len() as u64;
        arrived.into_iter().map(|(_, p)| p).collect()
    }

    /// The next delivery time, if any frame is in flight.
    #[must_use]
    pub fn next_arrival(&self) -> Option<u64> {
        self.queue.iter().map(|f| f.deliver_at).min()
    }

    /// Frames offered.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames lost.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames handed to the receiver.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_delivers_everything_in_order() {
        let mut link = Link::new(LinkConfig::default(), 1);
        for i in 0..5u8 {
            link.send(vec![i], i as u64);
        }
        let got = link.deliver(1_000);
        assert_eq!(got.len(), 5);
        for (i, frame) in got.iter().enumerate() {
            assert_eq!(frame[0], i as u8);
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let mut link = Link::new(LinkConfig::default(), 2);
        link.send(vec![1], 0);
        assert!(link.deliver(3).is_empty(), "too early");
        assert_eq!(link.deliver(100).len(), 1);
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let cfg = LinkConfig {
            loss: 0.0,
            latency_ticks: 0,
            ticks_per_byte: 1.0,
        };
        let mut link = Link::new(cfg, 3);
        link.send(vec![0u8; 100], 0);
        assert!(link.deliver(50).is_empty());
        assert_eq!(link.deliver(100).len(), 1);
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut link = Link::new(LinkConfig::default().with_loss(0.3), 4);
        for i in 0..10_000 {
            link.send(vec![0], i);
        }
        let rate = link.dropped() as f64 / link.sent() as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn back_to_back_sends_queue_on_the_transmitter() {
        let cfg = LinkConfig {
            loss: 0.0,
            latency_ticks: 0,
            ticks_per_byte: 1.0,
        };
        let mut link = Link::new(cfg, 5);
        link.send(vec![0u8; 10], 0);
        link.send(vec![0u8; 10], 0);
        // Second frame serializes after the first: arrives at t=20.
        assert_eq!(link.deliver(10).len(), 1);
        assert_eq!(link.deliver(20).len(), 1);
    }

    #[test]
    fn next_arrival_reports_earliest() {
        let mut link = Link::new(LinkConfig::default(), 6);
        assert_eq!(link.next_arrival(), None);
        link.send(vec![1], 0);
        assert!(link.next_arrival().is_some());
    }

    #[test]
    #[should_panic(expected = "loss must be")]
    fn bad_loss_rejected() {
        let _ = LinkConfig::default().with_loss(1.5);
    }
}
