//! A simulated point-to-point link with loss, latency, and serialization
//! delay.
//!
//! The workspace's substitute for a real access network (DESIGN.md §5):
//! deterministic (seeded) loss so every experiment is reproducible, and
//! discrete ticks so protocol behaviour (timeouts, retransmissions) is
//! exactly replayable. Beyond the original i.i.d. drop draw the link now
//! models three more pieces of access-network reality:
//!
//! - a **bounded drop-tail queue** ([`LinkConfig::queue_bytes`]) — the
//!   bufferbloat knob: an unbounded transmitter queue absorbs any burst
//!   (at the price of delay), a bounded one tail-drops it;
//! - **Gilbert–Elliott two-state bursty loss**
//!   ([`LossModel::GilbertElliott`]) — losses clustered into bad-state
//!   bursts rather than sprinkled i.i.d.;
//! - **piecewise bandwidth/loss schedules** ([`LinkTrace`]) — replayable
//!   per-session traces such as a mobile handoff.
//!
//! All three default off, leaving the original link (and its RNG draw
//! sequence) bit-identical.

use signal::rng::Xoroshiro128;

/// How the per-frame drop decision is made.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent draw per frame at [`LinkConfig::loss`] — the original
    /// model, one RNG draw per offered frame.
    Iid,
    /// Gilbert–Elliott two-state chain: each offered frame first draws a
    /// state transition, then a drop at the current state's rate. The
    /// stationary bad-state probability is
    /// `p_enter_bad / (p_enter_bad + p_exit_bad)`, so the long-run loss
    /// rate is `p_bad * loss_bad + (1 - p_bad) * loss_good` (pinned by a
    /// props.rs stationarity property).
    GilbertElliott {
        /// Per-frame probability of flipping good → bad.
        p_enter_bad: f64,
        /// Per-frame probability of flipping bad → good.
        p_exit_bad: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// A bursty preset: mean burst length `1 / p_exit_bad` frames, with
    /// near-total loss inside a burst and a clean channel outside.
    #[must_use]
    pub fn bursty() -> Self {
        Self::GilbertElliott {
            p_enter_bad: 0.002,
            p_exit_bad: 0.05,
            loss_good: 0.0005,
            loss_bad: 0.6,
        }
    }
}

/// One phase of a [`LinkTrace`]: for `ticks` ticks the link runs at
/// `ticks_per_byte` with i.i.d. loss `loss` (overriding the config's
/// base values; latency is unchanged).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePhase {
    /// Phase duration in ticks.
    pub ticks: u64,
    /// Serialization rate during the phase (ticks per byte).
    pub ticks_per_byte: f64,
    /// I.i.d. frame-loss probability during the phase.
    pub loss: f64,
}

/// A piecewise bandwidth/loss schedule replayed against the link clock.
///
/// Phases apply in order; when `repeat` is set the schedule wraps,
/// otherwise the final phase persists past the end (the trace "settles").
/// A [`Link`] carrying a trace evaluates it at `trace_offset + now`, so a
/// transfer that starts mid-session sees the mid-session phase.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTrace {
    /// The schedule, in order. Must be non-empty to have any effect.
    pub phases: Vec<TracePhase>,
    /// Wrap around at the end instead of holding the last phase.
    pub repeat: bool,
}

impl LinkTrace {
    /// Total scheduled ticks (one period when repeating).
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.phases.iter().map(|p| p.ticks).sum()
    }

    /// The phase in effect at `tick`, or `None` for an empty trace.
    #[must_use]
    pub fn at(&self, tick: u64) -> Option<&TracePhase> {
        if self.phases.is_empty() {
            return None;
        }
        let total = self.total_ticks();
        let mut t = if self.repeat && total > 0 {
            tick % total
        } else {
            tick
        };
        for phase in &self.phases {
            if t < phase.ticks {
                return Some(phase);
            }
            t -= phase.ticks;
        }
        self.phases.last()
    }

    /// A mobile-handoff trace: strong cell → fade → handoff gap (a burst
    /// of near-outage) → recovery → stronger new cell, repeating.
    #[must_use]
    pub fn mobile_handoff() -> Self {
        Self {
            phases: vec![
                TracePhase {
                    ticks: 2_000,
                    ticks_per_byte: 0.01,
                    loss: 0.001,
                },
                TracePhase {
                    ticks: 800,
                    ticks_per_byte: 0.05,
                    loss: 0.05,
                },
                TracePhase {
                    ticks: 400,
                    ticks_per_byte: 0.5,
                    loss: 0.30,
                },
                TracePhase {
                    ticks: 800,
                    ticks_per_byte: 0.02,
                    loss: 0.02,
                },
                TracePhase {
                    ticks: 2_000,
                    ticks_per_byte: 0.005,
                    loss: 0.001,
                },
            ],
            repeat: true,
        }
    }

    /// A bursty trace: long clean stretches punctuated by short
    /// high-loss windows at unchanged bandwidth.
    #[must_use]
    pub fn bursty() -> Self {
        Self {
            phases: vec![
                TracePhase {
                    ticks: 600,
                    ticks_per_byte: 0.01,
                    loss: 0.0,
                },
                TracePhase {
                    ticks: 80,
                    ticks_per_byte: 0.01,
                    loss: 0.45,
                },
            ],
            repeat: true,
        }
    }
}

/// Link configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Probability a frame is dropped (the i.i.d. rate; see
    /// [`LinkConfig::loss_model`]).
    pub loss: f64,
    /// Propagation delay in ticks.
    pub latency_ticks: u64,
    /// Serialization: ticks per byte (0 = infinite bandwidth).
    pub ticks_per_byte: f64,
    /// How the drop decision is made. [`LossModel::Iid`] reproduces the
    /// original single-draw behaviour exactly.
    pub loss_model: LossModel,
    /// Drop-tail bound on the transmitter queue in bytes. `None` (the
    /// default) is the original unbounded queue — bufferbloat; `Some(b)`
    /// tail-drops any frame that would push the serialized backlog past
    /// `b` bytes.
    pub queue_bytes: Option<usize>,
}

impl Default for LinkConfig {
    /// Lossless, 5-tick latency, 100 bytes per tick, i.i.d. loss,
    /// unbounded queue.
    fn default() -> Self {
        Self {
            loss: 0.0,
            latency_ticks: 5,
            ticks_per_byte: 0.01,
            loss_model: LossModel::Iid,
            queue_bytes: None,
        }
    }
}

impl LinkConfig {
    /// A lossy variant of this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside the closed interval `[0, 1]`.
    /// `loss = 1.0` is a blackout: every frame drops, so a transfer
    /// fails fast via the retransmit cap rather than spinning to the
    /// deadline.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        self.loss = loss;
        self
    }

    /// A variant with a bounded drop-tail transmitter queue.
    #[must_use]
    pub fn with_queue_bytes(mut self, bytes: usize) -> Self {
        self.queue_bytes = Some(bytes);
        self
    }

    /// A variant with a different loss model.
    #[must_use]
    pub fn with_loss_model(mut self, model: LossModel) -> Self {
        self.loss_model = model;
        self
    }
}

/// A frame in flight.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    payload: Vec<u8>,
}

/// One direction of a link.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: Xoroshiro128,
    queue: Vec<InFlight>,
    /// When the transmitter finishes serializing its current frame.
    tx_free_at: u64,
    /// Gilbert–Elliott channel state (`true` = bad).
    ge_bad: bool,
    trace: Option<LinkTrace>,
    trace_offset: u64,
    sent: u64,
    dropped: u64,
    queue_drops: u64,
    delivered: u64,
}

impl Link {
    /// Creates a link.
    #[must_use]
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Self {
            config,
            rng: Xoroshiro128::new(seed),
            queue: Vec::new(),
            tx_free_at: 0,
            ge_bad: false,
            trace: None,
            trace_offset: 0,
            sent: 0,
            dropped: 0,
            queue_drops: 0,
            delivered: 0,
        }
    }

    /// Creates a link driven by a bandwidth/loss trace, evaluated at
    /// `trace_offset + now` so the link can join a schedule mid-flight.
    #[must_use]
    pub fn traced(config: LinkConfig, trace: LinkTrace, trace_offset: u64, seed: u64) -> Self {
        let mut link = Self::new(config, seed);
        link.trace = Some(trace);
        link.trace_offset = trace_offset;
        link
    }

    /// The serialization rate and i.i.d. loss in effect at `now` (the
    /// trace phase when one is active, the base config otherwise).
    fn effective(&self, now: u64) -> (f64, f64) {
        match self
            .trace
            .as_ref()
            .and_then(|t| t.at(self.trace_offset + now))
        {
            Some(phase) => (phase.ticks_per_byte, phase.loss),
            None => (self.config.ticks_per_byte, self.config.loss),
        }
    }

    /// Offers a frame for transmission at time `now`. Returns the tick at
    /// which the frame finishes serializing onto the wire — the moment a
    /// sender's retransmission clock should start, since a frame queued
    /// behind `tx_free_at` has not been transmitted yet. Dropped frames
    /// still return their would-be transmit-complete time (the sender
    /// cannot observe the drop); tail-dropped frames never reach the
    /// transmitter and return `now`.
    ///
    /// The serialization rate and loss are sampled at transmit start and
    /// held for the whole frame.
    pub fn send(&mut self, payload: Vec<u8>, now: u64) -> u64 {
        self.sent += 1;
        let (ticks_per_byte, loss) = self.effective(now);
        if let Some(limit) = self.config.queue_bytes {
            // Serialized backlog in bytes, derived from how far ahead of
            // `now` the transmitter is already committed.
            let backlog = if ticks_per_byte > 0.0 {
                (self.tx_free_at.saturating_sub(now) as f64 / ticks_per_byte).ceil() as usize
            } else {
                0
            };
            if backlog + payload.len() > limit {
                self.dropped += 1;
                self.queue_drops += 1;
                return now;
            }
        }
        let serialize = (payload.len() as f64 * ticks_per_byte).ceil() as u64;
        let start = now.max(self.tx_free_at);
        self.tx_free_at = start + serialize;
        let tx_complete = self.tx_free_at;
        if self.drop_draw(loss) {
            self.dropped += 1;
            return tx_complete;
        }
        self.queue.push(InFlight {
            deliver_at: tx_complete + self.config.latency_ticks,
            payload,
        });
        tx_complete
    }

    /// One drop decision. [`LossModel::Iid`] makes exactly one RNG draw
    /// per frame — the original sequence, bit-for-bit.
    fn drop_draw(&mut self, iid_loss: f64) -> bool {
        match self.config.loss_model {
            LossModel::Iid => self.rng.chance(iid_loss),
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                let flip = if self.ge_bad { p_exit_bad } else { p_enter_bad };
                if self.rng.chance(flip) {
                    self.ge_bad = !self.ge_bad;
                }
                let rate = if self.ge_bad { loss_bad } else { loss_good };
                self.rng.chance(rate)
            }
        }
    }

    /// Removes and returns every frame that has arrived by `now`.
    pub fn deliver(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut arrived = Vec::new();
        let mut rest = Vec::new();
        for f in self.queue.drain(..) {
            if f.deliver_at <= now {
                arrived.push((f.deliver_at, f.payload));
            } else {
                rest.push(f);
            }
        }
        self.queue = rest;
        arrived.sort_by_key(|(t, _)| *t);
        self.delivered += arrived.len() as u64;
        arrived.into_iter().map(|(_, p)| p).collect()
    }

    /// The next delivery time, if any frame is in flight.
    #[must_use]
    pub fn next_arrival(&self) -> Option<u64> {
        self.queue.iter().map(|f| f.deliver_at).min()
    }

    /// Frames offered.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames lost (channel drops plus tail drops).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames tail-dropped by the bounded transmitter queue.
    #[must_use]
    pub fn queue_drops(&self) -> u64 {
        self.queue_drops
    }

    /// Frames handed to the receiver.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_delivers_everything_in_order() {
        let mut link = Link::new(LinkConfig::default(), 1);
        for i in 0..5u8 {
            link.send(vec![i], i as u64);
        }
        let got = link.deliver(1_000);
        assert_eq!(got.len(), 5);
        for (i, frame) in got.iter().enumerate() {
            assert_eq!(frame[0], i as u8);
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let mut link = Link::new(LinkConfig::default(), 2);
        link.send(vec![1], 0);
        assert!(link.deliver(3).is_empty(), "too early");
        assert_eq!(link.deliver(100).len(), 1);
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let cfg = LinkConfig {
            latency_ticks: 0,
            ticks_per_byte: 1.0,
            ..LinkConfig::default()
        };
        let mut link = Link::new(cfg, 3);
        link.send(vec![0u8; 100], 0);
        assert!(link.deliver(50).is_empty());
        assert_eq!(link.deliver(100).len(), 1);
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut link = Link::new(LinkConfig::default().with_loss(0.3), 4);
        for i in 0..10_000 {
            link.send(vec![0], i);
        }
        let rate = link.dropped() as f64 / link.sent() as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn back_to_back_sends_queue_on_the_transmitter() {
        let cfg = LinkConfig {
            latency_ticks: 0,
            ticks_per_byte: 1.0,
            ..LinkConfig::default()
        };
        let mut link = Link::new(cfg, 5);
        link.send(vec![0u8; 10], 0);
        link.send(vec![0u8; 10], 0);
        // Second frame serializes after the first: arrives at t=20.
        assert_eq!(link.deliver(10).len(), 1);
        assert_eq!(link.deliver(20).len(), 1);
    }

    #[test]
    fn send_reports_transmit_complete_time() {
        let cfg = LinkConfig {
            latency_ticks: 7,
            ticks_per_byte: 1.0,
            ..LinkConfig::default()
        };
        let mut link = Link::new(cfg, 6);
        // 10 bytes at 1 tick/byte: wire-complete at 10, then 20.
        assert_eq!(link.send(vec![0u8; 10], 0), 10);
        assert_eq!(link.send(vec![0u8; 10], 0), 20);
        // An idle gap: offered at 100, done at 110.
        assert_eq!(link.send(vec![0u8; 10], 100), 110);
    }

    #[test]
    fn next_arrival_reports_earliest() {
        let mut link = Link::new(LinkConfig::default(), 6);
        assert_eq!(link.next_arrival(), None);
        link.send(vec![1], 0);
        assert!(link.next_arrival().is_some());
    }

    #[test]
    #[should_panic(expected = "loss must be")]
    fn bad_loss_rejected() {
        let _ = LinkConfig::default().with_loss(1.5);
    }

    #[test]
    fn total_loss_is_accepted_and_drops_everything() {
        let mut link = Link::new(LinkConfig::default().with_loss(1.0), 7);
        for i in 0..100 {
            link.send(vec![0], i);
        }
        assert_eq!(link.dropped(), 100);
        assert!(link.deliver(1_000_000).is_empty());
    }

    #[test]
    fn bounded_queue_tail_drops_a_burst() {
        let cfg = LinkConfig {
            latency_ticks: 0,
            ticks_per_byte: 1.0,
            ..LinkConfig::default()
        }
        .with_queue_bytes(25);
        let mut link = Link::new(cfg, 8);
        // Four 10-byte frames offered back-to-back: the first enters an
        // empty queue, the second and part of the backlog fit under 25
        // bytes, the rest tail-drop.
        let mut accepted = 0u64;
        for _ in 0..4 {
            let before = link.queue_drops();
            link.send(vec![0u8; 10], 0);
            if link.queue_drops() == before {
                accepted += 1;
            }
        }
        assert!(accepted < 4, "the burst must overflow the bound");
        assert!(link.queue_drops() > 0);
        assert_eq!(accepted + link.queue_drops(), 4);
        // Every accepted frame still delivers.
        assert_eq!(link.deliver(1_000).len() as u64, accepted);
    }

    #[test]
    fn bounded_queue_accepts_when_drained() {
        let cfg = LinkConfig {
            latency_ticks: 0,
            ticks_per_byte: 1.0,
            ..LinkConfig::default()
        }
        .with_queue_bytes(15);
        let mut link = Link::new(cfg, 9);
        assert_eq!(link.send(vec![0u8; 10], 0), 10);
        // Immediately after, the backlog rejects another 10 bytes...
        link.send(vec![0u8; 10], 0);
        assert_eq!(link.queue_drops(), 1);
        // ...but once the transmitter drains, the same frame fits.
        let done = link.send(vec![0u8; 10], 50);
        assert_eq!(done, 60);
        assert_eq!(link.queue_drops(), 1);
    }

    #[test]
    fn gilbert_elliott_clusters_losses() {
        // Compare the longest loss run between i.i.d. and GE at the same
        // long-run loss rate: bursts must show up as much longer runs.
        let ge = LossModel::GilbertElliott {
            p_enter_bad: 0.01,
            p_exit_bad: 0.09,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        // Stationary rate: 0.01 / 0.10 = 10% loss.
        let mut iid = Link::new(LinkConfig::default().with_loss(0.1), 10);
        let mut bursty = Link::new(LinkConfig::default().with_loss_model(ge), 10);
        let run = |link: &mut Link| {
            let mut longest = 0u32;
            let mut current = 0u32;
            for i in 0..20_000u64 {
                let before = link.dropped();
                link.send(vec![0], i);
                if link.dropped() > before {
                    current += 1;
                    longest = longest.max(current);
                } else {
                    current = 0;
                }
            }
            longest
        };
        let iid_run = run(&mut iid);
        let ge_run = run(&mut bursty);
        assert!(
            ge_run > iid_run * 2,
            "GE longest run {ge_run} must dwarf i.i.d. {iid_run}"
        );
    }

    #[test]
    fn trace_phases_change_the_serialization_rate() {
        let trace = LinkTrace {
            phases: vec![
                TracePhase {
                    ticks: 100,
                    ticks_per_byte: 1.0,
                    loss: 0.0,
                },
                TracePhase {
                    ticks: 100,
                    ticks_per_byte: 10.0,
                    loss: 0.0,
                },
            ],
            repeat: false,
        };
        let cfg = LinkConfig {
            latency_ticks: 0,
            ..LinkConfig::default()
        };
        let mut link = Link::traced(cfg, trace, 0, 11);
        // Phase 0: 10 bytes at 1 tick/byte.
        assert_eq!(link.send(vec![0u8; 10], 0), 10);
        // Phase 1: 10 bytes at 10 ticks/byte.
        assert_eq!(link.send(vec![0u8; 10], 150), 250);
        // Past the end the last phase persists.
        assert_eq!(link.send(vec![0u8; 10], 1_000), 1_100);
    }

    #[test]
    fn trace_offset_joins_mid_schedule() {
        let trace = LinkTrace {
            phases: vec![
                TracePhase {
                    ticks: 100,
                    ticks_per_byte: 1.0,
                    loss: 0.0,
                },
                TracePhase {
                    ticks: 100,
                    ticks_per_byte: 10.0,
                    loss: 0.0,
                },
            ],
            repeat: true,
        };
        let cfg = LinkConfig {
            latency_ticks: 0,
            ..LinkConfig::default()
        };
        // Offset 150 puts local tick 0 inside phase 1.
        let mut link = Link::traced(cfg, trace.clone(), 150, 12);
        assert_eq!(link.send(vec![0u8; 10], 0), 100);
        // Repetition: local tick 50 + offset 150 = 200 ≡ 0 (mod 200).
        let mut wrapped = Link::traced(cfg, trace, 150, 13);
        assert_eq!(wrapped.send(vec![0u8; 10], 50), 60);
    }

    #[test]
    fn trace_lookup_is_piecewise_and_wraps() {
        let trace = LinkTrace::mobile_handoff();
        let period = trace.total_ticks();
        assert!(trace.repeat);
        let first = trace.at(0).unwrap();
        assert_eq!(first.ticks_per_byte, 0.01);
        let again = trace.at(period).unwrap();
        assert_eq!(first, again, "repeat must wrap to phase 0");
        // The handoff gap sits after the first two phases.
        let gap = trace.at(2_000 + 800).unwrap();
        assert_eq!(gap.ticks_per_byte, 0.5);
    }
}
