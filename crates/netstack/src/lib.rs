//! # `netstack` — the small IP stack of Wolf's §7
//!
//! *"These devices can make use of the small IP stacks that have been
//! developed over the past several years"* — for limited purposes such as
//! content access or DRM. This crate is such a stack, simulated end to
//! end:
//!
//! * [`link`] — deterministic lossy/latency point-to-point link, with a
//!   bounded drop-tail queue (bufferbloat knob), Gilbert–Elliott bursty
//!   loss, and piecewise bandwidth/loss traces.
//! * [`packet`] — IP-style packets with checksums, fragmentation, and
//!   reassembly.
//! * [`udp`] — best-effort datagrams (the baseline of experiment E14).
//! * [`tcplite`] — reliable streams: cumulative-ACK, adaptive-RTO,
//!   congestion-controlled (fixed window, AIMD, or CUBIC-flavored).
//! * [`fetch`] — named-object content access over TCP-lite (the DRM
//!   license path of the integration tests).
//!
//! # Example
//!
//! ```
//! use netstack::link::LinkConfig;
//! use netstack::tcplite::{transfer, TcpConfig};
//!
//! let data = vec![9u8; 4096];
//! let report = transfer(&data, TcpConfig::default(),
//!                       LinkConfig::default().with_loss(0.1), 7)?;
//! assert_eq!(report.data, data); // reliable despite loss
//! # Ok::<(), netstack::tcplite::TcpError>(())
//! ```

pub mod fetch;
pub mod link;
pub mod packet;
pub mod tcplite;
pub mod udp;

pub use fetch::{fetch, fetch_traced, ContentServer, FetchError};
pub use link::{Link, LinkConfig, LinkTrace, LossModel, TracePhase};
pub use packet::{Addr, Packet, Protocol};
pub use tcplite::{transfer, CongestionControl, TcpConfig, TcpError, TransferReport};
