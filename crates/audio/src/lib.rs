//! # `audio` — the audio compression systems of Wolf's §4
//!
//! Two codecs, matching the two models the paper describes:
//!
//! * **MPEG-1-style subband coder** (Figure 2): [`filterbank`] mapper →
//!   [`psycho`]acoustic model → bit [`alloc`]ation → [`quantizer`] →
//!   frame packer, all orchestrated by [`encoder`]. Built on *hearing*:
//!   masked components are simply not transmitted.
//! * **RPE-LTP speech coder** ([`rpeltp`]): the GSM full-rate structure,
//!   built on *sound generation* — the voiced/unvoiced source–filter model
//!   of the human voice.
//!
//! # Example
//!
//! ```
//! use audio::encoder::{AudioConfig, AudioEncoder, decode};
//! use signal::gen::SignalGen;
//! use signal::metrics::snr;
//!
//! let pcm = SignalGen::new(9).music(330.0, 44_100.0, 2 * 1152);
//! let stream = AudioEncoder::new(AudioConfig::default()).encode(&pcm)?;
//! let out = decode(&stream.bytes)?;
//! assert!(snr(&pcm, &out.samples).unwrap() > 10.0);
//! # Ok::<(), audio::encoder::AudioError>(())
//! ```

pub mod alloc;
pub mod encoder;
pub mod filterbank;
pub mod psycho;
pub mod quantizer;
pub mod rpeltp;

pub use encoder::{decode, AudioConfig, AudioEncoder, AudioError, EncodedAudio};
pub use rpeltp::RpeLtp;
