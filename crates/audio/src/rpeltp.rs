//! RPE-LTP speech codec — the GSM full-rate scheme of paper §4.
//!
//! *"The GSM cellular telephony standard uses an audio compression method
//! called Regular Pulse Excitation-Long Term Predictor (RPE-LTP). This
//! method uses a fairly simple model of the voice to encode speech."*
//!
//! The structure follows GSM 06.10: 160-sample frames at 8 kHz; an 8th-
//! order short-term LPC analysis (autocorrelation + Levinson–Durbin); four
//! 40-sample subframes each carrying a long-term predictor (pitch lag +
//! gain) and a regular-pulse-excitation grid (every 3rd residual sample,
//! best of 3 phases, block-max quantized). Bit layout quantities match the
//! standard's order of magnitude (≈260 bits / 20 ms ≈ 13 kbit/s); the
//! quantizer tables are simplified (DESIGN.md §5).

use signal::bits::{BitReader, BitWriter, OutOfBitsError};

/// Samples per frame (20 ms at 8 kHz).
pub const FRAME: usize = 160;
/// Subframe length.
pub const SUBFRAME: usize = 40;
/// LPC order.
pub const LPC_ORDER: usize = 8;
/// RPE decimation factor.
pub const RPE_STRIDE: usize = 3;
/// Pulses per subframe grid (ceil(40/3)).
pub const RPE_PULSES: usize = 14;
/// Minimum long-term lag searched.
pub const MIN_LAG: usize = 40;
/// Maximum long-term lag searched.
pub const MAX_LAG: usize = 120;

/// Errors from the speech codec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeechError {
    /// Input length is not a positive multiple of the frame size.
    BadLength(usize),
    /// Stream truncated mid-frame.
    Truncated(OutOfBitsError),
    /// Bad stream magic.
    BadMagic(u32),
}

impl core::fmt::Display for SpeechError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpeechError::BadLength(n) => {
                write!(f, "input length {n} is not a positive multiple of {FRAME}")
            }
            SpeechError::Truncated(e) => write!(f, "truncated stream: {e}"),
            SpeechError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
        }
    }
}

impl std::error::Error for SpeechError {}

impl From<OutOfBitsError> for SpeechError {
    fn from(e: OutOfBitsError) -> Self {
        SpeechError::Truncated(e)
    }
}

const MAGIC: u32 = 0x5350; // "SP"

/// Per-frame diagnostics from encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeechFrameStats {
    /// Bits used by the frame.
    pub bits: usize,
    /// Mean quantized LTP gain across the four subframes (0..1); high for
    /// voiced (periodic) speech, low for unvoiced.
    pub mean_ltp_gain: f64,
    /// Best lag per subframe.
    pub lags: [usize; 4],
}

/// An encoded speech stream.
#[derive(Debug, Clone)]
pub struct EncodedSpeech {
    /// Packed bytes.
    pub bytes: Vec<u8>,
    /// Per-frame stats.
    pub frames: Vec<SpeechFrameStats>,
}

impl EncodedSpeech {
    /// Bit rate in bits per second at 8 kHz.
    #[must_use]
    pub fn bitrate_bps(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let bits: usize = self.frames.iter().map(|f| f.bits).sum();
        bits as f64 / (self.frames.len() as f64 * FRAME as f64 / 8000.0)
    }
}

/// Levinson–Durbin recursion: LPC coefficients from autocorrelation.
/// Returns `order` coefficients `a[1..=order]` of the prediction
/// `x[n] ≈ Σ a[k] x[n-k]`.
#[must_use]
pub fn levinson_durbin(autocorr: &[f64], order: usize) -> Vec<f64> {
    assert!(autocorr.len() > order, "need order+1 autocorrelation lags");
    let mut a = vec![0.0; order + 1];
    let mut e = autocorr[0].max(1e-9);
    for i in 1..=order {
        let mut acc = autocorr[i];
        for j in 1..i {
            acc -= a[j] * autocorr[i - j];
        }
        let k = (acc / e).clamp(-0.999, 0.999);
        let mut new_a = a.clone();
        new_a[i] = k;
        for j in 1..i {
            new_a[j] = a[j] - k * a[i - j];
        }
        a = new_a;
        e *= 1.0 - k * k;
        if e <= 0.0 {
            break;
        }
    }
    a[1..].to_vec()
}

/// Autocorrelation of `x` at lags `0..=max_lag`.
#[must_use]
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag)
        .map(|lag| x[lag..].iter().zip(x).map(|(a, b)| a * b).sum::<f64>())
        .collect()
}

/// Quantizes an LPC coefficient to 6 bits in [-2, 2).
fn quant_lpc(c: f64) -> u32 {
    (((c.clamp(-2.0, 1.999) + 2.0) / 4.0) * 63.0).round() as u32
}

fn dequant_lpc(q: u32) -> f64 {
    (q as f64 / 63.0) * 4.0 - 2.0
}

/// Quantizes an LTP gain to 2 bits over {0.1, 0.35, 0.65, 0.95}.
fn quant_gain(g: f64) -> u32 {
    const LEVELS: [f64; 4] = [0.1, 0.35, 0.65, 0.95];
    LEVELS
        .iter()
        .enumerate()
        .min_by(|a, b| (a.1 - g).abs().total_cmp(&(b.1 - g).abs()))
        .map(|(i, _)| i as u32)
        .expect("levels non-empty")
}

fn dequant_gain(q: u32) -> f64 {
    [0.1, 0.35, 0.65, 0.95][q as usize & 3]
}

/// Quantizes a block maximum to 6 bits, logarithmic.
fn quant_max(m: f64) -> u32 {
    if m <= 1e-6 {
        return 0;
    }
    // 6-bit log scale over [1e-6, ~32).
    let db = 20.0 * m.log10(); // -120 .. +30
    (((db + 120.0) / 150.0) * 63.0).clamp(0.0, 63.0).round() as u32
}

fn dequant_max(q: u32) -> f64 {
    if q == 0 {
        return 0.0;
    }
    10f64.powf(((q as f64 / 63.0) * 150.0 - 120.0) / 20.0)
}

/// The RPE-LTP codec.
///
/// # Example
///
/// ```
/// use audio::rpeltp::RpeLtp;
/// use signal::gen::SignalGen;
///
/// let (speech, _) = SignalGen::new(3).speech_sentence(8000.0, 4 * 160);
/// let codec = RpeLtp::new();
/// let enc = codec.encode(&speech)?;
/// let dec = codec.decode(&enc.bytes)?;
/// assert_eq!(dec.len(), speech.len());
/// // ≈13 kbit/s, the GSM full-rate ballpark.
/// assert!(enc.bitrate_bps() > 10_000.0 && enc.bitrate_bps() < 17_000.0);
/// # Ok::<(), audio::rpeltp::SpeechError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RpeLtp;

impl RpeLtp {
    /// Creates the codec (stateless between calls; history is carried
    /// inside each stream).
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Encodes speech (length must be a positive multiple of 160).
    ///
    /// # Errors
    ///
    /// Returns [`SpeechError::BadLength`] otherwise.
    pub fn encode(&self, pcm: &[f64]) -> Result<EncodedSpeech, SpeechError> {
        if pcm.is_empty() || pcm.len() % FRAME != 0 {
            return Err(SpeechError::BadLength(pcm.len()));
        }
        let mut w = BitWriter::new();
        w.write_bits(MAGIC, 16);
        w.write_bits((pcm.len() / FRAME) as u32, 16);

        let mut stats = Vec::new();
        // Reconstructed residual history for LTP (what the decoder will
        // have), padded with zeros initially.
        let mut residual_history = vec![0.0f64; MAX_LAG];
        // Short-term filter memory across frames.
        let mut st_memory = [0.0f64; LPC_ORDER];

        for frame in pcm.chunks_exact(FRAME) {
            let start_bits = w.bit_len();
            // --- Short-term analysis.
            let ac = autocorrelation(frame, LPC_ORDER);
            let lpc = levinson_durbin(&ac, LPC_ORDER);
            let lpc_q: Vec<u32> = lpc.iter().map(|&c| quant_lpc(c)).collect();
            let lpc_dq: Vec<f64> = lpc_q.iter().map(|&q| dequant_lpc(q)).collect();
            for &q in &lpc_q {
                w.write_bits(q, 6);
            }
            // Short-term residual with quantized coefficients and carried
            // memory.
            let mut residual = vec![0.0f64; FRAME];
            for n in 0..FRAME {
                let mut pred = 0.0;
                for (k, &a) in lpc_dq.iter().enumerate() {
                    let idx = n as i64 - (k as i64 + 1);
                    let x = if idx >= 0 {
                        frame[idx as usize]
                    } else {
                        st_memory[(-idx - 1) as usize]
                    };
                    pred += a * x;
                }
                residual[n] = frame[n] - pred;
            }
            // Update short-term memory with the *input* tail (encoder-side
            // approximation; decoder mirrors with its reconstruction).
            for k in 0..LPC_ORDER {
                st_memory[k] = frame[FRAME - 1 - k];
            }

            // --- Per-subframe LTP + RPE.
            let mut mean_gain = 0.0;
            let mut lags = [0usize; 4];
            for (s, lag_slot) in lags.iter_mut().enumerate() {
                let sub = &residual[s * SUBFRAME..(s + 1) * SUBFRAME];
                // LTP search over the reconstructed residual history.
                let hist_len = residual_history.len();
                let mut best_lag = MIN_LAG;
                let mut best_corr = f64::NEG_INFINITY;
                for lag in MIN_LAG..=MAX_LAG {
                    let mut corr = 0.0;
                    let mut energy = 1e-9;
                    for n in 0..SUBFRAME {
                        let h = residual_history[hist_len - lag + n % lag];
                        corr += sub[n] * h;
                        energy += h * h;
                    }
                    let score = corr * corr / energy;
                    if score > best_corr {
                        best_corr = score;
                        best_lag = lag;
                    }
                }
                // Gain = normalized correlation at the best lag.
                let mut corr = 0.0;
                let mut energy = 1e-9;
                let mut pred = vec![0.0f64; SUBFRAME];
                for n in 0..SUBFRAME {
                    let h = residual_history[hist_len - best_lag + n % best_lag];
                    pred[n] = h;
                    corr += sub[n] * h;
                    energy += h * h;
                }
                let gain = (corr / energy).clamp(0.0, 1.0);
                let gain_q = quant_gain(gain);
                let gain_dq = dequant_gain(gain_q);
                mean_gain += gain_dq / 4.0;
                *lag_slot = best_lag;

                // LTP residual = subframe - gain * history.
                let ltp_res: Vec<f64> = (0..SUBFRAME).map(|n| sub[n] - gain_dq * pred[n]).collect();

                // RPE: best of 3 phases, samples every 3rd position.
                let mut best_phase = 0usize;
                let mut best_energy = f64::NEG_INFINITY;
                for phase in 0..RPE_STRIDE {
                    let e: f64 = (phase..SUBFRAME)
                        .step_by(RPE_STRIDE)
                        .map(|i| ltp_res[i] * ltp_res[i])
                        .sum();
                    if e > best_energy {
                        best_energy = e;
                        best_phase = phase;
                    }
                }
                let pulses: Vec<f64> = (best_phase..SUBFRAME)
                    .step_by(RPE_STRIDE)
                    .map(|i| ltp_res[i])
                    .collect();
                let block_max = pulses.iter().fold(0.0f64, |m, &p| m.max(p.abs()));
                let max_q = quant_max(block_max);
                let max_dq = dequant_max(max_q);

                // Emit subframe: lag (7 bits, offset MIN_LAG), gain (2),
                // phase (2), max (6), pulses (3 bits each).
                w.write_bits((best_lag - MIN_LAG) as u32, 7);
                w.write_bits(gain_q, 2);
                w.write_bits(best_phase as u32, 2);
                w.write_bits(max_q, 6);
                let mut recon_excitation = vec![0.0f64; SUBFRAME];
                for (pi, &p) in pulses.iter().enumerate() {
                    let code = if max_dq <= 0.0 {
                        3
                    } else {
                        (((p / max_dq).clamp(-1.0, 1.0) + 1.0) / 2.0 * 7.0).round() as u32
                    };
                    w.write_bits(code, 3);
                    let dq = if max_dq <= 0.0 {
                        0.0
                    } else {
                        (code as f64 / 7.0 * 2.0 - 1.0) * max_dq
                    };
                    recon_excitation[best_phase + pi * RPE_STRIDE] = dq;
                }

                // Reconstructed subframe residual (decoder mirror) feeds
                // the LTP history.
                let recon_sub: Vec<f64> = (0..SUBFRAME)
                    .map(|n| gain_dq * pred[n] + recon_excitation[n])
                    .collect();
                residual_history.extend_from_slice(&recon_sub);
                let excess = residual_history.len() - MAX_LAG.max(SUBFRAME * 4);
                if excess > 0 && residual_history.len() > 4 * MAX_LAG {
                    residual_history.drain(..residual_history.len() - 2 * MAX_LAG);
                }
            }

            stats.push(SpeechFrameStats {
                bits: w.bit_len() - start_bits,
                mean_ltp_gain: mean_gain,
                lags,
            });
        }
        Ok(EncodedSpeech {
            bytes: w.into_bytes(),
            frames: stats,
        })
    }

    /// Decodes a stream produced by [`RpeLtp::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`SpeechError`] on malformed input.
    pub fn decode(&self, bytes: &[u8]) -> Result<Vec<f64>, SpeechError> {
        let mut r = BitReader::new(bytes);
        let magic = r.read_bits(16)?;
        if magic != MAGIC {
            return Err(SpeechError::BadMagic(magic));
        }
        let n_frames = r.read_bits(16)? as usize;
        let mut out = Vec::with_capacity(n_frames * FRAME);
        let mut residual_history = vec![0.0f64; MAX_LAG];
        let mut st_memory = [0.0f64; LPC_ORDER];

        for _ in 0..n_frames {
            let mut lpc_dq = vec![0.0f64; LPC_ORDER];
            for c in &mut lpc_dq {
                *c = dequant_lpc(r.read_bits(6)?);
            }
            let mut frame_residual = Vec::with_capacity(FRAME);
            for _ in 0..4 {
                let lag = r.read_bits(7)? as usize + MIN_LAG;
                let gain = dequant_gain(r.read_bits(2)?);
                let phase = r.read_bits(2)? as usize;
                let max_dq = dequant_max(r.read_bits(6)?);
                let hist_len = residual_history.len();
                let mut excitation = vec![0.0f64; SUBFRAME];
                for pi in 0..RPE_PULSES.min((SUBFRAME - phase).div_ceil(RPE_STRIDE)) {
                    let code = r.read_bits(3)?;
                    let v = if max_dq <= 0.0 {
                        0.0
                    } else {
                        (code as f64 / 7.0 * 2.0 - 1.0) * max_dq
                    };
                    let pos = phase + pi * RPE_STRIDE;
                    if pos < SUBFRAME {
                        excitation[pos] = v;
                    }
                }
                let recon_sub: Vec<f64> = (0..SUBFRAME)
                    .map(|n| gain * residual_history[hist_len - lag + n % lag] + excitation[n])
                    .collect();
                residual_history.extend_from_slice(&recon_sub);
                if residual_history.len() > 4 * MAX_LAG {
                    residual_history.drain(..residual_history.len() - 2 * MAX_LAG);
                }
                frame_residual.extend(recon_sub);
            }
            // Short-term synthesis: x[n] = res[n] + Σ a[k] x[n-k].
            let mut frame_out = vec![0.0f64; FRAME];
            for n in 0..FRAME {
                let mut pred = 0.0;
                for (k, &a) in lpc_dq.iter().enumerate() {
                    let idx = n as i64 - (k as i64 + 1);
                    let x = if idx >= 0 {
                        frame_out[idx as usize]
                    } else {
                        st_memory[(-idx - 1) as usize]
                    };
                    pred += a * x;
                }
                frame_out[n] = (frame_residual[n] + pred).clamp(-8.0, 8.0);
            }
            for k in 0..LPC_ORDER {
                st_memory[k] = frame_out[FRAME - 1 - k];
            }
            out.extend(frame_out);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::gen::{SignalGen, SpeechSegment};

    #[test]
    fn length_validation() {
        let c = RpeLtp::new();
        assert_eq!(c.encode(&[]).unwrap_err(), SpeechError::BadLength(0));
        assert_eq!(
            c.encode(&vec![0.0; 100]).unwrap_err(),
            SpeechError::BadLength(100)
        );
    }

    #[test]
    fn bitrate_is_gsm_ballpark() {
        let (speech, _) = SignalGen::new(21).speech_sentence(8000.0, 8 * FRAME);
        let enc = RpeLtp::new().encode(&speech).unwrap();
        let rate = enc.bitrate_bps();
        assert!(
            (10_000.0..17_000.0).contains(&rate),
            "bitrate {rate:.0} bps outside the 13 kbit/s ballpark"
        );
    }

    #[test]
    fn voiced_frames_show_higher_ltp_gain_than_unvoiced() {
        let mut g = SignalGen::new(22);
        let (voiced, _) = g.speech(
            &[(SpeechSegment::Voiced { pitch_hz: 100.0 }, 8 * FRAME)],
            8000.0,
        );
        let (unvoiced, _) = g.speech(&[(SpeechSegment::Unvoiced, 8 * FRAME)], 8000.0);
        let codec = RpeLtp::new();
        let ev = codec.encode(&voiced).unwrap();
        let eu = codec.encode(&unvoiced).unwrap();
        // Skip the first frames (history warm-up).
        let gain = |e: &EncodedSpeech| {
            e.frames[2..].iter().map(|f| f.mean_ltp_gain).sum::<f64>() / (e.frames.len() - 2) as f64
        };
        let gv = gain(&ev);
        let gu = gain(&eu);
        assert!(
            gv > gu + 0.1,
            "voiced LTP gain {gv:.2} should clearly exceed unvoiced {gu:.2}"
        );
    }

    #[test]
    fn voiced_lag_tracks_pitch_period() {
        let mut g = SignalGen::new(23);
        // 100 Hz pitch at 8 kHz = 80-sample period.
        let (voiced, _) = g.speech(
            &[(SpeechSegment::Voiced { pitch_hz: 100.0 }, 8 * FRAME)],
            8000.0,
        );
        let enc = RpeLtp::new().encode(&voiced).unwrap();
        let lags: Vec<usize> = enc.frames[3..].iter().flat_map(|f| f.lags).collect();
        let near_pitch = lags
            .iter()
            .filter(|&&l| (l as i64 - 80).abs() <= 3 || (l as i64 - 40).abs() <= 3)
            .count();
        assert!(
            near_pitch * 2 > lags.len(),
            "most lags should sit at the pitch period (or its half): {lags:?}"
        );
    }

    #[test]
    fn decoder_reconstructs_energy_envelope() {
        let mut g = SignalGen::new(24);
        let (speech, _) = g.speech(
            &[
                (SpeechSegment::Voiced { pitch_hz: 120.0 }, 4 * FRAME),
                (SpeechSegment::Silence, 2 * FRAME),
                (SpeechSegment::Unvoiced, 2 * FRAME),
            ],
            8000.0,
        );
        let codec = RpeLtp::new();
        let enc = codec.encode(&speech).unwrap();
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.len(), speech.len());
        // Energy per segment must follow the source: voiced loud,
        // silence quiet.
        let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
        let voiced_rms = rms(&dec[FRAME..4 * FRAME]);
        let silence_rms = rms(&dec[4 * FRAME + FRAME / 2..6 * FRAME - FRAME / 2]);
        assert!(
            voiced_rms > 4.0 * silence_rms,
            "voiced {voiced_rms:.4} vs silence {silence_rms:.4}"
        );
    }

    #[test]
    fn round_trip_is_deterministic() {
        let (speech, _) = SignalGen::new(25).speech_sentence(8000.0, 4 * FRAME);
        let codec = RpeLtp::new();
        let a = codec.encode(&speech).unwrap();
        let b = codec.encode(&speech).unwrap();
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn corrupt_stream_rejected() {
        assert!(matches!(
            RpeLtp::new().decode(&[1, 2, 3]),
            Err(SpeechError::BadMagic(_)) | Err(SpeechError::Truncated(_))
        ));
    }

    #[test]
    fn levinson_durbin_recovers_ar_process() {
        // Synthesize x[n] = 0.8 x[n-1] + e and check a1 ≈ 0.8.
        let mut rng = signal::rng::Xoroshiro128::new(26);
        let mut x = vec![0.0f64; 4000];
        for n in 1..x.len() {
            x[n] = 0.8 * x[n - 1] + rng.normal_with(0.0, 0.1);
        }
        let ac = autocorrelation(&x, 2);
        let lpc = levinson_durbin(&ac, 2);
        assert!((lpc[0] - 0.8).abs() < 0.06, "a1 = {}", lpc[0]);
        assert!(lpc[1].abs() < 0.08, "a2 = {}", lpc[1]);
    }
}
