//! Bit allocation: turning signal-to-mask ratios into per-band bit
//! depths.
//!
//! The greedy water-filling allocator repeatedly gives one more bit to the
//! band whose *need* (SMR minus the SNR already bought, ≈6.02 dB per bit)
//! is largest — so masked bands (negative SMR) receive bits only after
//! every audible band is satisfied, which at realistic budgets means
//! never. The flat allocator is the no-psychoacoustics baseline that
//! experiment E7 compares against.

use crate::filterbank::BANDS;

/// SNR gained per quantizer bit, dB.
pub const DB_PER_BIT: f64 = 6.02;

/// Maximum bits per subband sample.
pub const MAX_BITS: u8 = 15;

/// A per-band bit-depth assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Bits per sample for each band.
    pub bits: [u8; BANDS],
}

impl Allocation {
    /// Total bits consumed by `granules` samples per band.
    #[must_use]
    pub fn total_bits(&self, granules: usize) -> u64 {
        self.bits.iter().map(|&b| b as u64 * granules as u64).sum()
    }

    /// Number of bands given zero bits.
    #[must_use]
    pub fn zeroed_bands(&self) -> usize {
        self.bits.iter().filter(|&&b| b == 0).count()
    }
}

/// Greedy psychoacoustic allocation: spend `budget_bits` (for one band's
/// worth of `granules` samples each step) maximizing masking-aware
/// benefit. Stops early when every band's need drops below `stop_need_db`
/// (no audible improvement left).
///
/// # Panics
///
/// Panics if `granules == 0`.
#[must_use]
pub fn psychoacoustic(
    smr_db: &[f64; BANDS],
    granules: usize,
    budget_bits: u64,
    stop_need_db: f64,
) -> Allocation {
    assert!(granules > 0, "need at least one granule");
    let mut bits = [0u8; BANDS];
    let mut spent = 0u64;
    let step = granules as u64; // adding 1 bit to a band costs this much
    loop {
        // Find the neediest band that can still take a bit.
        let mut best: Option<(usize, f64)> = None;
        for b in 0..BANDS {
            if bits[b] >= MAX_BITS {
                continue;
            }
            let need = smr_db[b] - DB_PER_BIT * bits[b] as f64;
            if best.map(|(_, n)| need > n).unwrap_or(true) {
                best = Some((b, need));
            }
        }
        let Some((band, need)) = best else { break };
        if need < stop_need_db || spent + step > budget_bits {
            break;
        }
        bits[band] += 1;
        spent += step;
    }
    Allocation { bits }
}

/// Flat baseline: the same depth everywhere, as many bits as the budget
/// allows, ignoring masking entirely.
///
/// # Panics
///
/// Panics if `granules == 0`.
#[must_use]
pub fn flat(granules: usize, budget_bits: u64) -> Allocation {
    assert!(granules > 0, "need at least one granule");
    let per_band = (budget_bits / (BANDS as u64 * granules as u64)).min(MAX_BITS as u64) as u8;
    Allocation {
        bits: [per_band; BANDS],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smr_with(values: &[(usize, f64)]) -> [f64; BANDS] {
        let mut smr = [-20.0; BANDS];
        for &(b, v) in values {
            smr[b] = v;
        }
        smr
    }

    #[test]
    fn masked_bands_get_zero_bits() {
        let smr = smr_with(&[(3, 40.0), (4, 30.0)]);
        let alloc = psychoacoustic(&smr, 36, 10_000, 0.0);
        assert!(alloc.bits[3] > 0);
        assert!(alloc.bits[4] > 0);
        for b in 0..BANDS {
            if b != 3 && b != 4 {
                assert_eq!(alloc.bits[b], 0, "masked band {b} got bits");
            }
        }
    }

    #[test]
    fn higher_smr_gets_more_bits() {
        let smr = smr_with(&[(1, 50.0), (2, 20.0)]);
        let alloc = psychoacoustic(&smr, 36, 300 * 36, 0.0);
        assert!(alloc.bits[1] > alloc.bits[2]);
    }

    #[test]
    fn budget_is_respected() {
        let smr = [30.0; BANDS];
        let granules = 36;
        let budget = 1000;
        let alloc = psychoacoustic(&smr, granules, budget, -60.0);
        assert!(alloc.total_bits(granules) <= budget);
    }

    #[test]
    fn allocation_stops_at_no_audible_gain() {
        let smr = smr_with(&[(0, 12.0)]);
        // Huge budget, but needs drop below 0 after 2 bits (12 - 12.04 < 0).
        let alloc = psychoacoustic(&smr, 1, 1_000_000, 0.0);
        assert_eq!(alloc.bits[0], 2);
    }

    #[test]
    fn bits_capped_at_max() {
        let smr = smr_with(&[(0, 500.0)]);
        let alloc = psychoacoustic(&smr, 1, 1_000_000, 0.0);
        assert_eq!(alloc.bits[0], MAX_BITS);
    }

    #[test]
    fn flat_spreads_evenly() {
        let alloc = flat(36, 4 * 32 * 36);
        assert!(alloc.bits.iter().all(|&b| b == 4));
        assert_eq!(alloc.zeroed_bands(), 0);
    }

    #[test]
    fn flat_caps_at_max_bits() {
        let alloc = flat(1, u64::MAX);
        assert!(alloc.bits.iter().all(|&b| b == MAX_BITS));
    }

    #[test]
    fn total_bits_formula() {
        let mut bits = [0u8; BANDS];
        bits[0] = 3;
        bits[5] = 2;
        let alloc = Allocation { bits };
        assert_eq!(alloc.total_bits(10), 50);
        assert_eq!(alloc.zeroed_bands(), 30);
    }
}
