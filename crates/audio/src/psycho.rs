//! The psychoacoustic model of Figure 2.
//!
//! Paper §4: *"A key psychoacoustic mechanism exploited by compression is
//! masking — when one tone is heard, followed by another tone at a nearby
//! frequency, the second tone cannot be heard for some interval. … The
//! encoder can eliminate masked tones to reduce the amount of information
//! that is sent to the decoder."*
//!
//! The model analyses each frame with an FFT, folds bin power into the 32
//! subbands of the mapper, spreads each band's power across its neighbours
//! (simultaneous masking, asymmetric slopes), applies a masking offset and
//! an absolute hearing threshold, and reports the signal-to-mask ratio
//! (SMR) per band. Bands with negative SMR are inaudible — the bit
//! allocator gives them nothing.

use signal::fft::Fft;
use signal::window::{Window, WindowKind};

use crate::filterbank::BANDS;

/// Size of the model's FFT.
pub const FFT_SIZE: usize = 1024;

/// Masking offset in dB (how far below a masker the masked threshold
/// sits).
pub const MASK_OFFSET_DB: f64 = 14.0;

/// Spreading slope toward higher bands, dB per band.
pub const SLOPE_UP_DB: f64 = 15.0;

/// Spreading slope toward lower bands, dB per band.
pub const SLOPE_DOWN_DB: f64 = 25.0;

/// Absolute threshold of hearing, as linear power (model floor).
pub const ABSOLUTE_THRESHOLD: f64 = 1e-10;

/// Per-band analysis produced by the model.
#[derive(Debug, Clone, PartialEq)]
pub struct PsychoAnalysis {
    /// Linear signal power per band.
    pub band_power: [f64; BANDS],
    /// Linear masked threshold per band.
    pub threshold: [f64; BANDS],
}

impl PsychoAnalysis {
    /// Signal-to-mask ratio in dB per band: positive means the band is
    /// audible above the mask and needs bits; negative means masked.
    #[must_use]
    pub fn smr_db(&self) -> [f64; BANDS] {
        let mut out = [0.0; BANDS];
        for ((o, p), t) in out.iter_mut().zip(&self.band_power).zip(&self.threshold) {
            *o = 10.0 * (p.max(1e-30) / t.max(1e-30)).log10();
        }
        out
    }

    /// Indices of masked (inaudible) bands.
    #[must_use]
    pub fn masked_bands(&self) -> Vec<usize> {
        self.smr_db()
            .iter()
            .enumerate()
            .filter(|(_, &s)| s <= 0.0)
            .map(|(b, _)| b)
            .collect()
    }
}

/// The psychoacoustic model (plans its FFT once).
///
/// # Example
///
/// ```
/// use audio::psycho::PsychoModel;
/// use signal::gen::{SignalGen, ToneSpec};
///
/// // A strong tone in band 4 masks a weak tone in band 5.
/// let fs = 32_000.0;
/// let mut g = SignalGen::new(1);
/// let x = g.tones(
///     &[ToneSpec::new(2250.0, 1.0), ToneSpec::new(2750.0, 0.01)],
///     fs,
///     1024,
/// );
/// let model = PsychoModel::new();
/// let analysis = model.analyse(&x);
/// assert!(analysis.masked_bands().contains(&5));
/// assert!(!analysis.masked_bands().contains(&4));
/// ```
#[derive(Debug, Clone)]
pub struct PsychoModel {
    fft: Fft,
    window: Window,
}

impl Default for PsychoModel {
    fn default() -> Self {
        Self::new()
    }
}

impl PsychoModel {
    /// Builds the model.
    #[must_use]
    pub fn new() -> Self {
        Self {
            fft: Fft::new(FFT_SIZE),
            window: Window::new(WindowKind::Hann, FFT_SIZE),
        }
    }

    /// Analyses one frame. Frames shorter than the FFT are zero-padded;
    /// longer frames use their first [`FFT_SIZE`] samples.
    #[must_use]
    pub fn analyse(&self, frame: &[f64]) -> PsychoAnalysis {
        let mut buf = vec![0.0; FFT_SIZE];
        let n = frame.len().min(FFT_SIZE);
        buf[..n].copy_from_slice(&frame[..n]);
        self.window.apply(&mut buf);
        let power = self.fft.power_spectrum(&buf);

        // Fold the FFT's N/2+1 bins into the 32 subbands: band b covers
        // normalized frequency [b/64, (b+1)/64), i.e. bins
        // [b*(N/64), (b+1)*(N/64)).
        let bins_per_band = FFT_SIZE / (2 * BANDS);
        let mut band_power = [0.0f64; BANDS];
        for (b, bp) in band_power.iter_mut().enumerate() {
            let lo = b * bins_per_band;
            let hi = ((b + 1) * bins_per_band).min(power.len());
            *bp = power[lo..hi].iter().sum();
        }

        // Spread masking from every band to every other.
        let mut threshold = [ABSOLUTE_THRESHOLD; BANDS];
        for (masker, &p) in band_power.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            let p_db = 10.0 * p.log10();
            for (maskee, th) in threshold.iter_mut().enumerate() {
                let dist = maskee as f64 - masker as f64;
                let drop = if dist >= 0.0 {
                    SLOPE_UP_DB * dist
                } else {
                    SLOPE_DOWN_DB * -dist
                };
                let t_db = p_db - MASK_OFFSET_DB - drop;
                let t = 10f64.powf(t_db / 10.0);
                if t > *th {
                    *th = t;
                }
            }
        }
        PsychoAnalysis {
            band_power,
            threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::gen::{SignalGen, ToneSpec};

    const FS: f64 = 32_000.0;

    /// Frequency at the centre of subband `b` for FS.
    fn band_freq(b: usize) -> f64 {
        (b as f64 + 0.5) / 64.0 * FS
    }

    #[test]
    fn single_tone_band_has_positive_smr() {
        let mut g = SignalGen::new(1);
        let x = g.tone(&ToneSpec::new(band_freq(6), 0.8), FS, 2048);
        let a = PsychoModel::new().analyse(&x);
        let smr = a.smr_db();
        assert!(smr[6] > 10.0, "tone band SMR {}", smr[6]);
    }

    #[test]
    fn weak_neighbour_is_masked_strong_one_is_not() {
        let mut g = SignalGen::new(2);
        // 40 dB below the masker, one band up: masked (offset 14 + slope 15
        // = threshold 29 dB below masker).
        let masked = g.tones(
            &[
                ToneSpec::new(band_freq(8), 1.0),
                ToneSpec::new(band_freq(9), 0.01),
            ],
            FS,
            2048,
        );
        let a = PsychoModel::new().analyse(&masked);
        assert!(a.masked_bands().contains(&9), "smr: {:?}", a.smr_db());

        // Only 12 dB below: audible.
        let audible = g.tones(
            &[
                ToneSpec::new(band_freq(8), 1.0),
                ToneSpec::new(band_freq(9), 0.25),
            ],
            FS,
            2048,
        );
        let a = PsychoModel::new().analyse(&audible);
        assert!(!a.masked_bands().contains(&9), "smr: {:?}", a.smr_db());
    }

    #[test]
    fn masking_is_asymmetric() {
        // Equal probes one band above and one below an identical masker:
        // the upward threshold must exceed the downward threshold.
        let mut g = SignalGen::new(3);
        let x = g.tone(&ToneSpec::new(band_freq(10), 1.0), FS, 2048);
        let a = PsychoModel::new().analyse(&x);
        assert!(
            a.threshold[11] > a.threshold[9],
            "upward spreading should be stronger: {} vs {}",
            a.threshold[11],
            a.threshold[9]
        );
    }

    #[test]
    fn silence_thresholds_fall_to_absolute_floor() {
        let a = PsychoModel::new().analyse(&vec![0.0; 1024]);
        for b in 0..BANDS {
            assert_eq!(a.threshold[b], ABSOLUTE_THRESHOLD);
        }
        assert_eq!(a.masked_bands().len(), BANDS);
    }

    #[test]
    fn distant_bands_unaffected_by_masker() {
        let mut g = SignalGen::new(4);
        let x = g.tone(&ToneSpec::new(band_freq(3), 1.0), FS, 2048);
        let a = PsychoModel::new().analyse(&x);
        // 20 bands away the spread threshold is far below the absolute one.
        assert_eq!(a.threshold[25], ABSOLUTE_THRESHOLD);
    }

    #[test]
    fn white_noise_leaves_most_bands_audible() {
        let mut g = SignalGen::new(5);
        let x = g.white_noise(0.5, 2048);
        let a = PsychoModel::new().analyse(&x);
        let audible = BANDS - a.masked_bands().len();
        assert!(audible > 20, "only {audible} audible bands in white noise");
    }
}
