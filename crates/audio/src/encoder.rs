//! The MPEG-1-style audio encoder of Figure 2, end to end.
//!
//! **Mapper → quantizer/coder → frame packer**, with the **psychoacoustic
//! model** steering bit allocation — exactly the paper's block diagram.
//! Frames are 1152 samples (36 granules of 32 subband samples), packed
//! with per-band allocations and scalefactors into a bitstream the
//! [`decode`] function reverses.

use signal::bits::{BitReader, BitWriter, OutOfBitsError};

use crate::alloc::{self, Allocation};
use crate::filterbank::{Filterbank, Granule, BANDS};
use crate::psycho::PsychoModel;
use crate::quantizer;

/// Samples per frame (36 granules × 32 bands).
pub const FRAME_SAMPLES: usize = 1152;
/// Granules per frame.
pub const GRANULES: usize = FRAME_SAMPLES / BANDS;

/// Magic number opening a stream.
const MAGIC: u32 = 0x4157; // "AW"

/// Allocation strategy for the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationMode {
    /// Psychoacoustic allocation driven by the masking model (Figure 2).
    Psychoacoustic,
    /// Flat allocation — the "no psychoacoustics" baseline of E7.
    Flat,
}

impl core::fmt::Display for AllocationMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            AllocationMode::Psychoacoustic => "psychoacoustic",
            AllocationMode::Flat => "flat",
        })
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AudioConfig {
    /// Sample rate in Hz (informational; stored in the header).
    pub sample_rate: f64,
    /// Bit budget per frame for subband samples (header overhead is
    /// separate). 1152-sample frames at 44.1 kHz with a 4608-bit budget
    /// ≈ 176 kbit/s.
    pub budget_bits_per_frame: u64,
    /// Allocation strategy.
    pub mode: AllocationMode,
}

impl Default for AudioConfig {
    /// 44.1 kHz, 4608 bits/frame (≈176 kbit/s), psychoacoustic.
    fn default() -> Self {
        Self {
            sample_rate: 44_100.0,
            budget_bits_per_frame: 4608,
            mode: AllocationMode::Psychoacoustic,
        }
    }
}

/// Errors from audio encoding/decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum AudioError {
    /// Input is empty or not a multiple of the frame size.
    BadLength(usize),
    /// Stream did not start with the magic number.
    BadMagic(u32),
    /// Stream ended prematurely.
    Truncated(OutOfBitsError),
}

impl core::fmt::Display for AudioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AudioError::BadLength(n) => {
                write!(
                    f,
                    "input length {n} is not a positive multiple of {FRAME_SAMPLES}"
                )
            }
            AudioError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            AudioError::Truncated(e) => write!(f, "truncated stream: {e}"),
        }
    }
}

impl std::error::Error for AudioError {}

impl From<OutOfBitsError> for AudioError {
    fn from(e: OutOfBitsError) -> Self {
        AudioError::Truncated(e)
    }
}

/// Per-stage op tallies for one encode (experiment E2's breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AudioTally {
    /// Filterbank multiply–accumulates.
    pub filterbank_macs: u64,
    /// Psychoacoustic model FFT butterflies plus spreading ops.
    pub psycho_ops: u64,
    /// Samples quantized.
    pub quant_samples: u64,
    /// Bits packed into frames.
    pub packed_bits: u64,
}

/// One encoded frame's bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct AudioFrameStats {
    /// Bits used by this frame (header + payload).
    pub bits: usize,
    /// Bands allocated zero bits (masked or out of budget).
    pub zeroed_bands: usize,
    /// The allocation chosen.
    pub allocation: Allocation,
}

/// An encoded audio stream.
#[derive(Debug, Clone)]
pub struct EncodedAudio {
    /// The packed bytes.
    pub bytes: Vec<u8>,
    /// Per-frame stats.
    pub frames: Vec<AudioFrameStats>,
    /// Stage tallies.
    pub tally: AudioTally,
    /// Source sample count.
    pub sample_count: usize,
}

impl EncodedAudio {
    /// Bits per second at the configured sample rate.
    #[must_use]
    pub fn bitrate_bps(&self, sample_rate: f64) -> f64 {
        if self.sample_count == 0 {
            return 0.0;
        }
        let secs = self.sample_count as f64 / sample_rate;
        (self.bytes.len() * 8) as f64 / secs
    }

    /// Compression ratio vs 16-bit PCM.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        (self.sample_count * 16) as f64 / ((self.bytes.len() * 8).max(1)) as f64
    }
}

/// The audio encoder.
///
/// # Example
///
/// ```
/// use audio::encoder::{AudioConfig, AudioEncoder, decode};
/// use signal::gen::SignalGen;
///
/// let pcm = SignalGen::new(5).music(440.0, 44_100.0, 2 * 1152);
/// let enc = AudioEncoder::new(AudioConfig::default());
/// let stream = enc.encode(&pcm)?;
/// let out = decode(&stream.bytes)?;
/// assert_eq!(out.samples.len(), pcm.len());
/// # Ok::<(), audio::encoder::AudioError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AudioEncoder {
    config: AudioConfig,
    filterbank: Filterbank,
    psycho: PsychoModel,
}

impl AudioEncoder {
    /// Creates an encoder.
    #[must_use]
    pub fn new(config: AudioConfig) -> Self {
        Self {
            config,
            filterbank: Filterbank::new(),
            psycho: PsychoModel::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AudioConfig {
        &self.config
    }

    /// Encodes PCM samples (length must be a positive multiple of 1152).
    ///
    /// # Errors
    ///
    /// Returns [`AudioError::BadLength`] otherwise.
    pub fn encode(&self, pcm: &[f64]) -> Result<EncodedAudio, AudioError> {
        if pcm.is_empty() || pcm.len() % FRAME_SAMPLES != 0 {
            return Err(AudioError::BadLength(pcm.len()));
        }
        let n_frames = pcm.len() / FRAME_SAMPLES;
        let mut tally = AudioTally::default();
        let mut w = BitWriter::new();
        w.write_bits(MAGIC, 16);
        w.write_bits(n_frames as u32, 16);
        w.write_bits(self.config.sample_rate as u32, 32);

        let mut stats = Vec::with_capacity(n_frames);
        for f in 0..n_frames {
            let frame = &pcm[f * FRAME_SAMPLES..(f + 1) * FRAME_SAMPLES];
            let start_bits = w.bit_len();

            // Mapper: 32-band filterbank. Frames are analysed
            // independently (each sees one hop of zero history), trading a
            // little edge fidelity for frame independence.
            let granules = self.filterbank.analysis(frame);
            tally.filterbank_macs += Filterbank::analysis_macs(frame.len());

            // Psychoacoustic model on the frame's PCM.
            let analysis = self.psycho.analyse(frame);
            tally.psycho_ops += (crate::psycho::FFT_SIZE as f64
                * (crate::psycho::FFT_SIZE as f64).log2()) as u64
                + (BANDS * BANDS) as u64;

            // Allocation.
            let allocation = match self.config.mode {
                AllocationMode::Psychoacoustic => alloc::psychoacoustic(
                    &analysis.smr_db(),
                    granules.len(),
                    self.config.budget_bits_per_frame,
                    0.0,
                ),
                AllocationMode::Flat => {
                    alloc::flat(granules.len(), self.config.budget_bits_per_frame)
                }
            };

            // Scalefactors per band.
            let mut sf_idx = [0u8; BANDS];
            for b in 0..BANDS {
                let max_abs = granules.iter().map(|g| g[b].abs()).fold(0.0f64, f64::max);
                sf_idx[b] = quantizer::scalefactor_for(max_abs);
            }

            // Pack: granule count (8), allocation (4 bits/band),
            // scalefactors (6 bits/band), then samples band-major.
            w.write_bits(granules.len() as u32, 8);
            for b in 0..BANDS {
                w.write_bits(allocation.bits[b] as u32, 4);
            }
            for &sf in &sf_idx {
                w.write_bits(sf as u32, 6);
            }
            for b in 0..BANDS {
                let bits = allocation.bits[b];
                if bits == 0 {
                    continue;
                }
                let sf = quantizer::scalefactor(sf_idx[b]);
                for g in &granules {
                    let code = quantizer::quantize(g[b], sf, bits);
                    w.write_bits(code, bits as u32);
                    tally.quant_samples += 1;
                }
            }
            let bits = w.bit_len() - start_bits;
            tally.packed_bits += bits as u64;
            stats.push(AudioFrameStats {
                bits,
                zeroed_bands: allocation.zeroed_bands(),
                allocation,
            });
        }

        Ok(EncodedAudio {
            bytes: w.into_bytes(),
            frames: stats,
            tally,
            sample_count: pcm.len(),
        })
    }
}

/// A decoded audio stream.
#[derive(Debug, Clone)]
pub struct DecodedAudio {
    /// Reconstructed PCM.
    pub samples: Vec<f64>,
    /// Sample rate from the header, Hz.
    pub sample_rate: f64,
}

/// Decodes a stream produced by [`AudioEncoder::encode`].
///
/// # Errors
///
/// Returns [`AudioError`] on malformed input.
pub fn decode(bytes: &[u8]) -> Result<DecodedAudio, AudioError> {
    let mut r = BitReader::new(bytes);
    let magic = r.read_bits(16)?;
    if magic != MAGIC {
        return Err(AudioError::BadMagic(magic));
    }
    let n_frames = r.read_bits(16)? as usize;
    let sample_rate = r.read_bits(32)? as f64;
    let fb = Filterbank::new();
    let mut samples = Vec::with_capacity(n_frames * FRAME_SAMPLES);
    for _ in 0..n_frames {
        let n_granules = r.read_bits(8)? as usize;
        let mut bits = [0u8; BANDS];
        for b in &mut bits {
            *b = r.read_bits(4)? as u8;
        }
        let mut sf = [0.0f64; BANDS];
        for s in &mut sf {
            *s = quantizer::scalefactor(r.read_bits(6)? as u8);
        }
        let mut granules: Vec<Granule> = vec![[0.0; BANDS]; n_granules];
        for b in 0..BANDS {
            if bits[b] == 0 {
                continue;
            }
            for g in granules.iter_mut() {
                let code = r.read_bits(bits[b] as u32)?;
                g[b] = quantizer::dequantize(code, sf[b], bits[b]);
            }
        }
        samples.extend(fb.synthesis(&granules));
    }
    Ok(DecodedAudio {
        samples,
        sample_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::gen::{SignalGen, ToneSpec};
    use signal::metrics::snr;

    fn music(frames: usize) -> Vec<f64> {
        SignalGen::new(17).music(440.0, 44_100.0, frames * FRAME_SAMPLES)
    }

    #[test]
    fn length_validation() {
        let enc = AudioEncoder::new(AudioConfig::default());
        assert_eq!(enc.encode(&[]).unwrap_err(), AudioError::BadLength(0));
        assert_eq!(
            enc.encode(&vec![0.0; 100]).unwrap_err(),
            AudioError::BadLength(100)
        );
    }

    #[test]
    fn round_trip_preserves_music_quality() {
        let pcm = music(4);
        let enc = AudioEncoder::new(AudioConfig::default());
        let stream = enc.encode(&pcm).unwrap();
        let out = decode(&stream.bytes).unwrap();
        assert_eq!(out.samples.len(), pcm.len());
        // Waveform SNR understates perceptual quality here by design: the
        // allocator stops feeding a band once it is coded past its SMR, and
        // masked bands are dropped entirely.
        let q = snr(&pcm, &out.samples).unwrap();
        assert!(q > 12.0, "SNR only {q:.1} dB");
    }

    #[test]
    fn compresses_against_pcm() {
        let pcm = music(4);
        let stream = AudioEncoder::new(AudioConfig::default())
            .encode(&pcm)
            .unwrap();
        assert!(
            stream.compression_ratio() > 3.0,
            "ratio {}",
            stream.compression_ratio()
        );
    }

    #[test]
    fn psycho_mode_zeroes_masked_bands_flat_does_not() {
        // A sparse two-tone signal: most bands are silent/masked.
        let mut g = SignalGen::new(18);
        let pcm = g.tones(
            &[ToneSpec::new(1000.0, 0.9), ToneSpec::new(5000.0, 0.5)],
            44_100.0,
            2 * FRAME_SAMPLES,
        );
        let psy = AudioEncoder::new(AudioConfig::default())
            .encode(&pcm)
            .unwrap();
        let flat = AudioEncoder::new(AudioConfig {
            mode: AllocationMode::Flat,
            ..Default::default()
        })
        .encode(&pcm)
        .unwrap();
        assert!(
            psy.frames[0].zeroed_bands > 20,
            "psycho should zero masked bands, zeroed {}",
            psy.frames[0].zeroed_bands
        );
        assert_eq!(flat.frames[0].zeroed_bands, 0);
    }

    #[test]
    fn psycho_beats_flat_at_equal_budget_on_tonal_material() {
        // E7's claim: at the same bitrate the masking-aware allocation
        // achieves higher SNR on tonal material.
        let mut g = SignalGen::new(19);
        let pcm = g.tones(
            &[
                ToneSpec::new(500.0, 0.8),
                ToneSpec::new(2000.0, 0.4),
                ToneSpec::new(8000.0, 0.2),
            ],
            44_100.0,
            4 * FRAME_SAMPLES,
        );
        let budget = 2000u64;
        let psy = AudioEncoder::new(AudioConfig {
            budget_bits_per_frame: budget,
            mode: AllocationMode::Psychoacoustic,
            ..Default::default()
        })
        .encode(&pcm)
        .unwrap();
        let flat = AudioEncoder::new(AudioConfig {
            budget_bits_per_frame: budget,
            mode: AllocationMode::Flat,
            ..Default::default()
        })
        .encode(&pcm)
        .unwrap();
        let psy_snr = snr(&pcm, &decode(&psy.bytes).unwrap().samples).unwrap();
        let flat_snr = snr(&pcm, &decode(&flat.bytes).unwrap().samples).unwrap();
        assert!(
            psy_snr > flat_snr + 3.0,
            "psycho {psy_snr:.1} dB should beat flat {flat_snr:.1} dB"
        );
    }

    #[test]
    fn bigger_budget_improves_snr() {
        let pcm = music(3);
        let small = AudioEncoder::new(AudioConfig {
            budget_bits_per_frame: 1000,
            ..Default::default()
        })
        .encode(&pcm)
        .unwrap();
        let large = AudioEncoder::new(AudioConfig {
            budget_bits_per_frame: 8000,
            ..Default::default()
        })
        .encode(&pcm)
        .unwrap();
        let s = snr(&pcm, &decode(&small.bytes).unwrap().samples).unwrap();
        let l = snr(&pcm, &decode(&large.bytes).unwrap().samples).unwrap();
        assert!(l > s, "budget 8000 ({l:.1}) should beat 1000 ({s:.1})");
    }

    #[test]
    fn silence_codes_almost_for_free() {
        let pcm = vec![0.0; 2 * FRAME_SAMPLES];
        let stream = AudioEncoder::new(AudioConfig::default())
            .encode(&pcm)
            .unwrap();
        // Header + allocations + scalefactors only: well under 1000 bits
        // per frame.
        assert!(stream.frames.iter().all(|f| f.bits < 1000));
        let out = decode(&stream.bytes).unwrap();
        assert!(out.samples.iter().all(|&s| s.abs() < 1e-9));
    }

    #[test]
    fn truncated_and_corrupt_streams_are_rejected() {
        let pcm = music(1);
        let stream = AudioEncoder::new(AudioConfig::default())
            .encode(&pcm)
            .unwrap();
        assert!(matches!(
            decode(&stream.bytes[..4]),
            Err(AudioError::Truncated(_))
        ));
        assert!(matches!(
            decode(&[0, 0, 0, 0]),
            Err(AudioError::BadMagic(0))
        ));
    }

    #[test]
    fn tally_accounts_stages() {
        let pcm = music(2);
        let stream = AudioEncoder::new(AudioConfig::default())
            .encode(&pcm)
            .unwrap();
        assert!(stream.tally.filterbank_macs > 0);
        assert!(stream.tally.psycho_ops > 0);
        assert!(stream.tally.quant_samples > 0);
        assert!(stream.tally.packed_bits > 0);
    }
}
