//! The subband mapper of Figure 2: a 32-band MDCT filterbank.
//!
//! MPEG-1 Layer 3 maps PCM into subbands before quantization; this crate
//! uses the Layer-3-style lapped transform directly: a 64-sample sine
//! window hopped by 32 samples with the modified discrete cosine transform
//! (MDCT). The sine window satisfies the Princen–Bradley condition, so
//! time-domain alias cancellation makes analysis → synthesis *exactly*
//! invertible (up to float rounding) — the lossy part of the codec is the
//! quantizer, never the mapper.

/// Number of subbands.
pub const BANDS: usize = 32;
/// Analysis window length (2 × BANDS).
pub const WINDOW: usize = 2 * BANDS;

/// One granule: one MDCT output, 32 subband samples.
pub type Granule = [f64; BANDS];

/// The 32-band MDCT filterbank.
///
/// # Example
///
/// ```
/// use audio::filterbank::Filterbank;
///
/// let fb = Filterbank::new();
/// let x: Vec<f64> = (0..320).map(|i| (i as f64 * 0.2).sin()).collect();
/// let granules = fb.analysis(&x);
/// let y = fb.synthesis(&granules);
/// for (a, b) in x.iter().zip(&y) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Filterbank {
    window: [f64; WINDOW],
    /// Precomputed cosine basis `cos[(π/M)(n + 0.5 + M/2)(k + 0.5)]`,
    /// indexed `[k][n]`.
    basis: Vec<[f64; WINDOW]>,
}

impl Default for Filterbank {
    fn default() -> Self {
        Self::new()
    }
}

impl Filterbank {
    /// Builds the filterbank (precomputes window and basis).
    #[must_use]
    pub fn new() -> Self {
        let mut window = [0.0; WINDOW];
        for (n, w) in window.iter_mut().enumerate() {
            *w = (core::f64::consts::PI / WINDOW as f64 * (n as f64 + 0.5)).sin();
        }
        let m = BANDS as f64;
        let mut basis = Vec::with_capacity(BANDS);
        for k in 0..BANDS {
            let mut row = [0.0; WINDOW];
            for (n, b) in row.iter_mut().enumerate() {
                *b = (core::f64::consts::PI / m * (n as f64 + 0.5 + m / 2.0) * (k as f64 + 0.5))
                    .cos();
            }
            basis.push(row);
        }
        Self { window, basis }
    }

    /// Analyses a signal whose length is a multiple of 32, producing
    /// `len/32 + 1` granules (the signal is zero-extended by one hop at
    /// each end so synthesis reconstructs every input sample).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is zero or not a multiple of 32.
    #[must_use]
    pub fn analysis(&self, x: &[f64]) -> Vec<Granule> {
        assert!(
            !x.is_empty() && x.len() % BANDS == 0,
            "input length must be a positive multiple of 32"
        );
        let hops = x.len() / BANDS + 1;
        let padded_at = |i: i64| -> f64 {
            let idx = i - BANDS as i64; // front padding of one hop
            if idx < 0 || idx >= x.len() as i64 {
                0.0
            } else {
                x[idx as usize]
            }
        };
        let mut out = Vec::with_capacity(hops);
        for h in 0..hops {
            let start = (h * BANDS) as i64;
            let mut g = [0.0; BANDS];
            for (k, gk) in g.iter_mut().enumerate() {
                let mut acc = 0.0;
                for n in 0..WINDOW {
                    acc += padded_at(start + n as i64) * self.window[n] * self.basis[k][n];
                }
                *gk = acc;
            }
            out.push(g);
        }
        out
    }

    /// Synthesizes the signal from granules produced by
    /// [`Filterbank::analysis`]; returns `(granules.len() - 1) * 32`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two granules are supplied.
    #[must_use]
    pub fn synthesis(&self, granules: &[Granule]) -> Vec<f64> {
        assert!(granules.len() >= 2, "need at least two granules");
        let out_len = (granules.len() - 1) * BANDS;
        let mut acc = vec![0.0; out_len + 2 * BANDS];
        let scale = 2.0 / BANDS as f64;
        for (h, g) in granules.iter().enumerate() {
            let start = h * BANDS;
            for n in 0..WINDOW {
                let mut s = 0.0;
                for (k, &gk) in g.iter().enumerate() {
                    s += gk * self.basis[k][n];
                }
                acc[start + n] += scale * self.window[n] * s;
            }
        }
        acc[BANDS..BANDS + out_len].to_vec()
    }

    /// Multiply–accumulate count for analysing `samples` input samples —
    /// used by the MPSoC calibration (experiment E2).
    #[must_use]
    pub fn analysis_macs(samples: usize) -> u64 {
        let hops = samples / BANDS + 1;
        (hops * BANDS * WINDOW) as u64
    }

    /// Centre frequency of band `b` as a fraction of the sample rate.
    ///
    /// # Panics
    ///
    /// Panics if `b >= 32`.
    #[must_use]
    pub fn band_center(b: usize) -> f64 {
        assert!(b < BANDS, "band out of range");
        (b as f64 + 0.5) / (2.0 * BANDS as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::gen::{SignalGen, ToneSpec};
    use signal::rng::Xoroshiro128;

    #[test]
    fn perfect_reconstruction_on_noise() {
        let mut rng = Xoroshiro128::new(71);
        let fb = Filterbank::new();
        let x: Vec<f64> = (0..1152).map(|_| rng.normal()).collect();
        let y = fb.synthesis(&fb.analysis(&x));
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn tone_concentrates_in_matching_band() {
        let fs = 32_000.0;
        let fb = Filterbank::new();
        // Band b covers ((b)/64, (b+1)/64) of fs: band 4 centre = 4.5/64*32k = 2250 Hz.
        let mut g = SignalGen::new(72);
        let x = g.tone(&ToneSpec::new(2250.0, 1.0), fs, 2048);
        let granules = fb.analysis(&x);
        // Sum energy per band over interior granules.
        let mut energy = [0.0f64; BANDS];
        for gr in &granules[4..granules.len() - 4] {
            for (b, &v) in gr.iter().enumerate() {
                energy[b] += v * v;
            }
        }
        let peak = energy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 4, "energies: {energy:?}");
        // Neighbours far away should be tiny.
        assert!(energy[4] > 100.0 * energy[10]);
    }

    #[test]
    fn zero_signal_gives_zero_granules() {
        let fb = Filterbank::new();
        let granules = fb.analysis(&vec![0.0; 320]);
        for g in &granules {
            assert!(g.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn granule_count_is_hops_plus_one() {
        let fb = Filterbank::new();
        assert_eq!(fb.analysis(&vec![0.0; 320]).len(), 11);
    }

    #[test]
    fn window_satisfies_princen_bradley() {
        let fb = Filterbank::new();
        for n in 0..BANDS {
            let s = fb.window[n] * fb.window[n] + fb.window[n + BANDS] * fb.window[n + BANDS];
            assert!((s - 1.0).abs() < 1e-12, "n={n}: {s}");
        }
    }

    #[test]
    fn mac_count_formula() {
        assert_eq!(Filterbank::analysis_macs(320), 11 * 32 * 64);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn bad_length_panics() {
        let fb = Filterbank::new();
        let _ = fb.analysis(&[0.0; 33]);
    }
}
