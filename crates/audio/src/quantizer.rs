//! Subband sample quantization with logarithmic scalefactors.
//!
//! Figure 2's quantizer/coder box: each band gets a scalefactor (coarse,
//! logarithmic, 6 bits) covering its largest sample in the frame, and each
//! sample is then uniformly quantized to the bit depth the allocator chose
//! for that band.

/// Number of scalefactor indices (6 bits).
pub const SCALEFACTOR_COUNT: u8 = 64;

/// Scalefactor for index `i`: `2^((i - 40) / 3)` — covers ≈ 2e-5 … 256
/// in ~2 dB steps, enough for normalized audio plus filterbank gain.
///
/// # Panics
///
/// Panics if `i >= 64`.
#[must_use]
pub fn scalefactor(i: u8) -> f64 {
    assert!(i < SCALEFACTOR_COUNT, "scalefactor index out of range");
    2f64.powf((i as f64 - 40.0) / 3.0)
}

/// The smallest scalefactor index whose value covers `max_abs`.
#[must_use]
pub fn scalefactor_for(max_abs: f64) -> u8 {
    for i in 0..SCALEFACTOR_COUNT {
        if scalefactor(i) >= max_abs {
            return i;
        }
    }
    SCALEFACTOR_COUNT - 1
}

/// Quantizes one sample to `bits` bits given a scalefactor. Returns the
/// code (0 when `bits == 0`).
#[must_use]
pub fn quantize(x: f64, sf: f64, bits: u8) -> u32 {
    if bits == 0 {
        return 0;
    }
    let levels = (1u32 << bits) - 1;
    let unit = ((x / sf).clamp(-1.0, 1.0) + 1.0) / 2.0; // 0..=1
    (unit * levels as f64).round() as u32
}

/// Reconstructs a sample from its code.
#[must_use]
pub fn dequantize(code: u32, sf: f64, bits: u8) -> f64 {
    if bits == 0 {
        return 0.0;
    }
    let levels = ((1u32 << bits) - 1) as f64;
    (code as f64 / levels * 2.0 - 1.0) * sf
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    #[test]
    fn scalefactors_are_monotone() {
        for i in 1..SCALEFACTOR_COUNT {
            assert!(scalefactor(i) > scalefactor(i - 1));
        }
    }

    #[test]
    fn scalefactor_for_covers_value() {
        for &v in &[1e-4, 0.01, 0.5, 1.0, 17.3, 200.0] {
            let i = scalefactor_for(v);
            assert!(scalefactor(i) >= v, "sf({i}) too small for {v}");
            if i > 0 {
                assert!(scalefactor(i - 1) < v, "sf index {i} not minimal for {v}");
            }
        }
    }

    #[test]
    fn huge_values_saturate_to_top_index() {
        assert_eq!(scalefactor_for(1e12), SCALEFACTOR_COUNT - 1);
    }

    #[test]
    fn round_trip_error_shrinks_with_bits() {
        let mut rng = Xoroshiro128::new(91);
        let sf = 1.0;
        let mut prev_err = f64::INFINITY;
        for bits in [2u8, 4, 8, 12] {
            let mut err = 0.0;
            for _ in 0..1000 {
                let x = rng.range_f64(-1.0, 1.0);
                let y = dequantize(quantize(x, sf, bits), sf, bits);
                err += (x - y).abs();
            }
            assert!(err < prev_err, "error should shrink with bits");
            prev_err = err;
        }
    }

    #[test]
    fn quantization_error_bounded_by_step() {
        let sf = 2.0;
        let bits = 6u8;
        let step = 2.0 * sf / ((1u32 << bits) - 1) as f64;
        let mut rng = Xoroshiro128::new(92);
        for _ in 0..1000 {
            let x = rng.range_f64(-sf, sf);
            let y = dequantize(quantize(x, sf, bits), sf, bits);
            assert!((x - y).abs() <= step / 2.0 + 1e-12);
        }
    }

    #[test]
    fn zero_bits_zeroes_everything() {
        assert_eq!(quantize(0.7, 1.0, 0), 0);
        assert_eq!(dequantize(99, 1.0, 0), 0.0);
    }

    #[test]
    fn out_of_range_samples_clamp() {
        let code = quantize(5.0, 1.0, 4);
        assert_eq!(code, 15);
        assert!((dequantize(code, 1.0, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn codes_fit_in_bits() {
        let mut rng = Xoroshiro128::new(93);
        for _ in 0..100 {
            let bits = rng.range_i64(1, 15) as u8;
            let x = rng.range_f64(-3.0, 3.0);
            let code = quantize(x, 1.5, bits);
            assert!(code < (1u32 << bits));
        }
    }
}
