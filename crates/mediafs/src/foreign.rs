//! Foreign media trees — the CD/MP3 interoperability case.
//!
//! Paper §7: *"MP3-enabled CD players are a particularly interesting case
//! since the files are created outside the player. A CD/MP3 player must
//! be able to handle a wide variety of directory structures, file names,
//! etc."* The generator here produces trees in several authoring styles
//! (DOS 8.3, long names with spaces/unicode, deep nesting, flat dumps);
//! the scanner must enumerate every playable track regardless.

use signal::rng::Xoroshiro128;

use crate::fs::{FsError, MediaFs};

/// Authoring styles seen on burned discs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeStyle {
    /// Uppercase 8.3 names, shallow folders (old DOS burners).
    Dos83,
    /// Long names with spaces and mixed case.
    LongNames,
    /// Artist/Album/Track nesting, several levels deep.
    DeepNested,
    /// Hundreds of files dumped into the root.
    FlatDump,
}

impl core::fmt::Display for TreeStyle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            TreeStyle::Dos83 => "dos-8.3",
            TreeStyle::LongNames => "long-names",
            TreeStyle::DeepNested => "deep-nested",
            TreeStyle::FlatDump => "flat-dump",
        })
    }
}

/// Generates a foreign tree of `tracks` MP3-like files in the given style
/// onto a file system, returning the created track paths.
///
/// # Errors
///
/// Propagates [`FsError`] (e.g. `NoSpace`).
pub fn generate_tree(
    fs: &mut MediaFs,
    style: TreeStyle,
    tracks: usize,
    seed: u64,
) -> Result<Vec<String>, FsError> {
    let mut rng = Xoroshiro128::new(seed);
    let mut paths = Vec::with_capacity(tracks);
    let payload = |rng: &mut Xoroshiro128| -> Vec<u8> {
        let len = 200 + rng.below(600) as usize;
        (0..len).map(|_| rng.next_u32() as u8).collect()
    };
    match style {
        TreeStyle::Dos83 => {
            fs.mkdir("/MUSIC").ok();
            for i in 0..tracks {
                let p = format!("/MUSIC/TRACK{:03}.MP3", i);
                fs.create(&p, &payload(&mut rng))?;
                paths.push(p);
            }
        }
        TreeStyle::LongNames => {
            fs.mkdir("/My Music Collection").ok();
            for i in 0..tracks {
                let p = format!(
                    "/My Music Collection/{} - Song Nº{} (Remastered).mp3",
                    ["Aria", "Bölero", "Étude"][i % 3],
                    i
                );
                fs.create(&p, &payload(&mut rng))?;
                paths.push(p);
            }
        }
        TreeStyle::DeepNested => {
            for i in 0..tracks {
                let artist = format!("/artist{}", i % 3);
                let album = format!("{artist}/album{}", i % 2);
                let disc = format!("{album}/disc{}", i % 2);
                fs.mkdir(&artist).ok();
                fs.mkdir(&album).ok();
                fs.mkdir(&disc).ok();
                let p = format!("{disc}/t{i}.mp3");
                fs.create(&p, &payload(&mut rng))?;
                paths.push(p);
            }
        }
        TreeStyle::FlatDump => {
            for i in 0..tracks {
                let p = format!("/{i:04}.mp3");
                fs.create(&p, &payload(&mut rng))?;
                paths.push(p);
            }
        }
    }
    Ok(paths)
}

/// Recursively finds every playable track (case-insensitive `.mp3`
/// extension) under `path`, in deterministic (sorted) order.
///
/// # Errors
///
/// Propagates [`FsError`] from directory listing.
pub fn scan_tracks(fs: &MediaFs, path: &str) -> Result<Vec<String>, FsError> {
    let mut out = Vec::new();
    let entries = fs.list(path)?;
    for e in entries {
        let child = if path == "/" {
            format!("/{}", e.name)
        } else {
            format!("{}/{}", path, e.name)
        };
        if e.is_dir {
            out.extend(scan_tracks(fs, &child)?);
        } else if e.name.to_lowercase().ends_with(".mp3") {
            out.push(child);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::AllocPolicy;

    fn fs() -> MediaFs {
        MediaFs::new(4096, 256, AllocPolicy::FirstFit)
    }

    #[test]
    fn every_style_enumerates_fully() {
        for style in [
            TreeStyle::Dos83,
            TreeStyle::LongNames,
            TreeStyle::DeepNested,
            TreeStyle::FlatDump,
        ] {
            let mut f = fs();
            let created = generate_tree(&mut f, style, 12, 1).unwrap();
            let mut found = scan_tracks(&f, "/").unwrap();
            let mut expect = created.clone();
            found.sort();
            expect.sort();
            assert_eq!(found, expect, "style {style}");
        }
    }

    #[test]
    fn scan_ignores_non_mp3_files() {
        let mut f = fs();
        f.create("/readme.txt", b"not audio").unwrap();
        f.create("/track.MP3", b"audio").unwrap();
        let found = scan_tracks(&f, "/").unwrap();
        assert_eq!(found, vec!["/track.MP3".to_string()]);
    }

    #[test]
    fn deep_nesting_is_traversed() {
        let mut f = fs();
        generate_tree(&mut f, TreeStyle::DeepNested, 8, 2).unwrap();
        let found = scan_tracks(&f, "/").unwrap();
        assert_eq!(found.len(), 8);
        assert!(found.iter().all(|p| p.matches('/').count() == 4));
    }

    #[test]
    fn tracks_are_readable_after_import() {
        let mut f = fs();
        let created = generate_tree(&mut f, TreeStyle::LongNames, 5, 3).unwrap();
        for p in &created {
            let data = f.read(p).unwrap();
            assert!(data.len() >= 200, "track {p} too small");
        }
    }

    #[test]
    fn unicode_names_survive() {
        let mut f = fs();
        generate_tree(&mut f, TreeStyle::LongNames, 3, 4).unwrap();
        let found = scan_tracks(&f, "/").unwrap();
        assert!(
            found
                .iter()
                .any(|p| p.contains('Ö') || p.contains('ö') || p.contains('É') || p.contains('º')),
            "unicode names lost: {found:?}"
        );
    }
}
