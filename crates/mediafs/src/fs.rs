//! The media file system: FAT-style chains, hierarchical directories,
//! pluggable allocation.
//!
//! Paper §7: *"these file systems must still incorporate the major
//! characteristics of modern file systems: large file sizes,
//! non-sequential allocation of blocks, etc."* Files are block chains in
//! a file-allocation table; the allocator either keeps chains contiguous
//! ([`AllocPolicy::FirstFit`]) or deliberately scatters them
//! ([`AllocPolicy::Scatter`]) so fragmentation costs are measurable.

use std::collections::BTreeMap;

use signal::rng::Xoroshiro128;

use crate::block::{BlockDevice, BlockError, IoStats};

/// One FAT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FatEntry {
    Free,
    EndOfChain,
    Next(u32),
}

/// Block allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Lowest-numbered free blocks first (contiguous while the free list
    /// is).
    FirstFit,
    /// Pseudo-random placement with the given seed — the worst case of
    /// "non-sequential allocation".
    Scatter(
        /// RNG seed for placement.
        u64,
    ),
}

/// File-system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path not found.
    NotFound(String),
    /// A path component that should be a directory is a file (or vice
    /// versa).
    NotADirectory(String),
    /// Target already exists.
    AlreadyExists(String),
    /// Out of free blocks.
    NoSpace,
    /// Underlying device error.
    Device(BlockError),
    /// Invalid path syntax (empty, or empty component).
    BadPath(String),
    /// Directory not empty on delete.
    NotEmpty(String),
}

impl core::fmt::Display for FsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NoSpace => f.write_str("no free blocks"),
            FsError::Device(e) => write!(f, "device error: {e}"),
            FsError::BadPath(p) => write!(f, "bad path: {p}"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<BlockError> for FsError {
    fn from(e: BlockError) -> Self {
        FsError::Device(e)
    }
}

/// A directory entry as reported by [`MediaFs::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (single component).
    pub name: String,
    /// `true` for directories.
    pub is_dir: bool,
    /// File size in bytes (0 for directories).
    pub size: u64,
}

#[derive(Debug, Clone)]
enum Node {
    File { first_block: Option<u32>, size: u64 },
    Dir(BTreeMap<String, Node>),
}

/// The media file system.
///
/// # Example
///
/// ```
/// use mediafs::fs::{AllocPolicy, MediaFs};
///
/// let mut fs = MediaFs::new(256, 512, AllocPolicy::FirstFit);
/// fs.mkdir("/music")?;
/// fs.create("/music/track.mp3", &vec![1u8; 5000])?;
/// assert_eq!(fs.read("/music/track.mp3")?, vec![1u8; 5000]);
/// # Ok::<(), mediafs::fs::FsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MediaFs {
    device: BlockDevice,
    fat: Vec<FatEntry>,
    root: Node,
    policy: AllocPolicy,
    rng: Xoroshiro128,
}

impl MediaFs {
    /// Creates an empty file system on a fresh device.
    ///
    /// # Panics
    ///
    /// Panics if the device dimensions are zero.
    #[must_use]
    pub fn new(block_count: u32, block_size: usize, policy: AllocPolicy) -> Self {
        let seed = match policy {
            AllocPolicy::Scatter(s) => s,
            AllocPolicy::FirstFit => 0,
        };
        Self {
            device: BlockDevice::new(block_count, block_size),
            fat: vec![FatEntry::Free; block_count as usize],
            root: Node::Dir(BTreeMap::new()),
            policy,
            rng: Xoroshiro128::new(seed),
        }
    }

    /// Block size in bytes.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.device.block_size()
    }

    /// Free blocks remaining.
    #[must_use]
    pub fn free_blocks(&self) -> u32 {
        self.fat.iter().filter(|e| **e == FatEntry::Free).count() as u32
    }

    /// Device I/O statistics so far.
    #[must_use]
    pub fn io_stats(&self) -> IoStats {
        self.device.stats()
    }

    /// Clears device I/O statistics.
    pub fn reset_io_stats(&mut self) {
        self.device.reset_stats();
    }

    fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::BadPath(path.to_string()));
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if path != "/" && comps.is_empty() {
            return Err(FsError::BadPath(path.to_string()));
        }
        Ok(comps)
    }

    fn dir_of<'a>(
        root: &'a mut Node,
        comps: &[&str],
    ) -> Result<&'a mut BTreeMap<String, Node>, FsError> {
        let mut cur = root;
        for &c in comps {
            let Node::Dir(map) = cur else {
                return Err(FsError::NotADirectory(c.to_string()));
            };
            cur = map
                .get_mut(c)
                .ok_or_else(|| FsError::NotFound(c.to_string()))?;
        }
        match cur {
            Node::Dir(map) => Ok(map),
            _ => Err(FsError::NotADirectory(comps.join("/"))),
        }
    }

    /// Creates a directory. Parent must exist.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for bad paths, missing parents, or collisions.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        let comps = Self::split_path(path)?;
        let Some((name, parent)) = comps.split_last() else {
            return Err(FsError::BadPath(path.to_string()));
        };
        let dir = Self::dir_of(&mut self.root, parent)?;
        if dir.contains_key(*name) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        dir.insert((*name).to_string(), Node::Dir(BTreeMap::new()));
        Ok(())
    }

    fn allocate(&mut self, count: usize) -> Result<Vec<u32>, FsError> {
        let free: Vec<u32> = (0..self.fat.len() as u32)
            .filter(|&i| self.fat[i as usize] == FatEntry::Free)
            .collect();
        if free.len() < count {
            return Err(FsError::NoSpace);
        }
        let chosen: Vec<u32> = match self.policy {
            AllocPolicy::FirstFit => free[..count].to_vec(),
            AllocPolicy::Scatter(_) => {
                let mut pool = free;
                self.rng.shuffle(&mut pool);
                pool[..count].to_vec()
            }
        };
        Ok(chosen)
    }

    /// Creates a file with the given contents.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for path problems or lack of space.
    pub fn create(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let comps = Self::split_path(path)?;
        let Some((name, parent)) = comps.split_last() else {
            return Err(FsError::BadPath(path.to_string()));
        };
        // Allocate before touching the tree so failures leave no trace.
        let bs = self.device.block_size();
        let n_blocks = data.len().div_ceil(bs);
        let blocks = self.allocate(n_blocks)?;
        {
            let dir = Self::dir_of(&mut self.root, parent)?;
            if dir.contains_key(*name) {
                return Err(FsError::AlreadyExists(path.to_string()));
            }
            dir.insert(
                (*name).to_string(),
                Node::File {
                    first_block: blocks.first().copied(),
                    size: data.len() as u64,
                },
            );
        }
        // Chain the FAT and write the data.
        for (i, &b) in blocks.iter().enumerate() {
            self.fat[b as usize] = match blocks.get(i + 1) {
                Some(&next) => FatEntry::Next(next),
                None => FatEntry::EndOfChain,
            };
            let mut buf = vec![0u8; bs];
            let lo = i * bs;
            let hi = (lo + bs).min(data.len());
            buf[..hi - lo].copy_from_slice(&data[lo..hi]);
            self.device.write(b, &buf)?;
        }
        Ok(())
    }

    fn find(&self, path: &str) -> Result<&Node, FsError> {
        let comps = Self::split_path(path)?;
        let mut cur = &self.root;
        for &c in &comps {
            let Node::Dir(map) = cur else {
                return Err(FsError::NotADirectory(c.to_string()));
            };
            cur = map
                .get(c)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        }
        Ok(cur)
    }

    /// Reads a whole file (streaming through the device, so I/O stats
    /// reflect the chain layout).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if the path is missing or is a directory.
    pub fn read(&mut self, path: &str) -> Result<Vec<u8>, FsError> {
        let (mut block, size) = match self.find(path)? {
            Node::File { first_block, size } => (*first_block, *size as usize),
            Node::Dir(_) => return Err(FsError::NotADirectory(path.to_string())),
        };
        let bs = self.device.block_size();
        let mut out = Vec::with_capacity(size);
        while let Some(b) = block {
            let data = self.device.read(b)?;
            let take = bs.min(size - out.len());
            out.extend_from_slice(&data[..take]);
            block = match self.fat[b as usize] {
                FatEntry::Next(n) => Some(n),
                FatEntry::EndOfChain => None,
                FatEntry::Free => None, // corrupt chain tolerated as EOF
            };
            if out.len() >= size {
                break;
            }
        }
        out.truncate(size);
        Ok(out)
    }

    /// File size without reading data.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for missing paths or directories.
    pub fn size_of(&self, path: &str) -> Result<u64, FsError> {
        match self.find(path)? {
            Node::File { size, .. } => Ok(*size),
            Node::Dir(_) => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    /// Deletes a file (frees its chain) or an empty directory.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for missing paths or non-empty directories.
    pub fn delete(&mut self, path: &str) -> Result<(), FsError> {
        let comps = Self::split_path(path)?;
        let Some((name, parent)) = comps.split_last() else {
            return Err(FsError::BadPath(path.to_string()));
        };
        // Inspect first.
        let first_block = match self.find(path)? {
            Node::File { first_block, .. } => *first_block,
            Node::Dir(map) => {
                if !map.is_empty() {
                    return Err(FsError::NotEmpty(path.to_string()));
                }
                None
            }
        };
        // Free the chain.
        let mut block = first_block;
        while let Some(b) = block {
            let next = match self.fat[b as usize] {
                FatEntry::Next(n) => Some(n),
                _ => None,
            };
            self.fat[b as usize] = FatEntry::Free;
            block = next;
        }
        let dir = Self::dir_of(&mut self.root, parent)?;
        dir.remove(*name);
        Ok(())
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for missing paths or files.
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>, FsError> {
        match self.find(path)? {
            Node::Dir(map) => Ok(map
                .iter()
                .map(|(name, node)| DirEntry {
                    name: name.clone(),
                    is_dir: matches!(node, Node::Dir(_)),
                    size: match node {
                        Node::File { size, .. } => *size,
                        Node::Dir(_) => 0,
                    },
                })
                .collect()),
            Node::File { .. } => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    /// Fraction of a file's block transitions that are non-sequential
    /// (0.0 = perfectly contiguous, 1.0 = fully scattered).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for missing paths or directories.
    pub fn fragmentation(&self, path: &str) -> Result<f64, FsError> {
        let mut block = match self.find(path)? {
            Node::File { first_block, .. } => *first_block,
            Node::Dir(_) => return Err(FsError::NotADirectory(path.to_string())),
        };
        let mut transitions = 0u64;
        let mut jumps = 0u64;
        while let Some(b) = block {
            if let FatEntry::Next(n) = self.fat[b as usize] {
                transitions += 1;
                if n != b + 1 {
                    jumps += 1;
                }
                block = Some(n);
            } else {
                block = None;
            }
        }
        Ok(if transitions == 0 {
            0.0
        } else {
            jumps as f64 / transitions as f64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> MediaFs {
        MediaFs::new(128, 64, AllocPolicy::FirstFit)
    }

    #[test]
    fn create_read_round_trip() {
        let mut f = fs();
        let data: Vec<u8> = (0..300).map(|i| i as u8).collect();
        f.create("/a.bin", &data).unwrap();
        assert_eq!(f.read("/a.bin").unwrap(), data);
        assert_eq!(f.size_of("/a.bin").unwrap(), 300);
    }

    #[test]
    fn nested_directories() {
        let mut f = fs();
        f.mkdir("/music").unwrap();
        f.mkdir("/music/rock").unwrap();
        f.create("/music/rock/track.mp3", b"abc").unwrap();
        let entries = f.list("/music/rock").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "track.mp3");
        assert!(!entries[0].is_dir);
        assert_eq!(entries[0].size, 3);
    }

    #[test]
    fn missing_parent_fails() {
        let mut f = fs();
        assert!(matches!(
            f.create("/no/file.txt", b"x"),
            Err(FsError::NotFound(_))
        ));
        assert!(matches!(f.mkdir("/a/b"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn duplicate_rejected() {
        let mut f = fs();
        f.create("/x", b"1").unwrap();
        assert!(matches!(
            f.create("/x", b"2"),
            Err(FsError::AlreadyExists(_))
        ));
        f.mkdir("/d").unwrap();
        assert!(matches!(f.mkdir("/d"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn delete_frees_blocks() {
        let mut f = fs();
        let before = f.free_blocks();
        f.create("/big", &vec![1u8; 64 * 10]).unwrap();
        assert_eq!(f.free_blocks(), before - 10);
        f.delete("/big").unwrap();
        assert_eq!(f.free_blocks(), before);
        assert!(matches!(f.read("/big"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn non_empty_directory_protected() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        f.create("/d/x", b"1").unwrap();
        assert!(matches!(f.delete("/d"), Err(FsError::NotEmpty(_))));
        f.delete("/d/x").unwrap();
        f.delete("/d").unwrap();
        assert!(matches!(f.list("/d"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn no_space_reported_and_tree_untouched() {
        let mut f = MediaFs::new(4, 64, AllocPolicy::FirstFit);
        assert!(matches!(
            f.create("/too-big", &vec![0u8; 64 * 5]),
            Err(FsError::NoSpace)
        ));
        assert!(f.list("/").unwrap().is_empty(), "failed create left debris");
    }

    #[test]
    fn large_file_spans_many_blocks() {
        // "Large file sizes" — a file much bigger than a block.
        let mut f = MediaFs::new(1024, 64, AllocPolicy::FirstFit);
        let data: Vec<u8> = (0..50_000).map(|i| (i * 7) as u8).collect();
        f.create("/movie.vob", &data).unwrap();
        assert_eq!(f.read("/movie.vob").unwrap(), data);
    }

    #[test]
    fn first_fit_is_contiguous_scatter_is_not() {
        let mut seq = MediaFs::new(256, 64, AllocPolicy::FirstFit);
        seq.create("/f", &vec![0u8; 64 * 20]).unwrap();
        assert_eq!(seq.fragmentation("/f").unwrap(), 0.0);

        let mut scat = MediaFs::new(256, 64, AllocPolicy::Scatter(7));
        scat.create("/f", &vec![0u8; 64 * 20]).unwrap();
        assert!(
            scat.fragmentation("/f").unwrap() > 0.8,
            "scatter policy should fragment"
        );
    }

    #[test]
    fn fragmented_files_cost_more_seeks() {
        let data = vec![0u8; 64 * 32];
        let mut seq = MediaFs::new(256, 64, AllocPolicy::FirstFit);
        seq.create("/f", &data).unwrap();
        seq.reset_io_stats();
        seq.read("/f").unwrap();
        let seq_seeks = seq.io_stats().seeks;

        let mut scat = MediaFs::new(256, 64, AllocPolicy::Scatter(9));
        scat.create("/f", &data).unwrap();
        scat.reset_io_stats();
        scat.read("/f").unwrap();
        let scat_seeks = scat.io_stats().seeks;
        assert!(
            scat_seeks > 10 * seq_seeks.max(1),
            "scattered read should seek much more: {scat_seeks} vs {seq_seeks}"
        );
    }

    #[test]
    fn non_sequential_allocation_after_churn() {
        // Delete/create churn forces even FirstFit into fragmentation —
        // the paper's "non-sequential allocation" in action.
        let mut f = MediaFs::new(64, 64, AllocPolicy::FirstFit);
        for i in 0..8 {
            f.create(&format!("/t{i}"), &vec![0u8; 64 * 4]).unwrap();
        }
        // Free every other file, then allocate one spanning the holes.
        for i in (0..8).step_by(2) {
            f.delete(&format!("/t{i}")).unwrap();
        }
        f.create("/big", &vec![0u8; 64 * 12]).unwrap();
        // 12 blocks across three 4-block holes: 2 jumps in 11 transitions.
        assert!(
            f.fragmentation("/big").unwrap() >= 2.0 / 11.0 - 1e-9,
            "churn should fragment even first-fit"
        );
        assert_eq!(f.read("/big").unwrap().len(), 64 * 12);
    }

    #[test]
    fn bad_paths_rejected() {
        let mut f = fs();
        assert!(matches!(
            f.create("relative", b"x"),
            Err(FsError::BadPath(_))
        ));
        assert!(matches!(f.mkdir("/"), Err(FsError::BadPath(_))));
        assert!(matches!(f.read("/"), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn root_listing() {
        let mut f = fs();
        f.mkdir("/a").unwrap();
        f.create("/b", b"xy").unwrap();
        let entries = f.list("/").unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.name == "a" && e.is_dir));
        assert!(entries.iter().any(|e| e.name == "b" && e.size == 2));
    }
}
