//! # `mediafs` — the embedded media file system of Wolf's §7
//!
//! *"Devices with local storage, such as personal audio players or
//! digital video recorders, must provide file systems … these file
//! systems must still incorporate the major characteristics of modern
//! file systems: large file sizes, non-sequential allocation of blocks."*
//!
//! * [`block`] — block device with seek accounting, so fragmentation has
//!   a measurable cost (experiment E13).
//! * [`fs`] — FAT-chained files, hierarchical directories, first-fit and
//!   deliberately-scattered allocation policies.
//! * [`foreign`] — CD/MP3 trees authored elsewhere (DOS 8.3, long names,
//!   deep nesting, flat dumps) and the scanner that must read them all.
//!
//! # Example
//!
//! ```
//! use mediafs::fs::{AllocPolicy, MediaFs};
//!
//! let mut fs = MediaFs::new(512, 256, AllocPolicy::FirstFit);
//! fs.mkdir("/recordings")?;
//! fs.create("/recordings/show.ts", &vec![0u8; 10_000])?;
//! assert_eq!(fs.size_of("/recordings/show.ts")?, 10_000);
//! # Ok::<(), mediafs::fs::FsError>(())
//! ```

pub mod block;
pub mod foreign;
pub mod fs;

pub use block::{BlockDevice, IoStats};
pub use fs::{AllocPolicy, DirEntry, FsError, MediaFs};
