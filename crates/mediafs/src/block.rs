//! Block device model with seek accounting.
//!
//! Media file systems live on devices where *sequence matters*: streaming
//! a fragmented file costs seeks. The in-memory device here counts reads,
//! writes, and seeks (any access whose block is not the successor of the
//! previous access) so experiment E13 can price fragmentation.

/// I/O statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Non-sequential repositionings.
    pub seeks: u64,
}

impl IoStats {
    /// Total block operations.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Modelled access time: `seek_ms` per seek plus `transfer_ms` per
    /// block operation.
    #[must_use]
    pub fn time_ms(&self, seek_ms: f64, transfer_ms: f64) -> f64 {
        self.seeks as f64 * seek_ms + self.ops() as f64 * transfer_ms
    }
}

/// Errors from the block device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// Block index beyond the device.
    OutOfRange {
        /// The offending index.
        index: u32,
        /// Device capacity in blocks.
        capacity: u32,
    },
    /// Write data does not match the block size.
    WrongSize {
        /// Bytes supplied.
        got: usize,
        /// Block size.
        expected: usize,
    },
}

impl core::fmt::Display for BlockError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BlockError::OutOfRange { index, capacity } => {
                write!(f, "block {index} out of range (capacity {capacity})")
            }
            BlockError::WrongSize { got, expected } => {
                write!(
                    f,
                    "write of {got} bytes does not match block size {expected}"
                )
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// An in-memory block device.
///
/// # Example
///
/// ```
/// use mediafs::block::BlockDevice;
///
/// let mut dev = BlockDevice::new(16, 512);
/// dev.write(3, &vec![7u8; 512])?;
/// assert_eq!(dev.read(3)?[0], 7);
/// # Ok::<(), mediafs::block::BlockError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockDevice {
    block_size: usize,
    blocks: Vec<Vec<u8>>,
    head: Option<u32>,
    stats: IoStats,
}

impl BlockDevice {
    /// Creates a zero-filled device.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(block_count: u32, block_size: usize) -> Self {
        assert!(
            block_count > 0 && block_size > 0,
            "device must be non-empty"
        );
        Self {
            block_size,
            blocks: vec![vec![0u8; block_size]; block_count as usize],
            head: None,
            stats: IoStats::default(),
        }
    }

    /// Block size in bytes.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Device capacity in blocks.
    #[must_use]
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    fn seek_to(&mut self, index: u32) {
        // Sequential means "same block or the next one"; anything else
        // repositions the head. The first access always seeks.
        let sequential = matches!(self.head, Some(h) if h == index || h + 1 == index);
        if !sequential {
            self.stats.seeks += 1;
        }
        self.head = Some(index);
    }

    /// Reads one block.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::OutOfRange`] past the device end.
    pub fn read(&mut self, index: u32) -> Result<&[u8], BlockError> {
        if index >= self.block_count() {
            return Err(BlockError::OutOfRange {
                index,
                capacity: self.block_count(),
            });
        }
        self.seek_to(index);
        self.stats.reads += 1;
        Ok(&self.blocks[index as usize])
    }

    /// Writes one full block.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError`] for bad indices or sizes.
    pub fn write(&mut self, index: u32, data: &[u8]) -> Result<(), BlockError> {
        if index >= self.block_count() {
            return Err(BlockError::OutOfRange {
                index,
                capacity: self.block_count(),
            });
        }
        if data.len() != self.block_size {
            return Err(BlockError::WrongSize {
                got: data.len(),
                expected: self.block_size,
            });
        }
        self.seek_to(index);
        self.stats.writes += 1;
        self.blocks[index as usize].copy_from_slice(data);
        Ok(())
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Clears statistics (keeps data and head position).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut dev = BlockDevice::new(8, 64);
        dev.write(2, &[0xAB; 64]).unwrap();
        assert!(dev.read(2).unwrap().iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = BlockDevice::new(4, 16);
        assert!(matches!(dev.read(4), Err(BlockError::OutOfRange { .. })));
        assert!(matches!(
            dev.write(9, &[0; 16]),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_size_write_rejected() {
        let mut dev = BlockDevice::new(4, 16);
        assert!(matches!(
            dev.write(0, &[1, 2, 3]),
            Err(BlockError::WrongSize {
                got: 3,
                expected: 16
            })
        ));
    }

    #[test]
    fn sequential_access_counts_one_seek() {
        let mut dev = BlockDevice::new(16, 8);
        for i in 0..8 {
            dev.read(i).unwrap();
        }
        // Only the initial positioning is a seek.
        assert_eq!(dev.stats().seeks, 1);
        assert_eq!(dev.stats().reads, 8);
    }

    #[test]
    fn random_access_counts_many_seeks() {
        let mut dev = BlockDevice::new(16, 8);
        for i in [0u32, 8, 1, 9, 2, 10] {
            dev.read(i).unwrap();
        }
        assert_eq!(dev.stats().seeks, 6);
    }

    #[test]
    fn rereading_same_block_is_not_a_seek() {
        let mut dev = BlockDevice::new(4, 8);
        dev.read(1).unwrap();
        dev.read(1).unwrap();
        assert_eq!(dev.stats().seeks, 1);
    }

    #[test]
    fn time_model() {
        let s = IoStats {
            reads: 10,
            writes: 0,
            seeks: 2,
        };
        assert!((s.time_ms(10.0, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_keeps_data() {
        let mut dev = BlockDevice::new(4, 8);
        dev.write(1, &[5; 8]).unwrap();
        dev.reset_stats();
        assert_eq!(dev.stats(), IoStats::default());
        assert_eq!(dev.read(1).unwrap()[0], 5);
    }
}
