//! # `drm` — digital rights management per Wolf's §6
//!
//! *"Digital rights management (DRM) encompasses all the operations
//! necessary to enforce copyright and license agreements."* This crate
//! implements the whole §6 architecture:
//!
//! * [`license`] — the paper's four right forms (play, play count, device
//!   set, time window), sealed licenses with tamper-detecting MACs.
//! * [`store`] — the on-device store with offline verification and
//!   online-updatable rights markers.
//! * [`playback`] — the protected path: authorization transaction,
//!   in-device decryption, and the analog-only output policy the paper
//!   gives as its example countermeasure.
//! * [`cipher`] / [`hash`] — from-scratch XTEA-CTR and a keyed MAC (the
//!   *tools*; see DESIGN.md §5 for why clean-room primitives suffice
//!   here).
//!
//! # Example
//!
//! ```
//! use drm::license::{DeviceId, Right, TitleId};
//! use drm::playback::{protected_play, LicenseAuthority, OutputPolicy, PlaybackDevice};
//!
//! let mut authority = LicenseAuthority::new(b"studio".to_vec());
//! let title = TitleId(1);
//! authority.register_title(title);
//! let mut device = PlaybackDevice::new(DeviceId(5), OutputPolicy::DigitalAllowed);
//! let sealed = authority.issue(title, vec![Right::PlayCount(1)]);
//! device.store_mut().install(&sealed, authority.verification_key()).unwrap();
//! assert!(protected_play(&mut device, &authority, title, b"media", 1, 0).is_ok());
//! assert!(protected_play(&mut device, &authority, title, b"media", 1, 0).is_err());
//! ```

pub mod cipher;
pub mod hash;
pub mod license;
pub mod playback;
pub mod store;

pub use license::{DeviceId, License, Refusal, Right, TitleId};
pub use playback::{LicenseAuthority, OutputPolicy, PlaybackDevice};
pub use store::{LicenseStore, StoreDecision};
