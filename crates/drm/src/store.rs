//! The device-side rights store.
//!
//! Paper §6: *"In other cases, DRM may hold rights markers that can be
//! updated over the Internet but do not require a connection for
//! verification."* The store holds verified licenses and mutable rights
//! markers (play counts used), authorizes playback offline, and accepts
//! marker updates (top-ups, revocations) from the authority when a
//! connection happens to exist.

use std::collections::HashMap;

use crate::license::{DeviceId, License, LicenseParseError, Refusal, TitleId};

/// Result of an authorization request against the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreDecision {
    /// Playback may proceed; the play has been counted.
    Granted,
    /// Playback refused by a right check.
    Refused(Refusal),
    /// No license at all for the title.
    NoLicense,
    /// The title's license was revoked by the authority.
    Revoked,
}

impl StoreDecision {
    /// `true` when playback may proceed.
    #[must_use]
    pub fn is_granted(self) -> bool {
        self == StoreDecision::Granted
    }
}

/// The on-device license store.
#[derive(Debug, Clone, Default)]
pub struct LicenseStore {
    licenses: HashMap<TitleId, License>,
    plays_used: HashMap<TitleId, u32>,
    revoked: HashMap<TitleId, bool>,
}

impl LicenseStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a sealed license after verifying its MAC against the
    /// authority's signing key. Replaces any previous license for the
    /// title and clears its revocation flag (a fresh grant supersedes an
    /// old revocation); play markers persist across reinstalls.
    ///
    /// # Errors
    ///
    /// Returns [`LicenseParseError`] when verification fails.
    pub fn install(
        &mut self,
        sealed: &[u8],
        signing_key: &[u8],
    ) -> Result<TitleId, LicenseParseError> {
        let license = License::unseal(sealed, signing_key)?;
        let title = license.title;
        self.licenses.insert(title, license);
        self.revoked.remove(&title);
        Ok(title)
    }

    /// Number of installed licenses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.licenses.len()
    }

    /// `true` when no licenses are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.licenses.is_empty()
    }

    /// Plays consumed for a title.
    #[must_use]
    pub fn plays_used(&self, title: TitleId) -> u32 {
        self.plays_used.get(&title).copied().unwrap_or(0)
    }

    /// The installed license for a title, if any.
    #[must_use]
    pub fn license(&self, title: TitleId) -> Option<&License> {
        self.licenses.get(&title)
    }

    /// Offline authorization: checks every right and, when granted,
    /// consumes one play marker.
    pub fn authorize_play(&mut self, title: TitleId, device: DeviceId, now: u64) -> StoreDecision {
        if self.revoked.get(&title).copied().unwrap_or(false) {
            return StoreDecision::Revoked;
        }
        let Some(license) = self.licenses.get(&title) else {
            return StoreDecision::NoLicense;
        };
        let used = self.plays_used.get(&title).copied().unwrap_or(0);
        match license.authorize(device, now, used) {
            Ok(()) => {
                *self.plays_used.entry(title).or_insert(0) += 1;
                StoreDecision::Granted
            }
            Err(r) => StoreDecision::Refused(r),
        }
    }

    /// Online marker update: the authority grants additional plays
    /// (negative of consumption). Models §6's "rights markers that can be
    /// updated over the Internet".
    pub fn top_up_plays(&mut self, title: TitleId, additional: u32) {
        let used = self.plays_used.entry(title).or_insert(0);
        *used = used.saturating_sub(additional);
    }

    /// Online revocation of a title.
    pub fn revoke(&mut self, title: TitleId) {
        self.revoked.insert(title, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::license::Right;

    const SIGNING: &[u8] = b"authority";

    fn sealed_counted(title: u64, plays: u32) -> Vec<u8> {
        License {
            title: TitleId(title),
            rights: vec![Right::PlayCount(plays)],
            content_key: [1u8; 16],
        }
        .seal(SIGNING)
    }

    #[test]
    fn install_and_play() {
        let mut store = LicenseStore::new();
        let title = store.install(&sealed_counted(1, 2), SIGNING).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.authorize_play(title, DeviceId(1), 0).is_granted());
        assert!(store.authorize_play(title, DeviceId(1), 0).is_granted());
        assert_eq!(
            store.authorize_play(title, DeviceId(1), 0),
            StoreDecision::Refused(Refusal::CountExhausted)
        );
        assert_eq!(store.plays_used(title), 2);
    }

    #[test]
    fn unknown_title_refused() {
        let mut store = LicenseStore::new();
        assert_eq!(
            store.authorize_play(TitleId(9), DeviceId(1), 0),
            StoreDecision::NoLicense
        );
    }

    #[test]
    fn bad_seal_not_installed() {
        let mut store = LicenseStore::new();
        let mut sealed = sealed_counted(1, 2);
        sealed[5] ^= 0xFF;
        assert!(store.install(&sealed, SIGNING).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn top_up_restores_plays() {
        let mut store = LicenseStore::new();
        let title = store.install(&sealed_counted(1, 1), SIGNING).unwrap();
        assert!(store.authorize_play(title, DeviceId(1), 0).is_granted());
        assert!(!store.authorize_play(title, DeviceId(1), 0).is_granted());
        store.top_up_plays(title, 1);
        assert!(store.authorize_play(title, DeviceId(1), 0).is_granted());
    }

    #[test]
    fn revocation_blocks_until_reinstall() {
        let mut store = LicenseStore::new();
        let title = store.install(&sealed_counted(1, 10), SIGNING).unwrap();
        store.revoke(title);
        assert_eq!(
            store.authorize_play(title, DeviceId(1), 0),
            StoreDecision::Revoked
        );
        // A fresh license supersedes revocation.
        store.install(&sealed_counted(1, 10), SIGNING).unwrap();
        assert!(store.authorize_play(title, DeviceId(1), 0).is_granted());
    }

    #[test]
    fn markers_persist_across_reinstall() {
        let mut store = LicenseStore::new();
        let title = store.install(&sealed_counted(1, 2), SIGNING).unwrap();
        assert!(store.authorize_play(title, DeviceId(1), 0).is_granted());
        store.install(&sealed_counted(1, 2), SIGNING).unwrap();
        // One play already consumed; only one remains.
        assert!(store.authorize_play(title, DeviceId(1), 0).is_granted());
        assert!(!store.authorize_play(title, DeviceId(1), 0).is_granted());
    }
}
