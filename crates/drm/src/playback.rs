//! The protected playback path and the license authority.
//!
//! Paper §6: *"The playback device must be able not only to perform the
//! authorization transaction but also to play back the content in such a
//! way that the authorizations are not easily subverted. For example, a
//! playback device may be architected to provide only analog output at
//! the pins to prevent direct copying of unencoded digital content."*
//!
//! [`PlaybackDevice`] holds the license store, decrypts content inside
//! the "chip", and exposes the decrypted samples only through the output
//! policy: an analog-only device never returns the digital bytes.

use crate::cipher::{Key, XteaCtr};
use crate::license::{DeviceId, License, Refusal, Right, TitleId};
use crate::store::{LicenseStore, StoreDecision};

/// What the device's output pins expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputPolicy {
    /// Decrypted digital samples may leave the device (e.g. toward an
    /// internal decoder pipeline).
    DigitalAllowed,
    /// Only an "analog" rendering leaves the device — modeled as `f64`
    /// sample levels with quantization detail destroyed, so the exact
    /// digital content cannot be copied off the pins.
    AnalogOnly,
}

/// The result of a playback request.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaybackOutput {
    /// Digital pass-through (policy permitting).
    Digital(Vec<u8>),
    /// Analog rendering: one level per sample, with the LSBs gone.
    Analog(Vec<f64>),
}

/// Errors from a playback request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaybackError {
    /// The store refused authorization.
    NotAuthorized(StoreDecision),
}

impl core::fmt::Display for PlaybackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlaybackError::NotAuthorized(d) => write!(f, "authorization refused: {d:?}"),
        }
    }
}

impl std::error::Error for PlaybackError {}

/// A consumer playback device with a protected content path.
#[derive(Debug, Clone)]
pub struct PlaybackDevice {
    id: DeviceId,
    store: LicenseStore,
    policy: OutputPolicy,
}

impl PlaybackDevice {
    /// Creates a device.
    #[must_use]
    pub fn new(id: DeviceId, policy: OutputPolicy) -> Self {
        Self {
            id,
            store: LicenseStore::new(),
            policy,
        }
    }

    /// The device id.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The output policy.
    #[must_use]
    pub fn policy(&self) -> OutputPolicy {
        self.policy
    }

    /// Mutable access to the license store (for installs and marker
    /// updates).
    pub fn store_mut(&mut self) -> &mut LicenseStore {
        &mut self.store
    }

    /// Read access to the license store.
    #[must_use]
    pub fn store(&self) -> &LicenseStore {
        &self.store
    }

    /// Plays encrypted content: authorizes, decrypts with the license's
    /// content key, and renders according to the output policy.
    ///
    /// # Errors
    ///
    /// Returns [`PlaybackError::NotAuthorized`] when the store refuses.
    pub fn play(
        &mut self,
        title: TitleId,
        encrypted: &[u8],
        nonce: u32,
        now: u64,
    ) -> Result<PlaybackOutput, PlaybackError> {
        let decision = self.store.authorize_play(title, self.id, now);
        if !decision.is_granted() {
            return Err(PlaybackError::NotAuthorized(decision));
        }
        let key = self
            .store
            .license(title)
            .expect("granted implies license present")
            .content_key;
        let clear = XteaCtr::new(&key, nonce).applied(encrypted);
        Ok(match self.policy {
            OutputPolicy::DigitalAllowed => PlaybackOutput::Digital(clear),
            OutputPolicy::AnalogOnly => PlaybackOutput::Analog(
                // "Analog at the pins": drop the 3 LSBs — enough signal to
                // listen to, not enough to reconstruct the digital stream.
                clear.iter().map(|&b| (b & 0xF8) as f64 / 255.0).collect(),
            ),
        })
    }
}

/// The content owner's license authority: issues sealed licenses and
/// encrypts content.
#[derive(Debug, Clone)]
pub struct LicenseAuthority {
    signing_key: Vec<u8>,
    /// Per-title content keys.
    keys: std::collections::HashMap<TitleId, Key>,
}

impl LicenseAuthority {
    /// Creates an authority with a signing secret.
    #[must_use]
    pub fn new(signing_key: impl Into<Vec<u8>>) -> Self {
        Self {
            signing_key: signing_key.into(),
            keys: std::collections::HashMap::new(),
        }
    }

    /// The signing key devices use to verify licenses (in a real system a
    /// public key; symmetric here).
    #[must_use]
    pub fn verification_key(&self) -> &[u8] {
        &self.signing_key
    }

    /// Registers a title, deriving its content key from the signing
    /// secret and title id.
    pub fn register_title(&mut self, title: TitleId) -> Key {
        let digest = crate::hash::mac(&self.signing_key, &title.0.to_be_bytes());
        let mut key = [0u8; 16];
        key.copy_from_slice(&digest[..16]);
        self.keys.insert(title, key);
        key
    }

    /// Encrypts content for a registered title.
    ///
    /// # Panics
    ///
    /// Panics if the title is not registered.
    #[must_use]
    pub fn encrypt_content(&self, title: TitleId, content: &[u8], nonce: u32) -> Vec<u8> {
        let key = self.keys.get(&title).expect("title not registered");
        XteaCtr::new(key, nonce).applied(content)
    }

    /// Issues a sealed license granting `rights` over `title`.
    ///
    /// # Panics
    ///
    /// Panics if the title is not registered.
    #[must_use]
    pub fn issue(&self, title: TitleId, rights: Vec<Right>) -> Vec<u8> {
        let key = self.keys.get(&title).expect("title not registered");
        License {
            title,
            rights,
            content_key: *key,
        }
        .seal(&self.signing_key)
    }
}

/// End-to-end convenience used by examples and benches: play `content`
/// through a full authorize-decrypt-render transaction.
///
/// # Errors
///
/// Propagates [`PlaybackError`] from the device.
pub fn protected_play(
    device: &mut PlaybackDevice,
    authority: &LicenseAuthority,
    title: TitleId,
    content: &[u8],
    nonce: u32,
    now: u64,
) -> Result<PlaybackOutput, PlaybackError> {
    let encrypted = authority.encrypt_content(title, content, nonce);
    device.play(title, &encrypted, nonce, now)
}

/// A refusal mapped back to the §6 right that caused it, for reporting.
#[must_use]
pub fn refusal_of(decision: StoreDecision) -> Option<Refusal> {
    match decision {
        StoreDecision::Refused(r) => Some(r),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LicenseAuthority, PlaybackDevice, TitleId) {
        let mut authority = LicenseAuthority::new(b"studio-secret".to_vec());
        let title = TitleId(7);
        authority.register_title(title);
        let device = PlaybackDevice::new(DeviceId(1), OutputPolicy::DigitalAllowed);
        (authority, device, title)
    }

    #[test]
    fn licensed_playback_round_trips_content() {
        let (authority, mut device, title) = setup();
        let sealed = authority.issue(title, vec![Right::Play]);
        device
            .store_mut()
            .install(&sealed, authority.verification_key())
            .unwrap();
        let content = b"compressed media payload".to_vec();
        let out = protected_play(&mut device, &authority, title, &content, 1, 0).unwrap();
        assert_eq!(out, PlaybackOutput::Digital(content));
    }

    #[test]
    fn unlicensed_playback_refused() {
        let (authority, mut device, title) = setup();
        let err = protected_play(&mut device, &authority, title, b"x", 1, 0).unwrap_err();
        assert_eq!(err, PlaybackError::NotAuthorized(StoreDecision::NoLicense));
    }

    #[test]
    fn play_count_decrements_through_device() {
        let (authority, mut device, title) = setup();
        let sealed = authority.issue(title, vec![Right::PlayCount(2)]);
        device
            .store_mut()
            .install(&sealed, authority.verification_key())
            .unwrap();
        assert!(protected_play(&mut device, &authority, title, b"c", 1, 0).is_ok());
        assert!(protected_play(&mut device, &authority, title, b"c", 1, 0).is_ok());
        let err = protected_play(&mut device, &authority, title, b"c", 1, 0).unwrap_err();
        assert_eq!(
            refusal_of(match err {
                PlaybackError::NotAuthorized(d) => d,
            }),
            Some(Refusal::CountExhausted)
        );
    }

    #[test]
    fn device_binding_enforced_through_device() {
        let (authority, _, title) = setup();
        let sealed = authority.issue(title, vec![Right::Play, Right::Devices(vec![DeviceId(42)])]);
        let mut wrong_device = PlaybackDevice::new(DeviceId(1), OutputPolicy::DigitalAllowed);
        wrong_device
            .store_mut()
            .install(&sealed, authority.verification_key())
            .unwrap();
        assert!(protected_play(&mut wrong_device, &authority, title, b"c", 1, 0).is_err());
        let mut right_device = PlaybackDevice::new(DeviceId(42), OutputPolicy::DigitalAllowed);
        right_device
            .store_mut()
            .install(&sealed, authority.verification_key())
            .unwrap();
        assert!(protected_play(&mut right_device, &authority, title, b"c", 1, 0).is_ok());
    }

    #[test]
    fn analog_only_never_exposes_digital_bytes() {
        let (authority, _, title) = setup();
        let sealed = authority.issue(title, vec![Right::Play]);
        let mut device = PlaybackDevice::new(DeviceId(1), OutputPolicy::AnalogOnly);
        device
            .store_mut()
            .install(&sealed, authority.verification_key())
            .unwrap();
        let content: Vec<u8> = (0..=255).collect();
        let out = protected_play(&mut device, &authority, title, &content, 1, 0).unwrap();
        match out {
            PlaybackOutput::Analog(levels) => {
                assert_eq!(levels.len(), content.len());
                // LSB detail must be destroyed: bytes differing only in
                // the low 3 bits render identically.
                let l0 = levels[0]; // byte 0
                let l7 = levels[7]; // byte 7 (same high bits as 0)
                assert_eq!(l0, l7, "analog output leaked LSB detail");
            }
            PlaybackOutput::Digital(_) => panic!("analog-only device emitted digital output"),
        }
    }

    #[test]
    fn wrong_nonce_scrambles_content() {
        let (authority, mut device, title) = setup();
        let sealed = authority.issue(title, vec![Right::Play]);
        device
            .store_mut()
            .install(&sealed, authority.verification_key())
            .unwrap();
        let content = b"some recognizable plaintext content".to_vec();
        let encrypted = authority.encrypt_content(title, &content, 1);
        let out = device.play(title, &encrypted, 2, 0).unwrap(); // wrong nonce
        assert_ne!(out, PlaybackOutput::Digital(content));
    }

    #[test]
    fn content_keys_differ_per_title() {
        let mut authority = LicenseAuthority::new(b"s".to_vec());
        let k1 = authority.register_title(TitleId(1));
        let k2 = authority.register_title(TitleId(2));
        assert_ne!(k1, k2);
    }
}
