//! Rights and licenses — the §6 rights model, verbatim.
//!
//! The paper enumerates the forms rights may take:
//!
//! > * The ability to play certain titles.
//! > * The number of times that a title may be played.
//! > * The right to play a title on more than one device.
//! > * The time period during which the title may be played.
//!
//! [`Right`] encodes exactly those four forms; a [`License`] carries a set
//! of them plus the content key, serialized with a keyed MAC so tampering
//! (extending an expiry, adding a device) is detected.

use signal::bits::{BitReader, BitWriter, OutOfBitsError};

use crate::cipher::Key;
use crate::hash::{digest_eq, mac, Digest};

/// Identifies a piece of content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TitleId(pub u64);

impl core::fmt::Display for TitleId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "title:{}", self.0)
    }
}

/// Identifies a playback device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u64);

impl core::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "device:{}", self.0)
    }
}

/// The four §6 right forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Right {
    /// The ability to play this title at all (unconditional play right).
    Play,
    /// The number of times the title may be played.
    PlayCount(
        /// Plays allowed over the license's lifetime.
        u32,
    ),
    /// The devices on which the title may be played (one or more).
    Devices(Vec<DeviceId>),
    /// The time period `[not_before, not_after]` (seconds) during which
    /// the title may be played.
    TimeWindow {
        /// Earliest permitted play time (inclusive).
        not_before: u64,
        /// Latest permitted play time (inclusive).
        not_after: u64,
    },
}

/// Why an authorization was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// No play right for the title at all.
    NoPlayRight,
    /// The play count is exhausted.
    CountExhausted,
    /// The requesting device is not licensed.
    WrongDevice,
    /// Outside the permitted time window.
    OutsideWindow,
}

impl core::fmt::Display for Refusal {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Refusal::NoPlayRight => "no play right for this title",
            Refusal::CountExhausted => "play count exhausted",
            Refusal::WrongDevice => "device not licensed for this title",
            Refusal::OutsideWindow => "outside the licensed time window",
        })
    }
}

impl std::error::Error for Refusal {}

/// A license: rights over one title, plus the content decryption key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct License {
    /// The licensed title.
    pub title: TitleId,
    /// The granted rights (all must be satisfied to play).
    pub rights: Vec<Right>,
    /// Key that decrypts the title's content stream.
    pub content_key: Key,
}

impl License {
    /// Checks whether `device` may play at time `now` given `plays_used`
    /// prior plays. Every right present must be satisfied; a license with
    /// no `Play` and no `PlayCount` right grants nothing.
    ///
    /// # Errors
    ///
    /// Returns the first [`Refusal`] encountered.
    pub fn authorize(&self, device: DeviceId, now: u64, plays_used: u32) -> Result<(), Refusal> {
        let mut playable = false;
        for right in &self.rights {
            match right {
                Right::Play => playable = true,
                Right::PlayCount(n) => {
                    if plays_used >= *n {
                        return Err(Refusal::CountExhausted);
                    }
                    playable = true;
                }
                Right::Devices(devs) => {
                    if !devs.contains(&device) {
                        return Err(Refusal::WrongDevice);
                    }
                }
                Right::TimeWindow {
                    not_before,
                    not_after,
                } => {
                    if now < *not_before || now > *not_after {
                        return Err(Refusal::OutsideWindow);
                    }
                }
            }
        }
        if playable {
            Ok(())
        } else {
            Err(Refusal::NoPlayRight)
        }
    }

    /// Serializes the license body (without MAC).
    fn write_body(&self, w: &mut BitWriter) {
        w.write_bits((self.title.0 >> 32) as u32, 32);
        w.write_bits(self.title.0 as u32, 32);
        w.write_bits(self.rights.len() as u32, 8);
        for r in &self.rights {
            match r {
                Right::Play => w.write_bits(0, 2),
                Right::PlayCount(n) => {
                    w.write_bits(1, 2);
                    w.write_bits(*n, 32);
                }
                Right::Devices(devs) => {
                    w.write_bits(2, 2);
                    w.write_bits(devs.len() as u32, 8);
                    for d in devs {
                        w.write_bits((d.0 >> 32) as u32, 32);
                        w.write_bits(d.0 as u32, 32);
                    }
                }
                Right::TimeWindow {
                    not_before,
                    not_after,
                } => {
                    w.write_bits(3, 2);
                    w.write_bits((*not_before >> 32) as u32, 32);
                    w.write_bits(*not_before as u32, 32);
                    w.write_bits((*not_after >> 32) as u32, 32);
                    w.write_bits(*not_after as u32, 32);
                }
            }
        }
        for b in self.content_key {
            w.write_bits(b as u32, 8);
        }
    }

    /// Serializes with a MAC under the authority's signing key.
    #[must_use]
    pub fn seal(&self, signing_key: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        self.write_body(&mut w);
        let body = w.into_bytes();
        let tag: Digest = mac(signing_key, &body);
        let mut out = Vec::with_capacity(body.len() + 34);
        out.extend_from_slice(&(body.len() as u16).to_be_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&tag);
        out
    }

    /// Parses and verifies a sealed license.
    ///
    /// # Errors
    ///
    /// Returns [`LicenseParseError`] for truncated data, bad MACs, or
    /// malformed bodies.
    pub fn unseal(bytes: &[u8], signing_key: &[u8]) -> Result<Self, LicenseParseError> {
        if bytes.len() < 2 {
            return Err(LicenseParseError::Truncated);
        }
        let body_len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        if bytes.len() < 2 + body_len + 32 {
            return Err(LicenseParseError::Truncated);
        }
        let body = &bytes[2..2 + body_len];
        let tag: Digest = bytes[2 + body_len..2 + body_len + 32]
            .try_into()
            .expect("32 bytes checked");
        let expect = mac(signing_key, body);
        if !digest_eq(&tag, &expect) {
            return Err(LicenseParseError::BadMac);
        }
        let mut r = BitReader::new(body);
        let read_u64 = |r: &mut BitReader<'_>| -> Result<u64, OutOfBitsError> {
            let hi = r.read_bits(32)? as u64;
            let lo = r.read_bits(32)? as u64;
            Ok((hi << 32) | lo)
        };
        let title = TitleId(read_u64(&mut r)?);
        let n_rights = r.read_bits(8)? as usize;
        let mut rights = Vec::with_capacity(n_rights);
        for _ in 0..n_rights {
            let kind = r.read_bits(2)?;
            rights.push(match kind {
                0 => Right::Play,
                1 => Right::PlayCount(r.read_bits(32)?),
                2 => {
                    let n = r.read_bits(8)? as usize;
                    let mut devs = Vec::with_capacity(n);
                    for _ in 0..n {
                        devs.push(DeviceId(read_u64(&mut r)?));
                    }
                    Right::Devices(devs)
                }
                _ => Right::TimeWindow {
                    not_before: read_u64(&mut r)?,
                    not_after: read_u64(&mut r)?,
                },
            });
        }
        let mut content_key = [0u8; 16];
        for b in &mut content_key {
            *b = r.read_bits(8)? as u8;
        }
        Ok(Self {
            title,
            rights,
            content_key,
        })
    }
}

/// Errors parsing a sealed license.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LicenseParseError {
    /// Data too short.
    Truncated,
    /// MAC verification failed (tampering or wrong authority).
    BadMac,
}

impl core::fmt::Display for LicenseParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            LicenseParseError::Truncated => "license data truncated",
            LicenseParseError::BadMac => "license MAC verification failed",
        })
    }
}

impl std::error::Error for LicenseParseError {}

impl From<OutOfBitsError> for LicenseParseError {
    fn from(_: OutOfBitsError) -> Self {
        LicenseParseError::Truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = [9u8; 16];
    const SIGNING: &[u8] = b"authority-secret";

    fn full_license() -> License {
        License {
            title: TitleId(42),
            rights: vec![
                Right::PlayCount(3),
                Right::Devices(vec![DeviceId(1), DeviceId(2)]),
                Right::TimeWindow {
                    not_before: 100,
                    not_after: 200,
                },
            ],
            content_key: KEY,
        }
    }

    #[test]
    fn all_rights_satisfied_authorizes() {
        let l = full_license();
        assert_eq!(l.authorize(DeviceId(1), 150, 0), Ok(()));
    }

    #[test]
    fn each_right_form_is_enforced() {
        let l = full_license();
        assert_eq!(
            l.authorize(DeviceId(1), 150, 3),
            Err(Refusal::CountExhausted)
        );
        assert_eq!(l.authorize(DeviceId(9), 150, 0), Err(Refusal::WrongDevice));
        assert_eq!(l.authorize(DeviceId(1), 99, 0), Err(Refusal::OutsideWindow));
        assert_eq!(
            l.authorize(DeviceId(2), 201, 0),
            Err(Refusal::OutsideWindow)
        );
    }

    #[test]
    fn no_play_right_refuses() {
        let l = License {
            title: TitleId(1),
            rights: vec![Right::Devices(vec![DeviceId(1)])],
            content_key: KEY,
        };
        assert_eq!(l.authorize(DeviceId(1), 0, 0), Err(Refusal::NoPlayRight));
    }

    #[test]
    fn unconditional_play_right() {
        let l = License {
            title: TitleId(1),
            rights: vec![Right::Play],
            content_key: KEY,
        };
        assert_eq!(l.authorize(DeviceId(77), u64::MAX, u32::MAX), Ok(()));
    }

    #[test]
    fn seal_unseal_round_trip() {
        let l = full_license();
        let sealed = l.seal(SIGNING);
        let back = License::unseal(&sealed, SIGNING).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn tampering_is_detected() {
        let l = full_license();
        let mut sealed = l.seal(SIGNING);
        // Flip a bit inside the body (e.g., the play count).
        sealed[12] ^= 0x01;
        assert_eq!(
            License::unseal(&sealed, SIGNING).unwrap_err(),
            LicenseParseError::BadMac
        );
    }

    #[test]
    fn wrong_authority_rejected() {
        let sealed = full_license().seal(SIGNING);
        assert_eq!(
            License::unseal(&sealed, b"impostor").unwrap_err(),
            LicenseParseError::BadMac
        );
    }

    #[test]
    fn truncated_rejected() {
        let sealed = full_license().seal(SIGNING);
        assert_eq!(
            License::unseal(&sealed[..10], SIGNING).unwrap_err(),
            LicenseParseError::Truncated
        );
        assert_eq!(
            License::unseal(&[], SIGNING).unwrap_err(),
            LicenseParseError::Truncated
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(TitleId(5).to_string(), "title:5");
        assert_eq!(DeviceId(6).to_string(), "device:6");
        assert!(!Refusal::WrongDevice.to_string().is_empty());
    }
}
