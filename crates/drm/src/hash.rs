//! A from-scratch 256-bit Merkle–Damgård hash and a keyed MAC.
//!
//! License integrity (§6: authorizations must not be "easily subverted")
//! needs a fingerprint function. This is a simple ARX compression function
//! in a Merkle–Damgård chain with length padding, plus an HMAC-style
//! keyed construction. It is *deterministic and collision-resistant
//! enough for the workspace's experiments*, not a vetted cryptographic
//! hash — the DRM architecture, not the primitive, is the object of study
//! (DESIGN.md §5).

/// A 256-bit digest.
pub type Digest = [u8; 32];

const IV: [u64; 4] = [
    0x6A09_E667_F3BC_C908,
    0xBB67_AE85_84CA_A73B,
    0x3C6E_F372_FE94_F82B,
    0xA54F_F53A_5F1D_36F1,
];

fn mix(state: &mut [u64; 4], block: &[u64; 8]) {
    let mut a = state[0];
    let mut b = state[1];
    let mut c = state[2];
    let mut d = state[3];
    for (i, &w) in block.iter().enumerate() {
        a = a.wrapping_add(w).wrapping_add(b ^ (c.rotate_left(17)));
        a = a.rotate_left(23) ^ d;
        b = b.wrapping_add(a).rotate_left(29);
        c = (c ^ a).wrapping_add(w.rotate_left((i as u32 * 7) % 63 + 1));
        d = d.rotate_left(31).wrapping_add(b ^ w);
        // One extra diffusion stir.
        let t = a;
        a = b;
        b = c;
        c = d;
        d = t;
    }
    state[0] ^= a.wrapping_add(IV[0]);
    state[1] = state[1].wrapping_add(b ^ IV[1]);
    state[2] ^= c.wrapping_add(IV[2]);
    state[3] = state[3].wrapping_add(d ^ IV[3]);
}

/// Hashes a byte string to a 256-bit digest.
#[must_use]
pub fn hash(data: &[u8]) -> Digest {
    let mut state = IV;
    // Process 64-byte blocks; final block padded with 0x80, zeros, and the
    // 64-bit message length.
    let mut padded = data.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&(data.len() as u64).to_be_bytes());
    for block_bytes in padded.chunks_exact(64) {
        let mut block = [0u64; 8];
        for (i, w) in block_bytes.chunks_exact(8).enumerate() {
            block[i] = u64::from_be_bytes(w.try_into().expect("8 bytes"));
        }
        mix(&mut state, &block);
        // Second pass over the same block for extra diffusion.
        mix(&mut state, &block);
    }
    let mut out = [0u8; 32];
    for (i, s) in state.iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&s.to_be_bytes());
    }
    out
}

/// HMAC-style keyed MAC: `H(key_opad || H(key_ipad || message))`.
#[must_use]
pub fn mac(key: &[u8], message: &[u8]) -> Digest {
    let mut k = [0u8; 64];
    let kh;
    let key_bytes = if key.len() > 64 {
        kh = hash(key);
        &kh[..]
    } else {
        key
    };
    k[..key_bytes.len()].copy_from_slice(key_bytes);
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5C).collect();
    let mut inner = ipad;
    inner.extend_from_slice(message);
    let inner_digest = hash(&inner);
    let mut outer = opad;
    outer.extend_from_slice(&inner_digest);
    hash(&outer)
}

/// Constant-time-ish digest comparison (full scan regardless of
/// mismatch position).
#[must_use]
pub fn digest_eq(a: &Digest, b: &Digest) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(hash(b"hello"), hash(b"hello"));
        assert_eq!(mac(b"k", b"m"), mac(b"k", b"m"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let mut seen = HashSet::new();
        let mut rng = Xoroshiro128::new(82);
        for i in 0u32..2000 {
            // Unique prefix guarantees distinct inputs; random tail varies
            // lengths and content.
            let len = rng.below(100) as usize;
            let mut data = i.to_be_bytes().to_vec();
            data.extend((0..len).map(|_| rng.next_u32() as u8));
            seen.insert(hash(&data));
        }
        // With any reasonable mixing, 2000 distinct inputs do not collide.
        assert_eq!(seen.len(), 2000, "collisions: {}", 2000 - seen.len());
    }

    #[test]
    fn single_bit_flip_avalanches() {
        let a = hash(b"a protected title's license body");
        let mut flipped = b"a protected title's license body".to_vec();
        flipped[3] ^= 1;
        let b = hash(&flipped);
        let differing: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(differing > 80, "only {differing}/256 bits changed");
    }

    #[test]
    fn length_extension_padding_distinguishes() {
        // Message vs message + 0x80 (which mimics padding) must differ.
        assert_ne!(hash(b"abc"), hash(b"abc\x80"));
        assert_ne!(hash(b""), hash(b"\x00"));
    }

    #[test]
    fn mac_depends_on_key_and_message() {
        let m = mac(b"secret", b"message");
        assert_ne!(m, mac(b"secret2", b"message"));
        assert_ne!(m, mac(b"secret", b"message2"));
    }

    #[test]
    fn long_keys_are_hashed_down() {
        let long_key = vec![7u8; 200];
        let m = mac(&long_key, b"x");
        assert_ne!(m, mac(&[7u8; 199], b"x"));
    }

    #[test]
    fn digest_eq_detects_any_difference() {
        let a = hash(b"x");
        let mut b = a;
        assert!(digest_eq(&a, &b));
        b[31] ^= 0x01;
        assert!(!digest_eq(&a, &b));
    }
}
