//! XTEA block cipher with a counter (CTR) stream mode — the encryption
//! tool of paper §6.
//!
//! *"Digital rights management uses encryption as a tool but it affects
//! the system architecture from user interface to file management."* The
//! DRM experiments need a real symmetric cipher in the playback path to
//! measure its overhead and to make tampering detectable; XTEA (Needham &
//! Wheeler, 1997) is implemented from scratch here. The point of the DRM
//! crate is the *rights architecture*, not cryptographic novelty
//! (DESIGN.md §5); do not reuse this module as a general-purpose security
//! library.

/// A 128-bit key.
pub type Key = [u8; 16];

/// XTEA rounds (the recommended 32 cycles = 64 Feistel rounds).
const ROUNDS: u32 = 32;
const DELTA: u32 = 0x9E37_79B9;

/// The XTEA block cipher.
#[derive(Debug, Clone, Copy)]
pub struct Xtea {
    k: [u32; 4],
}

impl Xtea {
    /// Creates a cipher from a 128-bit key.
    #[must_use]
    pub fn new(key: &Key) -> Self {
        let mut k = [0u32; 4];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self { k }
    }

    /// Encrypts one 64-bit block.
    #[must_use]
    pub fn encrypt_block(&self, block: u64) -> u64 {
        let mut v0 = (block >> 32) as u32;
        let mut v1 = block as u32;
        let mut sum = 0u32;
        for _ in 0..ROUNDS {
            v0 = v0.wrapping_add(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.k[(sum & 3) as usize])),
            );
            sum = sum.wrapping_add(DELTA);
            v1 = v1.wrapping_add(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.k[((sum >> 11) & 3) as usize])),
            );
        }
        ((v0 as u64) << 32) | v1 as u64
    }

    /// Decrypts one 64-bit block.
    #[must_use]
    pub fn decrypt_block(&self, block: u64) -> u64 {
        let mut v0 = (block >> 32) as u32;
        let mut v1 = block as u32;
        let mut sum = DELTA.wrapping_mul(ROUNDS);
        for _ in 0..ROUNDS {
            v1 = v1.wrapping_sub(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(self.k[((sum >> 11) & 3) as usize])),
            );
            sum = sum.wrapping_sub(DELTA);
            v0 = v0.wrapping_sub(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(self.k[(sum & 3) as usize])),
            );
        }
        ((v0 as u64) << 32) | v1 as u64
    }
}

/// XTEA in counter mode: a symmetric keystream cipher (encrypt ==
/// decrypt). The nonce separates streams under the same key.
#[derive(Debug, Clone, Copy)]
pub struct XteaCtr {
    cipher: Xtea,
    nonce: u32,
}

impl XteaCtr {
    /// Creates a CTR-mode cipher.
    #[must_use]
    pub fn new(key: &Key, nonce: u32) -> Self {
        Self {
            cipher: Xtea::new(key),
            nonce,
        }
    }

    /// Encrypts or decrypts `data` in place (CTR is an involution).
    pub fn apply(&self, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(8).enumerate() {
            let counter = ((self.nonce as u64) << 32) | i as u64;
            let ks = self.cipher.encrypt_block(counter).to_be_bytes();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Convenience: returns an encrypted/decrypted copy.
    #[must_use]
    pub fn applied(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal::rng::Xoroshiro128;

    const KEY: Key = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ];

    #[test]
    fn block_round_trip() {
        let c = Xtea::new(&KEY);
        let mut rng = Xoroshiro128::new(81);
        for _ in 0..100 {
            let p = rng.next_u64();
            assert_eq!(c.decrypt_block(c.encrypt_block(p)), p);
        }
    }

    #[test]
    fn encryption_actually_changes_data() {
        let c = Xtea::new(&KEY);
        assert_ne!(c.encrypt_block(0), 0);
        assert_ne!(c.encrypt_block(1), c.encrypt_block(2));
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let mut k2 = KEY;
        k2[0] ^= 1;
        let a = Xtea::new(&KEY).encrypt_block(0x1234_5678_9ABC_DEF0);
        let b = Xtea::new(&k2).encrypt_block(0x1234_5678_9ABC_DEF0);
        assert_ne!(a, b);
    }

    #[test]
    fn ctr_is_an_involution() {
        let ctr = XteaCtr::new(&KEY, 7);
        let msg = b"the content of a protected title".to_vec();
        let enc = ctr.applied(&msg);
        assert_ne!(enc, msg);
        assert_eq!(ctr.applied(&enc), msg);
    }

    #[test]
    fn ctr_handles_partial_blocks() {
        let ctr = XteaCtr::new(&KEY, 1);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(ctr.applied(&ctr.applied(&msg)), msg, "len {len}");
        }
    }

    #[test]
    fn nonces_separate_streams() {
        let a = XteaCtr::new(&KEY, 1).applied(b"same plaintext bytes");
        let b = XteaCtr::new(&KEY, 2).applied(b"same plaintext bytes");
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_looks_balanced() {
        // Not a randomness proof — just a sanity check that the keystream
        // is not degenerate.
        let ctr = XteaCtr::new(&KEY, 3);
        let zeros = vec![0u8; 4096];
        let ks = ctr.applied(&zeros);
        let ones: u32 = ks.iter().map(|b| b.count_ones()).sum();
        let frac = ones as f64 / (4096.0 * 8.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }
}
