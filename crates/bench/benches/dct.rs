//! Criterion bench for E4/E19: 8x8 DCT implementations.
//!
//! Three tiers: the O(N⁴) direct evaluation (oracle/baseline), the seed's
//! generic matrix row–column composition, and the fixed-8 butterfly the
//! codec now runs on — so the speedup of each specialisation step stays
//! visible in `cargo bench` output.

use criterion::{criterion_group, criterion_main, Criterion};
use mmbench::perf::matrix_dct2d_forward;
use signal::dct1d::Dct1d;
use signal::dct8::fdct8;
use signal::rng::Xoroshiro128;
use video::dct::{forward_direct, Dct2d};

fn bench_dct(c: &mut Criterion) {
    let mut rng = Xoroshiro128::new(4);
    let block: Vec<f64> = (0..64).map(|_| rng.range_f64(-128.0, 127.0)).collect();
    let dct = Dct2d::new();
    let dct1d = Dct1d::new(8);
    c.bench_function("dct8x8_butterfly", |b| {
        b.iter(|| dct.forward(std::hint::black_box(&block)));
    });
    c.bench_function("dct8x8_matrix_rowcol", |b| {
        b.iter(|| matrix_dct2d_forward(&dct1d, std::hint::black_box(&block)));
    });
    c.bench_function("dct8x8_direct", |b| {
        b.iter(|| forward_direct(std::hint::black_box(&block)));
    });
    let coeffs = dct.forward(&block);
    c.bench_function("idct8x8_butterfly", |b| {
        b.iter(|| dct.inverse(std::hint::black_box(&coeffs)));
    });
    let mut line = [0.0f64; 8];
    line.copy_from_slice(&block[..8]);
    c.bench_function("fdct8_1d", |b| {
        b.iter(|| fdct8(std::hint::black_box(&line)));
    });
}

criterion_group!(benches, bench_dct);
criterion_main!(benches);
