//! Criterion bench for E4: separable vs direct 8x8 DCT.

use criterion::{criterion_group, criterion_main, Criterion};
use signal::rng::Xoroshiro128;
use video::dct::{forward_direct, Dct2d};

fn bench_dct(c: &mut Criterion) {
    let mut rng = Xoroshiro128::new(4);
    let block: Vec<f64> = (0..64).map(|_| rng.range_f64(-128.0, 127.0)).collect();
    let dct = Dct2d::new();
    c.bench_function("dct8x8_rowcol", |b| {
        b.iter(|| dct.forward(std::hint::black_box(&block)));
    });
    c.bench_function("dct8x8_direct", |b| {
        b.iter(|| forward_direct(std::hint::black_box(&block)));
    });
    let coeffs = dct.forward(&block);
    c.bench_function("idct8x8_rowcol", |b| {
        b.iter(|| dct.inverse(std::hint::black_box(&coeffs)));
    });
}

criterion_group!(benches, bench_dct);
criterion_main!(benches);
