//! Criterion bench for E1: the Figure 1 video encoder end to end, per
//! configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use mmbench::test_video;
use video::encoder::{Encoder, EncoderConfig};

fn bench_encoder(c: &mut Criterion) {
    let frames = test_video(176, 144, 6);
    let mut group = c.benchmark_group("video_encoder_qcif6");
    group.sample_size(10);
    for (name, config) in [
        (
            "symmetric_conference",
            EncoderConfig::symmetric_conference(),
        ),
        (
            "asymmetric_broadcast",
            EncoderConfig::asymmetric_broadcast(),
        ),
        (
            "all_intra",
            EncoderConfig {
                gop: 1,
                ..Default::default()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let enc = Encoder::new(config).expect("valid");
            b.iter(|| enc.encode(std::hint::black_box(&frames)).expect("encode"));
        });
    }
    group.finish();
}

fn bench_decoder(c: &mut Criterion) {
    let frames = test_video(176, 144, 6);
    let encoded = Encoder::new(EncoderConfig::default())
        .expect("valid")
        .encode(&frames)
        .expect("encode");
    c.bench_function("video_decoder_qcif6", |b| {
        b.iter(|| video::decoder::decode(std::hint::black_box(&encoded.bytes)).expect("decode"));
    });
}

criterion_group!(benches, bench_encoder, bench_decoder);
criterion_main!(benches);
