//! Criterion bench for shared kernels: FFT, filterbank, cipher, hash,
//! TCP-lite transfer, servo loop.

use audio::filterbank::Filterbank;
use criterion::{criterion_group, criterion_main, Criterion};
use drm::cipher::XteaCtr;
use netstack::link::LinkConfig;
use netstack::tcplite::{transfer, TcpConfig};
use servo::control::Pid;
use servo::loopctl::{nominal_gains, run_loop};
use servo::plant::Mechanism;
use signal::fft::Fft;
use signal::rng::Xoroshiro128;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = Xoroshiro128::new(1);
    let x: Vec<f64> = (0..1024).map(|_| rng.normal()).collect();
    let fft = Fft::new(1024);
    c.bench_function("fft_1024", |b| {
        b.iter(|| fft.forward_real(std::hint::black_box(&x)));
    });

    let fb = Filterbank::new();
    let frame: Vec<f64> = (0..1152).map(|_| rng.normal()).collect();
    c.bench_function("filterbank_analysis_1152", |b| {
        b.iter(|| fb.analysis(std::hint::black_box(&frame)));
    });

    let ctr = XteaCtr::new(&[7u8; 16], 1);
    let data = vec![0u8; 65_536];
    c.bench_function("xtea_ctr_64k", |b| {
        b.iter(|| ctr.applied(std::hint::black_box(&data)));
    });

    c.bench_function("hash_64k", |b| {
        b.iter(|| drm::hash::hash(std::hint::black_box(&data)));
    });

    let payload = vec![0u8; 20_000];
    c.bench_function("tcplite_20k_loss10", |b| {
        b.iter(|| {
            transfer(
                std::hint::black_box(&payload),
                TcpConfig::default(),
                LinkConfig::default().with_loss(0.1),
                9,
            )
            .expect("transfer")
        });
    });

    c.bench_function("servo_loop_50k_samples", |b| {
        b.iter(|| {
            let mut pid = Pid::new(nominal_gains(), 50_000.0);
            run_loop(Mechanism::nominal(), &mut pid, 50_000.0, 50_000, 1)
        });
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
