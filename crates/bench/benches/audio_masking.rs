//! Criterion bench for E7: the psychoacoustic model and bit allocation.

use audio::alloc;
use audio::psycho::PsychoModel;
use criterion::{criterion_group, criterion_main, Criterion};
use mmbench::test_music;

fn bench_psycho(c: &mut Criterion) {
    let pcm = test_music(1);
    let model = PsychoModel::new();
    c.bench_function("psycho_model_frame", |b| {
        b.iter(|| model.analyse(std::hint::black_box(&pcm[..1152])));
    });
    let analysis = model.analyse(&pcm[..1152]);
    let smr = analysis.smr_db();
    c.bench_function("bit_allocation_frame", |b| {
        b.iter(|| alloc::psychoacoustic(std::hint::black_box(&smr), 37, 4608, 0.0));
    });
}

criterion_group!(benches, bench_psycho);
criterion_main!(benches);
