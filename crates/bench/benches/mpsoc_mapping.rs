//! Criterion bench for E16: simulator throughput and mapping strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use mmbench::{cif_spec, SEED};
use mmsoc::deploy::{deploy, Strategy};
use mmsoc::video_encoder_pipeline;
use mpsoc::platform::Platform;

fn bench_mapping(c: &mut Criterion) {
    let pipeline = video_encoder_pipeline(&cif_spec(), SEED);
    let platform = Platform::symmetric_bus("quad", 4, 300e6);
    let mut group = c.benchmark_group("deploy_strategies");
    group.sample_size(10);
    for s in [
        Strategy::RoundRobin,
        Strategy::LoadBalanced,
        Strategy::PipelineAffine,
    ] {
        group.bench_function(s.to_string(), |b| {
            b.iter(|| {
                deploy(std::hint::black_box(&pipeline.graph), &platform, s, 16).expect("deploy")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
