//! Criterion bench for E5: motion-estimation search strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use video::me::{MotionEstimator, SearchKind};
use video::synth::SequenceGen;

fn bench_me(c: &mut Criterion) {
    let mut gen = SequenceGen::new(5);
    let reference = gen.textured_frame(176, 144);
    let current = gen.shift_frame(&reference, 4, -2);
    let mut group = c.benchmark_group("motion_estimation_qcif");
    group.sample_size(10);
    for kind in [SearchKind::Full, SearchKind::ThreeStep, SearchKind::Diamond] {
        group.bench_function(kind.to_string(), |b| {
            let me = MotionEstimator::new(kind, 15);
            b.iter(|| {
                me.estimate(
                    std::hint::black_box(&current),
                    std::hint::black_box(&reference),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_me);
criterion_main!(benches);
