//! Criterion bench for E5/E19: motion-estimation search strategies and
//! the SAD candidate-evaluation kernels underneath them.
//!
//! `sad_16x16/*` compares the seed's alloc-copy candidate evaluation
//! (`luma_block_at -> Vec` + contiguous `sad_u8`) against the
//! zero-allocation strided kernel and its bounded early-exit variant, so
//! the per-candidate win of the hot-path rewrite stays visible in
//! `cargo bench` output.

use criterion::{criterion_group, criterion_main, Criterion};
use signal::metrics::{sad_u8, sad_u8_bounded, sad_u8_strided};
use video::me::{MotionEstimator, SearchKind, MB};
use video::synth::SequenceGen;

fn bench_me(c: &mut Criterion) {
    let mut gen = SequenceGen::new(5);
    let reference = gen.textured_frame(176, 144);
    let current = gen.shift_frame(&reference, 4, -2);
    let mut group = c.benchmark_group("motion_estimation_qcif");
    group.sample_size(10);
    for kind in [SearchKind::Full, SearchKind::ThreeStep, SearchKind::Diamond] {
        group.bench_function(kind.to_string(), |b| {
            let me = MotionEstimator::new(kind, 15);
            b.iter(|| {
                me.estimate(
                    std::hint::black_box(&current),
                    std::hint::black_box(&reference),
                )
            });
        });
    }
    group.finish();
}

fn bench_sad_kernels(c: &mut Criterion) {
    let mut gen = SequenceGen::new(5);
    let reference = gen.textured_frame(176, 144);
    let mut current = gen.shift_frame(&reference, 4, -2);
    gen.add_noise(&mut current, 3.0);
    // One interior candidate comparison, the way each implementation
    // evaluates it inside the search loop.
    let mut target = [0u8; MB * MB];
    current.luma_block_into(3, 3, MB, &mut target);
    let (cx, cy) = ((3 * MB) as i32 + 5, (3 * MB) as i32 - 4);
    let stride = reference.width();
    let (cand, cand_stride) = reference
        .luma_view(cx, cy, MB)
        .interior()
        .expect("candidate is interior");
    // A realistic mid-search cutoff: half the candidate's true SAD, so
    // the bounded kernel actually abandons.
    let cutoff = sad_u8_strided(&target, MB, cand, cand_stride, MB, MB) / 2;

    let mut group = c.benchmark_group("sad_16x16");
    group.sample_size(10);
    group.bench_function("alloc_copy_seed_path", |b| {
        b.iter(|| {
            let cand = reference.luma_block_at(std::hint::black_box(cx), cy, MB);
            sad_u8(std::hint::black_box(&target), &cand)
        });
    });
    group.bench_function("strided", |b| {
        b.iter(|| {
            sad_u8_strided(
                std::hint::black_box(&target),
                MB,
                std::hint::black_box(cand),
                stride,
                MB,
                MB,
            )
        });
    });
    group.bench_function("bounded_early_exit", |b| {
        b.iter(|| {
            sad_u8_bounded(
                std::hint::black_box(&target),
                MB,
                std::hint::black_box(cand),
                stride,
                MB,
                MB,
                std::hint::black_box(cutoff),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_me, bench_sad_kernels);
criterion_main!(benches);
