//! Criterion bench for E2: the Figure 2 audio encoder and the RPE-LTP
//! speech codec.

use audio::encoder::{AudioConfig, AudioEncoder};
use audio::rpeltp::RpeLtp;
use criterion::{criterion_group, criterion_main, Criterion};
use mmbench::{test_music, test_speech};

fn bench_subband(c: &mut Criterion) {
    let pcm = test_music(4);
    let enc = AudioEncoder::new(AudioConfig::default());
    c.bench_function("audio_encoder_4frames", |b| {
        b.iter(|| enc.encode(std::hint::black_box(&pcm)).expect("encode"));
    });
    let stream = enc.encode(&pcm).expect("encode");
    c.bench_function("audio_decoder_4frames", |b| {
        b.iter(|| audio::encoder::decode(std::hint::black_box(&stream.bytes)).expect("decode"));
    });
}

fn bench_rpeltp(c: &mut Criterion) {
    let speech = test_speech(10);
    let codec = RpeLtp::new();
    c.bench_function("rpeltp_encode_10frames", |b| {
        b.iter(|| codec.encode(std::hint::black_box(&speech)).expect("encode"));
    });
}

criterion_group!(benches, bench_subband, bench_rpeltp);
criterion_main!(benches);
