//! # `mmbench` — shared helpers for the experiment harness
//!
//! Every table and figure claim in DESIGN.md §3 has a runnable
//! regenerator in `src/bin/exp_e*.rs`; the Criterion micro-benchmarks for
//! the hot kernels live in `benches/`. This library holds the workload
//! constructors those binaries share, so every experiment uses the same
//! seeds and sizes.

use video::encoder::EncoderConfig;
use video::frame::Frame;
use video::synth::SequenceGen;

pub mod perf;

/// The canonical seed for every experiment workload.
pub const SEED: u64 = 2005; // the paper's year

/// The calibration video used by the codec experiments: panning texture.
#[must_use]
pub fn test_video(width: usize, height: usize, frames: usize) -> Vec<Frame> {
    SequenceGen::new(SEED).panning_sequence(width, height, frames, 2, 1)
}

/// The default CIF spec used in encoder experiments.
#[must_use]
pub fn cif_spec() -> mmsoc::VideoPipelineSpec {
    mmsoc::VideoPipelineSpec {
        width: 352,
        height: 288,
        config: EncoderConfig::default(),
    }
}

/// Test music: 44.1 kHz harmonic material, `frames` MPEG frames long.
#[must_use]
pub fn test_music(frames: usize) -> Vec<f64> {
    signal::gen::SignalGen::new(SEED).music(440.0, 44_100.0, frames * audio::encoder::FRAME_SAMPLES)
}

/// Test speech: 8 kHz sentence of `frames` RPE-LTP frames.
#[must_use]
pub fn test_speech(frames: usize) -> Vec<f64> {
    signal::gen::SignalGen::new(SEED)
        .speech_sentence(8000.0, frames * audio::rpeltp::FRAME)
        .0
}

/// Prints the experiment banner every binary starts with.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("paper claim: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_requested_sizes() {
        assert_eq!(test_video(64, 48, 5).len(), 5);
        assert_eq!(test_music(2).len(), 2 * 1152);
        assert_eq!(test_speech(3).len(), 3 * 160);
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(test_video(32, 32, 2), test_video(32, 32, 2));
        assert_eq!(test_music(1), test_music(1));
    }
}
