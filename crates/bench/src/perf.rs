//! Machine-readable perf reporting for the experiment harness.
//!
//! Every perf-focused PR is judged against the repo's bench trajectory
//! (`BENCH_*.json` at the workspace root). This module is the writer: a
//! tiny dependency-free JSON emitter ([`PerfReport`]) plus a wall-clock
//! measurement loop ([`median_ns_per_iter`]) shared by the `exp_e19_perf`
//! binary and any future perf regenerators. The format is deliberately
//! flat — one named entry per kernel, each a map of metric name to
//! number — so CI can smoke-parse it and humans can diff it.

use signal::dct1d::Dct1d;
use std::time::{Duration, Instant};

/// The seed `Dct2d`: generic matrix 1-D transforms composed row–column.
/// Kept here (not in `video`, which now runs the fixed-8 butterfly) as
/// the single copy of the baseline that `exp_e19_perf` and the `dct`
/// bench both measure against.
///
/// # Panics
///
/// Panics if `block.len() != 64` or `dct` was not planned for size 8.
#[must_use]
pub fn matrix_dct2d_forward(dct: &Dct1d, block: &[f64]) -> [f64; 64] {
    assert_eq!(block.len(), 64, "expected an 8x8 block");
    assert_eq!(dct.len(), 8, "expected an 8-point 1-D DCT");
    let mut tmp = [0.0; 64];
    let mut line = [0.0; 8];
    for r in 0..8 {
        dct.forward_into(&block[r * 8..(r + 1) * 8], &mut line);
        tmp[r * 8..(r + 1) * 8].copy_from_slice(&line);
    }
    let mut out = [0.0; 64];
    let mut col = [0.0; 8];
    for c in 0..8 {
        for r in 0..8 {
            col[r] = tmp[r * 8 + c];
        }
        dct.forward_into(&col, &mut line);
        for r in 0..8 {
            out[r * 8 + c] = line[r];
        }
    }
    out
}

/// One measured kernel: a name plus ordered `metric -> value` pairs.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Kernel/scenario name, e.g. `"me_full_qcif"`.
    pub name: String,
    /// Ordered metrics, e.g. `("wall_ns_per_block", 812.4)`.
    pub metrics: Vec<(String, f64)>,
}

impl PerfEntry {
    /// Creates an empty entry.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Appends a metric (builder style).
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — NaN/inf have no JSON encoding and
    /// always indicate a harness bug.
    #[must_use]
    pub fn metric(mut self, name: &str, value: f64) -> Self {
        assert!(value.is_finite(), "metric {name} is not finite: {value}");
        self.metrics.push((name.to_string(), value));
        self
    }
}

/// A set of [`PerfEntry`]s serialisable as a JSON document.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Report name, e.g. `"video_hot_path"`.
    pub name: String,
    /// The binary that generated it, e.g. `"exp_e19_perf"`.
    pub generated_by: String,
    /// Measured kernels, in insertion order.
    pub entries: Vec<PerfEntry>,
}

impl PerfReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(name: &str, generated_by: &str) -> Self {
        Self {
            name: name.to_string(),
            generated_by: generated_by.to_string(),
            entries: Vec::new(),
        }
    }

    /// Adds an entry.
    pub fn push(&mut self, entry: PerfEntry) {
        self.entries.push(entry);
    }

    /// Serialises the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"report\": {},\n", json_string(&self.name)));
        out.push_str(&format!(
            "  \"generated_by\": {},\n",
            json_string(&self.generated_by)
        ));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&e.name)));
            out.push_str("      \"metrics\": {");
            for (j, (k, v)) in e.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {}: {}",
                    json_string(k),
                    json_number(*v)
                ));
            }
            out.push_str("\n      }\n");
            out.push_str(if i + 1 < self.entries.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    assert!(v.is_finite(), "JSON cannot encode {v}");
    // Round-trippable but diff-friendly: 3 decimal places is ample for ns.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Median wall-clock nanoseconds of one invocation of `f`, using the
/// same sizing strategy as the vendored criterion harness: double the
/// iteration count until a sample lasts ~10 ms, then take the median of
/// 7 samples.
pub fn median_ns_per_iter<F: FnMut()>(mut f: F) -> f64 {
    const SAMPLE_TARGET: Duration = Duration::from_millis(10);
    const WARMUP_TARGET: Duration = Duration::from_millis(40);
    const SAMPLES: usize = 7;
    let mut iters: u64 = 1;
    let warmup = Instant::now();
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed() >= SAMPLE_TARGET || warmup.elapsed() >= WARMUP_TARGET {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[SAMPLES / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_by_inspection() {
        let mut r = PerfReport::new("video_hot_path", "exp_e19_perf");
        r.push(
            PerfEntry::new("me_full")
                .metric("wall_ns_per_block", 812.375)
                .metric("sad_evaluations", 225.0),
        );
        r.push(PerfEntry::new("dct8x8").metric("wall_ns_per_block", 96.0));
        let j = r.to_json();
        // Structural sanity: balanced braces/brackets, both entries, and
        // metric keys present.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"me_full\"") && j.contains("\"dct8x8\""));
        assert!(j.contains("\"wall_ns_per_block\": 812.375"));
        assert!(j.contains("\"sad_evaluations\": 225"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let r = PerfReport::new("a\"b\\c\nd", "t");
        let j = r.to_json();
        assert!(j.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn non_finite_metric_panics() {
        let _ = PerfEntry::new("x").metric("bad", f64::NAN);
    }

    #[test]
    fn timer_returns_positive_duration() {
        let mut acc = 0u64;
        let ns = median_ns_per_iter(|| {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(ns > 0.0);
    }
}
