//! E4 — §3: "a 2-D DCT can be computed from two 1-D DCTs".
//!
//! Compares the row–column separable 8×8 DCT against the direct O(N⁴)
//! evaluation: identical coefficients, 4× fewer multiply–accumulates at
//! N=8, and the corresponding wall-clock gap.

use std::time::Instant;

use mmbench::banner;
use mmsoc::report::{count, f, Table};
use signal::dct1d::{direct_2d_macs, rowcol_2d_macs};
use signal::rng::Xoroshiro128;
use video::dct::{forward_direct, Dct2d};

fn main() {
    banner(
        "E4: 2-D DCT from two 1-D DCTs (§3)",
        "the separable row-column evaluation needs far fewer operations than a \
         direct 2-D transform while producing the same coefficients",
    );

    // Correctness: both evaluations agree.
    let mut rng = Xoroshiro128::new(4);
    let dct = Dct2d::new();
    let mut max_diff = 0.0f64;
    for _ in 0..100 {
        let block: Vec<f64> = (0..64).map(|_| rng.range_f64(-128.0, 127.0)).collect();
        let a = dct.forward(&block);
        let b = forward_direct(&block);
        for (x, y) in a.iter().zip(b.iter()) {
            max_diff = max_diff.max((x - y).abs());
        }
    }
    println!("coefficient agreement over 100 random blocks: max |diff| = {max_diff:.2e}\n");

    // Cost: analytic MACs and measured wall time per block.
    let blocks: Vec<Vec<f64>> = (0..2000)
        .map(|_| (0..64).map(|_| rng.range_f64(-128.0, 127.0)).collect())
        .collect();
    let t0 = Instant::now();
    let mut sink = 0.0;
    for b in &blocks {
        sink += dct.forward(b)[0];
    }
    let rowcol_ns = t0.elapsed().as_nanos() as f64 / blocks.len() as f64;
    let t1 = Instant::now();
    for b in &blocks {
        sink += forward_direct(b)[0];
    }
    let direct_ns = t1.elapsed().as_nanos() as f64 / blocks.len() as f64;
    std::hint::black_box(sink);

    let mut table = Table::new(vec!["method", "MACs/block (8x8)", "ns/block (measured)"]);
    table.row(vec![
        "direct 2-D".to_string(),
        count(direct_2d_macs(8)),
        f(direct_ns, 0),
    ]);
    table.row(vec![
        "row-column (two 1-D)".to_string(),
        count(rowcol_2d_macs(8)),
        f(rowcol_ns, 0),
    ]);
    println!("{table}");
    println!(
        "analytic advantage: {}x fewer MACs; measured speedup: {}x",
        direct_2d_macs(8) / rowcol_2d_macs(8),
        f(direct_ns / rowcol_ns, 1)
    );
}
