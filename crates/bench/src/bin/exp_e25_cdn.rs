//! E25 — the hierarchical CDN at scale: shields, admission, catalogs.
//!
//! Exercises the two-tier delivery hierarchy end to end and writes the
//! machine-readable `BENCH_cdn.json` trajectory:
//!
//! * **Origin offload at scale**: 4,000,000 burst sessions across 64
//!   cold edges and 4 cold shields, pulling a 512-title Zipf(1.0)
//!   catalog. Per-shield request coalescing plus the shield tier's
//!   fan-in must keep the true-origin crossing under 0.1% of
//!   viewer-served bytes (>99.9% offload), and strictly beat the
//!   edge-local figure — the shield tier has to *earn* its hop.
//! * **TinyLFU vs LRU**: 20,000 staggered sessions over the same Zipf
//!   catalog with each edge cache capped at 1/8 of the touched working
//!   set. The TinyLFU admission filter must match or beat plain LRU's
//!   viewer-facing hit rate — frequency protection is free or better.
//! * **Knee vs edges-per-shield**: the capacity knee through the full
//!   hierarchy at 16/32/64 warm edges over a fixed 4-shield tier (4,
//!   8, and 16 children per shield). The knee must stay exactly
//!   pro-rata with edge count — the shield hop costs no capacity.
//! * **The composed worst case through shields** (ROADMAP item 3): the
//!   E24 flash-crowd + edge-crash + origin-flap scenario re-run
//!   through a 2-shield tier with a cold shield crash added. The bar:
//!   zero fault-attributed rebuffering and the exact 2,000-tick MTTR
//!   on both restores, asserted in-binary before anything is written.
//!
//! Everything is seed-deterministic; there is no wall clock anywhere
//! in the measured quantities.

use mmbench::banner;
use mmbench::perf::{PerfEntry, PerfReport};
use mmstream::catalog::Catalog;
use mmstream::edge::EdgeTierConfig;
use mmstream::fault::{FaultPlan, RestartMode};
use mmstream::ladder::{encode_ladder, LadderConfig};
use mmstream::serve::{
    cdn_capacity_knee_bisect, simulate_cdn_load, simulate_live_cdn_load_faulted, CdnConfig,
    ChurnConfig, LiveConfig, LoadConfig,
};
use mmstream::session::JoinMode;
use mmstream::shield::{AdmissionPolicy, TinyLfuConfig};
use video::synth::SequenceGen;

fn main() {
    banner(
        "E25: the hierarchical CDN — shields, TinyLFU, Zipf catalogs (BENCH_cdn.json)",
        "a 4-shield tier in front of 64 edges serves a 512-title Zipf \
         catalog to millions of burst sessions with >99.9% origin \
         offload, TinyLFU admission matches or beats LRU at 1/8 \
         working-set cache, the knee stays pro-rata as edges-per-shield \
         grows, and the composed fault scenario survives a shield crash",
    );

    let mut report = PerfReport::new("cdn", "exp_e25_cdn");

    // ---- The E21/E23 VOD title, synthesized into a 512-title Zipf
    // catalog (rank renames of the same ladder: identical sizes, so
    // capacity effects separate cleanly from popularity effects).
    let source = SequenceGen::new(12).panning_sequence(64, 48, 32, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let manifest = encode_ladder("bench", &source, &cfg)
        .expect("ladder encodes")
        .manifest;
    let catalog = Catalog::synthesize(&manifest, 512, 1.0);

    // ---- Origin offload at scale: everything cold, arrivals in one
    // burst so the coalescing fan-in is maximal.
    println!("origin offload (4M burst sessions, 64 edges, 4 shields, 512 titles):");
    let sessions = 4_000_000usize;
    let offload_cdn = CdnConfig {
        tier: EdgeTierConfig {
            edges: 64,
            cache_capacity_bytes: usize::MAX,
            edge_capacity_bytes_per_tick: (sessions / 64) as f64 * 100.0,
            origin_capacity_bytes_per_tick: 1_000_000.0,
            prewarm: false,
            ..Default::default()
        },
        shields: 4,
        shield_cache_capacity_bytes: usize::MAX,
        shield_capacity_bytes_per_tick: 10_000_000.0,
        admission: AdmissionPolicy::AdmitAll,
    };
    let load = LoadConfig {
        sessions,
        stagger_ticks: 0,
        ..Default::default()
    };
    let r = simulate_cdn_load(&catalog, &offload_cdn, &load);
    let edge_local = r.edge.origin_offload;
    println!(
        "  {} sessions: {:.4}% true-origin offload ({:.4}% edge-local), \
         {} origin fills, {} completed",
        r.edge.load.sessions,
        100.0 * r.origin_offload,
        100.0 * edge_local,
        r.tier.origin_hits,
        r.edge.load.completed,
    );
    assert_eq!(r.edge.load.completed, sessions, "every session must finish");
    assert_eq!(r.per_shield.len(), 4);
    assert!(
        r.origin_offload > 0.999,
        "the offload bar: >99.9% of viewer bytes never cross the origin, got {:.4}%",
        100.0 * r.origin_offload
    );
    assert!(
        r.origin_offload > edge_local,
        "the shield tier must beat the edge-local offload: {:.4}% vs {:.4}%",
        100.0 * r.origin_offload,
        100.0 * edge_local
    );
    report.push(
        PerfEntry::new("offload_at_scale")
            .metric("sessions", sessions as f64)
            .metric("edges", 64.0)
            .metric("shields", 4.0)
            .metric("titles", 512.0)
            .metric("origin_offload", r.origin_offload)
            .metric("edge_local_offload", edge_local)
            .metric("origin_fills", r.tier.origin_hits as f64)
            .metric("origin_bytes", r.tier.origin_bytes() as f64),
    );

    // ---- TinyLFU vs LRU at 1/8 of the *touched* working set (the
    // rung-0 catalog: what capped viewers actually pull).
    println!("\nTinyLFU vs LRU (20k staggered sessions, 4 edges, cache = touched-set/8):");
    let touched: usize = catalog
        .titles()
        .iter()
        .map(|m| m.rungs[0].segments.iter().map(|s| s.bytes).sum::<usize>())
        .sum();
    let small_tier = EdgeTierConfig {
        edges: 4,
        cache_capacity_bytes: touched / 8,
        edge_capacity_bytes_per_tick: 40_000.0,
        prewarm: false,
        ..Default::default()
    };
    let admission_load = LoadConfig {
        sessions: 20_000,
        stagger_ticks: 20_000,
        ..Default::default()
    };
    let mut hit_rates = [0.0f64; 2];
    for (i, admission) in [
        AdmissionPolicy::AdmitAll,
        AdmissionPolicy::TinyLfu(TinyLfuConfig::default()),
    ]
    .into_iter()
    .enumerate()
    {
        let cdn = CdnConfig {
            tier: small_tier,
            shields: 4,
            shield_cache_capacity_bytes: usize::MAX,
            shield_capacity_bytes_per_tick: 100_000.0,
            admission,
        };
        let r = simulate_cdn_load(&catalog, &cdn, &admission_load);
        hit_rates[i] = r.tier.hit_rate();
        let name = if i == 0 { "lru" } else { "tinylfu" };
        println!(
            "  {name:>8}: {:.2}% edge hit rate, {:.2}% origin offload",
            100.0 * hit_rates[i],
            100.0 * r.origin_offload
        );
        report.push(
            PerfEntry::new(&format!("admission_{name}"))
                .metric("cache_bytes", (touched / 8) as f64)
                .metric("edge_hit_rate", hit_rates[i])
                .metric("origin_offload", r.origin_offload),
        );
    }
    assert!(
        hit_rates[1] >= hit_rates[0],
        "TinyLFU must match or beat LRU at 1/8 working set: {:.4} vs {:.4}",
        hit_rates[1],
        hit_rates[0]
    );

    // ---- The knee vs edges-per-shield: warm everything, fixed
    // 4-shield tier, edge count sweeps the fan-in.
    println!("\ncapacity knee vs edges-per-shield (4 shields, warm tier):");
    for edges in [16usize, 32, 64] {
        let cdn = CdnConfig {
            tier: EdgeTierConfig {
                edges,
                cache_capacity_bytes: usize::MAX,
                prewarm: true,
                ..Default::default()
            },
            shields: 4,
            shield_cache_capacity_bytes: usize::MAX,
            shield_capacity_bytes_per_tick: 100_000.0,
            admission: AdmissionPolicy::AdmitAll,
        };
        let counts: Vec<usize> = (1..=12).map(|i| i * edges * 125).collect();
        let knee = cdn_capacity_knee_bisect(&catalog, &cdn, &counts, &LoadConfig::default(), 0.05)
            .expect("a warm tier sustains some level");
        println!(
            "  {edges} edges ({} per shield): knee {knee} sessions",
            edges / 4
        );
        assert_eq!(
            knee,
            1_000 * edges,
            "the shield hop must cost no capacity: pro-rata knee at {edges} edges"
        );
        report.push(
            PerfEntry::new(&format!("knee_edges_{edges}"))
                .metric("edges", edges as f64)
                .metric("edges_per_shield", (edges / 4) as f64)
                .metric("knee_sessions", knee as f64),
        );
    }

    // ---- The composed worst case through shields: the E24 scenario
    // (10x flash + edge 0 cold-crash + origin flap) with a cold shield
    // crash layered on, run through a 2-shield tier.
    println!("\ncomposed scenario (flash + edge crash + origin flap + SHIELD crash):");
    let live_source = SequenceGen::new(12).panning_sequence(64, 48, 64, 1, 1);
    let live_manifest = encode_ladder("bench", &live_source, &cfg)
        .expect("ladder encodes")
        .manifest;
    let live_catalog = Catalog::single(live_manifest);
    let live = LiveConfig {
        dvr_window_segments: 8,
        join: JoinMode::LiveEdge,
        ..Default::default()
    };
    let flash_cdn = CdnConfig {
        tier: EdgeTierConfig {
            edges: 4,
            cache_capacity_bytes: usize::MAX,
            prewarm: true,
            ..Default::default()
        },
        shields: 2,
        shield_cache_capacity_bytes: usize::MAX,
        shield_capacity_bytes_per_tick: 16_000.0,
        admission: AdmissionPolicy::AdmitAll,
    };
    let flash_load = LoadConfig {
        sessions: 200,
        stagger_ticks: 1_000,
        churn: ChurnConfig {
            flash_sessions: 2_000,
            flash_at_tick: 2_000,
            flash_ramp_ticks: 1_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let plan = FaultPlan::new(0xFA11)
        .crash_edge(0, 2_400, Some((4_400, RestartMode::Cold)))
        .flap_origin(2_400, 3_600)
        .crash_shield(0, 2_600, Some((4_600, RestartMode::Cold)));
    let r = simulate_live_cdn_load_faulted(&live_catalog, &flash_cdn, &live, &plan, &flash_load);
    let res = r.resilience;
    let sessions = r.edge.load.sessions;
    println!(
        "  {sessions} sessions: {} fault-rebuffered, {} re-homed, \
         MTTR {} ticks, completed {}",
        res.sessions_fault_rebuffered,
        res.sessions_rehomed,
        res.mean_restore_ticks,
        r.edge.load.completed,
    );
    assert_eq!(res.edge_crashes, 1, "exactly one edge crash was scheduled");
    assert_eq!(
        res.shield_crashes, 1,
        "exactly one shield crash was scheduled"
    );
    assert_eq!(res.edge_restarts, 1, "the edge must come back");
    assert_eq!(res.shield_restarts, 1, "the shield must come back");
    assert_eq!(
        res.mean_restore_ticks, 2_000.0,
        "MTTR is exact on the deterministic calendar: both restores take 2,000 ticks"
    );
    assert_eq!(
        res.sessions_fault_rebuffered, 0,
        "the survival bar through shields: zero fault-attributed rebuffering"
    );
    report.push(
        PerfEntry::new("composed_scenario_shielded")
            .metric("sessions", sessions as f64)
            .metric(
                "sessions_fault_rebuffered",
                res.sessions_fault_rebuffered as f64,
            )
            .metric("sessions_rehomed", res.sessions_rehomed as f64)
            .metric("shield_crashes", res.shield_crashes as f64)
            .metric("mean_restore_ticks", res.mean_restore_ticks)
            .metric("completed", r.edge.load.completed as f64)
            .metric("rebuffer_fraction", r.edge.load.rebuffer_fraction),
    );
    // Determinism gate: the composed run must replay exactly.
    let replay =
        simulate_live_cdn_load_faulted(&live_catalog, &flash_cdn, &live, &plan, &flash_load);
    assert_eq!(
        replay, r,
        "the composed scenario must be seed-deterministic"
    );

    report
        .write("BENCH_cdn.json")
        .expect("write BENCH_cdn.json");
    println!("\nwrote BENCH_cdn.json ({} entries)", report.entries.len());
}
