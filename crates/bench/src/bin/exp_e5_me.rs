//! E5 — §3: motion estimation and compensation.
//!
//! Two results: (a) motion compensation slashes the residual the
//! transform path must code; (b) the search-algorithm space trades SAD
//! evaluations against match quality (full vs three-step vs diamond).

use mmbench::banner;
use mmsoc::report::{count, f, Table};
use video::mc::{predict, residual, residual_energy};
use video::me::{MotionEstimator, SearchKind};
use video::synth::SequenceGen;

fn main() {
    banner(
        "E5: motion estimation/compensation (§3)",
        "ME/MC greatly reduce the bits needed to represent a sequence; fast \
         searches trade a little quality for far fewer operations",
    );

    let mut gen = SequenceGen::new(5);
    let reference = gen.textured_frame(352, 288);
    let mut current = gen.shift_frame(&reference, 5, -3);
    gen.add_noise(&mut current, 3.0);

    // (a) Residual with and without motion compensation.
    let no_mc = residual_energy(&residual(&current, &reference));
    let field = MotionEstimator::new(SearchKind::Full, 15).estimate(&current, &reference);
    let with_mc = residual_energy(&residual(&current, &predict(&reference, &field)));
    println!(
        "residual energy without MC: {}   with MC: {}   reduction: {}x\n",
        count(no_mc),
        count(with_mc),
        f(no_mc as f64 / with_mc.max(1) as f64, 1)
    );

    // (b) Search algorithm comparison.
    let mut table = Table::new(vec![
        "search",
        "SAD evals/frame",
        "total SAD (residual proxy)",
        "evals vs full",
    ]);
    let full_evals = MotionEstimator::new(SearchKind::Full, 15)
        .estimate(&current, &reference)
        .total_evaluations();
    for kind in [SearchKind::Full, SearchKind::ThreeStep, SearchKind::Diamond] {
        let me = MotionEstimator::new(kind, 15);
        let fld = me.estimate(&current, &reference);
        table.row(vec![
            kind.to_string(),
            count(fld.total_evaluations()),
            count(fld.total_sad()),
            format!(
                "{}x fewer",
                f(full_evals as f64 / fld.total_evaluations() as f64, 1)
            ),
        ]);
    }
    println!("{table}");
    println!("expected shape: full search has the lowest SAD and by far the most evaluations.");
}
