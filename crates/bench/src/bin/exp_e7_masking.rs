//! E7 — §4: psychoacoustic masking drives the bit allocation.
//!
//! Three probes: (a) a strong tone masks a weak neighbour — the model's
//! threshold sits above the neighbour's power, so the allocator gives its
//! band zero bits; (b) in *audible* bands (where listeners hear noise),
//! masking-aware allocation beats the flat baseline at constrained
//! budgets; (c) the psychoacoustic coder reaches its quality ceiling while
//! *spending fewer bits* — the paper's "eliminate masked tones to reduce
//! the amount of information that is sent to the decoder".

use audio::encoder::{decode, AllocationMode, AudioConfig, AudioEncoder, FRAME_SAMPLES};
use audio::psycho::PsychoModel;
use mmbench::banner;
use mmsoc::report::{f, Table};
use signal::fft::Fft;
use signal::gen::{SignalGen, ToneSpec};

/// SNR restricted to the subbands the psychoacoustic model marks audible.
fn audible_band_snr(original: &[f64], decoded: &[f64]) -> f64 {
    let model = PsychoModel::new();
    let fft = Fft::new(1024);
    let mut sig = 0.0;
    let mut err = 0.0;
    for (o_frame, d_frame) in original
        .chunks_exact(FRAME_SAMPLES)
        .zip(decoded.chunks_exact(FRAME_SAMPLES))
    {
        let analysis = model.analyse(o_frame);
        let smr = analysis.smr_db();
        let o_spec = fft.power_spectrum(&o_frame[..1024]);
        let e: Vec<f64> = o_frame[..1024]
            .iter()
            .zip(&d_frame[..1024])
            .map(|(a, b)| a - b)
            .collect();
        let e_spec = fft.power_spectrum(&e);
        let bins_per_band = 1024 / 64;
        for (b, &band_smr) in smr.iter().enumerate() {
            if band_smr > 0.0 {
                let lo = b * bins_per_band;
                let hi = (b + 1) * bins_per_band;
                sig += o_spec[lo..hi].iter().sum::<f64>();
                err += e_spec[lo..hi].iter().sum::<f64>();
            }
        }
    }
    10.0 * (sig / err.max(1e-30)).log10()
}

fn main() {
    banner(
        "E7: masking in the psychoacoustic model (§4)",
        "when one tone is heard, a nearby weaker tone cannot be heard; the \
         encoder eliminates masked tones to reduce the information sent",
    );

    // (a) Masking threshold demonstration.
    let fs = 32_000.0;
    let band_freq = |b: usize| (b as f64 + 0.5) / 64.0 * fs;
    let model = PsychoModel::new();
    let mut table = Table::new(vec![
        "probe",
        "band 8 SMR dB",
        "band 9 SMR dB",
        "band 9 audible?",
    ]);
    for (name, amp9) in [
        ("weak neighbour (-40 dB)", 0.01),
        ("strong neighbour (-12 dB)", 0.25),
    ] {
        let mut g = SignalGen::new(7);
        let x = g.tones(
            &[
                ToneSpec::new(band_freq(8), 1.0),
                ToneSpec::new(band_freq(9), amp9),
            ],
            fs,
            2048,
        );
        let a = model.analyse(&x);
        let smr = a.smr_db();
        table.row(vec![
            name.to_string(),
            f(smr[8], 1),
            f(smr[9], 1),
            if smr[9] > 0.0 {
                "yes".into()
            } else {
                "no (masked -> 0 bits)".to_string()
            },
        ]);
    }
    println!("{table}");

    // (b)+(c) Psychoacoustic vs flat allocation: audible-band quality and
    // bits actually spent, per budget.
    let mut g = SignalGen::new(8);
    let pcm = g.tones(
        &[
            ToneSpec::new(500.0, 0.8),
            ToneSpec::new(2000.0, 0.4),
            ToneSpec::new(8000.0, 0.2),
        ],
        44_100.0,
        8 * FRAME_SAMPLES,
    );
    let mut table = Table::new(vec![
        "budget bits/frame",
        "psycho audible-SNR dB",
        "flat audible-SNR dB",
        "psycho bits spent",
        "flat bits spent",
    ]);
    for budget in [1000u64, 2000, 4000, 8000] {
        let run = |mode: AllocationMode| {
            let cfg = AudioConfig {
                budget_bits_per_frame: budget,
                mode,
                ..Default::default()
            };
            let stream = AudioEncoder::new(cfg).encode(&pcm).expect("encode");
            let bits = stream.frames.iter().map(|fr| fr.bits).sum::<usize>() / stream.frames.len();
            let out = decode(&stream.bytes).expect("decode");
            (audible_band_snr(&pcm, &out.samples), bits)
        };
        let (p_snr, p_bits) = run(AllocationMode::Psychoacoustic);
        let (f_snr, f_bits) = run(AllocationMode::Flat);
        table.row(vec![
            budget.to_string(),
            f(p_snr, 1),
            f(f_snr, 1),
            p_bits.to_string(),
            f_bits.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: at constrained budgets the psychoacoustic allocation wins \
         in the bands listeners hear; once both are past the masking ceiling the \
         psychoacoustic coder gets there spending far fewer bits (masked bands \
         transmit nothing)."
    );
}
