//! E17 — §2: the five consumer device classes as
//! cost/performance/power points.
//!
//! Deploys each device's application on its platform preset and reports
//! throughput vs real-time target, energy per frame, and average power.
//! Expected shape: workload and power budgets rank phone < player < STB
//! ≤ camera ≈ DVR, and every device meets (or approaches) its target.

use mmbench::banner;
use mmsoc::deploy::deploy_device;
use mmsoc::profile::DeviceClass;
use mmsoc::report::{count, f, Table};

fn main() {
    banner(
        "E17: device classes (§2)",
        "consumer multimedia devices cover a broad range of \
         cost/performance/power points",
    );

    let mut table = Table::new(vec![
        "device",
        "PEs",
        "app ops/frame",
        "fps achieved",
        "fps target",
        "meets RT?",
        "mJ/frame",
        "avg power (mW)",
    ]);
    for class in DeviceClass::ALL {
        let graph_ops = class.application(17).total_ops().total();
        let d = deploy_device(class, 17, 12).expect("deploy");
        let target = class.realtime_target_hz();
        let energy_per_frame = d.report.energy().total_j() / d.report.iterations() as f64;
        let power = d.report.energy().average_power_w(d.report.makespan_s());
        table.row(vec![
            class.to_string(),
            class.platform().pe_count().to_string(),
            count(graph_ops),
            f(d.throughput_hz(), 1),
            f(target, 1),
            if d.meets(target) {
                "yes".to_string()
            } else {
                "no".into()
            },
            f(energy_per_frame * 1e3, 3),
            f(power * 1e3, 1),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: audio player lightest, DVR heaviest; per-frame energy \
         tracks the §2 cost/power ordering."
    );
}
