//! E9 — §5: black-frame commercial skipping (Replay) and the color-burst
//! rule (early VCR add-ons).
//!
//! Sweeps broadcast noise for the black-frame detector and demonstrates
//! that the color rule only works while programs are black-and-white —
//! exactly the assumption the paper attributes to it.

use analysis::colorburst::ColorBurstDetector;
use analysis::commercial::CommercialDetector;
use mmbench::banner;
use mmsoc::report::{f, Table};
use video::synth::{BroadcastLabel, SequenceGen};

fn main() {
    banner(
        "E9: commercial detection (§5)",
        "Replay skips commercials via black separator frames; early VCRs used \
         the color burst, assuming B&W programs and color commercials",
    );

    // Black-frame detector across noise levels.
    let mut table = Table::new(vec!["noise sigma", "precision", "recall", "F1"]);
    for noise in [0.0, 2.0, 5.0, 8.0, 12.0] {
        let mut g = SequenceGen::new(9);
        let (frames, labels) = g.broadcast(64, 48, 150, 12, 3, 3, false, noise);
        let det = CommercialDetector::default();
        let flags = det.skip_flags(&frames);
        let score = CommercialDetector::score(&flags, &labels);
        table.row(vec![
            f(noise, 1),
            f(score.precision(), 3),
            f(score.recall(), 3),
            f(score.f1(), 3),
        ]);
    }
    println!("black-frame detector vs broadcast noise:\n{table}");

    // Color-burst rule on B&W vs color programs.
    let mut table = Table::new(vec!["program material", "frame accuracy of color rule"]);
    for (name, mono) in [("black-and-white program", true), ("color program", false)] {
        let mut g = SequenceGen::new(10);
        let (frames, labels) = g.broadcast(64, 48, 100, 12, 2, 2, mono, 2.0);
        let det = ColorBurstDetector::default();
        let flags = det.color_frames(&frames);
        let correct = flags
            .iter()
            .zip(&labels)
            .filter(|(flag, label)| {
                matches!(label, BroadcastLabel::Black)
                    || **flag == matches!(label, BroadcastLabel::Commercial { .. })
            })
            .count();
        table.row(vec![
            name.to_string(),
            f(correct as f64 / frames.len() as f64, 3),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: black-frame F1 >= 0.9 at moderate noise; the color rule \
         collapses on color programs (the paper's implicit caveat)."
    );
}
