//! E21 — the edge-cache delivery tier harness.
//!
//! Measures the `mmstream::edge` tier and writes the machine-readable
//! `BENCH_edge.json` that extends the repo's perf trajectory:
//!
//! * **Hit rate vs cache size**: a cold 4-edge tier serving 500
//!   sessions, with per-edge caches from 1/8 of the title to unbounded.
//! * **Capacity knee vs edge count**: the sessions-vs-rebuffer curve for
//!   1/2/4/8 warm edges, each with the PR 3 single-origin uplink
//!   (4,000 bytes/tick). The headline claim — asserted in-binary before
//!   anything is written — is that ≥4 warm edges move the knee to at
//!   least 2x the single-origin knee at the same per-link capacity.
//! * **Origin outage**: a warm tier's report is bit-identical with the
//!   origin up or down — offload is total.
//!
//! All numbers are seed-deterministic (asserted by re-running a level).

use mmbench::banner;
use mmbench::perf::{PerfEntry, PerfReport};
use mmstream::edge::EdgeTierConfig;
use mmstream::ladder::{encode_ladder, LadderConfig};
use mmstream::serve::{
    capacity_curve, capacity_knee, edge_capacity_curve, edge_capacity_knee, simulate_edge_load,
    LoadConfig, ServerConfig,
};
use video::synth::SequenceGen;

fn main() {
    banner(
        "E21: edge-cache delivery tier (BENCH_edge.json)",
        "N edge caches in front of the origin multiply serving capacity: \
         the capacity knee scales with edge count instead of being pinned \
         to one uplink, and warm edges serve through an origin outage",
    );

    let mut report = PerfReport::new("edge_delivery", "exp_e21_edge");

    // Same title as E20, so the knees are directly comparable.
    let source = SequenceGen::new(12).panning_sequence(64, 48, 32, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let ladder = encode_ladder("bench", &source, &cfg).expect("ladder encodes");
    let manifest = &ladder.manifest;
    let title_bytes: usize = manifest
        .rungs
        .iter()
        .flat_map(|r| r.segments.iter().map(|s| s.bytes))
        .sum();
    let base = LoadConfig::default();

    // ---- Hit rate vs per-edge cache size (cold caches, 500 sessions).
    println!("hit rate vs cache size (4 cold edges, 500 sessions):");
    println!(
        "  {:>12} {:>9} {:>9} {:>10} {:>10}",
        "cache", "hit%", "offload%", "evictions", "origin_kB"
    );
    let load_500 = LoadConfig {
        sessions: 500,
        ..base
    };
    let mut last_hit = -1.0f64;
    for (label, cap) in [
        ("1/8 title", title_bytes / 8),
        ("1/4 title", title_bytes / 4),
        ("1/2 title", title_bytes / 2),
        ("1x title", title_bytes),
        ("unbounded", usize::MAX),
    ] {
        let tier = EdgeTierConfig {
            edges: 4,
            cache_capacity_bytes: cap,
            prewarm: false,
            ..Default::default()
        };
        let r = simulate_edge_load(manifest, &tier, &load_500);
        assert_eq!(r.load.completed, 500, "every session completes ({label})");
        println!(
            "  {:>12} {:>8.1}% {:>8.1}% {:>10} {:>10.1}",
            label,
            100.0 * r.hit_rate,
            100.0 * r.origin_offload,
            r.tier.evictions,
            r.tier.origin_bytes as f64 / 1e3,
        );
        report.push(
            PerfEntry::new(&format!("hitrate_cache_{}", label.replace([' ', '/'], "_")))
                .metric("cache_capacity_bytes", cap.min(1 << 50) as f64)
                .metric("hit_rate", r.hit_rate)
                .metric("origin_offload", r.origin_offload)
                .metric("evictions", r.tier.evictions as f64)
                .metric("origin_bytes", r.tier.origin_bytes as f64),
        );
        assert!(
            r.hit_rate >= last_hit,
            "hit rate must not fall as the cache grows"
        );
        last_hit = r.hit_rate;
    }

    // ---- Single-origin baseline knee (the PR 3 number, regenerated).
    let counts = [200usize, 1_000, 2_000, 4_000, 8_000, 16_000];
    let single_counts = &counts[..4];
    let single = capacity_curve(manifest, &ServerConfig::default(), single_counts, &base);
    let single_knee = capacity_knee(&single, 0.05).expect("single origin sustains some level");
    println!("\nsingle-origin knee (<=5% rebuffering): {single_knee} sessions");
    report.push(
        PerfEntry::new("single_origin_knee")
            .metric("knee_sessions", single_knee as f64)
            .metric("uplink_bytes_per_tick", 4_000.0),
    );

    // ---- Capacity knee vs warm edge count, same per-link capacity.
    println!("\ncapacity knee vs edge count (warm edges, 4,000 B/tick each):");
    let mut knee_4 = 0usize;
    for edges in [1usize, 2, 4, 8] {
        let tier = EdgeTierConfig {
            edges,
            cache_capacity_bytes: usize::MAX,
            prewarm: true,
            ..Default::default()
        };
        let curve = edge_capacity_curve(manifest, &tier, &counts, &base);
        assert!(curve
            .iter()
            .all(|r| r.load.completed == r.load.sessions || r.load.rebuffer_fraction > 0.05));
        let knee = edge_capacity_knee(&curve, 0.05).expect("tier sustains some level");
        if edges == 4 {
            knee_4 = knee;
            for r in &curve {
                report.push(
                    PerfEntry::new(&format!("edge4_load_{}_sessions", r.load.sessions))
                        .metric("sessions", r.load.sessions as f64)
                        .metric("completed", r.load.completed as f64)
                        .metric(
                            "mean_session_bits_per_tick",
                            r.load.mean_session_bits_per_tick,
                        )
                        .metric("rebuffer_fraction", r.load.rebuffer_fraction)
                        .metric("mean_rung", r.load.mean_rung)
                        .metric("hit_rate", r.hit_rate),
                );
            }
        }
        println!("  {edges} edges: knee {knee} sessions");
        report.push(
            PerfEntry::new(&format!("knee_{edges}_edges"))
                .metric("edges", edges as f64)
                .metric("knee_sessions", knee as f64)
                .metric("knee_vs_single_origin", knee as f64 / single_knee as f64),
        );
    }

    // The tentpole claim, gated before the report is written.
    assert!(
        knee_4 >= 2 * single_knee,
        "4 warm edges must at least double the single-origin knee: {knee_4} vs {single_knee}"
    );
    println!("\n4-edge knee {knee_4} >= 2x single-origin knee {single_knee}: ok");

    // ---- Warm edges make an origin outage invisible.
    let warm = EdgeTierConfig {
        edges: 4,
        cache_capacity_bytes: usize::MAX,
        prewarm: true,
        ..Default::default()
    };
    let load_2k = LoadConfig {
        sessions: 2_000,
        ..base
    };
    let up = simulate_edge_load(manifest, &warm, &load_2k);
    let down = simulate_edge_load(
        manifest,
        &EdgeTierConfig {
            origin_down_after: Some(0),
            ..warm
        },
        &load_2k,
    );
    assert_eq!(up, down, "warm edges never touch the origin");
    assert_eq!(up.tier.origin_bytes, 0);
    println!("origin outage with warm edges: report identical, 0 origin bytes");
    report.push(
        PerfEntry::new("warm_outage_invisible")
            .metric("sessions", 2_000.0)
            .metric("origin_bytes", up.tier.origin_bytes as f64)
            .metric("completed", up.load.completed as f64),
    );

    // ---- Determinism gate: an identical re-run must agree exactly.
    let replay = simulate_edge_load(manifest, &warm, &load_2k);
    assert_eq!(
        replay, up,
        "edge load simulation must be deterministic for identical seeds"
    );

    report
        .write("BENCH_edge.json")
        .expect("write BENCH_edge.json");
    println!("\nwrote BENCH_edge.json ({} entries)", report.entries.len());
}
