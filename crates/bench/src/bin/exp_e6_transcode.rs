//! E6 — §3: "each generation of transcoding reduces image quality".
//!
//! Chains decode→re-encode generations between two device configurations
//! and tracks PSNR against the original. Expected shape: PSNR falls
//! generation over generation, steepest at generation 1.

use mmbench::{banner, test_video};
use mmsoc::report::{f, Table};
use video::encoder::EncoderConfig;
use video::transcode::generations;

fn main() {
    banner(
        "E6: transcoding generation loss (§3)",
        "because encoding is lossy, each generation of transcoding reduces \
         image quality",
    );

    let frames = test_video(176, 144, 8);
    let device_a = EncoderConfig {
        quality: 60,
        gop: 8,
        ..Default::default()
    };
    let device_b = EncoderConfig {
        quality: 45,
        gop: 8,
        ..Default::default()
    };
    let stats = generations(&frames, device_a, device_b, 5).expect("transcode chain");

    let mut table = Table::new(vec!["generation", "PSNR vs original (dB)", "stream kbits"]);
    for s in &stats {
        table.row(vec![
            s.generation.to_string(),
            f(s.psnr_vs_original_db, 2),
            f(s.bits as f64 / 1000.0, 0),
        ]);
    }
    println!("{table}");

    let first_drop = stats[0].psnr_vs_original_db - stats[1].psnr_vs_original_db;
    let total_drop = stats[0].psnr_vs_original_db - stats.last().unwrap().psnr_vs_original_db;
    println!(
        "gen-1 -> gen-2 loss: {} dB; total loss over {} generations: {} dB — {}",
        f(first_drop, 2),
        stats.len(),
        f(total_drop, 2),
        if total_drop >= -0.05 {
            "quality never recovers (matches §3)"
        } else {
            "quality recovered (UNEXPECTED)"
        }
    );
}
