//! E27 — the ABR controller shootout over congestion-controlled pipes.
//!
//! PR 10 made the pipe real: AIMD/CUBIC congestion control in TCP-lite,
//! bounded drop-tail queues (bufferbloat), Gilbert–Elliott bursty loss,
//! and replayable bandwidth/loss traces. This harness races the three
//! rung controllers ([`AbrStrategy`]) on **identical** link schedules
//! and writes the machine-readable `BENCH_abr.json`:
//!
//! * **Transport headline**: AIMD vs a big fixed window on a
//!   bufferbloated bounded link — the congestion controller must win on
//!   goodput (asserted in-binary and again by CI).
//! * **Controller × trace matrix**: EWMA, buffer-occupancy (BBA-style),
//!   and hybrid controllers, each against a steady link, the
//!   mobile-handoff trace, and a Gilbert–Elliott bursty channel, all
//!   over AIMD transport. Per-cell QoE: startup delay, rebuffer ratio,
//!   rung switches, mean rung — plus the bar that the hybrid's rebuffer
//!   ratio never exceeds EWMA's on the bursty channel.

use mmbench::banner;
use mmbench::perf::{PerfEntry, PerfReport};
use mmstream::ladder::{encode_ladder, publish_ladder, LadderConfig};
use mmstream::session::{run_session, SessionConfig, SessionReport};
use mmstream::{AbrStrategy, RetryPolicy};
use netstack::fetch::ContentServer;
use netstack::link::{LinkConfig, LinkTrace, LossModel};
use netstack::tcplite::{transfer, CongestionControl, TcpConfig};
use video::synth::SequenceGen;

/// Aggregated QoE for one (controller, trace) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellQoe {
    sessions: u32,
    failed: u32,
    mean_startup_ticks: f64,
    rebuffer_ratio: f64,
    mean_switches: f64,
    mean_rung: f64,
    goodput_bits_per_tick: f64,
}

fn aggregate(reports: &[SessionReport], failed: u32) -> CellQoe {
    let n = reports.len().max(1) as f64;
    let total_ticks: u64 = reports.iter().map(|r| r.total_ticks).sum();
    let rebuffer_ticks: u64 = reports.iter().map(|r| r.rebuffer_ticks).sum();
    let bits: u64 = reports.iter().map(|r| r.delivered_bits).sum();
    CellQoe {
        sessions: reports.len() as u32,
        failed,
        mean_startup_ticks: reports
            .iter()
            .map(|r| r.startup_delay_ticks as f64)
            .sum::<f64>()
            / n,
        rebuffer_ratio: rebuffer_ticks as f64 / total_ticks.max(1) as f64,
        mean_switches: reports
            .iter()
            .map(|r| f64::from(r.rung_switches))
            .sum::<f64>()
            / n,
        mean_rung: reports.iter().map(SessionReport::mean_rung).sum::<f64>() / n,
        goodput_bits_per_tick: bits as f64 / total_ticks.max(1) as f64,
    }
}

fn run_cell(server: &ContentServer, base: &SessionConfig, seeds: std::ops::Range<u64>) -> CellQoe {
    let mut reports = Vec::new();
    let mut failed = 0u32;
    for seed in seeds {
        let config = SessionConfig {
            seed,
            retry: RetryPolicy { seed, ..base.retry },
            ..base.clone()
        };
        match run_session(server, "shootout", &config) {
            Ok(r) => reports.push(r),
            Err(_) => failed += 1,
        }
    }
    aggregate(&reports, failed)
}

fn main() {
    banner(
        "E27: ABR controller shootout on real pipes (BENCH_abr.json)",
        "AIMD beats a big fixed window on a bufferbloated link, and on a \
         bursty channel the hybrid controller rebuffers no more than the \
         throughput-only EWMA controller",
    );

    let mut report = PerfReport::new("abr_shootout", "exp_e27_abr");

    // ---- Transport headline: congestion control vs bufferbloat.
    // A 2 KB drop-tail queue on a 20 B/tick link: a fixed 64-segment
    // window bursts straight through the bound, tail-drops, and waits
    // out RTOs; AIMD backs off to the queue's capacity.
    let data: Vec<u8> = (0..40_000u32).map(|i| ((i * 31) >> 3) as u8).collect();
    let bloated = LinkConfig {
        ticks_per_byte: 0.05,
        ..LinkConfig::default()
    }
    .with_queue_bytes(2_000);
    let fixed = transfer(
        &data,
        TcpConfig {
            cc: CongestionControl::Fixed(64),
            ..Default::default()
        },
        bloated,
        61,
    )
    .expect("fixed-window transfer completes");
    let aimd = transfer(
        &data,
        TcpConfig {
            cc: CongestionControl::aimd(),
            ..Default::default()
        },
        bloated,
        61,
    )
    .expect("AIMD transfer completes");
    println!(
        "bufferbloat (2 KB queue): fixed-64 {:.2} B/tick over {} ticks ({} rtx), AIMD {:.2} B/tick over {} ticks ({} rtx)",
        fixed.goodput, fixed.ticks, fixed.retransmissions, aimd.goodput, aimd.ticks, aimd.retransmissions
    );
    assert!(
        aimd.goodput > fixed.goodput,
        "AIMD ({:.2} B/tick) must out-run the fixed window ({:.2} B/tick) on a bufferbloated link",
        aimd.goodput,
        fixed.goodput
    );
    report.push(
        PerfEntry::new("transport_bufferbloat")
            .metric("payload_bytes", data.len() as f64)
            .metric("queue_bytes", 2_000.0)
            .metric("fixed_goodput", fixed.goodput)
            .metric("fixed_ticks", fixed.ticks as f64)
            .metric("fixed_retransmissions", fixed.retransmissions as f64)
            .metric("aimd_goodput", aimd.goodput)
            .metric("aimd_ticks", aimd.ticks as f64)
            .metric("aimd_retransmissions", aimd.retransmissions as f64),
    );

    // ---- The shootout title: 3 rungs x 16 QCIF segments, 400 ticks
    // of content per segment (gop 4 at 100 ticks/frame). QCIF frames
    // give the ladder a real byte spread (~1/3/9 KB per segment), so
    // the top rung needs ~180 bits/tick — deliberately above what the
    // steady access link sustains — and the controllers have a real
    // decision to make.
    let frames = SequenceGen::new(12).panning_sequence(176, 144, 64, 1, 1);
    let ladder_cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let ladder = encode_ladder("shootout", &frames, &ladder_cfg).expect("ladder encodes");
    let mut server = ContentServer::new();
    publish_ladder(&mut server, &ladder);

    // Every cell runs AIMD transport with a few retries (the handoff
    // gap is harsh enough to exhaust a single attempt's retransmit
    // budget).
    let retry = RetryPolicy {
        max_attempts: 4,
        base_backoff_ticks: 100,
        max_backoff_ticks: 1_600,
        jitter_ticks: 50,
        seed: 0,
    };
    let tcp = TcpConfig {
        cc: CongestionControl::aimd(),
        ..Default::default()
    };
    // The access link: 50 B/tick (400 bits/tick) steady-state — every
    // rung is nominally sustainable, but the EWMA controller's safety
    // headroom (0.7x an estimate that includes per-fetch overhead)
    // keeps it off the ~180 bits/tick top rung, while the
    // buffer-driven controllers ramp to it once the buffer is deep.
    let access = LinkConfig {
        ticks_per_byte: 0.02,
        ..LinkConfig::default()
    };

    // One segment of reservoir, two of cushion.
    let reservoir_ticks = 400;
    let cushion_ticks = 800;
    let controllers: [(&str, AbrStrategy); 3] = [
        ("ewma", AbrStrategy::Ewma),
        (
            "buffer",
            AbrStrategy::BufferOccupancy {
                reservoir_ticks,
                cushion_ticks,
            },
        ),
        (
            "hybrid",
            AbrStrategy::Hybrid {
                reservoir_ticks,
                cushion_ticks,
            },
        ),
    ];
    // Identical link schedules across controllers: same config, same
    // seeds, the controller is the only variable. Sessions join the
    // handoff schedule at the fade (the phase list rotated by one), so
    // a 16-segment title spans fade -> gap -> recovery instead of
    // finishing inside the long strong-cell phase.
    let handoff = {
        let mut t = LinkTrace::mobile_handoff();
        t.phases.rotate_left(1);
        t
    };
    let traces: [(&str, LinkConfig, Option<LinkTrace>); 3] = [
        ("steady", access, None),
        ("mobile_handoff", access, Some(handoff)),
        (
            // A harsher Gilbert-Elliott channel than the bursty()
            // preset: bursts long and lossy enough (~17-frame bursts
            // at 70% drop) to stall fetches mid-segment.
            "ge_bursty",
            access.with_loss_model(LossModel::GilbertElliott {
                p_enter_bad: 0.008,
                p_exit_bad: 0.06,
                loss_good: 0.001,
                loss_bad: 0.7,
            }),
            None,
        ),
    ];

    println!(
        "\nshootout: 3 controllers x 3 traces, 8 seeds per cell, AIMD transport\n  {:>8} {:>16} {:>9} {:>10} {:>9} {:>9} {:>7}",
        "ctrl", "trace", "startup", "rebuffer%", "switches", "meanrung", "failed"
    );
    let mut cells: Vec<(String, String, CellQoe)> = Vec::new();
    for (trace_name, link, trace) in &traces {
        for (ctrl_name, strategy) in &controllers {
            let base = SessionConfig {
                tcp,
                link: *link,
                retry,
                abr: strategy.clone(),
                trace: trace.clone(),
                ..Default::default()
            };
            let qoe = run_cell(&server, &base, 100..108);
            println!(
                "  {:>8} {:>16} {:>9.0} {:>9.2}% {:>9.2} {:>9.2} {:>7}",
                ctrl_name,
                trace_name,
                qoe.mean_startup_ticks,
                100.0 * qoe.rebuffer_ratio,
                qoe.mean_switches,
                qoe.mean_rung,
                qoe.failed
            );
            report.push(
                PerfEntry::new(&format!("abr_{ctrl_name}_{trace_name}"))
                    .metric("sessions", f64::from(qoe.sessions))
                    .metric("failed_sessions", f64::from(qoe.failed))
                    .metric("mean_startup_ticks", qoe.mean_startup_ticks)
                    .metric("rebuffer_ratio", qoe.rebuffer_ratio)
                    .metric("mean_rung_switches", qoe.mean_switches)
                    .metric("mean_rung", qoe.mean_rung)
                    .metric("goodput_bits_per_tick", qoe.goodput_bits_per_tick),
            );
            cells.push((ctrl_name.to_string(), trace_name.to_string(), qoe));
        }
    }

    // Determinism gate: an identical re-run of one cell must agree
    // exactly before any number is published.
    let (ctrl_name, strategy) = &controllers[2];
    let (trace_name, link, trace) = &traces[2];
    let replay = run_cell(
        &server,
        &SessionConfig {
            tcp,
            link: *link,
            retry,
            abr: strategy.clone(),
            trace: trace.clone(),
            ..Default::default()
        },
        100..108,
    );
    let original = cells
        .iter()
        .find(|(c, t, _)| c == ctrl_name && t == trace_name)
        .map(|(_, _, q)| *q)
        .expect("cell was measured");
    assert_eq!(
        replay, original,
        "the shootout must be deterministic for identical seeds"
    );

    // The headline QoE bar: on the bursty channel, capping optimism
    // with the buffer signal must not rebuffer more than throughput
    // chasing alone.
    let ratio = |ctrl: &str, trace: &str| {
        cells
            .iter()
            .find(|(c, t, _)| c == ctrl && t == trace)
            .map(|(_, _, q)| q.rebuffer_ratio)
            .expect("cell was measured")
    };
    let hybrid_bursty = ratio("hybrid", "ge_bursty");
    let ewma_bursty = ratio("ewma", "ge_bursty");
    assert!(
        hybrid_bursty <= ewma_bursty,
        "hybrid rebuffer ratio ({hybrid_bursty:.4}) must not exceed EWMA's ({ewma_bursty:.4}) on the bursty channel"
    );
    println!(
        "\nbursty-channel bar: hybrid rebuffer {:.2}% <= EWMA {:.2}%",
        100.0 * hybrid_bursty,
        100.0 * ewma_bursty
    );

    report
        .write("BENCH_abr.json")
        .expect("write BENCH_abr.json");
    println!("wrote BENCH_abr.json ({} entries)", report.entries.len());
}
