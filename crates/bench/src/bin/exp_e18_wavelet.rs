//! E18 — §3: wavelets avoid DCT edge artifacts.
//!
//! Codes a sharp-edged image with the block DCT and the 5/3 wavelet at
//! equal coefficient budgets and measures (a) overall PSNR and (b) error
//! concentrated at 8×8 block boundaries — the blocking artifact the
//! paper says wavelets avoid.

use mmbench::banner;
use mmsoc::report::{f, Table};
use signal::rng::Xoroshiro128;
use video::dct::{Dct2d, BLOCK};
use video::wavelet::Wavelet2d;

const SIZE: usize = 64;

/// A sharp-edged test image: bright rectangle + diagonal edge + texture.
fn edge_image(seed: u64) -> Vec<i32> {
    let mut rng = Xoroshiro128::new(seed);
    let mut img = vec![0i32; SIZE * SIZE];
    for y in 0..SIZE {
        for x in 0..SIZE {
            let mut v = 40;
            if (12..40).contains(&x) && (12..40).contains(&y) {
                v = 210;
            }
            if x + y > 90 {
                v = 160;
            }
            img[y * SIZE + x] = v + rng.range_i64(-3, 3) as i32;
        }
    }
    img
}

/// Keeps the `keep` largest coefficients of each 8x8 DCT block
/// (total budget spread evenly over blocks) and reconstructs.
fn dct_coded(img: &[i32], keep_per_block: usize) -> Vec<i32> {
    let dct = Dct2d::new();
    let mut out = vec![0i32; SIZE * SIZE];
    for by in 0..SIZE / BLOCK {
        for bx in 0..SIZE / BLOCK {
            let mut block = [0.0f64; BLOCK * BLOCK];
            for r in 0..BLOCK {
                for c in 0..BLOCK {
                    block[r * BLOCK + c] = img[(by * BLOCK + r) * SIZE + bx * BLOCK + c] as f64;
                }
            }
            let coeffs = dct.forward(&block);
            // Zero all but the largest-magnitude `keep_per_block`.
            let mut idx: Vec<usize> = (0..64).collect();
            idx.sort_by(|&a, &b| coeffs[b].abs().total_cmp(&coeffs[a].abs()));
            let mut kept = [0.0f64; 64];
            for &i in idx.iter().take(keep_per_block) {
                kept[i] = coeffs[i];
            }
            let rec = dct.inverse(&kept);
            for r in 0..BLOCK {
                for c in 0..BLOCK {
                    out[(by * BLOCK + r) * SIZE + bx * BLOCK + c] =
                        rec[r * BLOCK + c].round() as i32;
                }
            }
        }
    }
    out
}

fn wavelet_coded(img: &[i32], keep_total: usize) -> Vec<i32> {
    let w = Wavelet2d::new(3);
    let coeffs = w.forward(img, SIZE);
    let kept = Wavelet2d::threshold_keep(&coeffs, keep_total);
    w.inverse(&kept, SIZE)
}

fn psnr(a: &[i32], b: &[i32]) -> f64 {
    let mse: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (255.0 * 255.0 / mse).log10()
}

/// Mean absolute error restricted to pixels adjacent to 8x8 block
/// boundaries — the blocking-artifact metric.
fn boundary_error(orig: &[i32], coded: &[i32]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for y in 0..SIZE {
        for x in 0..SIZE {
            let on_boundary = x % BLOCK == 0
                || x % BLOCK == BLOCK - 1
                || y % BLOCK == 0
                || y % BLOCK == BLOCK - 1;
            if on_boundary {
                sum += (orig[y * SIZE + x] - coded[y * SIZE + x]).abs() as f64;
                n += 1;
            }
        }
    }
    sum / n as f64
}

fn main() {
    banner(
        "E18: wavelets vs DCT at edges (§3)",
        "wavelets represent frequency content hierarchically and do not suffer \
         the edge artifacts common to DCT-based encoding (JPEG2000)",
    );

    let img = edge_image(18);
    let mut table = Table::new(vec![
        "kept coefficients",
        "DCT PSNR dB",
        "wavelet PSNR dB",
        "DCT boundary err",
        "wavelet boundary err",
    ]);
    for keep_per_block in [2usize, 4, 6, 10] {
        let total = keep_per_block * (SIZE / BLOCK) * (SIZE / BLOCK);
        let d = dct_coded(&img, keep_per_block);
        let w = wavelet_coded(&img, total);
        table.row(vec![
            format!("{total} ({keep_per_block}/block)"),
            f(psnr(&img, &d), 2),
            f(psnr(&img, &w), 2),
            f(boundary_error(&img, &d), 2),
            f(boundary_error(&img, &w), 2),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: at coarse budgets the wavelet shows less error at \
         block boundaries (no blocking artifacts) on edge-dominated images."
    );
}
