//! E26 — the head-end on the MPSoC model and on real host cores.
//!
//! One staged head-end definition (capture → per-rung encode → mux →
//! seal → publish), consumed two ways and cross-checked, writing the
//! machine-readable `BENCH_par.json`:
//!
//! * **Executed**: the ladder's per-rung encode work units run on the
//!   `mmpool` worker pool at 1/2/4/8 workers for 3/5/7-rung ladders.
//!   Every pooled encode must be bit-identical to the sequential one
//!   (asserted at every worker count); on hosts with ≥ 4 cores the
//!   5-rung encode must clear a 2x speedup at 4 workers — re-measured
//!   up to 5 times (best observed speedup is what's asserted and
//!   recorded) so scheduler noise on a loaded runner can't fail the
//!   gate spuriously. The recorded `host_cpus` metric lets CI
//!   re-assert the bar only where the hardware can express it.
//! * **Modeled**: the same ladders, folded through
//!   `mmstream::headend_spec` into the `mpsoc::headend` task graph
//!   (measured op tallies, real segment bytes) and scheduled on
//!   symmetric-bus platforms of 1/2/4/8 PEs — latency and energy per
//!   rung count per PE count, with the multi-PE mappings required to
//!   beat the single-PE makespan.
//! * **Parallel simulation**: exp_e23's live 1M-session sweep re-run
//!   through `live_edge_capacity_curve_on` (whole curve points sharded
//!   across the pool). The pooled 1M report must equal the sequential
//!   `simulate_live_edge_load` report *exactly* — the merge is
//!   deterministic by construction, and CI cross-checks the recorded
//!   numbers against `BENCH_sim.json`.

use std::time::Instant;

use mmbench::banner;
use mmbench::perf::{PerfEntry, PerfReport};
use mmpool::WorkerPool;
use mmstream::edge::EdgeTierConfig;
use mmstream::headend_spec;
use mmstream::ladder::{encode_ladder, encode_ladder_on, Ladder, LadderConfig};
use mmstream::serve::{
    live_edge_capacity_curve_on, simulate_live_edge_load, LiveConfig, LoadConfig,
};
use mmstream::session::JoinMode;
use mpsoc::{Mapping, Platform, Simulator};
use video::synth::SequenceGen;
use video::Frame;

/// Ascending per-frame rate targets spanning the 2k–18k band the other
/// experiments use, at any rung count.
fn rate_targets(rungs: usize) -> Vec<f64> {
    (0..rungs)
        .map(|i| 2_000.0 + i as f64 * 16_000.0 / (rungs - 1) as f64)
        .collect()
}

/// Minimum wall time over `reps` runs of `f`, in milliseconds.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = None;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("reps >= 1"), best)
}

fn encode_source() -> Vec<Frame> {
    SequenceGen::new(12).panning_sequence(64, 48, 32, 1, 1)
}

fn main() {
    banner(
        "E26: head-end on the MPSoC model + host parallelism (BENCH_par.json)",
        "one staged head-end definition is executed on a hand-rolled \
         worker pool (bit-identical to sequential at any worker count) \
         and mapped onto MPSoC platform configurations (latency/energy \
         per PE count), and the 1M-session live sweep reruns in \
         parallel with exactly the sequential numbers",
    );

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut report = PerfReport::new("par_headend", "exp_e26_par");
    report.push(PerfEntry::new("host").metric("host_cpus", host_cpus as f64));
    println!("host: {host_cpus} cpus\n");

    // ---- Executed: pooled ladder encode, core scaling.
    let source = encode_source();
    let rung_counts = [3usize, 5, 7];
    let worker_counts = [1usize, 2, 4, 8];
    let mut ladders: Vec<(usize, Ladder)> = Vec::new();
    println!("pooled ladder encode (64x48, 32 frames), wall ms by workers:");
    for &rungs in &rung_counts {
        let cfg = LadderConfig {
            targets_bits_per_frame: rate_targets(rungs),
            gop: 4,
            ..Default::default()
        };
        let (seq, seq_ms) = best_ms(3, || {
            encode_ladder("bench", &source, &cfg).expect("ladder encodes")
        });
        print!("  {rungs} rungs: seq {seq_ms:>7.1} ms |");
        for &workers in &worker_counts {
            let pool = WorkerPool::new(workers);
            let (par, mut par_ms) = best_ms(3, || {
                encode_ladder_on(&pool, "bench", &source, &cfg).expect("ladder encodes")
            });
            assert_eq!(
                par, seq,
                "pooled encode must be bit-identical ({rungs} rungs, {workers} workers)"
            );
            let mut cell_seq_ms = seq_ms;
            let mut speedup = cell_seq_ms / par_ms;
            if rungs == 5 && workers == 4 && host_cpus >= 4 {
                // Hard CI gate. The ideal speedup for 5 unequal rungs
                // on 4 workers is only ~2.5x, so one noisy scheduling
                // window on a loaded shared runner can push a single
                // best-of-3 under the bar. Re-measure both sides and
                // keep the best observed speedup before asserting.
                for _ in 0..5 {
                    if speedup >= 2.0 {
                        break;
                    }
                    let (_, s_ms) = best_ms(3, || {
                        encode_ladder("bench", &source, &cfg).expect("ladder encodes")
                    });
                    let (p, p_ms) = best_ms(3, || {
                        encode_ladder_on(&pool, "bench", &source, &cfg).expect("ladder encodes")
                    });
                    assert_eq!(p, seq, "pooled encode must stay bit-identical on retry");
                    if s_ms / p_ms > speedup {
                        speedup = s_ms / p_ms;
                        cell_seq_ms = s_ms;
                        par_ms = p_ms;
                    }
                }
                assert!(
                    speedup >= 2.0,
                    "4 workers on a >=4-core host must clear 2x on 5 rungs: {speedup:.2}x"
                );
            }
            print!("  {workers}w {par_ms:>7.1} ms ({speedup:>4.2}x)");
            report.push(
                PerfEntry::new(&format!("encode_{rungs}_rungs_{workers}_workers"))
                    .metric("rungs", rungs as f64)
                    .metric("workers", workers as f64)
                    .metric("wall_ms", par_ms)
                    .metric("sequential_wall_ms", cell_seq_ms)
                    .metric("speedup", speedup)
                    .metric("bit_identical", 1.0),
            );
        }
        println!();
        ladders.push((rungs, seq));
    }

    // ---- Modeled: the same ladders on MPSoC platform configurations.
    println!("\nmodeled head-end graph on symmetric-bus platforms (8-frame stream):");
    for (rungs, ladder) in &ladders {
        let spec = headend_spec(ladder, &source);
        let graph = spec.task_graph();
        let mut makespan_1pe = 0.0f64;
        print!("  {rungs} rungs:");
        for pes in [1usize, 2, 4, 8] {
            let platform = Platform::symmetric_bus("headend", pes, 200e6);
            let mapping = Mapping::load_balanced(&graph, &platform);
            let run = Simulator::new(&platform)
                .run_stream(&graph, &mapping, 8)
                .expect("head-end graph schedules");
            let makespan_ms = run.makespan_s() * 1e3;
            if pes == 1 {
                makespan_1pe = makespan_ms;
            } else {
                assert!(
                    makespan_ms < makespan_1pe,
                    "{pes} PEs must beat 1 PE on the {rungs}-rung graph"
                );
            }
            let energy = run.energy();
            print!(
                "  {pes}pe {makespan_ms:>7.2} ms / {:>6.2} mJ",
                energy.total_j() * 1e3
            );
            report.push(
                PerfEntry::new(&format!("model_{rungs}_rungs_{pes}_pes"))
                    .metric("rungs", *rungs as f64)
                    .metric("pes", pes as f64)
                    .metric("makespan_ms", makespan_ms)
                    .metric("modeled_speedup", makespan_1pe / makespan_ms)
                    .metric("energy_mj", energy.total_j() * 1e3)
                    .metric("transfer_mj", energy.transfer_j() * 1e3),
            );
        }
        println!();
    }

    // ---- Parallel simulation: exp_e23's live sweep, pooled.
    println!("\nparallel 1M-session live sweep (exp_e23 workload, 4 workers):");
    let live_source = SequenceGen::new(12).panning_sequence(64, 48, 64, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let live_manifest = encode_ladder("bench", &live_source, &cfg)
        .expect("ladder encodes")
        .manifest;
    let live_edge_join = LiveConfig {
        dvr_window_segments: 8,
        join: JoinMode::LiveEdge,
        ..Default::default()
    };
    let big_tier = EdgeTierConfig {
        edges: 4,
        edge_capacity_bytes_per_tick: 2.5e7,
        prewarm: false,
        ..Default::default()
    };
    let base = LoadConfig::default();
    let counts = [10_000usize, 100_000, 1_000_000];
    let pool = WorkerPool::new(4);
    let t0 = Instant::now();
    let curve = live_edge_capacity_curve_on(
        &pool,
        &live_manifest,
        &big_tier,
        &live_edge_join,
        &counts,
        &base,
    );
    let curve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let seq_1m = simulate_live_edge_load(
        &live_manifest,
        &big_tier,
        &live_edge_join,
        &LoadConfig {
            sessions: 1_000_000,
            ..base
        },
    );
    assert_eq!(
        curve[2], seq_1m,
        "the pooled 1M sweep must equal the sequential run exactly"
    );
    for (r, &sessions) in curve.iter().zip(&counts) {
        assert_eq!(
            r.edge.load.completed, sessions,
            "a provisioned tier must carry every viewer to the end"
        );
        println!(
            "  {sessions:>9} sessions: rebuffer {:.2}%, hit rate {:.1}%, coalesced {}",
            100.0 * r.edge.load.rebuffer_fraction,
            100.0 * r.edge.hit_rate,
            r.edge.tier.coalesced,
        );
        report.push(
            PerfEntry::new(&format!("par_sweep_{sessions}_sessions"))
                .metric("sessions", sessions as f64)
                .metric("rebuffer_fraction", r.edge.load.rebuffer_fraction)
                .metric("hit_rate", r.edge.hit_rate)
                .metric("coalesced_waiters", r.edge.tier.coalesced as f64)
                .metric("par_equals_seq", 1.0),
        );
    }
    println!("  whole curve on 4 workers: {curve_ms:.1} ms (1M point matches sequential exactly)");
    report.push(
        PerfEntry::new("par_sweep_wall")
            .metric("curve_wall_ms", curve_ms)
            .metric("workers", 4.0),
    );

    report
        .write("BENCH_par.json")
        .expect("write BENCH_par.json");
    println!("\nwrote BENCH_par.json ({} entries)", report.entries.len());
}
