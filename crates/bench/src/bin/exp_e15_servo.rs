//! E15 — §7: drive servo control adapted to the mechanism.
//!
//! Runs the 50 kHz tracking loop on three mechanism variants under (a)
//! the fixed nominal control law and (b) the mechanism-adapted law.
//! Expected shape: the fixed law degrades off-nominal; adaptation
//! recovers tracking everywhere.

use mmbench::banner;
use mmsoc::report::{f, Table};
use servo::control::Pid;
use servo::loopctl::{adapt_gains, nominal_gains, run_loop};
use servo::plant::Mechanism;

fn main() {
    banner(
        "E15: mechanism-adapted servo control (§7)",
        "drive control needs complex digital filters at high rates, with \
         control laws adapted to the particular mechanism being used",
    );

    const FS: f64 = 50_000.0;
    let mechanisms = [
        ("nominal", Mechanism::nominal()),
        ("stiff variant", Mechanism::stiff()),
        ("loose variant", Mechanism::loose()),
    ];

    let mut table = Table::new(vec![
        "mechanism",
        "resonance Hz",
        "fixed-law RMS err",
        "adapted RMS err",
        "fixed atten.",
        "adapted atten.",
    ]);
    for (name, mech) in mechanisms {
        let fixed = {
            let mut pid = Pid::new(nominal_gains(), FS);
            run_loop(mech, &mut pid, FS, 150_000, 15)
        };
        let gains = adapt_gains(mech, FS);
        let adapted = {
            let mut pid = Pid::new(gains, FS);
            run_loop(mech, &mut pid, FS, 150_000, 15)
        };
        table.row(vec![
            name.to_string(),
            f(mech.natural_freq() / core::f64::consts::TAU, 1),
            f(fixed.rms_error, 4),
            f(adapted.rms_error, 4),
            f(fixed.attenuation(), 1),
            f(adapted.attenuation(), 1),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: fixed law is good only on the nominal mechanism; the \
         adapted law tracks within tolerance on all three."
    );
}
