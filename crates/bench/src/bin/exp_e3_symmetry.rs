//! E3 — §2: symmetric vs asymmetric compression systems.
//!
//! Encodes the same sequence under a videoconference configuration
//! (cheap diamond search, short GOP) and a broadcast configuration
//! (exhaustive search, long GOP), then decodes both and compares
//! encoder-side vs decoder-side operation counts. Expected shape: the
//! symmetric config keeps encoder:decoder near parity; the asymmetric
//! config makes the encoder many times more expensive while its decoder
//! stays cheap.

use mmbench::{banner, test_video};
use mmsoc::report::{count, f, Table};
use video::decoder::decode;
use video::encoder::{Encoder, EncoderConfig};

fn ops(
    kind: &str,
    config: EncoderConfig,
    frames: &[video::frame::Frame],
) -> (String, u64, u64, f64) {
    let encoded = Encoder::new(config)
        .expect("valid")
        .encode(frames)
        .expect("encode");
    let decoded = decode(&encoded.bytes).expect("decode");
    // Encoder ops: ME pixel ops + transform MACs + quant + VLC.
    let enc_ops = encoded.tally.me_pixel_ops
        + encoded.tally.dct_macs()
        + encoded.tally.quant_coeffs
        + encoded.tally.vlc_symbols * 8;
    // Decoder ops: inverse transforms + motion compensation + parse.
    let dec_ops =
        decoded.idct_blocks * 2 * 8 * 8 * 8 + decoded.mc_pixels + encoded.tally.vlc_symbols * 8;
    (kind.to_string(), enc_ops, dec_ops, encoded.mean_psnr_db())
}

fn main() {
    banner(
        "E3: symmetric vs asymmetric compression (§2)",
        "videoconferencing needs roughly equal compute at both ends; broadcast \
         puts more effort into encoding to simplify the decoder",
    );

    let frames = test_video(176, 144, 16);
    let rows = [
        ops(
            "symmetric (videoconference)",
            EncoderConfig::symmetric_conference(),
            &frames,
        ),
        ops(
            "asymmetric (broadcast)",
            EncoderConfig::asymmetric_broadcast(),
            &frames,
        ),
    ];

    let mut table = Table::new(vec![
        "configuration",
        "encoder ops",
        "decoder ops",
        "ratio enc:dec",
        "PSNR dB",
    ]);
    for (name, enc, dec, psnr) in &rows {
        table.row(vec![
            name.clone(),
            count(*enc),
            count(*dec),
            f(*enc as f64 / *dec as f64, 1),
            f(*psnr, 1),
        ]);
    }
    println!("{table}");

    let sym_ratio = rows[0].1 as f64 / rows[0].2 as f64;
    let asym_ratio = rows[1].1 as f64 / rows[1].2 as f64;
    println!(
        "asymmetric ratio is {}x the symmetric ratio — {}",
        f(asym_ratio / sym_ratio, 1),
        if asym_ratio > 3.0 * sym_ratio {
            "broadcast encoding is clearly the expensive side (matches §2)"
        } else {
            "asymmetry weaker than expected (UNEXPECTED)"
        }
    );
}
