//! E20 — the streaming delivery perf harness.
//!
//! Measures the `mmstream` subsystem and writes the machine-readable
//! `BENCH_stream.json` that extends the repo's perf trajectory:
//!
//! * **Mux/demux throughput**: MB/s packetizing an A/V segment into
//!   188-byte transport packets (with per-packet CRC-32) and
//!   reassembling it bit-identically.
//! * **Ladder encode**: wall time to produce a 3-rung ABR ladder.
//! * **Load simulator rate**: simulated sessions per wall second.
//! * **Capacity curve**: sessions vs per-session delivered bitrate,
//!   rebuffer fraction, and mean rung for 50..4000 concurrent sessions
//!   against one server, plus the detected capacity knee. The simulated
//!   numbers are seed-deterministic (asserted by re-running one level).

use mmbench::banner;
use mmbench::perf::{median_ns_per_iter, PerfEntry, PerfReport};
use mmstream::ladder::{encode_ladder, LadderConfig};
use mmstream::segment::{demux_segment, mux_segment_wire};
use mmstream::serve::{capacity_curve, capacity_knee, simulate_load, LoadConfig, ServerConfig};
use video::encoder::{Encoder, EncoderConfig};
use video::synth::SequenceGen;

fn main() {
    banner(
        "E20: streaming delivery perf (BENCH_stream.json)",
        "the transport mux moves segments at memory-bound rates and one \
         simulated segment server feeds >=1000 concurrent ABR sessions \
         up to a measurable capacity knee",
    );

    let mut report = PerfReport::new("stream_delivery", "exp_e20_stream");

    // ---- Workload: a QCIF-ish sequence, one GOP muxed as a segment.
    let frames = SequenceGen::new(11).panning_sequence(176, 144, 8, 2, 1);
    let seq = Encoder::new(EncoderConfig {
        gop: 8,
        ..Default::default()
    })
    .expect("valid config")
    .encode(&frames)
    .expect("encode succeeds");
    let audio: Vec<u8> = (0..seq.bytes.len() / 8).map(|i| (i * 31) as u8).collect();

    // ---- Mux + demux throughput.
    let wire = mux_segment_wire(&seq, Some(&audio));
    let seg = demux_segment(&wire);
    assert!(!seg.report.loss_detected());
    assert_eq!(seg.video_es.as_deref(), Some(seq.bytes.as_slice()));
    assert_eq!(seg.audio_es.as_deref(), Some(audio.as_slice()));

    let payload_bytes = (seq.bytes.len() + audio.len()) as f64;
    let mux_ns = median_ns_per_iter(|| {
        std::hint::black_box(mux_segment_wire(
            std::hint::black_box(&seq),
            Some(std::hint::black_box(&audio)),
        ));
    });
    let demux_ns = median_ns_per_iter(|| {
        std::hint::black_box(demux_segment(std::hint::black_box(&wire)));
    });
    let mux_mb_s = payload_bytes / (mux_ns / 1e9) / 1e6;
    let demux_mb_s = wire.len() as f64 / (demux_ns / 1e9) / 1e6;
    println!(
        "mux {:.0} KB payload -> {} packets: {mux_mb_s:>8.1} MB/s mux, {demux_mb_s:>8.1} MB/s demux",
        payload_bytes / 1e3,
        wire.len() / 188,
    );
    report.push(
        PerfEntry::new("ts_mux_demux_segment")
            .metric("payload_bytes", payload_bytes)
            .metric("wire_packets", (wire.len() / 188) as f64)
            .metric("mux_wall_ns", mux_ns)
            .metric("mux_mb_per_s", mux_mb_s)
            .metric("demux_wall_ns", demux_ns)
            .metric("demux_mb_per_s", demux_mb_s),
    );

    // ---- Ladder encode (the head-end cost of one title). 32 frames at
    // GOP 4 give 8 segments per rung, so sessions spend most of their
    // life in steady-state fetch-while-playing — the regime where the
    // capacity knee is visible.
    let source = SequenceGen::new(12).panning_sequence(64, 48, 32, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let ladder = encode_ladder("bench", &source, &cfg).expect("ladder encodes");
    let ladder_ns = median_ns_per_iter(|| {
        std::hint::black_box(
            encode_ladder(
                "bench",
                std::hint::black_box(&source),
                std::hint::black_box(&cfg),
            )
            .unwrap(),
        );
    });
    println!(
        "ladder: 3 rungs x {} segments, {} wire bytes, {:.1} ms to encode",
        ladder.manifest.segment_count(),
        ladder.total_bytes(),
        ladder_ns / 1e6
    );
    report.push(
        PerfEntry::new("ladder_encode_64x48x32")
            .metric("rungs", ladder.manifest.rungs.len() as f64)
            .metric("segments_per_rung", ladder.manifest.segment_count() as f64)
            .metric("total_wire_bytes", ladder.total_bytes() as f64)
            .metric("wall_ns", ladder_ns)
            .metric("wall_ms", ladder_ns / 1e6),
    );

    // ---- Many-session load: capacity curve and knee.
    let manifest = &ladder.manifest;
    let server = ServerConfig::default();
    let base = LoadConfig::default();
    let counts = [50usize, 200, 500, 1_000, 2_000, 4_000];
    let curve = capacity_curve(manifest, &server, &counts, &base);

    // Determinism gate: an identical re-run of one level must agree
    // exactly before any number is published.
    let replay = simulate_load(
        manifest,
        &server,
        &LoadConfig {
            sessions: 1_000,
            ..base
        },
    );
    assert_eq!(
        replay, curve[3],
        "load simulation must be deterministic for identical seeds"
    );

    let lowest_rate = manifest.rungs[0].required_bits_per_tick(0, manifest.ticks_per_frame);
    println!(
        "\ncapacity curve (uplink {} B/tick, lowest rung needs {:.1} bits/tick):",
        server.capacity_bytes_per_tick, lowest_rate
    );
    println!(
        "  {:>8} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "sessions", "bits/tick", "goodput", "rebuffer%", "meanrung", "startup"
    );
    for r in &curve {
        println!(
            "  {:>8} {:>12.1} {:>12.0} {:>9.1}% {:>9.2} {:>9.0}",
            r.sessions,
            r.mean_session_bits_per_tick,
            r.total_goodput_bits_per_tick,
            100.0 * r.rebuffer_fraction,
            r.mean_rung,
            r.mean_startup_ticks
        );
        report.push(
            PerfEntry::new(&format!("load_{}_sessions", r.sessions))
                .metric("sessions", r.sessions as f64)
                .metric("completed", r.completed as f64)
                .metric("sim_ticks", r.ticks as f64)
                .metric("mean_session_bits_per_tick", r.mean_session_bits_per_tick)
                .metric("total_goodput_bits_per_tick", r.total_goodput_bits_per_tick)
                .metric("rebuffer_fraction", r.rebuffer_fraction)
                .metric("mean_rung", r.mean_rung)
                .metric("mean_startup_ticks", r.mean_startup_ticks)
                .metric("rung_switches", r.rung_switches as f64),
        );
    }
    let knee = capacity_knee(&curve, 0.05);
    println!(
        "capacity knee (<=5% sessions rebuffering): {}",
        knee.map_or("none".to_string(), |k| k.to_string())
    );

    // ---- Simulator wall rate: sessions per second at the 1000 level.
    let sim_ns = median_ns_per_iter(|| {
        std::hint::black_box(simulate_load(
            std::hint::black_box(manifest),
            &server,
            &LoadConfig {
                sessions: 1_000,
                ..base
            },
        ));
    });
    let sessions_per_s = 1_000.0 / (sim_ns / 1e9);
    println!(
        "simulator: 1000-session run in {:.1} ms ({sessions_per_s:.0} sessions/s)",
        sim_ns / 1e6
    );
    report.push(
        PerfEntry::new("simulator_rate")
            .metric("sessions", 1_000.0)
            .metric("wall_ns_per_run", sim_ns)
            .metric("sessions_per_second", sessions_per_s)
            .metric("knee_sessions", knee.unwrap_or(0) as f64),
    );

    report
        .write("BENCH_stream.json")
        .expect("write BENCH_stream.json");
    println!(
        "\nwrote BENCH_stream.json ({} entries)",
        report.entries.len()
    );
}
