//! E10 — §5: parsing television content into segments.
//!
//! Shot-boundary detection over multi-scene sequences with increasing
//! noise; reports precision/recall/F1 and the resulting segmentation.

use analysis::shots::ShotDetector;
use mmbench::banner;
use mmsoc::report::{f, Table};
use video::synth::SequenceGen;

fn main() {
    banner(
        "E10: scene segmentation (§5)",
        "algorithms can parse television content into segments so a viewer can \
         skip to the next part of the program",
    );

    let mut table = Table::new(vec![
        "noise sigma",
        "cuts (truth)",
        "cuts found",
        "P",
        "R",
        "F1",
    ]);
    for noise in [0.0, 3.0, 6.0, 10.0, 15.0] {
        let mut g = SequenceGen::new(11);
        let (mut frames, truth) = g.scene_sequence(64, 48, &[9, 8, 10, 7, 9, 8]);
        for fr in &mut frames {
            g.add_noise(fr, noise);
        }
        let det = ShotDetector::default();
        let cuts = det.detect_cuts(&frames);
        let score = ShotDetector::score(&cuts, &truth, 1);
        table.row(vec![
            f(noise, 1),
            truth.len().to_string(),
            cuts.len().to_string(),
            f(score.precision(), 3),
            f(score.recall(), 3),
            f(score.f1(), 3),
        ]);
    }
    println!("{table}");

    // Show one segmentation explicitly.
    let mut g = SequenceGen::new(12);
    let (frames, truth) = g.scene_sequence(64, 48, &[6, 9, 7]);
    let shots = ShotDetector::default().segment(&frames);
    println!("example segmentation (truth cuts at {truth:?}):");
    for (i, s) in shots.iter().enumerate() {
        println!(
            "  segment {i}: frames {}..{} ({} frames)",
            s.start,
            s.end,
            s.len()
        );
    }
    println!("\nexpected shape: near-perfect on clean cuts, graceful degradation with noise.");
}
