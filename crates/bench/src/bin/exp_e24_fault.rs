//! E24 — deterministic fault injection across the delivery stack.
//!
//! Exercises the chaos layer end to end and writes the
//! machine-readable `BENCH_fault.json` resilience trajectory:
//!
//! * **Knee vs edges lost**: the warm 8-edge tier's capacity knee
//!   (8,000 sessions intact, pinned against BENCH_sim) re-measured
//!   under fault plans that permanently crash 1..4 edges at tick 0.
//!   The knee must retreat monotonically and never fall below the
//!   surviving tier's pro-rata share.
//! * **The composed worst case** (ROADMAP item 3): a 10x flash crowd
//!   arrives while one of four warm edges crashes cold *and* the
//!   origin flaps — one deterministic run. The survival bar: fewer
//!   than 5% of sessions experience fault-attributed rebuffering, the
//!   crashed edge's sessions re-home to survivors and fail back after
//!   the exact 2,000-tick MTTR, and the cold restart shows up as
//!   re-warm fills. All asserted in-binary before anything is written.
//! * **Failover ring remap**: crashing any one of 8 edges moves only
//!   that edge's keys (a key whose owner survives never moves), and
//!   the worst single-edge remap stays ≤ 2/N of the keyspace.
//!
//! Everything is seed-deterministic; there is no wall clock anywhere
//! in the measured quantities.

use mmbench::banner;
use mmbench::perf::{PerfEntry, PerfReport};
use mmstream::edge::{EdgeTierConfig, HashRing};
use mmstream::fault::{FaultPlan, RestartMode};
use mmstream::ladder::{encode_ladder, LadderConfig};
use mmstream::serve::{
    faulted_edge_capacity_knee_bisect, simulate_live_edge_load_faulted, ChurnConfig, LiveConfig,
    LoadConfig,
};
use mmstream::session::JoinMode;
use signal::rng::splitmix64;
use video::synth::SequenceGen;

fn main() {
    banner(
        "E24: fault injection, failover, and the resilience ledger (BENCH_fault.json)",
        "a warm edge tier degrades gracefully as a fault plan takes \
         edges away, survives a composed crash+flap+flash-crowd \
         scenario with <5% of sessions impacted, and the failover \
         ring re-homes only a crashed edge's keys",
    );

    let mut report = PerfReport::new("fault", "exp_e24_fault");

    // ---- The E21/E23 VOD title: the intact 8-edge knee is directly
    // comparable to BENCH_sim's 8,000 sessions.
    let source = SequenceGen::new(12).panning_sequence(64, 48, 32, 1, 1);
    let cfg = LadderConfig {
        targets_bits_per_frame: vec![2_000.0, 6_000.0, 18_000.0],
        gop: 4,
        ..Default::default()
    };
    let manifest = encode_ladder("bench", &source, &cfg)
        .expect("ladder encodes")
        .manifest;
    let base = LoadConfig::default();
    let tier = EdgeTierConfig {
        edges: 8,
        cache_capacity_bytes: usize::MAX,
        prewarm: true,
        ..Default::default()
    };

    println!("knee vs edges lost (8 warm edges, crashes at tick 0, no restart):");
    let counts: Vec<usize> = (1..=16).map(|i| i * 500).collect();
    let mut prev_knee = usize::MAX;
    for lost in 0usize..=4 {
        let mut plan = FaultPlan::new(0xE24);
        for edge in 0..lost {
            plan = plan.crash_edge(edge, 0, None);
        }
        let knee = faulted_edge_capacity_knee_bisect(&manifest, &tier, &plan, &counts, &base, 0.05)
            .expect("some level must survive");
        println!("  {lost} edges lost: knee {knee} sessions");
        assert!(
            knee <= prev_knee,
            "losing another edge must never raise the knee: {knee} > {prev_knee}"
        );
        // Degradation is exactly pro-rata on this workload: every
        // surviving edge carries its intact 1,000-session share, so
        // the ring's re-homing costs no capacity at all (lost == 0 is
        // the intact 8,000-session knee BENCH_sim pins).
        assert_eq!(
            knee,
            1_000 * (8 - lost),
            "the {}-edge remnant must keep its pro-rata capacity",
            8 - lost
        );
        prev_knee = knee;
        report.push(
            PerfEntry::new(&format!("knee_lost_{lost}"))
                .metric("edges_lost", lost as f64)
                .metric("edges_surviving", (8 - lost) as f64)
                .metric("knee_sessions", knee as f64),
        );
    }

    // ---- The composed scenario: flash crowd + edge crash (cold
    // restart) + origin flap, on the E22/E23 live title (16 segments,
    // 400-tick natural pace, ~6,400-tick event).
    println!("\ncomposed scenario (10x flash + edge 0 cold-crash + origin flap):");
    let live_source = SequenceGen::new(12).panning_sequence(64, 48, 64, 1, 1);
    let live_manifest = encode_ladder("bench", &live_source, &cfg)
        .expect("ladder encodes")
        .manifest;
    let live = LiveConfig {
        dvr_window_segments: 8,
        join: JoinMode::LiveEdge,
        ..Default::default()
    };
    let flash_tier = EdgeTierConfig {
        edges: 4,
        cache_capacity_bytes: usize::MAX,
        prewarm: true,
        ..Default::default()
    };
    let load = LoadConfig {
        sessions: 200,
        stagger_ticks: 1_000,
        churn: ChurnConfig {
            flash_sessions: 2_000,
            flash_at_tick: 2_000,
            flash_ramp_ticks: 1_000,
            ..Default::default()
        },
        ..base
    };
    let plan = FaultPlan::new(0xFA11)
        .crash_edge(0, 2_400, Some((4_400, RestartMode::Cold)))
        .flap_origin(2_400, 3_600);
    let r = simulate_live_edge_load_faulted(&live_manifest, &flash_tier, &live, &plan, &load);
    let res = r.resilience;
    let sessions = r.edge.load.sessions;
    let impacted = res.sessions_fault_rebuffered as f64 / sessions as f64;
    println!(
        "  {sessions} sessions: {:.2}% fault-rebuffered, {} re-homed, \
         {} re-warm fills, MTTR {} ticks, completed {}",
        100.0 * impacted,
        res.sessions_rehomed,
        res.rewarm_fills,
        res.mean_restore_ticks,
        r.edge.load.completed,
    );
    assert_eq!(res.edge_crashes, 1, "exactly one crash was scheduled");
    assert_eq!(res.edge_restarts, 1, "the edge must come back");
    assert_eq!(
        res.mean_restore_ticks, 2_000.0,
        "MTTR is exact on the deterministic calendar: 4,400 - 2,400"
    );
    assert!(
        res.sessions_rehomed > 0,
        "the crashed edge's sessions must fail over to survivors"
    );
    assert!(
        res.rewarm_fills > 0,
        "a cold restart must trigger re-warm fills"
    );
    assert!(
        impacted < 0.05,
        "the survival bar: <5% of sessions fault-rebuffered, got {:.2}%",
        100.0 * impacted
    );
    report.push(
        PerfEntry::new("composed_scenario")
            .metric("sessions", sessions as f64)
            .metric(
                "sessions_fault_rebuffered",
                res.sessions_fault_rebuffered as f64,
            )
            .metric("fault_rebuffered_fraction", impacted)
            .metric("fault_rebuffer_ticks", res.fault_rebuffer_ticks as f64)
            .metric("sessions_rehomed", res.sessions_rehomed as f64)
            .metric("rewarm_fills", res.rewarm_fills as f64)
            .metric("mean_restore_ticks", res.mean_restore_ticks)
            .metric("completed", r.edge.load.completed as f64)
            .metric("rebuffer_fraction", r.edge.load.rebuffer_fraction),
    );
    // Determinism gate: the composed run must replay exactly.
    let replay = simulate_live_edge_load_faulted(&live_manifest, &flash_tier, &live, &plan, &load);
    assert_eq!(
        replay, r,
        "the composed scenario must be seed-deterministic"
    );

    // ---- The failover ring's remap bound, measured over the keyspace.
    println!("\nfailover ring remap (8 edges, 128 vnodes, 100k keys):");
    let ring = HashRing::new(8, 128, 0x51A6);
    let keys: Vec<u64> = (0..100_000u64).map(splitmix64).collect();
    let mut worst_fraction = 0.0f64;
    let mut moved_total = 0u64;
    let mut moved_foreign = 0u64;
    for crashed in 0..8usize {
        let mut up = vec![true; 8];
        up[crashed] = false;
        let mut moved = 0u64;
        for &k in &keys {
            let home = ring.route(k);
            let rerouted = ring.route_alive(k, &up).expect("seven edges remain");
            assert_ne!(rerouted, crashed, "no key may stay on the dead edge");
            if rerouted != home {
                moved += 1;
                if home != crashed {
                    moved_foreign += 1;
                }
            }
        }
        moved_total += moved;
        worst_fraction = worst_fraction.max(moved as f64 / keys.len() as f64);
    }
    let only_crashed_keys = if moved_total == 0 {
        1.0
    } else {
        1.0 - moved_foreign as f64 / moved_total as f64
    };
    println!(
        "  only-crashed-keys fraction {only_crashed_keys:.3}, worst remap {:.3} of keyspace",
        worst_fraction
    );
    assert_eq!(
        only_crashed_keys, 1.0,
        "a key whose owner survives must never move"
    );
    assert!(
        worst_fraction <= 0.25,
        "worst single-edge remap must stay within 2/N: {worst_fraction:.3}"
    );
    report.push(
        PerfEntry::new("ring_remap")
            .metric("edges", 8.0)
            .metric("keys", keys.len() as f64)
            .metric("only_crashed_keys", only_crashed_keys)
            .metric("worst_remap_fraction", worst_fraction),
    );

    report
        .write("BENCH_fault.json")
        .expect("write BENCH_fault.json");
    println!(
        "\nwrote BENCH_fault.json ({} entries)",
        report.entries.len()
    );
}
